//! The cooperative virtual scheduler.
//!
//! Each virtual thread ("vthread") is a real OS thread, but only one
//! runs at a time: a baton is passed at instrumented *yield points*
//! (mutex lock/unlock, condvar wait/notify, atomic accesses, spawns,
//! sleeps). Which thread receives the baton is decided by a pluggable
//! [`Decider`], so a whole execution is reproducible from either a
//! 64-bit seed or a recorded decision trace.
//!
//! On top of the baton the scheduler keeps logical state — who holds
//! which mutex, who waits on which condvar, per-thread vector clocks —
//! which is what makes deadlock, lost-wakeup, and happens-before race
//! detection possible without any `unsafe`: the *data* always sits
//! behind real `std::sync` primitives; only the *schedule* is virtual.
//!
//! Teardown protocol: when a fatal finding is recorded the scheduler
//! sets an `abort` flag and wakes every parked vthread. Blocking entry
//! points then unwind with a private [`CheckAbort`] payload — unless
//! the calling thread is already panicking, in which case they degrade
//! to silent passthrough so `Drop` impls never double-panic.

use crate::clock::VClock;
use crate::report::{BlockInfo, Finding};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, MutexGuard as OsGuard};

/// Panic payload used to unwind vthreads during execution teardown.
/// Never escapes the explorer: it is caught and swallowed there.
pub(crate) struct CheckAbort;

/// Sentinel for "no thread holds the baton" (all finished).
const NOBODY: usize = usize::MAX;

// ---------------------------------------------------------------------------
// Deciders
// ---------------------------------------------------------------------------

/// SplitMix64: tiny, seedable, good enough to scatter schedules.
#[derive(Clone, Debug)]
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        Self(seed)
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// One recorded branch point: `options` alternatives existed, `taken`
/// was chosen. Forced moves (a single runnable thread) are not
/// recorded, so a trace is exactly the schedule's decision string.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Choice {
    pub options: u8,
    pub taken: u8,
}

/// Schedule decision source.
pub(crate) enum Decider {
    /// Seeded pseudo-random choices (replayable from the seed).
    Random(SplitMix64),
    /// Follow `script` while it lasts, then always take option 0. Used
    /// both for DFS exploration (script = prefix to revisit) and for
    /// replaying a recorded trace.
    Scripted { script: Vec<Choice>, pos: usize },
}

impl Decider {
    fn choose(&mut self, options: usize) -> usize {
        debug_assert!(options >= 2);
        match self {
            Decider::Random(rng) => rng.below(options),
            Decider::Scripted { script, pos } => {
                let taken = match script.get(*pos) {
                    Some(c) => (c.taken as usize).min(options - 1),
                    None => 0,
                };
                *pos += 1;
                taken
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------------

enum Status {
    Runnable,
    Blocked(BlockInfo),
    Finished,
}

struct VThread {
    status: Status,
    /// Per-thread parking condvar: the baton is handed over by waking
    /// exactly the chosen thread, not the whole herd.
    park: Arc<OsCondvar>,
    clock: VClock,
    /// Set when the scheduler resumed this thread by firing its timed
    /// wait instead of a notification.
    timed_out: bool,
}

/// Logical state of a mutex / condvar / atomic, keyed by address.
#[derive(Default)]
struct ObjState {
    clock: VClock,
    holder: Option<usize>,
}

struct CellAccess {
    thread: usize,
    clock: VClock,
}

/// Race-detector state for one [`crate::sync::RaceCell`].
struct CellState {
    name: &'static str,
    write: Option<CellAccess>,
    reads: Vec<CellAccess>,
    reported: bool,
}

struct SchedState {
    threads: Vec<VThread>,
    /// Baton holder (vthread id), or [`NOBODY`].
    current: usize,
    decider: Decider,
    trace: Vec<Choice>,
    steps: u64,
    step_limit: u64,
    objects: HashMap<usize, ObjState>,
    cells: HashMap<usize, CellState>,
    findings: Vec<Finding>,
    tick_wakeups: u32,
    tick_threads: Vec<usize>,
    abort: bool,
}

/// Handle to one execution's scheduler. Cheap to clone.
#[derive(Clone)]
pub(crate) struct Sched(Arc<OsMutex<SchedState>>);

fn unpoison<'a, T>(
    r: Result<OsGuard<'a, T>, std::sync::PoisonError<OsGuard<'a, T>>>,
) -> OsGuard<'a, T> {
    r.unwrap_or_else(|e| e.into_inner())
}

/// Unwind with the teardown payload unless this thread is already
/// unwinding (drop-during-panic must not double-panic).
fn abort_unwind() -> ! {
    debug_assert!(!std::thread::panicking());
    std::panic::panic_any(CheckAbort)
}

impl Sched {
    pub(crate) fn new(decider: Decider, step_limit: u64) -> Self {
        let main = VThread {
            status: Status::Runnable,
            park: Arc::new(OsCondvar::new()),
            clock: {
                let mut c = VClock::new();
                c.bump(0);
                c
            },
            timed_out: false,
        };
        Sched(Arc::new(OsMutex::new(SchedState {
            threads: vec![main],
            current: 0,
            decider,
            trace: Vec::new(),
            steps: 0,
            step_limit,
            objects: HashMap::new(),
            cells: HashMap::new(),
            findings: Vec::new(),
            tick_wakeups: 0,
            tick_threads: Vec::new(),
            abort: false,
        })))
    }

    fn lock(&self) -> OsGuard<'_, SchedState> {
        unpoison(self.0.lock())
    }

    // -- baton machinery ----------------------------------------------------

    /// Record a decision among `options` alternatives.
    fn choose(st: &mut SchedState, options: usize) -> usize {
        let taken = st.decider.choose(options);
        st.trace.push(Choice {
            options: options.min(u8::MAX as usize) as u8,
            taken: taken as u8,
        });
        taken
    }

    /// Pick the next baton holder and wake it. Fires timed waits when
    /// nothing is runnable; records a deadlock finding (and aborts) when
    /// nothing can ever run again.
    fn resched(&self, st: &mut SchedState) {
        loop {
            let runnable: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t.status, Status::Runnable))
                .map(|(i, _)| i)
                .collect();
            if !runnable.is_empty() {
                let idx = if runnable.len() == 1 {
                    0
                } else {
                    Self::choose(st, runnable.len())
                };
                st.current = runnable[idx];
                st.threads[st.current].park.notify_all();
                return;
            }
            // No runnable thread: the only legal way forward is a timed
            // wait's safety net. Firing one is progress for the program
            // but a finding for us — tick_wakeups is checked at the end.
            let timed: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| {
                    matches!(
                        t.status,
                        Status::Blocked(BlockInfo::Condvar { timed: true, .. })
                    )
                })
                .map(|(i, _)| i)
                .collect();
            if !timed.is_empty() {
                let idx = if timed.len() == 1 {
                    0
                } else {
                    Self::choose(st, timed.len())
                };
                let t = timed[idx];
                st.threads[t].status = Status::Runnable;
                st.threads[t].timed_out = true;
                st.tick_wakeups += 1;
                if !st.tick_threads.contains(&t) {
                    st.tick_threads.push(t);
                }
                continue;
            }
            if st
                .threads
                .iter()
                .all(|t| matches!(t.status, Status::Finished))
            {
                st.current = NOBODY;
                return;
            }
            let mut blocked = BTreeMap::new();
            for (i, t) in st.threads.iter().enumerate() {
                if let Status::Blocked(info) = &t.status {
                    blocked.insert(i, info.clone());
                }
            }
            st.findings.push(Finding::Deadlock { threads: blocked });
            Self::abort_all(st);
            return;
        }
    }

    /// Set the abort flag and wake every parked vthread so it can
    /// unwind.
    fn abort_all(st: &mut SchedState) {
        st.abort = true;
        for t in &st.threads {
            t.park.notify_all();
        }
    }

    /// Park until this thread holds the baton (or the execution is
    /// aborting — the caller must check `abort` on return).
    fn park<'a>(&'a self, mut st: OsGuard<'a, SchedState>, me: usize) -> OsGuard<'a, SchedState> {
        loop {
            if st.abort || (st.current == me && matches!(st.threads[me].status, Status::Runnable)) {
                return st;
            }
            let cv = st.threads[me].park.clone();
            st = unpoison(cv.wait(st));
        }
    }

    /// Hand the baton over (my status must already be set) and park
    /// until it comes back.
    fn switch<'a>(&'a self, mut st: OsGuard<'a, SchedState>, me: usize) -> OsGuard<'a, SchedState> {
        self.resched(&mut st);
        self.park(st, me)
    }

    /// Common entry for yield points: refuse when already unwinding
    /// (returns `None` → passthrough), unwind on abort, count the step.
    fn enter(&self, _me: usize) -> Option<OsGuard<'_, SchedState>> {
        if std::thread::panicking() {
            return None;
        }
        let mut st = self.lock();
        if st.abort {
            drop(st);
            abort_unwind();
        }
        st.steps += 1;
        if st.steps > st.step_limit {
            let steps = st.steps;
            st.findings.push(Finding::StepLimit { steps });
            Self::abort_all(&mut st);
            drop(st);
            abort_unwind();
        }
        Some(st)
    }

    /// Final abort check after a switch; unwinds if teardown started
    /// while we were parked.
    fn leave(&self, st: OsGuard<'_, SchedState>) {
        if st.abort {
            drop(st);
            abort_unwind();
        }
    }

    // -- yield points -------------------------------------------------------

    /// Pure preemption point (sleep, spawn, pre-op scheduling choice).
    pub(crate) fn yield_now(&self, me: usize) {
        let Some(st) = self.enter(me) else { return };
        let st = self.switch(st, me);
        self.leave(st);
    }

    /// Logical mutex acquisition (blocks; detects self-deadlock).
    pub(crate) fn mutex_lock(&self, me: usize, addr: usize) {
        let Some(st) = self.enter(me) else { return };
        // Preemption point *before* acquiring: lock-order races are the
        // main scheduling freedom worth exploring.
        let mut st = self.switch(st, me);
        loop {
            if st.abort {
                break;
            }
            let holder = st.objects.entry(addr).or_default().holder;
            match holder {
                None => {
                    let obj_clock = st.objects[&addr].clock.clone();
                    st.threads[me].clock.join(&obj_clock);
                    st.objects.get_mut(&addr).expect("object registered").holder = Some(me);
                    break;
                }
                Some(h) if h == me => {
                    st.findings.push(Finding::SelfDeadlock {
                        thread: me,
                        mutex: addr,
                    });
                    Self::abort_all(&mut st);
                    break;
                }
                Some(_) => {
                    st.threads[me].status = Status::Blocked(BlockInfo::Mutex(addr));
                    st = self.switch(st, me);
                }
            }
        }
        self.leave(st);
    }

    /// Logical mutex release: publish my clock, wake contenders. Safe
    /// to call while panicking (teardown) — it then only cleans up.
    pub(crate) fn mutex_unlock(&self, me: usize, addr: usize) {
        let panicking = std::thread::panicking();
        let mut st = self.lock();
        let my_clock = st.threads[me].clock.clone();
        let obj = st.objects.entry(addr).or_default();
        if obj.holder == Some(me) {
            obj.holder = None;
        }
        obj.clock.join(&my_clock);
        st.threads[me].clock.bump(me);
        for t in st.threads.iter_mut() {
            if matches!(t.status, Status::Blocked(BlockInfo::Mutex(a)) if a == addr) {
                t.status = Status::Runnable;
            }
        }
        if panicking {
            return;
        }
        if st.abort {
            drop(st);
            abort_unwind();
        }
        let st = self.switch(st, me);
        self.leave(st);
    }

    /// Logical condvar wait: releases `lock_addr`, blocks on `cv_addr`,
    /// re-acquires. Returns true iff resumed by the timed-wait safety
    /// net rather than a notification.
    pub(crate) fn condvar_wait(
        &self,
        me: usize,
        cv_addr: usize,
        lock_addr: usize,
        timed: bool,
    ) -> bool {
        let Some(mut st) = self.enter(me) else {
            return false;
        };
        // Release the mutex (same bookkeeping as mutex_unlock, minus
        // the preemption point — blocking below is the yield).
        let my_clock = st.threads[me].clock.clone();
        let obj = st.objects.entry(lock_addr).or_default();
        if obj.holder == Some(me) {
            obj.holder = None;
        }
        obj.clock.join(&my_clock);
        st.threads[me].clock.bump(me);
        for t in st.threads.iter_mut() {
            if matches!(t.status, Status::Blocked(BlockInfo::Mutex(a)) if a == lock_addr) {
                t.status = Status::Runnable;
            }
        }
        st.threads[me].status = Status::Blocked(BlockInfo::Condvar {
            cv: cv_addr,
            lock: lock_addr,
            timed,
        });
        let mut st = self.switch(st, me);
        if st.abort {
            drop(st);
            abort_unwind();
        }
        let timed_out = std::mem::take(&mut st.threads[me].timed_out);
        if !timed_out {
            // Happens-before edge from the notifier. A timeout creates
            // no such edge — hiding races behind tick wakeups would
            // defeat the detector.
            let cv_clock = st.objects.entry(cv_addr).or_default().clock.clone();
            st.threads[me].clock.join(&cv_clock);
        }
        drop(st);
        self.mutex_lock(me, lock_addr);
        timed_out
    }

    /// Logical notify: wake one (decider-chosen) or all waiters.
    pub(crate) fn condvar_notify(&self, me: usize, cv_addr: usize, all: bool) {
        let Some(mut st) = self.enter(me) else { return };
        let my_clock = st.threads[me].clock.clone();
        st.objects.entry(cv_addr).or_default().clock.join(&my_clock);
        st.threads[me].clock.bump(me);
        let waiters: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                matches!(t.status, Status::Blocked(BlockInfo::Condvar { cv, .. }) if cv == cv_addr)
            })
            .map(|(i, _)| i)
            .collect();
        if !waiters.is_empty() {
            if all {
                for &w in &waiters {
                    st.threads[w].status = Status::Runnable;
                }
            } else {
                let idx = if waiters.len() == 1 {
                    0
                } else {
                    Self::choose(&mut st, waiters.len())
                };
                st.threads[waiters[idx]].status = Status::Runnable;
            }
        }
        let st = self.switch(st, me);
        self.leave(st);
    }

    /// Yield + happens-before bookkeeping for an atomic access. The
    /// caller performs the real `std` atomic op immediately after,
    /// while still holding the baton.
    pub(crate) fn atomic_access(&self, me: usize, addr: usize, acquire: bool, release: bool) {
        let Some(st) = self.enter(me) else { return };
        let mut st = self.switch(st, me);
        if st.abort {
            drop(st);
            abort_unwind();
        }
        if acquire {
            let obj_clock = st.objects.entry(addr).or_default().clock.clone();
            st.threads[me].clock.join(&obj_clock);
        }
        if release {
            let my_clock = st.threads[me].clock.clone();
            st.objects.entry(addr).or_default().clock.join(&my_clock);
            st.threads[me].clock.bump(me);
        }
    }

    /// Race-detector access to a [`crate::sync::RaceCell`].
    pub(crate) fn cell_access(&self, me: usize, addr: usize, name: &'static str, write: bool) {
        let Some(st) = self.enter(me) else { return };
        let mut st = self.switch(st, me);
        if st.abort {
            drop(st);
            abort_unwind();
        }
        let my_clock = st.threads[me].clock.clone();
        let mut race: Option<Finding> = None;
        let cell = st.cells.entry(addr).or_insert_with(|| CellState {
            name,
            write: None,
            reads: Vec::new(),
            reported: false,
        });
        let conflict = |prev: &CellAccess| -> bool {
            prev.thread != me && prev.clock.concurrent_with(&my_clock)
        };
        if let Some(w) = &cell.write {
            if conflict(w) {
                race = Some(Finding::Race {
                    cell: cell.name,
                    first_thread: w.thread,
                    second_thread: me,
                    second_is_write: write,
                });
            }
        }
        if write {
            for r in &cell.reads {
                if race.is_none() && conflict(r) {
                    race = Some(Finding::Race {
                        cell: cell.name,
                        first_thread: r.thread,
                        second_thread: me,
                        second_is_write: true,
                    });
                }
            }
            cell.write = Some(CellAccess {
                thread: me,
                clock: my_clock,
            });
            cell.reads.clear();
        } else {
            cell.reads.retain(|r| r.thread != me);
            cell.reads.push(CellAccess {
                thread: me,
                clock: my_clock,
            });
        }
        if let Some(f) = race {
            if !cell.reported {
                cell.reported = true;
                st.findings.push(f);
            }
        }
    }

    // -- thread lifecycle ---------------------------------------------------

    /// Register a child vthread; the parent keeps the baton until its
    /// next yield point.
    pub(crate) fn register_child(&self, parent: usize) -> usize {
        let mut st = self.lock();
        if st.abort && !std::thread::panicking() {
            drop(st);
            abort_unwind();
        }
        let tid = st.threads.len();
        let mut clock = st.threads[parent].clock.clone();
        clock.bump(tid);
        st.threads.push(VThread {
            status: Status::Runnable,
            park: Arc::new(OsCondvar::new()),
            clock,
            timed_out: false,
        });
        st.threads[parent].clock.bump(parent);
        tid
    }

    /// First park of a freshly spawned vthread: wait to be scheduled.
    pub(crate) fn thread_started(&self, me: usize) {
        let st = self.lock();
        let st = self.park(st, me);
        self.leave(st);
    }

    /// Mark a vthread finished, wake joiners, pass the baton on. Never
    /// unwinds (it is the tail of both normal and panicking exits).
    pub(crate) fn finish_thread(&self, me: usize) {
        let mut st = self.lock();
        st.threads[me].status = Status::Finished;
        st.threads[me].clock.bump(me);
        for t in st.threads.iter_mut() {
            if matches!(t.status, Status::Blocked(BlockInfo::Join)) {
                t.status = Status::Runnable;
            }
        }
        if !st.abort {
            self.resched(&mut st);
        }
    }

    /// Block until all `children` are finished (scope join).
    pub(crate) fn join_children(&self, me: usize, children: &[usize]) {
        loop {
            let Some(mut st) = self.enter(me) else { return };
            if children
                .iter()
                .all(|&c| matches!(st.threads[c].status, Status::Finished))
            {
                for &c in children {
                    let child_clock = st.threads[c].clock.clone();
                    st.threads[me].clock.join(&child_clock);
                }
                return;
            }
            st.threads[me].status = Status::Blocked(BlockInfo::Join);
            let st = self.switch(st, me);
            self.leave(st);
        }
    }

    /// Record a panic observed on a vthread and begin teardown.
    pub(crate) fn record_panic(&self, thread: usize, message: String) {
        let mut st = self.lock();
        st.findings.push(Finding::Panic { thread, message });
        Self::abort_all(&mut st);
    }

    /// Begin teardown without a dedicated finding (a panic on the main
    /// body is recorded by the explorer instead).
    pub(crate) fn abort(&self) {
        let mut st = self.lock();
        Self::abort_all(&mut st);
    }

    /// Harvest the execution's outcome. Call only after every vthread
    /// has really finished (the explorer's scope guarantees this).
    pub(crate) fn take_outcome(&self) -> Outcome {
        let mut st = self.lock();
        let mut findings = std::mem::take(&mut st.findings);
        if st.tick_wakeups > 0 {
            findings.push(Finding::LostWakeup {
                tick_wakeups: st.tick_wakeups,
                threads: std::mem::take(&mut st.tick_threads),
            });
        }
        Outcome {
            findings,
            trace: std::mem::take(&mut st.trace),
            steps: st.steps,
        }
    }
}

/// Everything harvested from one execution.
pub(crate) struct Outcome {
    pub findings: Vec<Finding>,
    pub trace: Vec<Choice>,
    pub steps: u64,
}

// ---------------------------------------------------------------------------
// Thread-local execution context
// ---------------------------------------------------------------------------

/// Per-OS-thread binding to a scheduler: which execution this thread
/// belongs to and which vthread id it carries.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub sched: Sched,
    pub tid: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

/// The calling OS thread's scheduler binding, if any. `None` means the
/// virtual primitives degrade to plain std behavior.
pub(crate) fn current() -> Option<Ctx> {
    CTX.try_with(|c| c.borrow().clone()).ok().flatten()
}

pub(crate) fn set(ctx: Option<Ctx>) {
    let _ = CTX.try_with(|c| *c.borrow_mut() = ctx);
}
