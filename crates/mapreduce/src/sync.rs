//! The runtime's synchronization facade.
//!
//! Every Mutex/Condvar/atomic/thread primitive the engine's concurrency
//! core uses ([`runtime`](crate::runtime), [`shuffle`](crate::shuffle))
//! is imported from here instead of `parking_lot` / `std` directly. In
//! a normal build the re-exports *are* those types — zero overhead. In
//! a checker build (`RUSTFLAGS='--cfg check'`) they are the
//! [`sidr_check::sync`] virtual primitives, so the production code runs
//! unmodified under deterministic schedule exploration with
//! happens-before tracking.
//!
//! `check` is a rustc `--cfg`, not a cargo feature, deliberately:
//! feature unification could silently turn the checker on for every
//! dependent of this crate, whereas a RUSTFLAGS cfg rebuilds the whole
//! graph explicitly and can never leak into normal builds.
//!
//! [`chaos`] is the third face of the facade: seeded mutation hooks
//! that let the checker's mutation tests re-introduce classic
//! concurrency bugs (a dropped notify, a widened critical section, a
//! skipped recovery re-wait) and prove the checker catches each one.
//! In normal builds every hook is a `const false` the optimizer
//! deletes.

#[cfg(not(check))]
pub use parking_lot::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
#[cfg(check)]
pub use sidr_check::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

/// Atomic types used by the concurrency core. Under `--cfg check`
/// these are virtual: every access is a scheduler yield point and
/// acquire/release orderings induce happens-before edges.
pub mod atomic {
    #[cfg(check)]
    pub use sidr_check::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    #[cfg(not(check))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// Scoped threads and sleeps. Under `--cfg check`, `scope`/`spawn`
/// create cooperatively scheduled vthreads and `sleep` is just a yield
/// point (virtual time, no wall-clock delay).
pub mod thread {
    #[cfg(check)]
    pub use sidr_check::sync::thread::{scope, sleep};
    #[cfg(not(check))]
    pub use std::thread::{scope, sleep};
}

/// Seeded concurrency-bug injection for checker mutation tests.
///
/// Each [`Mutation`](chaos::Mutation) re-introduces one classic bug at a named hook in
/// the runtime. The hooks compile to `false` in normal builds; under
/// `--cfg check` the mutation tests arm one at a time and assert the
/// explorer reports the matching finding (lost wakeup, deadlock,
/// protocol violation). The armed flag is process-global state of the
/// *checker*, not of the model: it is a plain std atomic on purpose,
/// so arming it neither yields nor creates happens-before edges.
pub mod chaos {
    /// A deliberately injected concurrency bug.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Mutation {
        /// `Semaphore::release` forgets its `notify_one`: slot waiters
        /// make progress only via the timed-wait safety net.
        DropSemReleaseNotify,
        /// A finished map commits `Done` without `notify_all`: reducers
        /// blocked on the barrier are never woken.
        DropMapDoneNotify,
        /// The map worker holds the state lock across the slot
        /// acquire, whose abort callback also locks state.
        HoldStateAcrossAcquire,
        /// Volatile recovery skips re-enqueueing the lost map outputs,
        /// so a recovering reducer waits for data nobody will rebuild.
        SkipRecoveryRewait,
        /// A speculative map attempt skips the pre-publish commit
        /// claim: the racing loser puts its shuffle output *after* the
        /// winner committed, overwriting the committed entries at a
        /// newer epoch that no commit will ever match.
        DropSpeculationClaim,
        /// The spill mover installs the on-disk tier without
        /// `notify_all`: fetchers blocked on a `Moving` partition are
        /// never woken and progress only via the timed-wait safety
        /// net.
        DropTierMoveNotify,
    }

    /// Whether `m` is armed. Always `false` outside checker builds.
    #[cfg(not(check))]
    #[inline(always)]
    pub fn on(_m: Mutation) -> bool {
        false
    }

    #[cfg(check)]
    static ARMED: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

    #[cfg(check)]
    fn code(m: Mutation) -> u8 {
        match m {
            Mutation::DropSemReleaseNotify => 1,
            Mutation::DropMapDoneNotify => 2,
            Mutation::HoldStateAcrossAcquire => 3,
            Mutation::SkipRecoveryRewait => 4,
            Mutation::DropSpeculationClaim => 5,
            Mutation::DropTierMoveNotify => 6,
        }
    }

    /// Whether `m` is armed.
    #[cfg(check)]
    #[inline]
    pub fn on(m: Mutation) -> bool {
        ARMED.load(std::sync::atomic::Ordering::Relaxed) == code(m)
    }

    /// Arms `m` for the lifetime of the returned guard. The flag is
    /// process-global: tests that arm mutations must serialize.
    #[cfg(check)]
    pub fn arm(m: Mutation) -> Armed {
        ARMED.store(code(m), std::sync::atomic::Ordering::SeqCst);
        Armed
    }

    /// RAII guard disarming the active mutation on drop.
    #[cfg(check)]
    pub struct Armed;

    #[cfg(check)]
    impl Drop for Armed {
        fn drop(&mut self) {
            ARMED.store(0, std::sync::atomic::Ordering::SeqCst);
        }
    }
}
