//! `sidr` — command-line front end for the SIDR reproduction.
//!
//! ```text
//! sidr generate --kind temperature --shape 364,50,40 --seed 42 --out temps.scinc
//! sidr info temps.scinc
//! sidr query "mean(temperature) over {7,5,1}" --input temps.scinc --reducers 4
//! sidr query "median(windspeed) over {2,6,8,10}" --input w.scinc \
//!       --mode scihadoop --reducers 8 --output outdir
//! sidr plan  "mean(temperature) over {7,5,1}" --input temps.scinc --reducers 4
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use sidr_repro::coords::Shape;
use sidr_repro::core::framework::{generate_splits, RunOptions};
use sidr_repro::core::lang::parse_query;
use sidr_repro::core::output::{reassemble_dense_output, DenseSlabOutput};
use sidr_repro::core::spec::JobSpec;
use sidr_repro::core::{run_query, FrameworkMode, SidrPlanner};
use sidr_repro::scifile::gen::DatasetSpec;
use sidr_repro::scifile::ScincFile;

const USAGE: &str = "\
sidr — structure-aware intelligent data routing (SC '13 reproduction)

USAGE:
  sidr generate --kind <temperature|windspeed|normal> --shape <d0,d1,..>
                --out <file.scinc> [--seed N] [--dtype f32|f64]
  sidr info <file.scinc>
  sidr query \"<query text>\" --input <file.scinc>
             [--mode hadoop|scihadoop|sidr] [--reducers N] [--split-mib N]
             [--validate] [--output <dir>] [--combined <file.scinc>]
  sidr plan  \"<query text>\" --input <file.scinc> [--reducers N] [--split-mib N]
             [--spec <plan.json>]  (export the submission document for sidr-lint)
  sidr simulate \"<query text>\" --space <d0,d1,..>
             [--mode hadoop|scihadoop|sidr] [--reducers N] [--selectivity F]
             (paper-scale cluster simulation: 24 nodes x 4 map + 3 reduce slots)

The query language: <op>(<variable>[, args]) over {shape} [stride {shape}]
with op one of mean, median, min, max, sum, count, sortvalues, variance,
stddev, range, filter(v, > x), countabove(v, x), percentile(v, p).";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Splits args into positional and `--flag value` pairs
/// (`--validate`-style booleans get the value "true").
fn parse_args(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let boolean = matches!(name, "validate");
            if boolean {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            } else {
                let value = args.get(i + 1).cloned().unwrap_or_default();
                flags.insert(name.to_string(), value);
                i += 2;
            }
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    (positional, flags)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        println!("{USAGE}");
        return Ok(());
    };
    let (positional, flags) = parse_args(&args[1..]);
    match command.as_str() {
        "generate" => cmd_generate(&flags),
        "info" => cmd_info(&positional),
        "query" => cmd_query(&positional, &flags),
        "plan" => cmd_plan(&positional, &flags),
        "simulate" => cmd_simulate(&positional, &flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

fn required<'f>(flags: &'f HashMap<String, String>, name: &str) -> Result<&'f str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn parse_shape(text: &str) -> Result<Shape, String> {
    let extents: Result<Vec<u64>, _> = text.split(',').map(|p| p.trim().parse()).collect();
    let extents = extents.map_err(|e| format!("bad --shape '{text}': {e}"))?;
    Shape::new(extents).map_err(|e| format!("bad --shape '{text}': {e}"))
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let kind = required(flags, "kind")?;
    let shape = parse_shape(required(flags, "shape")?)?;
    let out = required(flags, "out")?;
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let spec = match kind {
        "temperature" => DatasetSpec::temperature(shape, seed),
        "windspeed" => DatasetSpec::windspeed(shape, seed),
        "normal" => DatasetSpec::normal(shape, 0.0, 1.0, seed),
        other => return Err(format!("unknown dataset kind '{other}'")),
    };
    let dtype = flags.get("dtype").map(String::as_str).unwrap_or("f64");
    let file = match dtype {
        "f32" => spec.generate::<f32>(out),
        "f64" => spec.generate::<f64>(out),
        other => return Err(format!("unsupported --dtype '{other}' (f32|f64)")),
    }
    .map_err(|e| e.to_string())?;
    println!(
        "wrote {out} ({} elements)\n{}",
        spec.space.count(),
        file.metadata()
    );
    Ok(())
}

fn cmd_info(positional: &[String]) -> Result<(), String> {
    let path = positional.first().ok_or("usage: sidr info <file.scinc>")?;
    let file = ScincFile::open(path).map_err(|e| e.to_string())?;
    print!("{}", file.metadata());
    println!(
        "total size: {} bytes",
        file.total_len().map_err(|e| e.to_string())?
    );
    Ok(())
}

fn common_query(
    positional: &[String],
    flags: &HashMap<String, String>,
) -> Result<(ScincFile, sidr_repro::core::StructuralQuery, usize, u64), String> {
    let text = positional
        .first()
        .ok_or("usage: sidr query \"<query>\" --input <file>")?;
    let input = required(flags, "input")?;
    let file = ScincFile::open(input).map_err(|e| e.to_string())?;
    let query = parse_query(text, file.metadata()).map_err(|e| e.to_string())?;
    let reducers: usize = flags
        .get("reducers")
        .map(|s| s.parse().map_err(|e| format!("bad --reducers: {e}")))
        .transpose()?
        .unwrap_or(4);
    let split_bytes: u64 = flags
        .get("split-mib")
        .map(|s| {
            s.parse::<u64>()
                .map_err(|e| format!("bad --split-mib: {e}"))
        })
        .transpose()?
        .map(|mib| mib << 20)
        .unwrap_or(1 << 20);
    Ok((file, query, reducers, split_bytes))
}

fn cmd_query(positional: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    let (file, query, reducers, split_bytes) = common_query(positional, flags)?;
    let mode = match flags.get("mode").map(String::as_str).unwrap_or("sidr") {
        "hadoop" => FrameworkMode::Hadoop,
        "scihadoop" => FrameworkMode::SciHadoop,
        "sidr" => FrameworkMode::Sidr,
        other => return Err(format!("unknown --mode '{other}'")),
    };
    let mut opts = RunOptions::new(mode, reducers);
    opts.split_bytes = split_bytes;
    opts.validate_annotations = flags.contains_key("validate") && mode == FrameworkMode::Sidr;
    let outcome = run_query(&file, &query, &opts).map_err(|e| e.to_string())?;
    println!(
        "{} produced {} records from {} maps / {} reducers in {:.0} ms \
         ({} shuffle connections; first result at {:.0} ms)",
        outcome.mode,
        outcome.records.len(),
        outcome.num_maps,
        reducers,
        outcome.result.elapsed.as_secs_f64() * 1e3,
        outcome.result.counters.shuffle_connections,
        outcome
            .result
            .first_result()
            .map(|d| d.as_secs_f64() * 1e3)
            .unwrap_or(0.0),
    );
    for (k, v) in outcome.records.iter().take(5) {
        println!("  {k} -> {v:.4}");
    }
    if outcome.records.len() > 5 {
        println!("  ... ({} more)", outcome.records.len() - 5);
    }

    if let Some(dir) = flags.get("output") {
        if mode != FrameworkMode::Sidr {
            return Err("--output (dense slabs) requires --mode sidr".into());
        }
        if !query.operator.single_valued() {
            return Err("dense output requires a single-valued operator".into());
        }
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        let splits =
            generate_splits(&file, &query, mode, split_bytes).map_err(|e| e.to_string())?;
        let plan = SidrPlanner::new(&query, reducers)
            .build(&splits)
            .map_err(|e| e.to_string())?;
        let collector = DenseSlabOutput::new(dir, &query.variable, plan.partition())
            .map_err(|e| e.to_string())?;
        // Group records by keyblock and commit through the collector.
        use sidr_repro::mapreduce::{OutputCollector, RoutingPlan};
        let mut per_block: Vec<Vec<(sidr_repro::coords::Coord, f64)>> = vec![Vec::new(); reducers];
        for (k, v) in &outcome.records {
            per_block[RoutingPlan::partition(&plan, k)].push((k.clone(), *v));
        }
        for (r, records) in per_block.into_iter().enumerate() {
            collector.commit(r, records).map_err(|e| e.to_string())?;
        }
        println!(
            "wrote {} dense part files to {dir}",
            collector.files().len()
        );
        if let Some(combined) = flags.get("combined") {
            reassemble_dense_output(
                &collector.files(),
                &query.variable,
                &query.intermediate_space(),
                combined,
            )
            .map_err(|e| e.to_string())?;
            println!("reassembled into {combined}");
        }
    }
    Ok(())
}

fn cmd_simulate(positional: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    use sidr_repro::core::lang::parse;
    use sidr_repro::simcluster::{
        build_sim_job, simulate, CostModel, SimClusterConfig, SimWorkload,
    };

    let text = positional
        .first()
        .ok_or("usage: sidr simulate \"<query>\" --space <d0,d1,..>")?;
    let space = parse_shape(required(flags, "space")?)?;
    let parsed = parse(text).map_err(|e| e.to_string())?;
    let ext = Shape::new(parsed.extraction_shape.clone()).map_err(|e| e.to_string())?;
    let query = match &parsed.stride {
        None => sidr_repro::core::StructuralQuery::new(
            parsed.variable.clone(),
            space,
            ext,
            parsed.operator,
        ),
        Some(stride) => sidr_repro::core::StructuralQuery::with_stride(
            parsed.variable.clone(),
            space,
            ext,
            stride.clone(),
            parsed.operator,
        ),
    }
    .map_err(|e| e.to_string())?;
    let mode = match flags.get("mode").map(String::as_str).unwrap_or("sidr") {
        "hadoop" => FrameworkMode::Hadoop,
        "scihadoop" => FrameworkMode::SciHadoop,
        "sidr" => FrameworkMode::Sidr,
        other => return Err(format!("unknown --mode '{other}'")),
    };
    let reducers: usize = flags
        .get("reducers")
        .map(|s| s.parse().map_err(|e| format!("bad --reducers: {e}")))
        .transpose()?
        .unwrap_or(22);
    let mut workload = SimWorkload::new(query, mode, reducers);
    if let Some(sel) = flags.get("selectivity") {
        workload.selectivity = sel.parse().map_err(|e| format!("bad --selectivity: {e}"))?;
    }
    let job = build_sim_job(&workload).map_err(|e| e.to_string())?;
    let trace = simulate(&job, &SimClusterConfig::default(), &CostModel::default());
    println!(
        "{mode:?} on the paper's cluster: {} maps, {reducers} reducers",
        job.maps.len()
    );
    println!(
        "  first result {:.0} s ({:.1} % of maps done), complete {:.0} s",
        trace.first_result_s(),
        100.0 * trace.maps_done_at_first_result(),
        trace.makespan_s()
    );
    Ok(())
}

fn cmd_plan(positional: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    let (file, query, reducers, split_bytes) = common_query(positional, flags)?;
    let splits = generate_splits(&file, &query, FrameworkMode::Sidr, split_bytes)
        .map_err(|e| e.to_string())?;
    let plan = SidrPlanner::new(&query, reducers)
        .build(&splits)
        .map_err(|e| e.to_string())?;
    let spec = JobSpec::from_plan(&query, &splits, &plan).map_err(|e| e.to_string())?;
    if let Some(path) = flags.get("spec") {
        std::fs::write(path, spec.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("submission document written to {path} (verify with sidr-lint --spec {path})");
    }
    println!(
        "query space {} -> intermediate space {}",
        query.input_space(),
        query.intermediate_space()
    );
    println!(
        "{} splits, {} reducers, {} total connections (Hadoop would use {})",
        splits.len(),
        reducers,
        plan.total_connections(),
        splits.len() * reducers
    );
    println!(
        "submission document: {} bytes ({} bytes of dependency relationships)",
        spec.submission_bytes(),
        spec.dependency_bytes()
    );
    for r in 0..reducers.min(8) {
        let deps = plan.dependencies().reduce_deps(r);
        let keys = plan
            .partition()
            .keyblock_key_count(r)
            .map_err(|e| e.to_string())?;
        println!(
            "  keyblock {r}: {keys} keys, I_l = {} maps {:?}",
            deps.len(),
            deps
        );
    }
    if reducers > 8 {
        println!("  ... ({} more keyblocks)", reducers - 8);
    }
    Ok(())
}
