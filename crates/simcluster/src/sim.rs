//! The cluster simulation proper.

use std::collections::VecDeque;

use crate::event::{secs, to_secs, Event, EventQueue, SimTime};
use crate::model::{CostModel, SimClusterConfig};

/// One simulated Map task.
#[derive(Clone, Debug)]
pub struct SimMapTask {
    /// Bytes the task reads.
    pub input_bytes: u64,
    /// Nodes hosting a replica of the split (from the DFS model).
    pub preferred_nodes: Vec<usize>,
    /// Structure-oblivious read path (stock Hadoop over scientific
    /// files): over-read and likely-remote (§2.4.1).
    pub oblivious: bool,
}

/// One simulated Reduce task.
#[derive(Clone, Debug)]
pub struct SimReduceTask {
    /// Bytes the task fetches, merges, reduces and writes.
    pub input_bytes: u64,
    /// Map tasks it depends on (`I_ℓ`); `None` = global barrier.
    pub deps: Option<Vec<usize>>,
}

/// A complete simulated job.
#[derive(Clone, Debug)]
pub struct SimJob {
    pub maps: Vec<SimMapTask>,
    pub reduces: Vec<SimReduceTask>,
    /// Launch order of reduce tasks (monotone ids for stock Hadoop,
    /// §3.3; possibly prioritized for SIDR, §3.4).
    pub reduce_order: Vec<usize>,
    /// SIDR inverted scheduling: maps become eligible only once a
    /// running reduce depends on them (§3.3).
    pub invert_scheduling: bool,
}

/// Timestamps (seconds) of everything that happened.
#[derive(Clone, Debug)]
pub struct SimTrace {
    /// Per-map completion; `None` when the map never ran (no reduce
    /// depended on it).
    pub map_end_s: Vec<Option<f64>>,
    /// Per-reduce slot occupancy start.
    pub reduce_start_s: Vec<f64>,
    /// Per-reduce barrier satisfaction.
    pub reduce_ready_s: Vec<f64>,
    /// Per-reduce commit.
    pub reduce_end_s: Vec<f64>,
}

impl SimTrace {
    /// Job completion time.
    pub fn makespan_s(&self) -> f64 {
        self.reduce_end_s.iter().copied().fold(0.0, f64::max)
    }

    /// Time of the first committed result.
    pub fn first_result_s(&self) -> f64 {
        self.reduce_end_s
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Sorted map completion times (ran maps only).
    pub fn map_completions(&self) -> Vec<f64> {
        let mut t: Vec<f64> = self.map_end_s.iter().flatten().copied().collect();
        t.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        t
    }

    /// Sorted reduce completion times.
    pub fn reduce_completions(&self) -> Vec<f64> {
        let mut t = self.reduce_end_s.clone();
        t.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        t
    }

    /// Fraction of maps complete when the first result committed —
    /// the paper's "initial results with only 6 % of the query
    /// completed" (§4.1 headline).
    pub fn maps_done_at_first_result(&self) -> f64 {
        let first = self.first_result_s();
        let done = self
            .map_end_s
            .iter()
            .flatten()
            .filter(|&&t| t <= first)
            .count();
        done as f64 / self.map_end_s.len() as f64
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum MapState {
    Ineligible,
    Eligible,
    Running,
    Done,
}

struct ReduceRun {
    /// Unfinished dependencies (or unfinished maps, for global).
    remaining: usize,
    node: usize,
    start: SimTime,
}

/// Runs the simulation to completion.
pub fn simulate(job: &SimJob, cluster: &SimClusterConfig, model: &CostModel) -> SimTrace {
    let n_maps = job.maps.len();
    let n_reduces = job.reduces.len();
    assert!(n_reduces > 0, "job needs at least one reduce");
    assert_eq!(
        job.reduce_order.len(),
        n_reduces,
        "order must cover reduces"
    );

    let mut queue = EventQueue::new();
    let mut map_state = vec![
        if job.invert_scheduling {
            MapState::Ineligible
        } else {
            MapState::Eligible
        };
        n_maps
    ];
    // Eligible-map queues: per-node locality lists plus a global FIFO,
    // with lazy deletion — the shape of Hadoop's locality tree (§3.3).
    let mut node_queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); cluster.num_nodes];
    let mut global_queue: VecDeque<usize> = VecDeque::new();
    let mut free_map_slots = vec![cluster.map_slots_per_node; cluster.num_nodes];
    let mut maps_done = 0usize;

    let enqueue_eligible =
        |m: usize, node_queues: &mut Vec<VecDeque<usize>>, global_queue: &mut VecDeque<usize>| {
            for &n in &job.maps[m].preferred_nodes {
                if n < cluster.num_nodes {
                    node_queues[n].push_back(m);
                }
            }
            global_queue.push_back(m);
        };

    if !job.invert_scheduling {
        for m in 0..n_maps {
            enqueue_eligible(m, &mut node_queues, &mut global_queue);
        }
    }

    // Reduce bookkeeping.
    let mut reduce_cursor = 0usize;
    let mut running: Vec<Option<ReduceRun>> = (0..n_reduces).map(|_| None).collect();
    let mut free_reduce_slots = cluster.total_reduce_slots();
    // Speculation bookkeeping: scheduled end per running map and
    // whether a backup copy is already out.
    let mut map_sched_end: Vec<Option<SimTime>> = vec![None; n_maps];
    let mut map_duplicated = vec![false; n_maps];
    let mut reduce_start = vec![0f64; n_reduces];
    let mut reduce_ready = vec![0f64; n_reduces];
    let mut reduce_end = vec![0f64; n_reduces];
    let mut map_end: Vec<Option<f64>> = vec![None; n_maps];

    // Launches pending reduces onto free slots, marking dependencies
    // eligible under inverted scheduling. Returns maps made eligible.
    macro_rules! launch_reduces {
        ($now:expr) => {{
            while free_reduce_slots > 0 && reduce_cursor < n_reduces {
                let r = job.reduce_order[reduce_cursor];
                reduce_cursor += 1;
                free_reduce_slots -= 1;
                let node = r % cluster.num_nodes;
                reduce_start[r] = to_secs($now);
                let remaining = match &job.reduces[r].deps {
                    Some(deps) => {
                        if job.invert_scheduling {
                            for &m in deps {
                                if map_state[m] == MapState::Ineligible {
                                    map_state[m] = MapState::Eligible;
                                    enqueue_eligible(m, &mut node_queues, &mut global_queue);
                                }
                            }
                        }
                        deps.iter()
                            .filter(|&&m| map_state[m] != MapState::Done)
                            .count()
                    }
                    None => {
                        if job.invert_scheduling {
                            for m in 0..n_maps {
                                if map_state[m] == MapState::Ineligible {
                                    map_state[m] = MapState::Eligible;
                                    enqueue_eligible(m, &mut node_queues, &mut global_queue);
                                }
                            }
                        }
                        n_maps - maps_done
                    }
                };
                if remaining == 0 {
                    reduce_ready[r] = to_secs($now);
                    let dur = model.reduce_duration_s(job.reduces[r].input_bytes, r as u64);
                    queue.push($now + secs(dur), Event::ReduceEnd { reduce: r, node });
                    running[r] = None;
                    // Slot stays occupied until ReduceEnd.
                } else {
                    running[r] = Some(ReduceRun {
                        remaining,
                        node,
                        start: $now,
                    });
                }
            }
        }};
    }

    // Assigns eligible maps to free slots, locality-first.
    macro_rules! schedule_maps {
        ($now:expr) => {{
            for node in 0..cluster.num_nodes {
                while free_map_slots[node] > 0 {
                    // Local candidates first, then the global queue —
                    // the locality-tree walk of §3.3.
                    let mut picked = None;
                    while let Some(&m) = node_queues[node].front() {
                        if map_state[m] == MapState::Eligible {
                            picked = Some((m, true));
                            break;
                        }
                        node_queues[node].pop_front();
                    }
                    if picked.is_none() {
                        while let Some(&m) = global_queue.front() {
                            if map_state[m] == MapState::Eligible {
                                let local = job.maps[m].preferred_nodes.contains(&node);
                                picked = Some((m, local));
                                break;
                            }
                            global_queue.pop_front();
                        }
                    }
                    let Some((m, local)) = picked else {
                        // Nothing pending: Hadoop's speculative
                        // execution duplicates the slowest running map
                        // ("first copy to finish wins").
                        if cluster.speculative_maps {
                            let candidate = (0..n_maps)
                                .filter(|&m| {
                                    map_state[m] == MapState::Running
                                        && !map_duplicated[m]
                                        && map_sched_end[m].is_some_and(|e| e > $now)
                                })
                                .max_by_key(|&m| map_sched_end[m]);
                            if let Some(m) = candidate {
                                map_duplicated[m] = true;
                                free_map_slots[node] -= 1;
                                let local = job.maps[m].preferred_nodes.contains(&node);
                                let dur = model.map_duration_s(
                                    job.maps[m].input_bytes,
                                    local,
                                    job.maps[m].oblivious,
                                    m as u64 ^ 0x0D0B_1E5C, // fresh straggler roll
                                );
                                let end = $now + secs(dur);
                                // The earlier copy defines completion.
                                if map_sched_end[m].is_some_and(|e| end < e) {
                                    map_sched_end[m] = Some(end);
                                }
                                queue.push(end, Event::MapEnd { map: m, node });
                                continue;
                            }
                        }
                        break;
                    };
                    map_state[m] = MapState::Running;
                    free_map_slots[node] -= 1;
                    let dur = model.map_duration_s(
                        job.maps[m].input_bytes,
                        local,
                        job.maps[m].oblivious,
                        m as u64,
                    );
                    map_sched_end[m] = Some($now + secs(dur));
                    queue.push($now + secs(dur), Event::MapEnd { map: m, node });
                }
            }
        }};
    }

    launch_reduces!(0);
    schedule_maps!(0);

    while let Some((now, event)) = queue.pop() {
        match event {
            Event::MapEnd { map, node } => {
                if map_state[map] == MapState::Done {
                    // The losing speculative copy: just release the
                    // slot (Hadoop kills it; we let it finish idle).
                    free_map_slots[node] += 1;
                    schedule_maps!(now);
                    continue;
                }
                map_state[map] = MapState::Done;
                maps_done += 1;
                map_end[map] = Some(to_secs(now));
                free_map_slots[node] += 1;
                // Wake reduces waiting on this map.
                for r in 0..n_reduces {
                    let hit = match &mut running[r] {
                        Some(run) => {
                            let depends = match &job.reduces[r].deps {
                                Some(deps) => deps.contains(&map),
                                None => true,
                            };
                            if depends {
                                run.remaining -= 1;
                                run.remaining == 0
                            } else {
                                false
                            }
                        }
                        None => false,
                    };
                    if hit {
                        let run = running[r].take().expect("checked above");
                        let ready = now.max(run.start);
                        reduce_ready[r] = to_secs(ready);
                        let dur = model.reduce_duration_s(job.reduces[r].input_bytes, r as u64);
                        queue.push(
                            ready + secs(dur),
                            Event::ReduceEnd {
                                reduce: r,
                                node: run.node,
                            },
                        );
                    }
                }
                schedule_maps!(now);
            }
            Event::ReduceEnd { reduce, node: _ } => {
                reduce_end[reduce] = to_secs(now);
                free_reduce_slots += 1;
                launch_reduces!(now);
                schedule_maps!(now);
            }
        }
    }

    SimTrace {
        map_end_s: map_end,
        reduce_start_s: reduce_start,
        reduce_ready_s: reduce_ready,
        reduce_end_s: reduce_end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel {
            jitter_frac: 0.0,
            task_overhead_s: 0.0,
            hadoop_remote_penalty: 0.0,
            ..Default::default()
        }
    }

    fn uniform_job(n_maps: usize, n_reduces: usize, global: bool) -> SimJob {
        SimJob {
            maps: (0..n_maps)
                .map(|_| SimMapTask {
                    input_bytes: 64 << 20,
                    preferred_nodes: vec![0, 1, 2],
                    oblivious: false,
                })
                .collect(),
            reduces: (0..n_reduces)
                .map(|r| SimReduceTask {
                    input_bytes: 32 << 20,
                    deps: if global {
                        None
                    } else {
                        // Reduce r depends on a contiguous slice of
                        // maps; the last reduce takes the remainder.
                        let per = n_maps / n_reduces;
                        let end = if r + 1 == n_reduces {
                            n_maps
                        } else {
                            (r + 1) * per
                        };
                        Some((r * per..end).collect())
                    },
                })
                .collect(),
            reduce_order: (0..n_reduces).collect(),
            invert_scheduling: !global,
        }
    }

    #[test]
    fn global_barrier_blocks_all_reduces() {
        let job = uniform_job(32, 4, true);
        let trace = simulate(&job, &SimClusterConfig::default(), &model());
        let last_map = trace.map_completions().last().copied().unwrap();
        for r in 0..4 {
            assert!(
                trace.reduce_ready_s[r] >= last_map,
                "reduce {r} ready {} before last map {last_map}",
                trace.reduce_ready_s[r]
            );
        }
    }

    #[test]
    fn dependency_barrier_releases_early() {
        let job = uniform_job(32, 4, false);
        let trace = simulate(&job, &SimClusterConfig::default(), &model());
        let last_map = trace.map_completions().last().copied().unwrap();
        assert!(
            trace.first_result_s() < last_map,
            "first result {} not before last map {last_map}",
            trace.first_result_s()
        );
    }

    #[test]
    fn all_tasks_complete() {
        for global in [true, false] {
            let job = uniform_job(50, 7, global);
            let trace = simulate(&job, &SimClusterConfig::default(), &model());
            assert_eq!(trace.map_completions().len(), 50);
            assert!(trace.reduce_end_s.iter().all(|&t| t > 0.0));
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let job = uniform_job(64, 8, false);
        let a = simulate(&job, &SimClusterConfig::default(), &CostModel::default());
        let b = simulate(&job, &SimClusterConfig::default(), &CostModel::default());
        assert_eq!(a.reduce_end_s, b.reduce_end_s);
        assert_eq!(a.map_end_s, b.map_end_s);
    }

    #[test]
    fn more_slots_do_not_slow_the_job() {
        let job = uniform_job(64, 8, true);
        let small = SimClusterConfig {
            num_nodes: 4,
            ..Default::default()
        };
        let big = SimClusterConfig::default();
        let t_small = simulate(&job, &small, &model()).makespan_s();
        let t_big = simulate(&job, &big, &model()).makespan_s();
        assert!(t_big <= t_small, "{t_big} > {t_small}");
    }

    #[test]
    fn undepended_maps_never_run_under_inversion() {
        let mut job = uniform_job(33, 4, false); // 33rd map unused (32/4=8 per reduce)
        job.maps.push(SimMapTask {
            input_bytes: 1,
            preferred_nodes: vec![],
            oblivious: false,
        });
        let trace = simulate(&job, &SimClusterConfig::default(), &model());
        assert!(trace.map_end_s.last().unwrap().is_none());
    }

    #[test]
    fn speculation_beats_stragglers_under_the_global_barrier() {
        // Heavy stragglers, global barrier: the last map defines the
        // makespan, so duplicating the slowest map helps; SIDR-style
        // dependency barriers localize the damage instead.
        let job = uniform_job(96, 4, true);
        let straggly = CostModel {
            jitter_frac: 0.0,
            task_overhead_s: 0.0,
            hadoop_remote_penalty: 0.0,
            straggler_prob: 0.05,
            straggler_factor: 6.0,
            ..Default::default()
        };
        let plain = simulate(&job, &SimClusterConfig::default(), &straggly);
        let spec_cluster = SimClusterConfig {
            speculative_maps: true,
            ..Default::default()
        };
        let speculated = simulate(&job, &spec_cluster, &straggly);
        assert!(
            speculated.makespan_s() < 0.9 * plain.makespan_s(),
            "speculation {} vs plain {}",
            speculated.makespan_s(),
            plain.makespan_s()
        );
        // Every map still completes exactly once in the trace.
        assert_eq!(speculated.map_completions().len(), 96);
    }

    #[test]
    fn speculation_is_a_noop_without_stragglers() {
        let job = uniform_job(96, 4, true);
        let m = model();
        let plain = simulate(&job, &SimClusterConfig::default(), &m);
        let speculated = simulate(
            &job,
            &SimClusterConfig {
                speculative_maps: true,
                ..Default::default()
            },
            &m,
        );
        // Uniform tasks: duplicates never finish first, makespan holds.
        assert!((speculated.makespan_s() / plain.makespan_s() - 1.0).abs() < 0.02);
    }

    #[test]
    fn reduce_waves_respect_slot_limit() {
        // 100 reduces over 72 slots: last 28 must start after some end.
        let job = uniform_job(20, 100, true);
        let trace = simulate(&job, &SimClusterConfig::default(), &model());
        let starts = {
            let mut s = trace.reduce_start_s.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s
        };
        assert_eq!(starts.iter().filter(|&&t| t == 0.0).count(), 72);
        assert!(starts[72] > 0.0);
    }
}
