//! Reduce-side sort/merge of map-output files — the post-barrier cost
//! every reduce task pays (§2.3: "merge all their data into a sorted
//! list").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

use sidr_mapreduce::{merge_files, MapOutputFile};

/// Builds `files` sorted map-output files of `per_file` keyed records,
/// with keys interleaved across files (the shuffle's worst case).
fn make_files(files: usize, per_file: usize) -> Vec<Arc<MapOutputFile<u64, f64>>> {
    (0..files)
        .map(|f| {
            let records: Vec<(u64, f64)> = (0..per_file)
                .map(|i| ((i * files + f) as u64, f as f64))
                .collect();
            Arc::new(MapOutputFile {
                records,
                raw_count: per_file as u64,
            })
        })
        .collect()
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("shuffle_merge");
    for (files, per_file) in [(8usize, 20_000usize), (64, 2_500), (256, 625)] {
        let input = make_files(files, per_file);
        let total = (files * per_file) as u64;
        group.throughput(Throughput::Elements(total));
        group.bench_function(BenchmarkId::new("merge", format!("{files}files")), |b| {
            b.iter(|| {
                let merged = merge_files(&input);
                assert_eq!(merged.len(), files * per_file);
                merged
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
