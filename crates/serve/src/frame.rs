//! The length-prefixed JSON framing protocol.
//!
//! Every message on a `sidr-serve` connection is one *frame*: a
//! little-endian `u32` payload length followed by exactly that many
//! bytes of UTF-8 JSON. The format mirrors the shuffle's
//! `WireFormat` discipline (`crates/mapreduce/src/wire.rs`): reads
//! never trust the peer — a short length prefix, a payload cut off
//! mid-byte, a length past [`MAX_FRAME`] or bytes that are not the
//! expected JSON all surface as typed [`FrameError`]s, never as a
//! panic and never as an over-read.
//!
//! Clean connection teardown is distinguishable from corruption:
//! [`read_frame`] returns `Ok(None)` only when EOF lands exactly on a
//! frame boundary. EOF anywhere inside a frame is
//! [`FrameError::Truncated`].

use std::io::{ErrorKind, Read, Write};

use serde::{Deserialize, Serialize};

/// Upper bound on a frame's payload, chosen to comfortably hold the
/// largest legitimate message (a `Done` frame carrying a full result
/// set) while bounding what a hostile length prefix can make the
/// server allocate.
pub const MAX_FRAME: u32 = 32 << 20;

/// Version of the coordinator/worker/client wire protocol. Bumped on
/// every incompatible message-shape change; the [`Hello`] handshake
/// compares it so a mismatched pair of builds fails with a typed
/// [`FrameError::VersionMismatch`] instead of deserialization garbage.
pub const PROTOCOL_VERSION: u32 = 1;

/// Fixed magic carried by every [`Hello`]: distinguishes a handshake
/// frame from any legacy request (none of which has a `magic` field).
pub const HELLO_MAGIC: &str = "sidr";

/// Payload bytes are read in chunks of at most this size into a
/// growing buffer, so a connection's memory tracks bytes *actually
/// received*: a client that sends a `MAX_FRAME` length prefix and
/// then stalls pins one chunk, not 32 MiB.
pub const READ_CHUNK: usize = 64 << 10;

/// Everything that can go wrong at the framing layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The underlying transport failed.
    Io(String),
    /// The peer hung up inside a frame (length prefix or payload).
    Truncated { expected: usize, got: usize },
    /// The length prefix exceeds [`MAX_FRAME`]; the stream cannot be
    /// resynchronized and must be closed.
    Oversized { len: u32, max: u32 },
    /// The payload was delivered whole but is not the expected JSON.
    Malformed(String),
    /// The [`Hello`] handshake failed: the peer speaks a different
    /// protocol version, or is the wrong kind of endpoint entirely
    /// (e.g. a client dialing a worker's task port).
    VersionMismatch { detail: String },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Malformed(e) => write!(f, "malformed frame payload: {e}"),
            FrameError::VersionMismatch { detail } => {
                write!(f, "protocol handshake failed: {detail}")
            }
        }
    }
}

/// What an endpoint *is*, exchanged in the [`Hello`] handshake so a
/// dialer that reached the wrong kind of port finds out immediately.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// A `sidr-submit`-style client.
    Client,
    /// The coordinator (`sidr-serve`): planning, admission, dispatch.
    Coordinator,
    /// A `sidr-worker`: runs task attempts, serves shuffle fetches.
    Worker,
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Role::Client => write!(f, "client"),
            Role::Coordinator => write!(f, "coordinator"),
            Role::Worker => write!(f, "worker"),
        }
    }
}

/// The version/role handshake frame. The dialer sends one `Hello`
/// first; the listener validates it and answers with its own. The
/// `magic` field doubles as a discriminator: no legacy `Request` ever
/// carries one, so a coordinator can still serve pre-handshake clients
/// by falling back to request parsing.
///
/// `accept_binary` negotiates the binary keyblock path
/// ([`crate::binframe`]) inside protocol v1: a dialer that can decode
/// [`KeyblockBin`](crate::binframe::KeyblockBin) frames sets it, and
/// the listener echoes it back only if it is willing to send them.
/// The field is omitted when false and tolerated when absent, so
/// handshake frames from either era cross-parse — which is why it is
/// hand-serialized below rather than derived (the derive requires
/// every named field to be present).
#[derive(Clone, Debug, PartialEq)]
pub struct Hello {
    pub magic: String,
    pub version: u32,
    pub role: Role,
    pub accept_binary: bool,
}

impl Serialize for Hello {
    fn serialize(&self, s: &mut serde::ser::JsonSer) {
        s.begin_object();
        s.field("magic");
        s.write_string(&self.magic);
        s.field("version");
        s.write_u64(u64::from(self.version));
        s.field("role");
        self.role.serialize(s);
        // Omitted when false: the frame stays byte-identical to the
        // pre-negotiation encoding for JSON-only peers.
        if self.accept_binary {
            s.field("accept_binary");
            s.write_bool(true);
        }
        s.end_object();
    }
}

impl Deserialize for Hello {
    fn deserialize(d: &mut serde::de::JsonDe<'_>) -> serde::de::Result<Self> {
        use serde::de::DeError;
        let mut magic: Option<String> = None;
        let mut version: Option<u32> = None;
        let mut role: Option<Role> = None;
        let mut accept_binary = false;
        if d.begin_object()? {
            loop {
                let key = d.object_key()?;
                match key.as_str() {
                    "magic" => magic = Some(d.parse_string()?),
                    "version" => version = Some(u32::deserialize(d)?),
                    "role" => role = Some(Role::deserialize(d)?),
                    "accept_binary" => accept_binary = d.parse_bool()?,
                    _ => d.skip_value()?,
                }
                if !d.object_continue()? {
                    break;
                }
            }
        }
        Ok(Hello {
            magic: magic.ok_or_else(|| DeError::missing_field("magic", "Hello"))?,
            version: version.ok_or_else(|| DeError::missing_field("version", "Hello"))?,
            role: role.ok_or_else(|| DeError::missing_field("role", "Hello"))?,
            accept_binary,
        })
    }
}

impl Hello {
    /// A handshake frame announcing this endpoint's role at the
    /// current protocol version (JSON-only responses).
    pub fn new(role: Role) -> Self {
        Hello {
            magic: HELLO_MAGIC.to_string(),
            version: PROTOCOL_VERSION,
            role,
            accept_binary: false,
        }
    }

    /// Marks this endpoint as able to decode binary keyblock frames.
    pub fn with_binary(mut self) -> Self {
        self.accept_binary = true;
        self
    }

    /// Validates a received `Hello` against our version. Role is
    /// checked separately by the side that cares.
    pub fn check(&self) -> Result<(), FrameError> {
        if self.magic != HELLO_MAGIC {
            return Err(FrameError::VersionMismatch {
                detail: format!("bad handshake magic {:?}", self.magic),
            });
        }
        if self.version != PROTOCOL_VERSION {
            return Err(FrameError::VersionMismatch {
                detail: format!(
                    "peer speaks protocol v{}, this build speaks v{PROTOCOL_VERSION}",
                    self.version
                ),
            });
        }
        Ok(())
    }
}

/// Dialer-side handshake: announce `ours`, read the listener's reply,
/// and require the peer to be `expect_peer` at our protocol version.
pub fn handshake_dial<S: Read + Write>(
    stream: &mut S,
    ours: Role,
    expect_peer: Role,
) -> Result<(), FrameError> {
    handshake_dial_hello(stream, Hello::new(ours), expect_peer).map(|_| ())
}

/// Like [`handshake_dial`], but offers to receive binary keyblock
/// frames. Returns whether the listener agreed to send them — `false`
/// means the connection proceeds all-JSON, exactly as if
/// [`handshake_dial`] had been used.
pub fn handshake_dial_binary<S: Read + Write>(
    stream: &mut S,
    ours: Role,
    expect_peer: Role,
) -> Result<bool, FrameError> {
    let reply = handshake_dial_hello(stream, Hello::new(ours).with_binary(), expect_peer)?;
    Ok(reply.accept_binary)
}

fn handshake_dial_hello<S: Read + Write>(
    stream: &mut S,
    ours: Hello,
    expect_peer: Role,
) -> Result<Hello, FrameError> {
    send(stream, &ours)?;
    let hello: Hello = match recv(stream)? {
        Some(h) => h,
        None => {
            return Err(FrameError::VersionMismatch {
                detail: "peer closed the connection during the handshake".into(),
            })
        }
    };
    hello.check()?;
    if hello.role != expect_peer {
        return Err(FrameError::VersionMismatch {
            detail: format!("dialed a {} port, expected a {expect_peer}", hello.role),
        });
    }
    Ok(hello)
}

/// Listener-side handshake completion: validate the dialer's `Hello`
/// (already read off the stream) and answer with our own role. A
/// dialer's `accept_binary` offer is echoed back — this listener
/// implementation can always produce binary keyblocks, so offering is
/// accepting; a dialer that did not offer is never sent one.
pub fn handshake_accept<W: Write>(
    writer: &mut W,
    theirs: &Hello,
    ours: Role,
) -> Result<Role, FrameError> {
    theirs.check()?;
    let mut reply = Hello::new(ours);
    reply.accept_binary = theirs.accept_binary;
    send(writer, &reply)?;
    Ok(theirs.role)
}

impl std::error::Error for FrameError {}

/// Writes one frame: `u32` little-endian length, then the payload —
/// one vectored write, so prefix and payload leave in a single
/// syscall with no intermediate copy into a combined buffer.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    let len = u32::try_from(payload.len()).map_err(|_| FrameError::Oversized {
        len: u32::MAX,
        max: MAX_FRAME,
    })?;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    let prefix = len.to_le_bytes();
    write_all_vectored(w, &prefix, payload)
        .and_then(|()| w.flush())
        .map_err(|e| FrameError::Io(e.to_string()))
}

/// Writes `head` then `tail` completely, preferring gathered writes.
/// Short writes resume mid-slice; `Ok(0)` from a non-empty request is
/// reported as `WriteZero`, mirroring `write_all`.
fn write_all_vectored(w: &mut impl Write, head: &[u8], tail: &[u8]) -> std::io::Result<()> {
    let mut bufs = [std::io::IoSlice::new(head), std::io::IoSlice::new(tail)];
    let mut rest = &mut bufs[..];
    // advance_slices drops leading empty/consumed slices, so the loop
    // terminates exactly when both slices are fully written.
    std::io::IoSlice::advance_slices(&mut rest, 0);
    while !rest.is_empty() {
        match w.write_vectored(rest) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::WriteZero,
                    "failed to write whole frame",
                ))
            }
            Ok(n) => std::io::IoSlice::advance_slices(&mut rest, n),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Reads one frame's payload. `Ok(None)` means the peer closed the
/// connection cleanly, exactly on a frame boundary.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    match read_fill(r, &mut prefix)? {
        0 => return Ok(None),
        4 => {}
        got => return Err(FrameError::Truncated { expected: 4, got }),
    }
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME {
        return Err(FrameError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    let len = len as usize;
    // Never allocate the prefix's claim up front: grow by bounded
    // chunks as bytes arrive (see [`READ_CHUNK`]).
    let mut payload = Vec::with_capacity(len.min(READ_CHUNK));
    while payload.len() < len {
        let chunk = (len - payload.len()).min(READ_CHUNK);
        let start = payload.len();
        payload.resize(start + chunk, 0);
        let got = read_fill(r, &mut payload[start..])?;
        payload.truncate(start + got);
        if got < chunk {
            return Err(FrameError::Truncated {
                expected: len,
                got: payload.len(),
            });
        }
    }
    Ok(Some(payload))
}

/// Reads until `buf` is full or EOF; returns bytes read. Interrupted
/// reads are retried, any other error is transport failure.
fn read_fill(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    Ok(got)
}

/// Serializes a message and writes it as one frame.
pub fn send<T: Serialize>(w: &mut impl Write, msg: &T) -> Result<(), FrameError> {
    let text = serde_json::to_string(msg).map_err(|e| FrameError::Malformed(e.to_string()))?;
    write_frame(w, text.as_bytes())
}

/// Reads one frame and decodes it as `T`. `Ok(None)` on clean EOF.
pub fn recv<T: Deserialize>(r: &mut impl Read) -> Result<Option<T>, FrameError> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    decode_json(&payload).map(Some)
}

/// Decodes one already-read frame payload as JSON (callers that peek
/// at the payload first — e.g. for a binary tag — finish with this).
pub fn decode_json<T: Deserialize>(payload: &[u8]) -> Result<T, FrameError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| FrameError::Malformed(format!("payload is not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| FrameError::Malformed(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn eof_inside_a_frame_is_truncation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        for cut in 1..buf.len() {
            let mut r = &buf[..cut];
            match read_frame(&mut r) {
                Err(FrameError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected truncation, got {other:?}"),
            }
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected_without_allocating() {
        let mut buf = (MAX_FRAME + 1).to_le_bytes().to_vec();
        buf.extend_from_slice(b"xx");
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r),
            Err(FrameError::Oversized {
                len: MAX_FRAME + 1,
                max: MAX_FRAME
            })
        );
    }
}
