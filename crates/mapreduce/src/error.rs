//! Error type for the MapReduce engine.

use std::fmt;

use sidr_coords::CoordError;

/// Errors surfaced by job planning and execution.
#[derive(Debug)]
pub enum MrError {
    /// Geometry inconsistency during split generation or routing.
    Coord(CoordError),
    /// A job was configured inconsistently.
    BadConfig(String),
    /// The record source failed (I/O or format error from the
    /// scientific file layer).
    Source(String),
    /// A user task (map/combine/reduce) panicked or failed; the
    /// runtime reports the task and the cause. Emitted only once a
    /// task has exhausted its retry budget — transient failures are
    /// retried by the runtime first.
    TaskFailed { task: String, cause: String },
    /// A shuffle file failed its integrity check (CRC mismatch, bad
    /// framing, truncation). Detected at fetch time, so the copy
    /// phase can re-execute the producing map instead of reducing
    /// over wrong bytes.
    CorruptShuffle { detail: String },
    /// Annotation validation (§3.2.1 approach 2) detected that a
    /// Reduce task would have started with insufficient input.
    AnnotationMismatch {
        reducer: usize,
        expected: u64,
        actual: u64,
    },
    /// A value was too large for its wire encoding's length prefix
    /// (e.g. a > 4 GiB string against a `u32` prefix). Surfaced at
    /// encode time instead of silently truncating the prefix and
    /// producing bytes the decoder would misread.
    EncodeOverflow { what: &'static str, len: usize },
    /// Output collection failed.
    Output(String),
    /// The job was cancelled through its `CancelToken` before it
    /// completed (serving path: client cancel or admission revoke).
    Cancelled,
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::Coord(e) => write!(f, "coordinate error: {e}"),
            MrError::BadConfig(msg) => write!(f, "bad job config: {msg}"),
            MrError::Source(msg) => write!(f, "record source error: {msg}"),
            MrError::TaskFailed { task, cause } => write!(f, "task {task} failed: {cause}"),
            MrError::CorruptShuffle { detail } => {
                write!(f, "corrupt shuffle data: {detail}")
            }
            MrError::AnnotationMismatch {
                reducer,
                expected,
                actual,
            } => write!(
                f,
                "reducer {reducer} annotation tally {actual} != expected {expected}: \
                 reduce would start on insufficient input"
            ),
            MrError::EncodeOverflow { what, len } => write!(
                f,
                "{what} of length {len} exceeds the u32 wire length prefix"
            ),
            MrError::Output(msg) => write!(f, "output error: {msg}"),
            MrError::Cancelled => write!(f, "job cancelled"),
        }
    }
}

impl std::error::Error for MrError {}

impl From<CoordError> for MrError {
    fn from(e: CoordError) -> Self {
        MrError::Coord(e)
    }
}
