//! Minimal offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's guard-returning
//! (non-`Result`) API. Poisoning is swallowed: a poisoned lock yields
//! its inner guard, matching parking_lot's behavior of not poisoning
//! at all.

use std::ops::{Deref, DerefMut};
use std::sync;

/// Mutual exclusion with parking_lot's `lock() -> guard` signature.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// Guard for [`Mutex`]. Holds the std guard in an `Option` so
/// [`Condvar::wait`] can temporarily take it.
pub struct MutexGuard<'a, T>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

/// Reader-writer lock with parking_lot's `read()`/`write()` API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T>(sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Condition variable taking `&mut MutexGuard` (parking_lot style).
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

/// Result of a timed wait: whether the timeout elapsed before a
/// notification arrived (parking_lot's `WaitTimeoutResult`).
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's lock while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside wait");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses, whichever is first.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present outside wait");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_coordinate() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            *ready = true;
            drop(ready);
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        assert!(*ready);
        t.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(3u32);
        assert_eq!(*l.read(), 3);
        *l.write() += 1;
        assert_eq!(*l.read(), 4);
    }
}
