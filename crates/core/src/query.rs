//! Structural queries: the class of queries SIDR routes intelligently.
//!
//! A structural query names a variable, the extraction shape tiling
//! its space (the "units of data that the specified operator will
//! process together", §2.4), and the operator applied to each unit.
//! Everything SIDR needs — the intermediate keyspace `K′ᵀ`, the
//! key translation, dependency footprints — derives from this plus the
//! dataset's metadata.

use sidr_coords::{Coord, ExtractionShape, Shape, Slab};

use crate::operators::Operator;
use crate::{Result, SidrError};

/// One structural query over an n-dimensional variable.
#[derive(Clone, Debug)]
pub struct StructuralQuery {
    /// Variable the query ranges over.
    pub variable: String,
    /// The extraction geometry (shape + optional stride) over the
    /// query's input region.
    pub extraction: ExtractionShape,
    /// The operator applied to each extraction instance.
    pub operator: Operator,
    /// Corner of the query's input region `T` in the variable's
    /// space; `None` when the query ranges over the whole variable.
    /// §2.1: query inputs are corner+shape pairs "in the input data
    /// set" — this is the corner. Intermediate keys stay relative to
    /// the region (their global position is recoverable through the
    /// corner, as with dense output files, §4.4).
    region_corner: Option<Coord>,
}

impl StructuralQuery {
    /// Builds a query; the extraction shape must fit the input space
    /// in every dimension (otherwise the query has no output).
    pub fn new(
        variable: impl Into<String>,
        input_space: Shape,
        extraction_shape: Shape,
        operator: Operator,
    ) -> Result<Self> {
        let extraction = ExtractionShape::new(input_space, extraction_shape)?;
        // Validate now that the query produces output at all.
        extraction.intermediate_space().map_err(|_| {
            SidrError::Plan(
                "extraction shape exceeds the input space; query output is empty".into(),
            )
        })?;
        Ok(StructuralQuery {
            variable: variable.into(),
            extraction,
            operator,
            region_corner: None,
        })
    }

    /// Builds a strided query (§2.4.2: "reading data at regularly
    /// spaced intervals").
    pub fn with_stride(
        variable: impl Into<String>,
        input_space: Shape,
        extraction_shape: Shape,
        stride: Vec<u64>,
        operator: Operator,
    ) -> Result<Self> {
        let extraction = ExtractionShape::with_stride(input_space, extraction_shape, stride)?;
        extraction.intermediate_space().map_err(|_| {
            SidrError::Plan(
                "extraction shape exceeds the input space; query output is empty".into(),
            )
        })?;
        Ok(StructuralQuery {
            variable: variable.into(),
            extraction,
            operator,
            region_corner: None,
        })
    }

    /// Builds a query over a sub-region `T` of the variable (§2.1:
    /// corner+shape "in the input data set"). `variable_space` is the
    /// variable's full shape; `region` must lie inside it. The
    /// extraction shape tiles the region; intermediate keys are
    /// region-relative.
    pub fn over_region(
        variable: impl Into<String>,
        variable_space: &Shape,
        region: Slab,
        extraction_shape: Shape,
        operator: Operator,
    ) -> Result<Self> {
        if !Slab::whole(variable_space).contains_slab(&region) {
            return Err(SidrError::Plan(format!(
                "query region {region} exceeds the variable space {variable_space}"
            )));
        }
        let corner = region.corner().clone();
        let mut q =
            StructuralQuery::new(variable, region.shape().clone(), extraction_shape, operator)?;
        if corner.components().iter().any(|&c| c != 0) {
            q.region_corner = Some(corner);
        }
        Ok(q)
    }

    /// The input keyspace `Kᵀ` (the region's shape).
    pub fn input_space(&self) -> &Shape {
        self.extraction.input_space()
    }

    /// The query's input region `T` in the variable's space.
    pub fn region(&self) -> Slab {
        let corner = self
            .region_corner
            .clone()
            .unwrap_or_else(|| Coord::origin(self.input_space().rank()));
        Slab::new(corner, self.input_space().clone()).expect("validated at construction")
    }

    /// The exact intermediate keyspace `K′ᵀ` (§3 Area 3).
    pub fn intermediate_space(&self) -> Shape {
        self.extraction
            .intermediate_space()
            .expect("validated at construction")
    }

    /// Translates an absolute input key to its intermediate key
    /// (§3 Area 2). Keys outside the query region map to nothing.
    pub fn map_key(&self, k: &Coord) -> Option<Coord> {
        match &self.region_corner {
            None => self
                .extraction
                .map_key(k)
                .expect("key rank validated by caller"),
            Some(corner) => {
                let rel = k.checked_sub(corner).ok()?;
                if !self.input_space().contains(&rel) {
                    return None;
                }
                self.extraction
                    .map_key(&rel)
                    .expect("relative key is in bounds")
            }
        }
    }

    /// The intermediate keys an input split (absolute coordinates)
    /// can produce.
    pub fn image_of_split(&self, split: &Slab) -> Result<Option<Slab>> {
        let rel = match &self.region_corner {
            None => split.clone(),
            Some(corner) => {
                let Some(overlap) = split.intersect(&self.region())? else {
                    return Ok(None);
                };
                Slab::new(
                    overlap.corner().checked_sub(corner)?,
                    overlap.shape().clone(),
                )?
            }
        };
        Ok(self.extraction.image_of_slab(&rel)?)
    }

    /// The absolute input keys folding into one intermediate key.
    pub fn preimage_of_key(&self, k_prime: &Coord) -> Result<Slab> {
        let rel = self.extraction.preimage_of_key(k_prime)?;
        match &self.region_corner {
            None => Ok(rel),
            Some(corner) => Ok(Slab::new(
                rel.corner().checked_add(corner)?,
                rel.shape().clone(),
            )?),
        }
    }

    /// Raw input keys folding into one intermediate key.
    pub fn fold_in_count(&self) -> u64 {
        self.extraction.shape().count()
    }

    /// The paper's Query 1 at full scale: a median over 2-day ×
    /// 18°×36° × 10-elevation units of a `{7200, 360, 720, 50}`
    /// wind-speed dataset, extraction shape `{2, 36, 36, 10}` (§4.1).
    pub fn query1() -> Result<Self> {
        StructuralQuery::new(
            "windspeed",
            Shape::new(vec![7200, 360, 720, 50])?,
            Shape::new(vec![2, 36, 36, 10])?,
            Operator::Median,
        )
    }

    /// A laptop-sized Query 1 variant with the same extraction shape:
    /// input `{720, 36, 72, 50}`, intermediate space `{360, 1, 2, 5}`.
    /// Used by tests and examples where generating 348 GB is not an
    /// option.
    pub fn query1_small() -> Result<Self> {
        StructuralQuery::new(
            "windspeed",
            Shape::new(vec![720, 36, 72, 50])?,
            Shape::new(vec![2, 36, 36, 10])?,
            Operator::Median,
        )
    }

    /// The paper's Query 2 at full scale: a 3σ filter over the same
    /// size dataset, extraction shape `{2, 40, 40, 10}` "out of
    /// convenience" (§4.1).
    pub fn query2(mean: f64, std_dev: f64) -> Result<Self> {
        StructuralQuery::new(
            "samples",
            Shape::new(vec![7200, 360, 720, 50])?,
            Shape::new(vec![2, 40, 40, 10])?,
            Operator::Filter {
                threshold: mean + 3.0 * std_dev,
            },
        )
    }

    /// A laptop-sized Query 2 variant: input `{720, 40, 80, 50}`,
    /// extraction `{2, 40, 40, 10}`.
    pub fn query2_small(mean: f64, std_dev: f64) -> Result<Self> {
        StructuralQuery::new(
            "samples",
            Shape::new(vec![720, 40, 80, 50])?,
            Shape::new(vec![2, 40, 40, 10])?,
            Operator::Filter {
                threshold: mean + 3.0 * std_dev,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(v: &[u64]) -> Shape {
        Shape::new(v.to_vec()).unwrap()
    }

    #[test]
    fn weekly_average_query_spaces() {
        let q = StructuralQuery::new(
            "temperature",
            shape(&[365, 250, 200]),
            shape(&[7, 5, 1]),
            Operator::Mean,
        )
        .unwrap();
        assert_eq!(q.intermediate_space(), shape(&[52, 50, 200]));
        assert_eq!(q.fold_in_count(), 35);
        assert_eq!(
            q.map_key(&Coord::from([157, 34, 82])),
            Some(Coord::from([22, 6, 82]))
        );
    }

    #[test]
    fn paper_query1_full_scale_space() {
        let q = StructuralQuery::query1().unwrap();
        assert_eq!(q.input_space(), &shape(&[7200, 360, 720, 50]));
        assert_eq!(q.intermediate_space(), shape(&[3600, 10, 20, 5]));
    }

    #[test]
    fn small_variants_are_consistent() {
        let q1 = StructuralQuery::query1_small().unwrap();
        assert_eq!(q1.intermediate_space(), shape(&[360, 1, 2, 5]));
        let q2 = StructuralQuery::query2_small(0.0, 1.0).unwrap();
        assert_eq!(q2.intermediate_space(), shape(&[360, 1, 2, 5]));
    }

    #[test]
    fn oversized_extraction_rejected() {
        let err = StructuralQuery::new("v", shape(&[10, 10]), shape(&[20, 1]), Operator::Mean);
        assert!(err.is_err());
    }

    #[test]
    fn strided_query_constructs() {
        let q =
            StructuralQuery::with_stride("v", shape(&[100]), shape(&[2]), vec![10], Operator::Max)
                .unwrap();
        assert_eq!(q.intermediate_space(), shape(&[10]));
        assert_eq!(q.map_key(&Coord::from([11])), Some(Coord::from([1])));
        assert_eq!(q.map_key(&Coord::from([5])), None);
    }
}
