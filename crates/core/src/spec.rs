//! Serializable job specifications.
//!
//! §3.2.1: "data dependencies are determined when a query begins …
//! Reduce tasks are provided their dependency information when they
//! are scheduled. This approach adds a small IO cost to job submission
//! as **the relationships are stored as part of the job
//! specification**." [`JobSpec`] is that artifact: everything a
//! TaskTracker needs — the query, the splits, the keyblock geometry,
//! each reducer's `I_ℓ` and the launch order — in one serializable
//! document, so its size (the submission IO cost) is measurable.

use serde::{Deserialize, Serialize};

use sidr_coords::Slab;
use sidr_mapreduce::{InputSplit, MapTaskId, RetryPolicy, RoutingPlan, SpeculationPolicy};

use crate::operators::Operator;
use crate::plan::{SidrPlan, SidrPlanner};
use crate::query::StructuralQuery;
use crate::{Result, SidrError};

/// The query portion of a spec (a [`StructuralQuery`] flattened to
/// plain data).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    pub variable: String,
    pub input_space: Vec<u64>,
    pub extraction_shape: Vec<u64>,
    pub stride: Vec<u64>,
    pub operator: Operator,
}

/// A complete, self-contained SIDR job submission.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobSpec {
    pub query: QuerySpec,
    pub num_reducers: usize,
    pub splits: Vec<InputSplit>,
    /// `I_ℓ` per reducer — the stored side of store-vs-recompute.
    pub reduce_deps: Vec<Vec<MapTaskId>>,
    /// Keyblock slab covers in `K′` (what each reducer writes).
    pub keyblock_covers: Vec<Vec<Slab>>,
    /// Launch order (§3.3/§3.4).
    pub reduce_order: Vec<usize>,
    /// Expected raw-pair tallies for annotation validation (§3.2.1).
    pub expected_raw: Vec<u64>,
    /// Wall-clock deadline for the whole job, in milliseconds
    /// (`None` = unbounded). Enforced by the serving layer: a job
    /// still running at its deadline is cancelled and reported as
    /// `DeadlineExceeded` instead of retrying forever.
    pub deadline_ms: Option<u64>,
    /// Retry budget and backoff the job's tasks run under — validated
    /// at admission (a zero attempt budget can never run).
    pub retry: RetryPolicy,
    /// Speculative-execution policy: when a running map exceeds a
    /// quantile of its committed cohort's durations, a twin attempt
    /// races it (first commit wins). Off by default; validated at
    /// admission. The policy's own deserializer defaults every
    /// missing field, so a document carrying only
    /// `"speculation": {"enabled": true}` is a valid submission.
    pub speculation: SpeculationPolicy,
}

impl JobSpec {
    /// Builds the submission document for a planned job.
    pub fn from_plan(
        query: &StructuralQuery,
        splits: &[InputSplit],
        plan: &SidrPlan,
    ) -> Result<Self> {
        let r = plan.num_reducers();
        Ok(JobSpec {
            query: QuerySpec {
                variable: query.variable.clone(),
                input_space: query.input_space().extents().to_vec(),
                extraction_shape: query.extraction.shape().extents().to_vec(),
                stride: query.extraction.stride().to_vec(),
                operator: query.operator,
            },
            num_reducers: r,
            splits: splits.to_vec(),
            reduce_deps: (0..r)
                .map(|i| plan.dependencies().reduce_deps(i).to_vec())
                .collect(),
            keyblock_covers: (0..r)
                .map(|i| plan.partition().keyblock_cover(i))
                .collect::<Result<Vec<_>>>()?,
            reduce_order: plan.reduce_order(),
            expected_raw: (0..r)
                .map(|i| plan.expected_raw_count(i).expect("SIDR plans always know"))
                .collect(),
            deadline_ms: None,
            retry: RetryPolicy::default(),
            speculation: SpeculationPolicy::default(),
        })
    }

    /// Sets a wall-clock deadline for the job (builder-style).
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Sets the retry policy the job's tasks run under.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the speculative-execution policy (builder-style).
    pub fn with_speculation(mut self, policy: SpeculationPolicy) -> Self {
        self.speculation = policy;
        self
    }

    /// Reconstructs the query from the spec.
    pub fn query(&self) -> Result<StructuralQuery> {
        let space = sidr_coords::Shape::new(self.query.input_space.clone())?;
        let ext = sidr_coords::Shape::new(self.query.extraction_shape.clone())?;
        StructuralQuery::with_stride(
            self.query.variable.clone(),
            space,
            ext,
            self.query.stride.clone(),
            self.query.operator,
        )
    }

    /// Re-derives the full plan from the spec's query and splits and
    /// verifies the stored relationships against it — a submission
    /// integrity check.
    pub fn verify(&self) -> Result<()> {
        let query = self.query()?;
        let plan = SidrPlanner::new(&query, self.num_reducers).build(&self.splits)?;
        for r in 0..self.num_reducers {
            if plan.dependencies().reduce_deps(r) != self.reduce_deps[r].as_slice() {
                return Err(SidrError::Plan(format!(
                    "stored dependencies for reducer {r} do not match the query geometry"
                )));
            }
            if plan.expected_raw_count(r) != Some(self.expected_raw[r]) {
                return Err(SidrError::Plan(format!(
                    "stored raw-count tally for reducer {r} does not match the query geometry"
                )));
            }
        }
        Ok(())
    }

    /// Serializes to JSON (the job-submission document).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("spec contains no non-serializable data")
    }

    /// Deserializes a submission document.
    pub fn from_json(text: &str) -> Result<Self> {
        serde_json::from_str(text).map_err(|e| SidrError::Plan(format!("malformed job spec: {e}")))
    }

    /// The §3.2.1 "small IO cost to job submission", in bytes.
    pub fn submission_bytes(&self) -> usize {
        self.to_json().len()
    }

    /// Submission bytes attributable to the stored dependency
    /// relationships alone (the delta of the store-vs-recompute
    /// decision).
    pub fn dependency_bytes(&self) -> usize {
        serde_json::to_string(&self.reduce_deps)
            .expect("plain data")
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidr_coords::Shape;
    use sidr_mapreduce::SplitGenerator;

    fn setup() -> (StructuralQuery, Vec<InputSplit>, SidrPlan) {
        let q = StructuralQuery::new(
            "v",
            Shape::new(vec![64, 10, 10]).unwrap(),
            Shape::new(vec![4, 5, 1]).unwrap(),
            Operator::Median,
        )
        .unwrap();
        let splits = SplitGenerator::new(q.input_space().clone(), 8)
            .exact_count(8)
            .unwrap();
        let plan = SidrPlanner::new(&q, 4).build(&splits).unwrap();
        (q, splits, plan)
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let (q, splits, plan) = setup();
        let spec = JobSpec::from_plan(&q, &splits, &plan).unwrap();
        let json = spec.to_json();
        let back = JobSpec::from_json(&json).unwrap();
        assert_eq!(back.reduce_deps, spec.reduce_deps);
        assert_eq!(back.keyblock_covers, spec.keyblock_covers);
        assert_eq!(back.query, spec.query);
        back.verify().unwrap();
    }

    #[test]
    fn verify_detects_tampered_dependencies() {
        let (q, splits, plan) = setup();
        let mut spec = JobSpec::from_plan(&q, &splits, &plan).unwrap();
        spec.reduce_deps[0].pop();
        assert!(spec.verify().is_err());
    }

    #[test]
    fn submission_cost_is_small_and_measurable() {
        let (q, splits, plan) = setup();
        let spec = JobSpec::from_plan(&q, &splits, &plan).unwrap();
        let total = spec.submission_bytes();
        let deps = spec.dependency_bytes();
        assert!(total > 0 && deps > 0 && deps < total);
        // "Small": the dependency store for 8 splits x 4 reducers is
        // well under a kilobyte.
        assert!(deps < 1024, "dependency store is {deps} bytes");
    }

    #[test]
    fn malformed_spec_rejected() {
        assert!(JobSpec::from_json("{not json").is_err());
        assert!(JobSpec::from_json("{}").is_err());
    }

    #[test]
    fn query_reconstruction_matches_original() {
        let (q, splits, plan) = setup();
        let spec = JobSpec::from_plan(&q, &splits, &plan).unwrap();
        let back = spec.query().unwrap();
        assert_eq!(back.extraction, q.extraction);
        assert_eq!(back.variable, q.variable);
    }
}
