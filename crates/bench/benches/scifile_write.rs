//! Table 2's write paths as micro-benchmarks: dense contiguous slab
//! (SIDR), sentinel-filled full space (stock Hadoop) and explicit
//! coordinate/value pairs, at a fixed per-task payload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use sidr_coords::{Coord, Shape, Slab};
use sidr_scifile::sparse::{write_dense_output, write_sentinel_output, CoordValueWriter};

/// Payload per simulated reduce task: 100k doubles (~0.8 MB).
const TASK_ELEMS: u64 = 100_000;
const COLS: u64 = 500;

fn bench_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sidr-bench-write-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir is creatable");
    dir
}

fn bench_writes(c: &mut Criterion) {
    let dir = bench_dir();
    let rows = TASK_ELEMS / COLS;
    let slab = Slab::new(
        Coord::from([0, 0]),
        Shape::new(vec![rows, COLS]).expect("valid"),
    )
    .expect("valid");
    let data = vec![1.0f64; TASK_ELEMS as usize];
    let points: Vec<(Coord, f64)> = slab.iter_coords().map(|c| (c, 1.0)).collect();

    let mut group = c.benchmark_group("reduce_output_write");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(TASK_ELEMS * 8));

    group.bench_function("sidr_dense_slab", |b| {
        let path = dir.join("dense.scinc");
        b.iter(|| {
            write_dense_output(&path, "out", &slab, &data).expect("write succeeds");
        })
    });

    // Sentinel files for total spaces 4x and 16x the task payload —
    // the cost that scales with the reducer count in Table 2.
    for factor in [4u64, 16] {
        let total = Shape::new(vec![rows * factor, COLS]).expect("valid");
        group.bench_function(BenchmarkId::new("hadoop_sentinel", factor), |b| {
            let path = dir.join(format!("sentinel-{factor}.scinc"));
            b.iter(|| {
                write_sentinel_output(&path, "out", &total, f64::NAN, &points)
                    .expect("write succeeds");
            })
        });
    }

    group.bench_function("coord_value_pairs", |b| {
        let path = dir.join("pairs.sccv");
        b.iter(|| {
            let mut w = CoordValueWriter::<f64>::create(&path, 2).expect("create succeeds");
            for (c, v) in &points {
                w.push(c, *v).expect("push succeeds");
            }
            w.finish().expect("finish succeeds");
        })
    });

    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_writes);
criterion_main!(benches);
