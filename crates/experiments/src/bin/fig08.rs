//! Figure 8: how partitioning interacts with the natural alignment
//! between structural queries and file order.
//!
//! "A modulo-based approach (Figure 8a) will result in both keyblocks
//! being dependent on `Iᵢ` spread throughout the dataset while
//! partition+ assigns logically contiguous ranges of `Iᵢ` to
//! keyblocks, exposing any natural alignment between structural
//! queries and the dataset" (§3.4). The paper draws this; we measure
//! it: per keyblock, how many splits it depends on and how wide a span
//! of the file those splits cover.

use std::collections::BTreeSet;

use sidr_coords::Shape;
use sidr_core::deps::Dependencies;
use sidr_core::{Operator, PartitionPlus, StructuralQuery};
use sidr_experiments::{compare, write_csv};
use sidr_mapreduce::{CoordHashPartitioner, Partitioner, SplitGenerator};

fn main() {
    // The paper's weekly-averages example: {364, 250, 200} with
    // extraction {7, 5, 1} (Figure 8 uses the weekly down-sampling).
    let query = StructuralQuery::new(
        "temperature",
        Shape::new(vec![364, 250, 200]).expect("valid"),
        Shape::new(vec![7, 5, 1]).expect("valid"),
        Operator::Mean,
    )
    .expect("query is structural");
    let reducers = 22;
    let splits = SplitGenerator::new(query.input_space().clone(), 4)
        .aligned(250 * 200 * 4 * 14, 7) // 14 rows (2 weeks) per split
        .expect("splits generate");
    let n_splits = splits.len();

    // (a) modulo-based: trace each split's image keys through the
    // stock hash partitioner.
    let hash = CoordHashPartitioner;
    let mut hash_deps: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); reducers];
    for (m, split) in splits.iter().enumerate() {
        if let Some(image) = query
            .image_of_split(&split.slab)
            .expect("geometry is valid")
        {
            let mut blocks = BTreeSet::new();
            for kp in image.iter_coords() {
                blocks.insert(hash.partition(&kp, reducers));
                if blocks.len() == reducers {
                    break;
                }
            }
            for b in blocks {
                hash_deps[b].insert(m);
            }
        }
    }

    // (b) partition+: the real dependency derivation.
    let pp = PartitionPlus::for_query(&query, reducers).expect("partition+ builds");
    let deps = Dependencies::derive(&query, &pp, &splits).expect("deps derive");

    let span = |set: &BTreeSet<usize>| -> usize {
        match (set.iter().next(), set.iter().next_back()) {
            (Some(&lo), Some(&hi)) => hi - lo + 1,
            _ => 0,
        }
    };

    println!("== Figure 8: dependency footprint per keyblock ({n_splits} splits, {reducers} keyblocks) ==\n");
    println!(
        "{:>10} {:>22} {:>22}",
        "keyblock", "modulo |I_l| (span)", "partition+ |I_l| (span)"
    );
    let mut rows = Vec::new();
    let mut hash_total = 0usize;
    let mut plus_total = 0usize;
    let mut hash_span_total = 0usize;
    let mut plus_span_total = 0usize;
    for (b, hash_set) in hash_deps.iter().enumerate() {
        let plus_set: BTreeSet<usize> = deps.reduce_deps(b).iter().copied().collect();
        let h_n = hash_set.len();
        let p_n = plus_set.len();
        let h_s = span(hash_set);
        let p_s = span(&plus_set);
        if b < 6 || b == reducers - 1 {
            println!("{b:>10} {h_n:>14} ({h_s:>4}) {p_n:>15} ({p_s:>4})");
        } else if b == 6 {
            println!("{:>10} ...", "");
        }
        rows.push(format!("{b},{h_n},{h_s},{p_n},{p_s}"));
        hash_total += h_n;
        plus_total += p_n;
        hash_span_total += h_s;
        plus_span_total += p_s;
    }
    let path = write_csv(
        "fig08",
        "keyblock,modulo_deps,modulo_span,plus_deps,plus_span",
        &rows,
    );
    println!("[csv] {}", path.display());

    let r = reducers as f64;
    println!(
        "\nmeans: modulo {:.1} deps over span {:.1}; partition+ {:.1} deps over span {:.1}",
        hash_total as f64 / r,
        hash_span_total as f64 / r,
        plus_total as f64 / r,
        plus_span_total as f64 / r
    );
    println!("\nShape checks vs paper:");
    compare(
        "modulo keyblocks depend on splits spread through the file",
        "Fig 8a: global spread",
        &format!(
            "mean span {:.0} of {n_splits} splits",
            hash_span_total as f64 / r
        ),
        hash_span_total as f64 / r > 0.9 * n_splits as f64,
    );
    compare(
        "partition+ keyblocks depend on contiguous, local ranges",
        "Fig 8b: contiguous ranges",
        &format!(
            "mean |I_l| {:.1} = mean span {:.1}",
            plus_total as f64 / r,
            plus_span_total as f64 / r
        ),
        plus_total == plus_span_total, // contiguous: span == count
    );
    compare(
        "partition+ dependency sets are far smaller",
        "exposes natural alignment",
        &format!(
            "{:.1} vs {:.1} deps per keyblock",
            plus_total as f64 / r,
            hash_total as f64 / r
        ),
        plus_total * 5 < hash_total,
    );
}
