//! Property tests: every plan the planner produces — across random
//! query geometries, reducer counts and split layouts — passes the
//! full static analysis clean, and random single-field corruptions
//! are always detected.

use proptest::prelude::*;

use sidr_analyze::diag::codes;
use sidr_analyze::verify::PlanView;
use sidr_analyze::{analyze, analyze_plan, AnalyzeOptions};
use sidr_coords::Shape;
use sidr_core::{Operator, SidrPlanner, StructuralQuery};
use sidr_mapreduce::{InputSplit, SplitGenerator};

/// Random structural query: extraction extents 1–4 per dimension,
/// input space an exact multiple of the extraction shape.
fn geometry() -> impl Strategy<Value = (StructuralQuery, Vec<InputSplit>, usize)> {
    (
        (1u64..4, 1u64..4, 1u64..3),
        (1u64..8, 1u64..5, 1u64..4),
        1usize..7,
        1u64..9,
    )
        .prop_map(|((e0, e1, e2), (m0, m1, m2), reducers, n_splits)| {
            let q = StructuralQuery::new(
                "v",
                Shape::new(vec![e0 * m0 * 2, e1 * m1, e2 * m2]).unwrap(),
                Shape::new(vec![e0, e1, e2]).unwrap(),
                Operator::Sum,
            )
            .unwrap();
            let splits = SplitGenerator::new(q.input_space().clone(), 8)
                .exact_count(n_splits)
                .unwrap();
            (q, splits, reducers)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Planner output is always provably clean.
    #[test]
    fn planner_plans_verify_clean((q, splits, reducers) in geometry()) {
        let plan = SidrPlanner::new(&q, reducers).build(&splits).unwrap();
        let report = analyze_plan(&q, &splits, &plan, &AnalyzeOptions::default());
        prop_assert!(report.is_clean(), "findings on a planner-built plan:\n{report}");
    }

    /// Any nonzero perturbation of any expected count is detected.
    #[test]
    fn count_corruption_is_always_caught(
        (q, splits, reducers) in geometry(),
        victim in 0usize..64,
        delta in 1u64..1000,
    ) {
        let plan = SidrPlanner::new(&q, reducers).build(&splits).unwrap();
        let mut view = PlanView::of_plan(&plan, &q, &splits);
        let victim = victim % view.expected_raw.len();
        view.expected_raw[victim] += delta;
        let report = analyze(&q, &splits, &view, &AnalyzeOptions::default());
        prop_assert!(report.has_errors());
        prop_assert!(report.has_code(codes::BLOCK_COUNT) || report.has_code(codes::CONSERVATION));
    }

    /// Dropping any dependency edge (consistently, as a buggy
    /// derivation would) is detected by the independent geometric
    /// recomputation.
    #[test]
    fn edge_drop_is_always_caught(
        (q, splits, reducers) in geometry(),
        pick in 0usize..1024,
    ) {
        let plan = SidrPlanner::new(&q, reducers).build(&splits).unwrap();
        let mut view = PlanView::of_plan(&plan, &q, &splits);
        let edges: Vec<(usize, usize)> = view
            .reduce_deps
            .iter()
            .enumerate()
            .flat_map(|(b, deps)| deps.iter().map(move |&m| (b, m)))
            .collect();
        prop_assert!(!edges.is_empty(), "plans always have dependency edges");
        let (b, m) = edges[pick % edges.len()];
        view.reduce_deps[b].retain(|&x| x != m);
        view.map_feeds[m].retain(|&x| x != b);
        let report = analyze(&q, &splits, &view, &AnalyzeOptions::default());
        prop_assert!(report.has_errors(), "dropped edge ({b}, {m}) not caught");
        // Either the geometric pass (E003) or — when the keyblock
        // lost its only feeder — the starvation check (E007) fires.
        prop_assert!(
            report.has_code(codes::DEP_MISSING) || report.has_code(codes::SCHED_GRAPH),
            "wrong codes:\n{report}"
        );
    }
}
