//! A Hadoop-like MapReduce engine, built from scratch as the execution
//! substrate for the SIDR reproduction.
//!
//! The engine reproduces the pieces of Hadoop 1.0's architecture that
//! the paper's claims are about (§2.3):
//!
//! * **Input splits** ([`split`]) — byte-range-style naive splits
//!   (stock Hadoop) and logical-coordinate, extraction-aligned splits
//!   (SciHadoop, §2.4.1),
//! * **Map / Combine / Reduce** user functions ([`task`]),
//! * **Partitioner** ([`partitioner`]) — including Hadoop's
//!   modulo-of-the-binary-representation default whose skew pathology
//!   §4.3 demonstrates,
//! * **Shuffle** ([`shuffle`]) — per-(map, reducer) output files with
//!   count annotations (§3.2.1) and per-fetch connection accounting
//!   (Table 3),
//! * **Barrier & scheduling policy** ([`plan`]) — the global MapReduce
//!   barrier, or per-reducer dependency barriers with SIDR's inverted
//!   reduce-first scheduling (§3.2–3.3),
//! * **A threaded runtime** ([`runtime`]) — slot-limited map/reduce
//!   worker pools, overlapped copy phase, task timelines ([`timeline`])
//!   and counters ([`counters`]).
//!
//! The SIDR-specific planner (partition+, dependency derivation,
//! keyblock prioritization) lives in the `sidr-core` crate and plugs in
//! through the [`plan::RoutingPlan`] trait; this crate provides the
//! general, SIDR-agnostic machinery plus the stock-Hadoop defaults.

pub mod counters;
pub mod error;
pub mod executor;
pub mod fault;
pub mod metrics;
pub mod output;
pub mod partitioner;
pub mod plan;
pub mod runtime;
pub mod shuffle;
pub mod shuffle_file;
pub mod smof3;
pub mod speculation;
pub mod split;
pub mod sync;
pub mod task;
pub mod tier;
pub mod timeline;
pub mod wire;

pub use counters::{Counters, CountersSnapshot};
pub use error::MrError;
pub use executor::{Executor, ReduceSource, RemoteReduceError, TaskExecutor};
pub use fault::{Fault, FaultKind, FaultPlan, FaultTarget, RetryPolicy};
pub use output::{InMemoryOutput, OutputCollector};
pub use partitioner::{CoordHashPartitioner, ModuloPartitioner, Partitioner};
pub use plan::{DefaultPlan, RoutingPlan};
pub use runtime::{
    run_job, run_job_shared, run_job_with_executor, CancelToken, CancelWake, JobConfig, JobResult,
    Semaphore, SlotOccupancy, SlotPool, WakerRegistration,
};
pub use shuffle::{
    merge_files, CorruptionMode, GroupBatch, MapOutputBuilder, MapOutputFile, MergeIter,
    ShuffleStore, SpillCodec,
};
pub use smof3::Smof3View;
pub use speculation::{ProgressProbe, SpeculationPolicy};
pub use split::{InputSplit, MapTaskId, SplitGenerator};
pub use task::{
    Combiner, FnMapper, FnReducer, Mapper, MrKey, MrValue, RecordSource, Reducer, SliceRecordSource,
};
pub use tier::{PartitionStore, SpillBackend, TierConfig, TierPressure};
pub use timeline::{reexecuted_maps, spans, TaskEvent, TaskKind, Timeline};
pub use wire::FixedCodec;
pub use wire::WireFormat;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, MrError>;
