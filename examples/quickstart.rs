//! Quickstart: the paper's running example — down-sample a year of
//! daily temperature measurements (Figure 2) to weekly averages at
//! half-degree latitude resolution, executed under SIDR.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sidr_repro::coords::Shape;
use sidr_repro::core::framework::RunOptions;
use sidr_repro::core::{run_query, FrameworkMode, Operator, StructuralQuery};
use sidr_repro::scifile::gen::DatasetSpec;

fn main() {
    // The Figure 1/2 dataset, laptop-sized: 364 days x 50 lat x 40 lon
    // (the paper's is 365 x 250 x 200; day 365 is discarded by the
    // weekly extraction anyway).
    let space = Shape::new(vec![364, 50, 40]).expect("valid shape");
    let spec = DatasetSpec::temperature(space.clone(), 42);
    let path = std::env::temp_dir().join("sidr-quickstart-temps.scinc");
    let file = spec.generate::<f64>(&path).expect("dataset generates");
    println!(
        "generated {} ({} elements)\n{}",
        path.display(),
        space.count(),
        file.metadata()
    );

    // "Find the weekly averages for every unique location", with
    // latitude down-sampled 1/10 deg -> 1/2 deg: extraction {7, 5, 1}.
    let query = StructuralQuery::new(
        "temperature",
        space,
        Shape::new(vec![7, 5, 1]).expect("valid shape"),
        Operator::Mean,
    )
    .expect("query is structural");
    println!(
        "query: weekly averages, extraction shape {} -> intermediate space {}",
        query.extraction.shape(),
        query.intermediate_space()
    );

    let mut opts = RunOptions::new(FrameworkMode::Sidr, 4);
    opts.validate_annotations = true; // §3.2.1 approach-2 cross-check
    let outcome = run_query(&file, &query, &opts).expect("query runs");

    println!(
        "\n{} weekly averages computed by {} map tasks and 4 reduce tasks",
        outcome.records.len(),
        outcome.num_maps
    );
    println!(
        "shuffle connections: {} (stock Hadoop would need {})",
        outcome.result.counters.shuffle_connections,
        outcome.num_maps * 4
    );
    println!("\nfirst weeks at the dataset origin:");
    for (k, v) in outcome.records.iter().take(5) {
        println!("  week/lat/lon {k} -> {v:.2} F");
    }

    std::fs::remove_file(&path).ok();
}
