//! JSON deserialization: the read half of the shim's data model.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// A deserialization error with a human-readable message.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError::new(format!("missing field `{field}` in {ty}"))
    }

    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError::new(format!("unknown variant `{variant}` of {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

pub type Result<T> = std::result::Result<T, DeError>;

/// A cursor over a JSON document.
pub struct JsonDe<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonDe<'a> {
    pub fn new(text: &'a str) -> Self {
        JsonDe {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8> {
        match self.peek() {
            Some(b) => {
                self.pos += 1;
                Ok(b)
            }
            None => Err(DeError::new("unexpected end of input")),
        }
    }

    fn expect(&mut self, want: u8) -> Result<()> {
        let got = self.bump()?;
        if got != want {
            return Err(DeError::new(format!(
                "expected `{}` at byte {}, found `{}`",
                want as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    /// True when the next value is a string literal.
    pub fn peek_is_string(&mut self) -> bool {
        self.peek() == Some(b'"')
    }

    /// Consumes `{`; returns whether the object has any entries (and
    /// consumes the `}` when it does not).
    pub fn begin_object(&mut self) -> Result<bool> {
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(false);
        }
        Ok(true)
    }

    /// Parses `"key":` inside an object.
    pub fn object_key(&mut self) -> Result<String> {
        let key = self.parse_string()?;
        self.expect(b':')?;
        Ok(key)
    }

    /// After an entry's value: consumes `,` (more entries, true) or
    /// `}` (done, false).
    pub fn object_continue(&mut self) -> Result<bool> {
        match self.bump()? {
            b',' => Ok(true),
            b'}' => Ok(false),
            c => Err(DeError::new(format!(
                "expected `,` or `}}` in object, found `{}`",
                c as char
            ))),
        }
    }

    /// Consumes `[`; returns whether the array has any elements (and
    /// consumes the `]` when it does not).
    pub fn begin_array(&mut self) -> Result<bool> {
        self.expect(b'[')?;
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(false);
        }
        Ok(true)
    }

    /// After an element: consumes `,` (more, true) or `]` (done,
    /// false).
    pub fn array_continue(&mut self) -> Result<bool> {
        match self.bump()? {
            b',' => Ok(true),
            b']' => Ok(false),
            c => Err(DeError::new(format!(
                "expected `,` or `]` in array, found `{}`",
                c as char
            ))),
        }
    }

    /// Parses a string literal, resolving escapes.
    pub fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| DeError::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| DeError::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| DeError::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| DeError::new("non-ASCII \\u escape"))?,
                                16,
                            )
                            .map_err(|_| DeError::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| DeError::new("invalid \\u code point"))?,
                            );
                        }
                        c => {
                            return Err(DeError::new(format!(
                                "unsupported escape `\\{}`",
                                c as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences whole.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| DeError::new("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| DeError::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + width;
                }
            }
        }
    }

    pub fn parse_bool(&mut self) -> Result<bool> {
        if self.eat_word("true") {
            Ok(true)
        } else if self.eat_word("false") {
            Ok(false)
        } else {
            Err(DeError::new("expected boolean"))
        }
    }

    /// Consumes `null` if present.
    pub fn eat_null(&mut self) -> bool {
        self.eat_word("null")
    }

    fn eat_word(&mut self, word: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn number_token(&mut self) -> Result<&'a str> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(DeError::new(format!("expected number at byte {start}")));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::new("invalid number bytes"))
    }

    pub fn parse_u64(&mut self) -> Result<u64> {
        let tok = self.number_token()?;
        tok.parse()
            .map_err(|e| DeError::new(format!("invalid unsigned integer `{tok}`: {e}")))
    }

    pub fn parse_i64(&mut self) -> Result<i64> {
        let tok = self.number_token()?;
        tok.parse()
            .map_err(|e| DeError::new(format!("invalid integer `{tok}`: {e}")))
    }

    pub fn parse_f64(&mut self) -> Result<f64> {
        if self.eat_null() {
            // Mirror of the writer's policy for non-finite floats.
            return Ok(f64::NAN);
        }
        let tok = self.number_token()?;
        tok.parse()
            .map_err(|e| DeError::new(format!("invalid float `{tok}`: {e}")))
    }

    /// Skips one complete JSON value (for unknown object fields).
    pub fn skip_value(&mut self) -> Result<()> {
        match self.peek().ok_or_else(|| DeError::new("unexpected end"))? {
            b'"' => {
                self.parse_string()?;
            }
            b'{' => {
                if self.begin_object()? {
                    loop {
                        self.object_key()?;
                        self.skip_value()?;
                        if !self.object_continue()? {
                            break;
                        }
                    }
                }
            }
            b'[' => {
                if self.begin_array()? {
                    loop {
                        self.skip_value()?;
                        if !self.array_continue()? {
                            break;
                        }
                    }
                }
            }
            b't' | b'f' => {
                self.parse_bool()?;
            }
            b'n' => {
                if !self.eat_null() {
                    return Err(DeError::new("expected null"));
                }
            }
            _ => {
                self.number_token()?;
            }
        }
        Ok(())
    }

    /// Errors when unconsumed non-whitespace input remains.
    pub fn end(&mut self) -> Result<()> {
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(DeError::new(format!(
                "trailing characters at byte {}",
                self.pos
            )));
        }
        Ok(())
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// A value that can be read back from JSON.
pub trait Deserialize: Sized {
    fn deserialize(d: &mut JsonDe<'_>) -> Result<Self>;
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(d: &mut JsonDe<'_>) -> Result<Self> {
                let v = d.parse_u64()?;
                <$t>::try_from(v)
                    .map_err(|_| DeError::new(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(d: &mut JsonDe<'_>) -> Result<Self> {
                let v = d.parse_i64()?;
                <$t>::try_from(v)
                    .map_err(|_| DeError::new(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

de_uint!(u8, u16, u32, u64, usize);
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for bool {
    fn deserialize(d: &mut JsonDe<'_>) -> Result<Self> {
        d.parse_bool()
    }
}

impl Deserialize for f64 {
    fn deserialize(d: &mut JsonDe<'_>) -> Result<Self> {
        d.parse_f64()
    }
}

impl Deserialize for f32 {
    fn deserialize(d: &mut JsonDe<'_>) -> Result<Self> {
        Ok(d.parse_f64()? as f32)
    }
}

impl Deserialize for String {
    fn deserialize(d: &mut JsonDe<'_>) -> Result<Self> {
        d.parse_string()
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(d: &mut JsonDe<'_>) -> Result<Self> {
        if d.peek() == Some(b'n') && d.eat_null() {
            Ok(None)
        } else {
            Ok(Some(T::deserialize(d)?))
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(d: &mut JsonDe<'_>) -> Result<Self> {
        let mut out = Vec::new();
        if d.begin_array()? {
            loop {
                out.push(T::deserialize(d)?);
                if !d.array_continue()? {
                    break;
                }
            }
        }
        Ok(out)
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(d: &mut JsonDe<'_>) -> Result<Self> {
        if !d.begin_array()? {
            return Err(DeError::new("expected 2-element array"));
        }
        let a = A::deserialize(d)?;
        if !d.array_continue()? {
            return Err(DeError::new("expected 2 elements, found 1"));
        }
        let b = B::deserialize(d)?;
        if d.array_continue()? {
            return Err(DeError::new("expected 2 elements, found more"));
        }
        Ok((a, b))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(d: &mut JsonDe<'_>) -> Result<Self> {
        if !d.begin_array()? {
            return Err(DeError::new("expected 3-element array"));
        }
        let a = A::deserialize(d)?;
        if !d.array_continue()? {
            return Err(DeError::new("expected 3 elements, found 1"));
        }
        let b = B::deserialize(d)?;
        if !d.array_continue()? {
            return Err(DeError::new("expected 3 elements, found 2"));
        }
        let c = C::deserialize(d)?;
        if d.array_continue()? {
            return Err(DeError::new("expected 3 elements, found more"));
        }
        Ok((a, b, c))
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(d: &mut JsonDe<'_>) -> Result<Self> {
        let mut out = BTreeMap::new();
        if d.begin_object()? {
            loop {
                let k = d.object_key()?;
                out.insert(k, V::deserialize(d)?);
                if !d.object_continue()? {
                    break;
                }
            }
        }
        Ok(out)
    }
}

impl Deserialize for Duration {
    fn deserialize(d: &mut JsonDe<'_>) -> Result<Self> {
        let mut secs: Option<u64> = None;
        let mut nanos: Option<u32> = None;
        if d.begin_object()? {
            loop {
                let k = d.object_key()?;
                match k.as_str() {
                    "secs" => secs = Some(d.parse_u64()?),
                    "nanos" => nanos = Some(u32::deserialize(d)?),
                    _ => d.skip_value()?,
                }
                if !d.object_continue()? {
                    break;
                }
            }
        }
        Ok(Duration::new(
            secs.ok_or_else(|| DeError::missing_field("secs", "Duration"))?,
            nanos.ok_or_else(|| DeError::missing_field("nanos", "Duration"))?,
        ))
    }
}

/// Parses a complete document (used by the `serde_json` shim).
pub fn from_json_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut d = JsonDe::new(text);
    let v = T::deserialize(&mut d)?;
    d.end()?;
    Ok(v)
}
