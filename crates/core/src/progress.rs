//! Progress curves: "fraction of total output available" over time —
//! the y-axis of the paper's Figures 9–13.

use std::time::Duration;

use sidr_mapreduce::{JobResult, TaskEvent, TaskKind};

/// One point of a completion curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CurvePoint {
    pub at: Duration,
    pub fraction: f64,
}

/// Fraction of Map tasks complete over time.
pub fn map_completion_curve(result: &JobResult) -> Vec<CurvePoint> {
    fraction_curve(&result.events, TaskKind::MapEnd, None)
}

/// Fraction of total output available over time. When `weights` is
/// provided (keys per reducer, from `partition+`), fractions are
/// weighted by each reducer's share of the output; otherwise each
/// reduce task counts equally (how the paper's figures plot task
/// completion).
pub fn output_availability_curve(result: &JobResult, weights: Option<&[u64]>) -> Vec<CurvePoint> {
    fraction_curve(&result.events, TaskKind::ReduceEnd, weights)
}

fn fraction_curve(
    events: &[TaskEvent],
    kind: TaskKind,
    weights: Option<&[u64]>,
) -> Vec<CurvePoint> {
    let mut done: Vec<(Duration, usize)> = events
        .iter()
        .filter(|e| e.kind == kind)
        .map(|e| (e.at, e.task))
        .collect();
    done.sort();
    let total: f64 = match weights {
        Some(w) => w.iter().sum::<u64>() as f64,
        None => done.len() as f64,
    };
    if total == 0.0 {
        return Vec::new();
    }
    let mut acc = 0.0;
    done.into_iter()
        .map(|(at, task)| {
            acc += match weights {
                Some(w) => w[task] as f64,
                None => 1.0,
            };
            CurvePoint {
                at,
                fraction: acc / total,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidr_mapreduce::CountersSnapshot;

    fn ev(kind: TaskKind, task: usize, ms: u64) -> TaskEvent {
        TaskEvent {
            kind,
            task,
            attempt: 0,
            at: Duration::from_millis(ms),
        }
    }

    fn result(events: Vec<TaskEvent>) -> JobResult {
        JobResult {
            counters: CountersSnapshot::default(),
            elapsed: events.iter().map(|e| e.at).max().unwrap_or_default(),
            events,
        }
    }

    #[test]
    fn unweighted_curve_counts_tasks() {
        let r = result(vec![
            ev(TaskKind::ReduceEnd, 0, 10),
            ev(TaskKind::ReduceEnd, 1, 30),
            ev(TaskKind::MapEnd, 0, 5),
        ]);
        let curve = output_availability_curve(&r, None);
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].fraction, 0.5);
        assert_eq!(curve[1].fraction, 1.0);
        let maps = map_completion_curve(&r);
        assert_eq!(maps.len(), 1);
        assert_eq!(maps[0].fraction, 1.0);
    }

    #[test]
    fn weighted_curve_uses_key_counts() {
        let r = result(vec![
            ev(TaskKind::ReduceEnd, 0, 10), // weight 30
            ev(TaskKind::ReduceEnd, 1, 20), // weight 10
        ]);
        let curve = output_availability_curve(&r, Some(&[30, 10]));
        assert_eq!(curve[0].fraction, 0.75);
        assert_eq!(curve[1].fraction, 1.0);
    }

    #[test]
    fn empty_events_empty_curve() {
        let r = result(vec![]);
        assert!(output_availability_curve(&r, None).is_empty());
    }
}
