//! n-dimensional coordinates (points in a logical keyspace).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

use crate::error::CoordError;
use crate::Result;

/// A point in an n-dimensional logical space.
///
/// In the paper's notation a `Coord` is a key `k ∈ K` (input keyspace)
/// or `k′ ∈ K′` (intermediate keyspace). Coordinates are unsigned and
/// relative to the origin of the space they live in, matching the
/// corner/shape addressing used by scientific access libraries.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord(Vec<u64>);

impl Coord {
    /// Creates a coordinate from per-dimension components.
    pub fn new(components: impl Into<Vec<u64>>) -> Self {
        Coord(components.into())
    }

    /// The origin (all-zero) coordinate of a `rank`-dimensional space.
    pub fn origin(rank: usize) -> Self {
        Coord(vec![0; rank])
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Per-dimension components.
    #[inline]
    pub fn components(&self) -> &[u64] {
        &self.0
    }

    /// Mutable access to the components (rank cannot change).
    #[inline]
    pub fn components_mut(&mut self) -> &mut [u64] {
        &mut self.0
    }

    /// Consumes the coordinate, returning its components.
    pub fn into_components(self) -> Vec<u64> {
        self.0
    }

    /// Component-wise addition. Errors on rank mismatch.
    pub fn checked_add(&self, other: &Coord) -> Result<Coord> {
        self.same_rank(other)?;
        Ok(Coord(
            self.0.iter().zip(&other.0).map(|(a, b)| a + b).collect(),
        ))
    }

    /// Component-wise subtraction. Errors on rank mismatch or underflow
    /// (reported as `OutOfBounds` in the offending dimension).
    pub fn checked_sub(&self, other: &Coord) -> Result<Coord> {
        self.same_rank(other)?;
        let mut out = Vec::with_capacity(self.rank());
        for (dim, (a, b)) in self.0.iter().zip(&other.0).enumerate() {
            out.push(a.checked_sub(*b).ok_or(CoordError::OutOfBounds {
                dim,
                coordinate: *a,
                extent: *b,
            })?);
        }
        Ok(Coord(out))
    }

    /// Component-wise integer division (used by extraction-shape key
    /// translation: `k′[d] = k[d] / e[d]`, §3 Area 2).
    pub fn component_div(&self, divisors: &[u64]) -> Result<Coord> {
        if divisors.len() != self.rank() {
            return Err(CoordError::RankMismatch {
                expected: self.rank(),
                actual: divisors.len(),
            });
        }
        let mut out = Vec::with_capacity(self.rank());
        for (dim, (a, d)) in self.0.iter().zip(divisors).enumerate() {
            if *d == 0 {
                return Err(CoordError::ZeroDim { dim });
            }
            out.push(a / d);
        }
        Ok(Coord(out))
    }

    /// Component-wise multiplication (inverse of `component_div` up to
    /// remainder; used to compute tile corners).
    pub fn component_mul(&self, factors: &[u64]) -> Result<Coord> {
        if factors.len() != self.rank() {
            return Err(CoordError::RankMismatch {
                expected: self.rank(),
                actual: factors.len(),
            });
        }
        Ok(Coord(
            self.0.iter().zip(factors).map(|(a, f)| a * f).collect(),
        ))
    }

    /// True when every component of `self` is strictly less than the
    /// matching component of `extents`.
    pub fn strictly_below(&self, extents: &[u64]) -> bool {
        debug_assert_eq!(self.rank(), extents.len());
        self.0.iter().zip(extents).all(|(c, e)| c < e)
    }

    /// Byte width of this coordinate in the packed fixed-width
    /// encoding: `rank` little-endian `u64` words, no length prefix.
    /// Every key in a fixed-arity keyspace packs to the same width,
    /// which is what lets SMOF v3 address records by offset alone.
    #[inline]
    pub fn packed_width(&self) -> usize {
        self.0.len() * 8
    }

    /// Appends the packed encoding (LE words, no prefix) to `out`.
    pub fn write_packed(&self, out: &mut Vec<u8>) {
        for &c in &self.0 {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }

    /// Reconstructs a coordinate from its packed encoding. The rank is
    /// implied by the slice length, which must be a multiple of 8.
    pub fn from_packed(bytes: &[u8]) -> Coord {
        debug_assert_eq!(bytes.len() % 8, 0, "packed coord length not word-aligned");
        Coord(
            bytes
                .chunks_exact(8)
                .map(|w| u64::from_le_bytes(w.try_into().expect("8-byte chunk")))
                .collect(),
        )
    }

    /// Compares two packed encodings in coordinate order (row-major
    /// lexicographic over components, shorter prefix first) without
    /// decoding. Packed words are little-endian, so plain `memcmp`
    /// would order them wrongly — each 8-byte word must be compared as
    /// a `u64`. Byte *equality* of equal-width slices is still valid
    /// for equality checks.
    pub fn cmp_packed(a: &[u8], b: &[u8]) -> std::cmp::Ordering {
        for (wa, wb) in a.chunks_exact(8).zip(b.chunks_exact(8)) {
            let wa = u64::from_le_bytes(wa.try_into().expect("8-byte chunk"));
            let wb = u64::from_le_bytes(wb.try_into().expect("8-byte chunk"));
            match wa.cmp(&wb) {
                std::cmp::Ordering::Equal => {}
                other => return other,
            }
        }
        a.len().cmp(&b.len())
    }

    /// Compares a decoded coordinate against a packed encoding, with
    /// the same ordering contract as [`Coord::cmp_packed`].
    pub fn cmp_decoded_packed(&self, packed: &[u8]) -> std::cmp::Ordering {
        for (ca, wb) in self.0.iter().zip(packed.chunks_exact(8)) {
            let wb = u64::from_le_bytes(wb.try_into().expect("8-byte chunk"));
            match ca.cmp(&wb) {
                std::cmp::Ordering::Equal => {}
                other => return other,
            }
        }
        self.packed_width().cmp(&packed.len())
    }

    fn same_rank(&self, other: &Coord) -> Result<()> {
        if self.rank() == other.rank() {
            Ok(())
        } else {
            Err(CoordError::RankMismatch {
                expected: self.rank(),
                actual: other.rank(),
            })
        }
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Coord{:?}", self.0)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

impl Index<usize> for Coord {
    type Output = u64;
    #[inline]
    fn index(&self, dim: usize) -> &u64 {
        &self.0[dim]
    }
}

impl From<Vec<u64>> for Coord {
    fn from(v: Vec<u64>) -> Self {
        Coord(v)
    }
}

impl From<&[u64]> for Coord {
    fn from(v: &[u64]) -> Self {
        Coord(v.to_vec())
    }
}

impl<const N: usize> From<[u64; N]> for Coord {
    fn from(v: [u64; N]) -> Self {
        Coord(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_is_all_zero() {
        let o = Coord::origin(4);
        assert_eq!(o.rank(), 4);
        assert!(o.components().iter().all(|&c| c == 0));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Coord::from([5, 7, 9]);
        let b = Coord::from([1, 2, 3]);
        let sum = a.checked_add(&b).unwrap();
        assert_eq!(sum, Coord::from([6, 9, 12]));
        assert_eq!(sum.checked_sub(&b).unwrap(), a);
    }

    #[test]
    fn sub_underflow_reports_dimension() {
        let a = Coord::from([5, 1]);
        let b = Coord::from([1, 2]);
        match a.checked_sub(&b) {
            Err(CoordError::OutOfBounds { dim: 1, .. }) => {}
            other => panic!("expected underflow in dim 1, got {other:?}"),
        }
    }

    #[test]
    fn rank_mismatch_detected() {
        let a = Coord::from([1, 2]);
        let b = Coord::from([1, 2, 3]);
        assert!(matches!(
            a.checked_add(&b),
            Err(CoordError::RankMismatch {
                expected: 2,
                actual: 3
            })
        ));
    }

    #[test]
    fn component_div_matches_paper_example() {
        // §3 Area 2: key {157, 34, 82} with extraction shape {7, 5, 1}
        // maps to {22, 6, 82}.
        let k = Coord::from([157, 34, 82]);
        let kp = k.component_div(&[7, 5, 1]).unwrap();
        assert_eq!(kp, Coord::from([22, 6, 82]));
    }

    #[test]
    fn component_div_by_zero_rejected() {
        let k = Coord::from([4, 4]);
        assert!(matches!(
            k.component_div(&[2, 0]),
            Err(CoordError::ZeroDim { dim: 1 })
        ));
    }

    #[test]
    fn display_uses_brace_notation() {
        assert_eq!(Coord::from([100, 0, 0]).to_string(), "{100, 0, 0}");
    }

    #[test]
    fn ordering_is_row_major_lexicographic() {
        let a = Coord::from([0, 9]);
        let b = Coord::from([1, 0]);
        assert!(a < b);
    }

    #[test]
    fn packed_roundtrip_preserves_value_and_width() {
        for c in [
            Coord::from([157, 34, 82]),
            Coord::origin(0),
            Coord::from([u64::MAX]),
            Coord::from([0, u64::MAX, 1 << 40]),
        ] {
            let mut buf = Vec::new();
            c.write_packed(&mut buf);
            assert_eq!(buf.len(), c.packed_width());
            assert_eq!(Coord::from_packed(&buf), c);
        }
    }

    #[test]
    fn cmp_packed_matches_coord_ord() {
        // The case memcmp would get wrong: 256 packs as [0,1,0,...]
        // which is bytewise *less* than 1's [1,0,0,...].
        let pairs = [
            (Coord::from([256]), Coord::from([1])),
            (Coord::from([0, 9]), Coord::from([1, 0])),
            (Coord::from([5, 5]), Coord::from([5, 5])),
            (Coord::from([7]), Coord::from([7, 0])),
        ];
        for (a, b) in pairs {
            let (mut pa, mut pb) = (Vec::new(), Vec::new());
            a.write_packed(&mut pa);
            b.write_packed(&mut pb);
            assert_eq!(Coord::cmp_packed(&pa, &pb), a.cmp(&b), "{a} vs {b}");
            assert_eq!(a.cmp_decoded_packed(&pb), a.cmp(&b), "{a} vs packed {b}");
        }
    }
}
