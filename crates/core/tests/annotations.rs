//! §3.2.1 approach 2 as a *tripwire*: the count annotations exist to
//! catch a Reduce task that would otherwise start on insufficient
//! input. These tests prove the tripwire fires.

use sidr_coords::{Coord, ExtractionShape, Shape};
use sidr_core::operators::OperatorReducer;
use sidr_core::source::{scinc_source_factory, StructuralMapper};
use sidr_core::{Operator, SidrPlanner, StructuralQuery};
use sidr_mapreduce::{run_job, InMemoryOutput, JobConfig, Mapper, MrError, SplitGenerator};
use sidr_scifile::gen::{DatasetSpec, ValueModel};

fn shape(v: &[u64]) -> Shape {
    Shape::new(v.to_vec()).unwrap()
}

fn dataset(name: &str, space: &[u64]) -> (sidr_scifile::ScincFile, DatasetSpec) {
    let spec = DatasetSpec {
        variable: "v".into(),
        dim_names: (0..space.len()).map(|i| format!("d{i}")).collect(),
        space: shape(space),
        model: ValueModel::LinearIndex,
        seed: 0,
    };
    let dir = std::env::temp_dir().join("sidr-annot-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}-{}.scinc", std::process::id()));
    let file = spec.generate::<f64>(&path).unwrap();
    (file, spec)
}

/// A mapper that silently drops a fraction of its records — the kind
/// of bug (or combiner-count confusion) the annotation tally exists to
/// catch before a reduce runs on partial input.
struct LossyMapper {
    inner: StructuralMapper,
}

impl Mapper for LossyMapper {
    type InKey = Coord;
    type InValue = f64;
    type OutKey = Coord;
    type OutValue = f64;

    fn map(&self, key: &Coord, value: &f64, emit: &mut dyn FnMut(Coord, f64)) {
        // Drop every 17th record.
        if key.components().iter().sum::<u64>() % 17 == 0 {
            return;
        }
        self.inner.map(key, value, emit);
    }
}

#[test]
fn honest_run_passes_annotation_validation() {
    let (file, _) = dataset("honest", &[40, 8]);
    let q = StructuralQuery::new("v", shape(&[40, 8]), shape(&[4, 4]), Operator::Mean).unwrap();
    let splits = SplitGenerator::new(q.input_space().clone(), 8)
        .exact_count(5)
        .unwrap();
    let plan = SidrPlanner::new(&q, 3).build(&splits).unwrap();
    let mapper = StructuralMapper::new(q.extraction.clone());
    let reducer = OperatorReducer { op: q.operator };
    let factory = scinc_source_factory::<f64>(&file, "v");
    let output = InMemoryOutput::new();
    let result = run_job(
        &splits,
        &factory,
        &mapper,
        None,
        &reducer,
        &plan,
        &output,
        &JobConfig {
            validate_annotations: true,
            ..Default::default()
        },
    );
    assert!(result.is_ok(), "honest run must validate: {result:?}");
}

#[test]
fn lossy_mapper_trips_the_annotation_check() {
    let (file, _) = dataset("lossy", &[40, 8]);
    let q = StructuralQuery::new("v", shape(&[40, 8]), shape(&[4, 4]), Operator::Mean).unwrap();
    let splits = SplitGenerator::new(q.input_space().clone(), 8)
        .exact_count(5)
        .unwrap();
    let plan = SidrPlanner::new(&q, 3).build(&splits).unwrap();
    let mapper = LossyMapper {
        inner: StructuralMapper::new(
            ExtractionShape::new(shape(&[40, 8]), shape(&[4, 4])).unwrap(),
        ),
    };
    let reducer = OperatorReducer { op: q.operator };
    let factory = scinc_source_factory::<f64>(&file, "v");
    let output = InMemoryOutput::new();
    let result = run_job(
        &splits,
        &factory,
        &mapper,
        None,
        &reducer,
        &plan,
        &output,
        &JobConfig {
            validate_annotations: true,
            ..Default::default()
        },
    );
    match result {
        Err(MrError::AnnotationMismatch {
            expected, actual, ..
        }) => {
            assert!(
                actual < expected,
                "tally {actual} must fall short of {expected}"
            );
        }
        other => panic!("expected AnnotationMismatch, got {other:?}"),
    }
}

#[test]
fn without_validation_the_lossy_run_silently_succeeds() {
    // The contrast case: disable the cross-check and the engine happily
    // produces an answer based on insufficient input — exactly the
    // hazard §3.2.1 describes.
    let (file, _) = dataset("silent", &[40, 8]);
    let q = StructuralQuery::new("v", shape(&[40, 8]), shape(&[4, 4]), Operator::Mean).unwrap();
    let splits = SplitGenerator::new(q.input_space().clone(), 8)
        .exact_count(5)
        .unwrap();
    let plan = SidrPlanner::new(&q, 3).build(&splits).unwrap();
    let mapper = LossyMapper {
        inner: StructuralMapper::new(
            ExtractionShape::new(shape(&[40, 8]), shape(&[4, 4])).unwrap(),
        ),
    };
    let reducer = OperatorReducer { op: q.operator };
    let factory = scinc_source_factory::<f64>(&file, "v");
    let output = InMemoryOutput::new();
    let result = run_job(
        &splits,
        &factory,
        &mapper,
        None,
        &reducer,
        &plan,
        &output,
        &JobConfig::default(),
    );
    assert!(result.is_ok());
    assert!(!output.is_empty());
}
