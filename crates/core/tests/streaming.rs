//! Pipelined consumption: a downstream consumer receives correct
//! keyblock results *while the query is still executing* (§6).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use sidr_coords::Shape;
use sidr_core::early::streaming_output;
use sidr_core::operators::OperatorReducer;
use sidr_core::source::{scinc_source_factory, StructuralMapper};
use sidr_core::{Operator, SidrPlanner, StructuralQuery};
use sidr_mapreduce::{run_job, JobConfig, SplitGenerator};
use sidr_scifile::gen::{DatasetSpec, ValueModel};

fn shape(v: &[u64]) -> Shape {
    Shape::new(v.to_vec()).unwrap()
}

#[test]
fn consumer_sees_results_before_the_job_finishes() {
    let space = shape(&[60, 8]);
    let spec = DatasetSpec {
        variable: "v".into(),
        dim_names: vec!["d0".into(), "d1".into()],
        space: space.clone(),
        model: ValueModel::LinearIndex,
        seed: 0,
    };
    let dir = std::env::temp_dir().join("sidr-streaming-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("stream-{}.scinc", std::process::id()));
    let file = spec.generate::<f64>(&path).unwrap();

    let q = StructuralQuery::new("v", space.clone(), shape(&[4, 4]), Operator::Mean).unwrap();
    let splits = SplitGenerator::new(space, 8).exact_count(6).unwrap();
    let plan = SidrPlanner::new(&q, 6).build(&splits).unwrap();
    let mapper = StructuralMapper::new(q.extraction.clone());
    let reducer = OperatorReducer { op: q.operator };
    let factory = scinc_source_factory::<f64>(&file, "v");
    let (collector, rx) = streaming_output();

    let job_done = AtomicBool::new(false);
    let consumed_early = AtomicBool::new(false);
    let total_records = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let consumer = scope.spawn(|| {
            // Consume results as they arrive; note whether any arrived
            // while the job was still running.
            for result in rx.iter() {
                if !job_done.load(Ordering::SeqCst) {
                    consumed_early.store(true, Ordering::SeqCst);
                }
                assert!(!result.records.is_empty());
                total_records.fetch_add(result.records.len(), Ordering::SeqCst);
            }
        });

        run_job(
            &splits,
            &factory,
            &mapper,
            None,
            &reducer,
            &plan,
            &collector,
            &JobConfig {
                map_slots: 1, // serialize maps so results trickle
                map_think: Duration::from_millis(10),
                ..Default::default()
            },
        )
        .unwrap();
        job_done.store(true, Ordering::SeqCst);
        drop(collector); // close the channel so the consumer exits
        consumer.join().unwrap();
    });

    assert!(
        consumed_early.load(Ordering::SeqCst),
        "no result was consumed while the job was still running"
    );
    assert_eq!(
        total_records.load(Ordering::SeqCst) as u64,
        q.intermediate_space().count(),
        "streamed output must still be complete"
    );
    std::fs::remove_file(&path).unwrap();
}
