//! Minimal span model + JSONL exporter.
//!
//! A [`Span`] is a named interval on a task's timeline — one map
//! attempt, a reduce's copy phase, its merge. The exporter writes one
//! JSON object per line (JSONL), the lowest-common-denominator trace
//! format: streamable, greppable, and trivially ingested by anything
//! downstream. Serialization is hand-rolled so the crate stays
//! dependency-free.

use std::io::{self, Write};

/// One traced interval.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// What happened, e.g. `"map"`, `"reduce"`, `"reduce.copy"`.
    pub name: String,
    /// Task index within its kind (map 3, reduce 0, ...).
    pub task: u64,
    /// Attempt id of the task execution this span belongs to (0 for
    /// the first attempt; retries and recovery re-executions count
    /// up).
    pub attempt: u32,
    /// Start offset from job start, microseconds.
    pub start_us: u64,
    /// End offset from job start, microseconds.
    pub end_us: u64,
}

impl Span {
    pub fn new(name: impl Into<String>, task: u64, start_us: u64, end_us: u64) -> Self {
        Span {
            name: name.into(),
            task,
            attempt: 0,
            start_us,
            end_us,
        }
    }

    /// Stamps the span with a task attempt id (builder-style).
    pub fn with_attempt(mut self, attempt: u32) -> Self {
        self.attempt = attempt;
        self
    }

    /// Span duration in microseconds (0 if the clock went backwards).
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders one span as a single-line JSON object (no trailing newline).
pub fn span_json(span: &Span) -> String {
    let mut out = String::with_capacity(64 + span.name.len());
    out.push_str("{\"name\":\"");
    escape_json(&span.name, &mut out);
    out.push_str(&format!(
        "\",\"task\":{},\"attempt\":{},\"start_us\":{},\"end_us\":{},\"duration_us\":{}}}",
        span.task,
        span.attempt,
        span.start_us,
        span.end_us,
        span.duration_us()
    ));
    out
}

/// Writes spans as JSONL: one object per line.
pub fn write_spans_jsonl<W: Write>(w: &mut W, spans: &[Span]) -> io::Result<()> {
    for span in spans {
        writeln!(w, "{}", span_json(span))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_render_as_one_json_object_per_line() {
        let spans = vec![
            Span::new("map", 0, 10, 250),
            Span::new("reduce.copy", 2, 300, 400),
        ];
        let mut buf = Vec::new();
        write_spans_jsonl(&mut buf, &spans).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"name\":\"map\",\"task\":0,\"attempt\":0,\"start_us\":10,\"end_us\":250,\"duration_us\":240}"
        );
        assert!(lines[1].contains("\"name\":\"reduce.copy\""));
        let retried = span_json(&Span::new("map", 3, 5, 9).with_attempt(2));
        assert!(retried.contains("\"attempt\":2"));
    }

    #[test]
    fn names_are_json_escaped() {
        let s = Span::new("we\"ird\\name\n", 1, 0, 1);
        let json = span_json(&s);
        assert!(json.contains("we\\\"ird\\\\name\\n"));
        assert!(!json.contains('\n'));
    }

    #[test]
    fn backwards_clock_yields_zero_duration() {
        assert_eq!(Span::new("x", 0, 5, 3).duration_us(), 0);
    }
}
