//! Offline replacement for `serde_derive`.
//!
//! Derives the JSON-model `Serialize`/`Deserialize` traits of the
//! sibling `serde` shim. Implemented directly on `proc_macro` token
//! trees (no syn/quote): supports non-generic structs (named, tuple,
//! unit) and enums with unit/tuple/struct variants — exactly the
//! shapes this workspace derives. Generic types are rejected with a
//! clear compile-time panic. `#[serde(...)]` attributes are accepted
//! by the macro signature but not interpreted.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type Toks = Peekable<proc_macro::token_stream::IntoIter>;

struct TypeDef {
    name: String,
    body: Body,
}

enum Body {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_type(input);
    gen_serialize(&def)
        .parse()
        .expect("serde shim: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_type(input);
    gen_deserialize(&def)
        .parse()
        .expect("serde shim: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------

fn parse_type(input: TokenStream) -> TypeDef {
    let mut t = input.into_iter().peekable();
    loop {
        match t.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                t.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                skip_vis_scope(&mut t);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                return parse_struct(&mut t)
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => return parse_enum(&mut t),
            other => panic!("serde shim derive: unexpected token before item keyword: {other:?}"),
        }
    }
}

fn skip_vis_scope(t: &mut Toks) {
    if let Some(TokenTree::Group(g)) = t.peek() {
        if g.delimiter() == Delimiter::Parenthesis {
            t.next();
        }
    }
}

fn expect_ident(t: &mut Toks) -> String {
    match t.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected identifier, found {other:?}"),
    }
}

fn reject_generics(t: &mut Toks, name: &str) {
    if let Some(TokenTree::Punct(p)) = t.peek() {
        if p.as_char() == '<' {
            panic!(
                "serde shim derive: generic type `{name}` is not supported; \
                 implement Serialize/Deserialize by hand"
            );
        }
    }
}

fn parse_struct(t: &mut Toks) -> TypeDef {
    let name = expect_ident(t);
    reject_generics(t, &name);
    let body = match t.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Body::NamedStruct(named_field_names(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Body::TupleStruct(count_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
        None => Body::UnitStruct,
        other => panic!("serde shim derive: unexpected struct body for `{name}`: {other:?}"),
    };
    TypeDef { name, body }
}

fn parse_enum(t: &mut Toks) -> TypeDef {
    let name = expect_ident(t);
    reject_generics(t, &name);
    let group = match t.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("serde shim derive: expected enum body for `{name}`, found {other:?}"),
    };
    let mut variants = Vec::new();
    let mut vt = group.stream().into_iter().peekable();
    loop {
        match vt.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                vt.next();
            }
            Some(TokenTree::Ident(id)) => {
                let vname = id.to_string();
                let kind = match vt.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let k = VariantKind::Tuple(count_fields(g.stream()));
                        vt.next();
                        k
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let k = VariantKind::Named(named_field_names(g.stream()));
                        vt.next();
                        k
                    }
                    _ => VariantKind::Unit,
                };
                // Skip anything up to the variant separator (covers
                // explicit discriminants, which this shim ignores).
                for tok in vt.by_ref() {
                    if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                }
                variants.push(Variant { name: vname, kind });
            }
            other => panic!("serde shim derive: unexpected token in enum `{name}`: {other:?}"),
        }
    }
    TypeDef {
        name,
        body: Body::Enum(variants),
    }
}

/// Field names of a `{ ... }` field list; types are skipped with
/// angle-bracket depth tracking so `BTreeMap<String, String>` commas
/// do not end a field early.
fn named_field_names(stream: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut t = stream.into_iter().peekable();
    loop {
        match t.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                t.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                skip_vis_scope(&mut t);
            }
            Some(TokenTree::Ident(id)) => {
                names.push(id.to_string());
                match t.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!(
                        "serde shim derive: expected `:` after field `{id}`, found {other:?}"
                    ),
                }
                skip_type(&mut t);
            }
            other => panic!("serde shim derive: unexpected token in field list: {other:?}"),
        }
    }
    names
}

/// Consumes one type, stopping after the top-level `,` (or at end).
fn skip_type(t: &mut Toks) {
    let mut angle_depth = 0i32;
    for tok in t.by_ref() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
    }
}

/// Number of fields in a `( ... )` field list.
fn count_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut fields = 0usize;
    let mut pending = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                fields += 1;
                pending = false;
            }
            _ => pending = true,
        }
    }
    if pending {
        fields += 1;
    }
    fields
}

// ---------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------

const SER: &str = "::serde::ser::Serialize";
const DE: &str = "::serde::de::Deserialize";
const DE_ERR: &str = "::serde::de::DeError";

fn gen_serialize(def: &TypeDef) -> String {
    let name = &def.name;
    let mut body = String::new();
    match &def.body {
        Body::NamedStruct(fields) => {
            body.push_str("s.begin_object();");
            for f in fields {
                body.push_str(&format!(
                    "s.field(\"{f}\"); {SER}::serialize(&self.{f}, s);"
                ));
            }
            body.push_str("s.end_object();");
        }
        Body::TupleStruct(1) => {
            body.push_str(&format!("{SER}::serialize(&self.0, s);"));
        }
        Body::TupleStruct(n) => {
            body.push_str("s.begin_array();");
            for i in 0..*n {
                body.push_str(&format!("s.elem(); {SER}::serialize(&self.{i}, s);"));
            }
            body.push_str("s.end_array();");
        }
        Body::UnitStruct => body.push_str("s.write_null();"),
        Body::Enum(variants) => {
            body.push_str("match self {");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        body.push_str(&format!("{name}::{vn} => s.write_string(\"{vn}\"),"));
                    }
                    VariantKind::Tuple(1) => {
                        body.push_str(&format!(
                            "{name}::{vn}(__v0) => {{ s.begin_object(); s.field(\"{vn}\"); \
                             {SER}::serialize(__v0, s); s.end_object(); }}"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__v{i}")).collect();
                        let mut inner = String::from("s.begin_array();");
                        for b in &binds {
                            inner.push_str(&format!("s.elem(); {SER}::serialize({b}, s);"));
                        }
                        inner.push_str("s.end_array();");
                        body.push_str(&format!(
                            "{name}::{vn}({}) => {{ s.begin_object(); s.field(\"{vn}\"); \
                             {inner} s.end_object(); }}",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut inner = String::from("s.begin_object();");
                        for f in fields {
                            inner.push_str(&format!("s.field(\"{f}\"); {SER}::serialize({f}, s);"));
                        }
                        inner.push_str("s.end_object();");
                        body.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ s.begin_object(); s.field(\"{vn}\"); \
                             {inner} s.end_object(); }}",
                            fields.join(", ")
                        ));
                    }
                }
            }
            body.push('}');
        }
    }
    format!(
        "#[automatically_derived] #[allow(clippy::all)] \
         impl {SER} for {name} {{ \
             fn serialize(&self, s: &mut ::serde::ser::JsonSer) {{ {body} }} \
         }}"
    )
}

/// Statements that read named fields into `__f_*` options plus the
/// final constructor expression (usable as a block tail).
fn named_fields_de(ctor: &str, label: &str, fields: &[String]) -> String {
    let mut s = String::new();
    for f in fields {
        s.push_str(&format!("let mut __f_{f}: Option<_> = None;"));
    }
    s.push_str("if d.begin_object()? { loop { let __k = d.object_key()?; match __k.as_str() {");
    for f in fields {
        s.push_str(&format!(
            "\"{f}\" => {{ __f_{f} = Some({DE}::deserialize(d)?); }}"
        ));
    }
    s.push_str("_ => { d.skip_value()?; } } if !d.object_continue()? { break; } } }");
    s.push_str(&format!("{ctor} {{"));
    for f in fields {
        s.push_str(&format!(
            "{f}: match __f_{f} {{ Some(__v) => __v, \
             None => return Err({DE_ERR}::missing_field(\"{f}\", \"{label}\")) }},"
        ));
    }
    s.push('}');
    s
}

/// Statements that read `n` tuple fields as a JSON array plus the
/// final constructor expression.
fn tuple_fields_de(ctor: &str, label: &str, n: usize) -> String {
    let mut s = format!(
        "if !d.begin_array()? {{ \
           return Err({DE_ERR}::new(\"expected {n}-element array for {label}\")); }}"
    );
    for i in 0..n {
        if i > 0 {
            s.push_str(&format!(
                "if !d.array_continue()? {{ \
                   return Err({DE_ERR}::new(\"too few elements for {label}\")); }}"
            ));
        }
        s.push_str(&format!("let __v{i} = {DE}::deserialize(d)?;"));
    }
    s.push_str(&format!(
        "if d.array_continue()? {{ \
           return Err({DE_ERR}::new(\"too many elements for {label}\")); }}"
    ));
    let binds: Vec<String> = (0..n).map(|i| format!("__v{i}")).collect();
    s.push_str(&format!("{ctor}({})", binds.join(", ")));
    s
}

fn gen_deserialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.body {
        Body::NamedStruct(fields) => {
            format!("Ok({{ {} }})", named_fields_de(name, name, fields))
        }
        Body::TupleStruct(1) => format!("Ok({name}({DE}::deserialize(d)?))"),
        Body::TupleStruct(n) => format!("Ok({{ {} }})", tuple_fields_de(name, name, *n)),
        Body::UnitStruct => format!(
            "if d.eat_null() {{ Ok({name}) }} \
             else {{ Err({DE_ERR}::new(\"expected null for unit struct {name}\")) }}"
        ),
        Body::Enum(variants) => {
            let units: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .collect();
            let payloads: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .collect();
            let mut s = String::new();
            if !units.is_empty() {
                s.push_str(
                    "if d.peek_is_string() { let __tag = d.parse_string()?; \
                     return match __tag.as_str() {",
                );
                for v in &units {
                    let vn = &v.name;
                    s.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),"));
                }
                s.push_str(&format!(
                    "__other => Err({DE_ERR}::unknown_variant(__other, \"{name}\")), }}; }}"
                ));
            }
            if payloads.is_empty() {
                s.push_str(&format!(
                    "Err({DE_ERR}::new(\"expected string variant tag for {name}\"))"
                ));
            } else {
                s.push_str(&format!(
                    "if !d.begin_object()? {{ \
                       return Err({DE_ERR}::new(\"expected variant object for {name}\")); }} \
                     let __tag = d.object_key()?; \
                     let __value = match __tag.as_str() {{"
                ));
                for v in &payloads {
                    let vn = &v.name;
                    let ctor = format!("{name}::{vn}");
                    let label = format!("{name}::{vn}");
                    let arm = match &v.kind {
                        VariantKind::Tuple(1) => format!("{ctor}({DE}::deserialize(d)?)"),
                        VariantKind::Tuple(n) => {
                            format!("{{ {} }}", tuple_fields_de(&ctor, &label, *n))
                        }
                        VariantKind::Named(fields) => {
                            format!("{{ {} }}", named_fields_de(&ctor, &label, fields))
                        }
                        VariantKind::Unit => unreachable!(),
                    };
                    s.push_str(&format!("\"{vn}\" => {arm},"));
                }
                s.push_str(&format!(
                    "__other => return Err({DE_ERR}::unknown_variant(__other, \"{name}\")), }};"
                ));
                s.push_str(&format!(
                    "if d.object_continue()? {{ \
                       return Err({DE_ERR}::new(\
                         \"unexpected extra entries in {name} variant object\")); }} \
                     Ok(__value)"
                ));
            }
            s
        }
    };
    format!(
        "#[automatically_derived] #[allow(clippy::all)] \
         impl {DE} for {name} {{ \
             fn deserialize(d: &mut ::serde::de::JsonDe<'_>) -> ::serde::de::Result<Self> {{ \
                 {body} \
             }} \
         }}"
    )
}
