//! `sidr-serve` — a multi-tenant structural-query service with
//! streaming early results.
//!
//! The paper's runtime contributions compose into a long-running
//! service here:
//!
//! * **one shared slot pool** (§3.3): every admitted job executes via
//!   `run_job_shared` on one cluster-wide [`SlotPool`](sidr_mapreduce::SlotPool), so map/reduce
//!   capacity is bounded across tenants, with inverted scheduling
//!   intact — in-flight reduces, not idle ones, gate map eligibility;
//! * **admission pre-flight**: submissions are `sidr-analyze`d before
//!   anything is scheduled; error findings reject the job at the door;
//! * **early correct results over the wire** (§3.4, §5): every
//!   keyblock streams back as a frame the moment its reduce commits,
//!   while the job's remaining maps are still running;
//! * **computational steering** (§3.4): a client-supplied priority
//!   region reorders the reduce schedule per submission.
//!
//! The wire protocol is length-prefixed JSON ([`frame`]); the
//! submission payload is the same [`JobSpec`](sidr_core::spec::JobSpec)
//! document `sidr plan --spec` writes and `sidr-lint --spec` verifies.
//! Clients that offer `accept_binary` in their handshake receive each
//! keyblock as a packed binary frame instead ([`binframe`]) — same
//! records, no JSON re-encode on the hot path.
//!
//! ```no_run
//! use sidr_serve::{Client, Server, ServerConfig, SubmitOptions};
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let addr = server.local_addr().unwrap();
//! std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr).unwrap();
//! # let spec: sidr_core::spec::JobSpec = todo!();
//! let ticket = client.submit(&spec, "/data/temperature.scinc",
//!     SubmitOptions::default()).unwrap();
//! client.stream_job(ticket.job, |reducer, at_ms, records| {
//!     println!("keyblock {reducer} final after {at_ms} ms: {} records",
//!         records.len());
//! }).unwrap();
//! ```

pub mod binframe;
pub mod client;
pub mod fleet;
pub mod frame;
pub mod metrics;
pub mod proto;
pub mod server;

pub use binframe::KeyblockBin;
pub use client::{Client, JobOutcome, ServeError, Ticket};
pub use fleet::{
    fleet_metrics, Fleet, FleetConfig, PartitionStatus, RemoteJob, SourceLoc, WorkerConn,
    WorkerRequest, WorkerResponse, WorkerStat,
};
pub use frame::{
    handshake_accept, handshake_dial, handshake_dial_binary, FrameError, Hello, Role, HELLO_MAGIC,
    MAX_FRAME, PROTOCOL_VERSION,
};
pub use proto::{Request, Response, ServerStats, SubmitOptions};
pub use server::{JobState, Server, ServerConfig, ServerHandle};
