//! Named lint targets: the paper's experiment configurations.
//!
//! `sidr-lint --preset <name>` verifies the exact (query, splits,
//! reducers) combinations the experiment binaries run, so CI proves
//! the plans behind the figures before the figures are produced.

use sidr_coords::Shape;
use sidr_core::{Operator, StructuralQuery};
use sidr_mapreduce::{InputSplit, SplitGenerator};

/// One named lint target: a query, its splits and the reducer counts
/// to verify plans for.
pub struct PresetJob {
    pub name: &'static str,
    pub about: &'static str,
    pub query: StructuralQuery,
    pub splits: Vec<InputSplit>,
    pub reducer_counts: Vec<usize>,
}

/// The available preset names.
pub fn preset_names() -> &'static [(&'static str, &'static str)] {
    &[
        (
            "query1-tiny",
            "CI-scale Query 1 analog: 2.5 MB dataset, 24 keyblocks' worth of keys",
        ),
        ("query1-small", "laptop-scale Query 1 (§5), 22 keyblocks"),
        ("query2-small", "laptop-scale Query 2 (§5), 10 keyblocks"),
        (
            "query1",
            "full-scale Query 1: 348 GB dataset geometry, 22 keyblocks",
        ),
        (
            "fig08",
            "Figure 8 weekly-averages config: {364,250,200}/{7,5,1}, 22 keyblocks",
        ),
        (
            "table3",
            "Table 3 connection-scaling config: Query 1 at 22…1024 keyblocks",
        ),
    ]
}

/// Builds a preset by name.
pub fn preset(name: &str) -> Option<PresetJob> {
    match name {
        "query1-tiny" => {
            // Query 1's geometry scaled until the dataset fits in a CI
            // artifact: {48,36,36,10} f32 inputs (~2.5 MB), averaged
            // over 2-row windows → K′ᵀ = {24,1,1,1}. Small enough that
            // `sidr-submit --generate` builds it in well under a
            // second, structured enough that 12 maps feed 4 keyblocks
            // with real dependency overlap.
            let query = StructuralQuery::new(
                "windspeed",
                Shape::new(vec![48, 36, 36, 10]).expect("valid"),
                Shape::new(vec![2, 36, 36, 10]).expect("valid"),
                Operator::Mean,
            )
            .expect("query is structural");
            // Four extraction-aligned rows per split → 12 map tasks.
            let splits = SplitGenerator::new(query.input_space().clone(), 4)
                .aligned(36 * 36 * 10 * 4 * 4, 2)
                .expect("splits generate");
            Some(PresetJob {
                name: "query1-tiny",
                about: "CI-scale Query 1 analog",
                query,
                splits,
                reducer_counts: vec![4],
            })
        }
        "query1-small" => {
            let query = StructuralQuery::query1_small().expect("paper query is valid");
            let splits = aligned_splits(&query, 4, 1 << 20);
            Some(PresetJob {
                name: "query1-small",
                about: "laptop-scale Query 1",
                query,
                splits,
                reducer_counts: vec![22],
            })
        }
        "query2-small" => {
            let query = StructuralQuery::query2_small(0.0, 1.0).expect("paper query is valid");
            let splits = aligned_splits(&query, 4, 1 << 20);
            Some(PresetJob {
                name: "query2-small",
                about: "laptop-scale Query 2",
                query,
                splits,
                reducer_counts: vec![10],
            })
        }
        "query1" => {
            let query = StructuralQuery::query1().expect("paper query is valid");
            // The SciHadoop split regime of §5: 128 MB splits of the
            // 348 GB dataset, aligned to the extraction shape.
            let splits = aligned_splits(&query, 4, 128 << 20);
            Some(PresetJob {
                name: "query1",
                about: "full-scale Query 1 geometry",
                query,
                splits,
                reducer_counts: vec![22],
            })
        }
        "fig08" => {
            // The weekly-averages example Figure 8 draws: two weeks
            // of rows per split (see crates/experiments/src/bin/fig08.rs).
            let query = StructuralQuery::new(
                "temperature",
                Shape::new(vec![364, 250, 200]).expect("valid"),
                Shape::new(vec![7, 5, 1]).expect("valid"),
                Operator::Mean,
            )
            .expect("query is structural");
            let splits = SplitGenerator::new(query.input_space().clone(), 4)
                .aligned(250 * 200 * 4 * 14, 7)
                .expect("splits generate");
            Some(PresetJob {
                name: "fig08",
                about: "Figure 8 weekly-averages config",
                query,
                splits,
                reducer_counts: vec![22],
            })
        }
        "table3" => {
            let query = StructuralQuery::query1().expect("paper query is valid");
            let splits = aligned_splits(&query, 4, 128 << 20);
            Some(PresetJob {
                name: "table3",
                about: "Table 3 connection scaling",
                query,
                splits,
                reducer_counts: vec![22, 66, 132, 264, 528, 1024],
            })
        }
        _ => None,
    }
}

fn aligned_splits(query: &StructuralQuery, element_size: u64, split_bytes: u64) -> Vec<InputSplit> {
    SplitGenerator::new(query.input_space().clone(), element_size)
        .aligned(split_bytes, query.extraction.shape()[0])
        .expect("paper geometries generate valid splits")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_preset_builds() {
        for &(name, _) in preset_names() {
            let job = preset(name).expect("listed preset builds");
            assert_eq!(job.name, name);
            assert!(!job.splits.is_empty());
            assert!(!job.reducer_counts.is_empty());
        }
        assert!(preset("no-such").is_none());
    }
}
