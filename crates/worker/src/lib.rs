//! `sidr-worker` — the worker half of distributed execution.
//!
//! A worker is a TCP daemon that does exactly two things:
//!
//! * **run task attempts** dispatched by a `sidr-serve` coordinator —
//!   map attempts read their split and keep the resulting per-reducer
//!   partitions (encoded CRC-framed SMOF buffers) in memory; reduce
//!   attempts fetch their source partitions from the workers holding
//!   them, merge in the plan's fetch order, and stream each key group
//!   back to the coordinator as it leaves the merge;
//! * **serve shuffle fetches** to peer workers over the same
//!   length-prefixed frame protocol, partition bytes riding as one raw
//!   frame after their JSON header.
//!
//! All query knowledge lives in `sidr-core`'s [`SpecExecutor`]; this
//! crate only moves bytes and tracks which map generations it holds.
//! Intermediate data is *volatile* (§6): a fetched partition is
//! consumed by the explicit `Release` that ends a reduce's copy phase,
//! and everything dies with the process — a lost worker costs exactly
//! the re-execution of the `I_ℓ`-scoped maps it held, never the job.
//!
//! Every connection must open with the version/role [`Hello`]
//! handshake; unlike the coordinator (which still speaks to legacy
//! clients), a worker accepts nothing else.

use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use sidr_coords::Coord;
use sidr_core::exec::SpecExecutor;
use sidr_core::spec::JobSpec;
use sidr_core::SidrError;
// The workspace sync facade (parking_lot in normal builds): a task
// thread that panics while holding a lock unwinds cleanly instead of
// poisoning shared state and cascade-killing the daemon.
use sidr_mapreduce::sync::Mutex;
use sidr_mapreduce::tier::{PartitionStore, TierConfig};
use sidr_mapreduce::MrError;
use sidr_serve::fleet::{PartitionStatus, SourceLoc, WorkerConn, WorkerRequest, WorkerResponse};
use sidr_serve::frame::{self, Hello, Role};
use sidr_serve::WorkerStat;

/// One prepared job's state on this worker. Partition bytes live in
/// the process-wide [`PartitionStore`]; this tracks the generations.
struct JobStore {
    exec: Arc<SpecExecutor>,
    /// Map generations committed here.
    committed: HashSet<(usize, u32)>,
    /// Partitions consumed by a completed copy phase (volatile
    /// intermediate data): fetching one again reports `Missing`.
    consumed: HashSet<(usize, usize, u32)>,
    /// Partitions whose spilled replica failed its read-back CRC:
    /// the data is gone (not "empty"), so fetches report `Missing`
    /// and the coordinator re-executes the producing map.
    lost: HashSet<(usize, usize, u32)>,
}

/// Resource configuration of one worker process.
#[derive(Clone, Debug, Default)]
pub struct WorkerOptions {
    /// Resident-partition byte budget; 0 means unbounded.
    pub budget_bytes: u64,
    /// Spill directory; defaults to a per-process temp directory.
    pub spill_dir: Option<PathBuf>,
    /// Chaos switch: every spill write fails as if the disk were full.
    pub fail_spills: bool,
}

/// Shared state of one worker process.
struct Shared {
    addr: Mutex<Option<SocketAddr>>,
    jobs: Mutex<HashMap<u64, JobStore>>,
    /// All partition bytes, both tiers, across jobs — the byte budget
    /// is per worker process, not per job.
    store: PartitionStore,
    dead: AtomicBool,
    /// Clones of every live connection, so `kill` can sever them
    /// mid-frame (crash semantics, not graceful drain).
    conns: Mutex<Vec<TcpStream>>,
    tasks_in_flight: AtomicU64,
    map_attempts: AtomicU64,
    reduce_attempts: AtomicU64,
    /// Test knobs: artificial per-source fetch cost and pre-merge
    /// pause, so chaos tests can land a kill deterministically inside
    /// the copy phase or before any reduce completes. Re-read on
    /// every tick of the pause loop, so a large value acts as a gate
    /// a test can hold closed across a kill and then reopen.
    fetch_delay_ms: AtomicU64,
    reduce_delay_ms: AtomicU64,
}

impl Shared {
    /// Waits out the artificial delay a knob currently asks for,
    /// re-reading it each tick (a test lowering the knob releases
    /// in-flight pauses immediately). Returns `false` if the worker
    /// died while pausing.
    fn pause(&self, knob: &AtomicU64) -> bool {
        let started = Instant::now();
        loop {
            if self.dead.load(Ordering::SeqCst) {
                return false;
            }
            let delay = Duration::from_millis(knob.load(Ordering::SeqCst));
            if started.elapsed() >= delay {
                return true;
            }
            thread::sleep(Duration::from_millis(5));
        }
    }

    fn stat(&self) -> WorkerStat {
        let pressure = self.store.pressure();
        WorkerStat {
            addr: self
                .addr
                .lock()
                .as_ref()
                .map(|a| a.to_string())
                .unwrap_or_default(),
            alive: !self.dead.load(Ordering::SeqCst),
            heartbeat_age_ms: 0,
            tasks_in_flight: self.tasks_in_flight.load(Ordering::Relaxed),
            map_attempts: self.map_attempts.load(Ordering::Relaxed),
            reduce_attempts: self.reduce_attempts.load(Ordering::Relaxed),
            partitions_held: self.store.partition_count() as u64,
            resident_bytes: pressure.resident_bytes,
            spilled_bytes: pressure.spilled_bytes,
            budget_bytes: pressure.budget_bytes,
            peak_resident_bytes: pressure.peak_resident_bytes,
            spill_failures: pressure.spill_failures,
        }
    }
}

/// A running worker: accept loop on a background thread, one handler
/// thread per connection. [`Worker::kill`] is crash semantics for
/// chaos tests — the listener closes, live connections are severed
/// mid-frame and the partition store is wiped, exactly what a dead
/// process looks like to the rest of the fleet.
pub struct Worker {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Mutex<Option<thread::JoinHandle<()>>>,
}

impl Worker {
    /// Binds and starts serving with default resources (unbounded
    /// memory). Use port 0 to let the OS pick.
    pub fn spawn(addr: impl ToSocketAddrs) -> std::io::Result<Worker> {
        Worker::spawn_with(addr, WorkerOptions::default())
    }

    /// Binds and starts serving with an explicit resource
    /// configuration (memory budget, spill directory, chaos knobs).
    pub fn spawn_with(addr: impl ToSocketAddrs, options: WorkerOptions) -> std::io::Result<Worker> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let spill_dir = options.spill_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!(
                "sidr-worker-spill-{}-{}",
                std::process::id(),
                local.port()
            ))
        });
        let tier_cfg = TierConfig {
            budget_bytes: options.budget_bytes,
            fail_all_spills: options.fail_spills,
            ..TierConfig::default()
        };
        let shared = Arc::new(Shared {
            addr: Mutex::new(Some(local)),
            jobs: Mutex::new(HashMap::new()),
            store: PartitionStore::on_disk(tier_cfg, spill_dir),
            dead: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            tasks_in_flight: AtomicU64::new(0),
            map_attempts: AtomicU64::new(0),
            reduce_attempts: AtomicU64::new(0),
            fetch_delay_ms: AtomicU64::new(0),
            reduce_delay_ms: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let acceptor = thread::Builder::new()
            .name(format!("sidr-worker-{local}"))
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_shared.dead.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let mut conns = accept_shared.conns.lock();
                    // Compact closed entries so the list tracks live
                    // connections, not lifetime history.
                    conns.retain(|s| s.peer_addr().is_ok());
                    if let Ok(clone) = stream.try_clone() {
                        conns.push(clone);
                    }
                    drop(conns);
                    let handler_shared = Arc::clone(&accept_shared);
                    thread::spawn(move || handle_connection(handler_shared, stream));
                }
                // Dropping the listener here makes further dials fail
                // with connection-refused: a dead worker, not a hung
                // one.
            })?;
        Ok(Worker {
            shared,
            addr: local,
            acceptor: Mutex::new(Some(acceptor)),
        })
    }

    /// The bound address workers advertise to the fleet.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time self-report (what a `Ping` returns).
    pub fn stat(&self) -> WorkerStat {
        self.shared.stat()
    }

    /// Map generations currently committed on this worker, sorted.
    /// Chaos tests capture this immediately before [`Worker::kill`]:
    /// it is the ground truth for which maps the fault layer must
    /// re-execute.
    pub fn committed_maps(&self, job: u64) -> Vec<(usize, u32)> {
        let jobs = self.shared.jobs.lock();
        let mut v: Vec<(usize, u32)> = jobs
            .get(&job)
            .map(|j| j.committed.iter().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Artificial per-source-partition fetch cost in a reduce's copy
    /// phase (test knob: widens the window for a mid-shuffle-fetch
    /// kill).
    pub fn set_fetch_delay(&self, d: Duration) {
        self.shared
            .fetch_delay_ms
            .store(d.as_millis() as u64, Ordering::SeqCst);
    }

    /// Artificial pause between a reduce's copy phase and its merge
    /// (test knob: holds reduces open so a kill lands before any
    /// completes).
    pub fn set_reduce_delay(&self, d: Duration) {
        self.shared
            .reduce_delay_ms
            .store(d.as_millis() as u64, Ordering::SeqCst);
    }

    /// Simulates the process dying: stop accepting, sever every live
    /// connection mid-frame, wipe the partition store. The coordinator
    /// finds out the way it would with a real crash — broken task
    /// connections and failed heartbeats.
    pub fn kill(&self) {
        if self.shared.dead.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking acceptor so it observes the flag and drops
        // the listener.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.lock().take() {
            let _ = h.join();
        }
        for s in self.shared.conns.lock().drain(..) {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        let jobs: Vec<u64> = {
            let mut jobs = self.shared.jobs.lock();
            let ids = jobs.keys().copied().collect();
            jobs.clear();
            ids
        };
        // Wipe both tiers: a dead process loses its memory *and* its
        // local disk as far as the fleet is concerned.
        for job in jobs {
            self.shared.store.remove_job(job);
        }
    }

    /// Blocks until the worker is killed (daemon mode for the CLI).
    pub fn wait(&self) {
        while !self.shared.dead.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(50));
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.kill();
    }
}

/// One connection: mandatory `Hello` handshake, then a request loop.
/// The coordinator opens a fresh connection per dispatch; peers open
/// one per fetch — either way requests on one connection are serial.
fn handle_connection(shared: Arc<Shared>, stream: TcpStream) {
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = stream;

    // Workers predate nothing: every dialer speaks the handshake, so
    // anything else on the first frame is a protocol error and the
    // connection just closes.
    let hello: Hello = match frame::recv(&mut reader) {
        Ok(Some(h)) => h,
        _ => return,
    };
    if frame::handshake_accept(&mut writer, &hello, Role::Worker).is_err() {
        return;
    }

    loop {
        let req = match frame::recv::<WorkerRequest>(&mut reader) {
            Ok(Some(r)) => r,
            _ => return,
        };
        if shared.dead.load(Ordering::SeqCst) {
            return;
        }
        let ok = match req {
            WorkerRequest::Ping => {
                frame::send(&mut writer, &WorkerResponse::Pong(shared.stat())).is_ok()
            }
            WorkerRequest::Prepare {
                job,
                spec_json,
                input,
                opts,
            } => {
                let resp = match JobSpec::from_json(&spec_json) {
                    Ok(spec) => {
                        // Invert `I_ℓ` into per-map pending-consumer
                        // counts: the tier ranks spill victims coldest
                        // first, and "cold" is "few reducers still
                        // waiting on this map's partitions".
                        let mut pending = vec![0u64; spec.splits.len()];
                        for deps in &spec.reduce_deps {
                            for &m in deps {
                                if let Some(c) = pending.get_mut(m) {
                                    *c += 1;
                                }
                            }
                        }
                        let fault_plan = opts.fault_plan.clone();
                        match SpecExecutor::new(Path::new(&input), spec, opts) {
                            Ok(exec) => {
                                shared.store.prepare_job(job, fault_plan, &pending);
                                shared.jobs.lock().insert(
                                    job,
                                    JobStore {
                                        exec: Arc::new(exec),
                                        committed: HashSet::new(),
                                        consumed: HashSet::new(),
                                        lost: HashSet::new(),
                                    },
                                );
                                WorkerResponse::Prepared { job }
                            }
                            Err(e) => failed(format!("prepare job {job}: {e}"), false),
                        }
                    }
                    Err(e) => failed(format!("prepare job {job}: {e}"), false),
                };
                frame::send(&mut writer, &resp).is_ok()
            }
            WorkerRequest::RunMap { job, task, attempt } => {
                let resp = run_map(&shared, job, task, attempt);
                frame::send(&mut writer, &resp).is_ok()
            }
            WorkerRequest::RunReduce {
                job,
                reducer,
                attempt,
                sources,
                expected_raw,
            } => run_reduce(
                &shared,
                &mut writer,
                job,
                reducer,
                attempt,
                sources,
                expected_raw,
            ),
            WorkerRequest::FetchPartition {
                job,
                map,
                reducer,
                epoch,
            } => {
                let data = peek_partition(&shared, job, map, reducer, epoch);
                let status = match &data {
                    Peek::Data(_) => PartitionStatus::Data,
                    Peek::Empty => PartitionStatus::Empty,
                    Peek::Missing => PartitionStatus::Missing,
                };
                let mut ok =
                    frame::send(&mut writer, &WorkerResponse::Partition { status }).is_ok();
                if let Peek::Data(bytes) = data {
                    ok = ok && frame::write_frame(&mut writer, &bytes).is_ok();
                }
                ok
            }
            WorkerRequest::Release { job, reducer, maps } => {
                release(&shared, job, reducer, &maps);
                frame::send(&mut writer, &WorkerResponse::Released).is_ok()
            }
            WorkerRequest::Finish { job } => {
                shared.jobs.lock().remove(&job);
                // Sweep both tiers: volatile intermediate data leaves
                // no spill files behind after the job ends.
                shared.store.remove_job(job);
                frame::send(&mut writer, &WorkerResponse::Finished).is_ok()
            }
        };
        if !ok {
            return;
        }
        let _ = writer.flush();
    }
}

/// Armed count of task attempts that should panic on entry (test
/// hook), gated by [`PANIC_JOB`] so parallel tests in one process
/// cannot consume each other's armed panics.
static PANIC_INJECT: AtomicU64 = AtomicU64::new(0);
static PANIC_JOB: AtomicU64 = AtomicU64::new(0);

/// Arms the next `n` task attempts of job `job` in this process to
/// panic mid-task. The panic is caught at the attempt boundary and
/// reported as a retryable failure; with the workspace sync facade no
/// shared lock is poisoned by the unwind, so the worker keeps serving
/// pings, tasks and fetches afterwards — which the regression test
/// asserts.
#[doc(hidden)]
pub fn inject_task_panics(job: u64, n: u64) {
    PANIC_JOB.store(job, Ordering::SeqCst);
    PANIC_INJECT.store(n, Ordering::SeqCst);
}

fn maybe_panic_in_task(job: u64) {
    if PANIC_JOB.load(Ordering::SeqCst) == job
        && PANIC_INJECT
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    {
        panic!("injected task panic (test hook)");
    }
}

fn failed(detail: String, fatal: bool) -> WorkerResponse {
    WorkerResponse::Failed {
        detail,
        fatal,
        lost_sources: Vec::new(),
    }
}

/// Is this a job-killing error (retry cannot help) or an attempt
/// failure chargeable to the retry budget?
fn is_fatal(e: &SidrError) -> bool {
    matches!(
        e,
        SidrError::Engine(MrError::AnnotationMismatch { .. })
            | SidrError::Engine(MrError::BadConfig(_))
    )
}

fn run_map(shared: &Shared, job: u64, task: usize, attempt: u32) -> WorkerResponse {
    let exec = {
        let jobs = shared.jobs.lock();
        match jobs.get(&job) {
            Some(j) => Arc::clone(&j.exec),
            None => return failed(format!("job {job} is not prepared here"), false),
        }
    };
    shared.tasks_in_flight.fetch_add(1, Ordering::Relaxed);
    shared.map_attempts.fetch_add(1, Ordering::Relaxed);
    // Task code is user-extensible and may panic; the catch turns a
    // panicking attempt into a retryable failure instead of killing
    // the handler thread (whose death would leave the connection's
    // clone in `conns` holding the socket open — a hung coordinator,
    // not a failed attempt). The sync facade (parking_lot) guarantees
    // no lock is poisoned by the unwind.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        maybe_panic_in_task(job);
        exec.run_map(task, attempt)
    }));
    shared.tasks_in_flight.fetch_sub(1, Ordering::Relaxed);
    let result = match result {
        Ok(r) => r,
        Err(_) => {
            return failed(
                format!("map {task} attempt {attempt}: task panicked on this worker"),
                false,
            )
        }
    };
    match result {
        Ok(out) => {
            let mut partitions = Vec::with_capacity(out.partitions.len());
            // Insert the bytes before committing the generation:
            // inserting may spill *other* partitions synchronously
            // (backpressure on the producing task's own thread), and a
            // peek must never see a committed generation whose bytes
            // are not yet in the store.
            for (reducer, bytes) in out.partitions {
                partitions.push(reducer);
                shared
                    .store
                    .insert((job, task, reducer, attempt), Arc::new(bytes));
            }
            let mut jobs = shared.jobs.lock();
            let Some(store) = jobs.get_mut(&job) else {
                // Finish raced the map; drop what we just stored.
                drop(jobs);
                for &reducer in &partitions {
                    shared.store.remove(&(job, task, reducer, attempt));
                }
                return failed(format!("job {job} vanished mid-map"), false);
            };
            store.committed.insert((task, attempt));
            WorkerResponse::MapDone {
                job,
                task,
                attempt,
                records_in: out.records_in,
                records_out: out.records_out,
                partitions,
            }
        }
        Err(e) => failed(format!("map {task} attempt {attempt}: {e}"), is_fatal(&e)),
    }
}

enum Peek {
    Data(Arc<Vec<u8>>),
    Empty,
    Missing,
}

/// Non-consuming read of one held partition generation. A spilled
/// replica is read back through the tier and re-validated; a failed
/// read-back means the generation is *lost* — reported `Missing` so
/// the coordinator re-executes the producing map, never `Empty`
/// (which would silently drop its records from the output).
fn peek_partition(shared: &Shared, job: u64, map: usize, reducer: usize, epoch: u32) -> Peek {
    {
        let jobs = shared.jobs.lock();
        let Some(store) = jobs.get(&job) else {
            return Peek::Missing;
        };
        if store.consumed.contains(&(map, reducer, epoch)) {
            // Volatile intermediate data: an earlier copy phase
            // consumed this generation.
            return Peek::Missing;
        }
        if store.lost.contains(&(map, reducer, epoch)) {
            return Peek::Missing;
        }
        if !store.committed.contains(&(map, epoch)) {
            return Peek::Missing;
        }
    }
    // The jobs lock is dropped here: a spilled partition's read-back
    // does disk I/O and must not serialize every other request behind
    // it.
    match shared.store.get(&(job, map, reducer, epoch)) {
        Ok(Some(bytes)) => Peek::Data(bytes),
        Ok(None) => {
            // Committed but not in the store: the map produced nothing
            // for this reducer — unless the whole job was finished
            // between the two locks, in which case it is gone.
            if shared.jobs.lock().contains_key(&job) {
                Peek::Empty
            } else {
                Peek::Missing
            }
        }
        Err(e) => {
            // The spilled replica failed its read-back CRC: the bytes
            // are unrecoverable on this worker. Record the loss so
            // retries don't re-probe a damaged file.
            eprintln!("[worker] partition (job={job} m{map} r{reducer} e{epoch}) lost: {e}");
            let mut jobs = shared.jobs.lock();
            if let Some(store) = jobs.get_mut(&job) {
                store.lost.insert((map, reducer, epoch));
            }
            Peek::Missing
        }
    }
}

/// Consumes partitions after a successful copy phase.
fn release(shared: &Shared, job: u64, reducer: usize, maps: &[(usize, u32)]) {
    {
        let mut jobs = shared.jobs.lock();
        let Some(store) = jobs.get_mut(&job) else {
            return;
        };
        for &(map, epoch) in maps {
            store.consumed.insert((map, reducer, epoch));
        }
    }
    for &(map, epoch) in maps {
        shared.store.remove(&(job, map, reducer, epoch));
        // The map just lost a pending consumer — it ranks colder for
        // the next spill-victim selection.
        shared.store.consumer_released(job, map);
    }
}

/// One reduce attempt, end to end on this worker:
///
/// 1. **copy phase** — peek every source partition from its holder
///    (self-fetches read the local store, peers over TCP). Any miss
///    aborts with `lost_sources` and *nothing consumed* — peeks are
///    side-effect-free, so the retry after recovery starts clean.
/// 2. **release** — consume every fetched generation at its holder,
///    then tell the coordinator the copy is done (`Fetched`).
/// 3. **merge & stream** — merge in the given source order (the
///    plan's fetch order: the equal-key tie-break that keeps output
///    byte-identical to a single-process run) and stream each key
///    group the moment it leaves the merge.
///
/// Returns whether the connection is still usable.
fn run_reduce(
    shared: &Shared,
    writer: &mut TcpStream,
    job: u64,
    reducer: usize,
    _attempt: u32,
    sources: Vec<SourceLoc>,
    expected_raw: Option<u64>,
) -> bool {
    let exec = {
        let jobs = shared.jobs.lock();
        match jobs.get(&job) {
            Some(j) => Arc::clone(&j.exec),
            None => {
                return frame::send(
                    writer,
                    &failed(format!("job {job} is not prepared here"), false),
                )
                .is_ok()
            }
        }
    };
    let self_addr = shared
        .addr
        .lock()
        .as_ref()
        .map(|a| a.to_string())
        .unwrap_or_default();
    shared.tasks_in_flight.fetch_add(1, Ordering::Relaxed);
    shared.reduce_attempts.fetch_add(1, Ordering::Relaxed);
    // Same panic boundary as `run_map`: a panicking attempt must
    // surface as a failed attempt, not a severed-but-half-open
    // connection.
    let usable = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        maybe_panic_in_task(job);
        run_reduce_inner(
            shared,
            writer,
            job,
            reducer,
            &exec,
            &self_addr,
            &sources,
            expected_raw,
        )
    }));
    shared.tasks_in_flight.fetch_sub(1, Ordering::Relaxed);
    match usable {
        Ok(u) => u,
        Err(_) => frame::send(
            writer,
            &failed(
                format!("reduce {reducer}: task panicked on this worker"),
                false,
            ),
        )
        .is_ok(),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_reduce_inner(
    shared: &Shared,
    writer: &mut TcpStream,
    job: u64,
    reducer: usize,
    exec: &SpecExecutor,
    self_addr: &str,
    sources: &[SourceLoc],
    expected_raw: Option<u64>,
) -> bool {
    // --- copy phase -------------------------------------------------
    // Fetched buffers stay in `Arc`s end to end: a self-fetch shares
    // the local store's allocation outright, and v3 buffers are merged
    // in place by `run_reduce` — no partition is copied or re-decoded
    // on this path.
    let fetch_started = Instant::now();
    let mut partitions: Vec<Arc<Vec<u8>>> = Vec::with_capacity(sources.len());
    let mut lost: Vec<usize> = Vec::new();
    // One fetch connection per peer, reused across that peer's
    // partitions (Table 3's connection accounting, worker-side).
    let mut peers: HashMap<&str, WorkerConn> = HashMap::new();
    for src in sources {
        if !shared.pause(&shared.fetch_delay_ms) {
            return false;
        }
        if src.holder == self_addr {
            match peek_partition(shared, job, src.map, reducer, src.epoch) {
                Peek::Data(bytes) => partitions.push(bytes),
                Peek::Empty => partitions.push(Arc::new(Vec::new())),
                Peek::Missing => lost.push(src.map),
            }
            continue;
        }
        if !peers.contains_key(src.holder.as_str()) {
            match WorkerConn::dial_as(&src.holder, Role::Worker, None) {
                Ok(c) => {
                    peers.insert(src.holder.as_str(), c);
                }
                Err(_) => {
                    // Holder unreachable: its generations are gone.
                    lost.push(src.map);
                    continue;
                }
            }
        }
        let conn = peers.get_mut(src.holder.as_str()).expect("just inserted");
        let fetched = conn
            .send(&WorkerRequest::FetchPartition {
                job,
                map: src.map,
                reducer,
                epoch: src.epoch,
            })
            .and_then(|()| conn.recv());
        match fetched {
            Ok(WorkerResponse::Partition {
                status: PartitionStatus::Data,
            }) => match conn.recv_raw() {
                Ok(bytes) => partitions.push(Arc::new(bytes)),
                Err(_) => lost.push(src.map),
            },
            Ok(WorkerResponse::Partition {
                status: PartitionStatus::Empty,
            }) => partitions.push(Arc::new(Vec::new())),
            _ => lost.push(src.map),
        }
    }
    if !lost.is_empty() {
        lost.sort_unstable();
        lost.dedup();
        return frame::send(
            writer,
            &WorkerResponse::Failed {
                detail: format!("reduce {reducer}: {} source partition(s) lost", lost.len()),
                fatal: false,
                lost_sources: lost,
            },
        )
        .is_ok();
    }

    // --- release: the copy is complete, consume the inputs ----------
    let mut by_holder: HashMap<&str, Vec<(usize, u32)>> = HashMap::new();
    for src in sources {
        by_holder
            .entry(src.holder.as_str())
            .or_default()
            .push((src.map, src.epoch));
    }
    for (holder, maps) in by_holder {
        if holder == self_addr {
            release(shared, job, reducer, &maps);
            continue;
        }
        let released = peers
            .get_mut(holder)
            .map(|conn| {
                conn.send(&WorkerRequest::Release { job, reducer, maps })
                    .and_then(|()| conn.recv())
            })
            .transpose();
        // A holder dying *during* release changes nothing: whatever it
        // still held is gone with it, which is exactly what release
        // was about to record.
        let _ = released;
    }
    drop(peers);
    let fetch_ms = fetch_started.elapsed().as_millis() as u64;
    if frame::send(writer, &WorkerResponse::Fetched { job, reducer }).is_err() {
        return false;
    }
    let _ = writer.flush();

    if !shared.pause(&shared.reduce_delay_ms) {
        return false;
    }

    // --- merge & stream ---------------------------------------------
    let mut wire_broken = false;
    let result = {
        let mut emit = |records: &[(Coord, f64)]| -> sidr_core::Result<()> {
            frame::send(
                writer,
                &WorkerResponse::Group {
                    records: records.to_vec(),
                },
            )
            .map_err(|e| {
                wire_broken = true;
                SidrError::Engine(MrError::Output(format!("streaming to coordinator: {e}")))
            })
        };
        exec.run_reduce(reducer, &partitions, expected_raw, &mut emit)
    };
    match result {
        Ok(emitted) => {
            frame::send(writer, &WorkerResponse::ReduceDone { emitted, fetch_ms }).is_ok()
        }
        Err(_) if wire_broken => false,
        Err(e) => frame::send(
            writer,
            &failed(format!("reduce {reducer}: {e}"), is_fatal(&e)),
        )
        .is_ok(),
    }
}
