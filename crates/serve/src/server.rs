//! The `sidr-serve` daemon: multi-tenant execution of structural
//! queries with streaming early results.
//!
//! One process owns one cluster-wide [`SlotPool`]; every admitted job
//! executes on it concurrently via `run_job_shared`, so the §3.3
//! slot-class bounds hold *across* jobs, not per job. Admission runs
//! the `sidr-analyze` pre-flight on each submitted [`JobSpec`] before
//! anything is scheduled — a plan that would hang or answer wrongly
//! is rejected at the door with its diagnostics.
//!
//! Each job's output path is a [`StreamingOutput`](sidr_core::early::StreamingOutput) in hang-up-tolerant
//! mode, tee'd into an in-memory sink: every committed keyblock
//! crosses the wire as a [`Response::Keyblock`] frame the moment its
//! reduce finishes (§3.4/§5 early correct results), and a client that
//! disconnects mid-stream mutes the stream without failing the job —
//! the job completes to its sink and the server's lifetime counters.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use sidr_analyze::{analyze_spec, AnalyzeOptions};
use sidr_coords::Coord;
use sidr_core::diag::Severity;
use sidr_core::early::streaming_output;
use sidr_core::exec::ExecOptions;
use sidr_core::framework::{run_spec_on_pool, run_spec_with_executor, SpecRunOptions};
use sidr_core::spec::JobSpec;
use sidr_mapreduce::{
    CancelToken, InMemoryOutput, MrError, OutputCollector, ProgressProbe, SlotPool,
};
use sidr_scifile::ScincFile;

use crate::binframe;
use crate::fleet::{Fleet, FleetConfig};
use crate::frame::{self, FrameError, Hello, Role};
use crate::metrics::{serve as serve_metrics, ServeMetrics};
use crate::proto::{Request, Response, ServerStats, SubmitOptions};

/// One message on a connection's outbound channel. JSON responses are
/// serialized by the writer thread; a binary keyblock arrives already
/// encoded (one allocation at the forwarder, written as-is), so the
/// reduce-commit → socket path never runs a JSON encoder.
enum Outbound {
    Json(Response),
    BinKeyblock(Vec<u8>),
}

/// The occupancy gauge a job in `state` contributes to, if any.
fn state_gauge(m: &ServeMetrics, state: JobState) -> Option<&sidr_obs::Gauge> {
    match state {
        JobState::Queued | JobState::Planning => Some(&m.jobs_queued),
        JobState::Running => Some(&m.jobs_running),
        JobState::Done | JobState::Failed | JobState::Cancelled | JobState::DeadlineExceeded => {
            None
        }
    }
}

/// Static configuration of one serving process.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Cluster-wide map slots shared by every job.
    pub map_slots: usize,
    /// Cluster-wide reduce slots shared by every job.
    pub reduce_slots: usize,
    /// Admission pre-flight configuration.
    pub analyze: AnalyzeOptions,
    /// Worker addresses (`host:port`). Empty means in-process
    /// execution; non-empty turns the server into a coordinator that
    /// dispatches every task attempt to this fleet.
    pub workers: Vec<String>,
    /// Fleet heartbeat probe interval (zero = fleet default).
    pub heartbeat_every: Duration,
    /// Fleet heartbeat probe timeout (zero = fleet default).
    pub heartbeat_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            map_slots: 4,
            reduce_slots: 2,
            analyze: AnalyzeOptions::default(),
            workers: Vec::new(),
            heartbeat_every: Duration::ZERO,
            heartbeat_timeout: Duration::ZERO,
        }
    }
}

/// Lifecycle of one admitted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for its worker thread.
    Queued,
    /// Opening inputs and re-deriving the plan from the spec.
    Planning,
    /// Executing on the shared pool.
    Running,
    Done,
    Failed,
    Cancelled,
    /// Cancelled by the deadline watchdog: the spec's `deadline_ms`
    /// expired while the job was still running.
    DeadlineExceeded,
}

impl JobState {
    fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled | JobState::DeadlineExceeded
        )
    }

    /// The legal lifecycle edges. Terminal states have no successors;
    /// a job can only fail out of `Planning` (input open) or `Running`
    /// (execution), and `DeadlineExceeded` is a refinement of
    /// cancellation so it too requires `Running`.
    pub fn can_transition(self, to: JobState) -> bool {
        use JobState::*;
        matches!(
            (self, to),
            (Queued, Planning | Cancelled)
                | (Planning, Running | Failed | Cancelled)
                | (Running, Done | Failed | Cancelled | DeadlineExceeded)
        )
    }
}

/// Registry entry: the server's handle on one job.
struct JobHandle {
    state: JobState,
    cancel: CancelToken,
}

/// State shared by the acceptor, connection threads and job threads.
struct Inner {
    config: ServerConfig,
    /// The acceptor's bound address — used to self-connect on
    /// shutdown so the blocking accept loop wakes up.
    addr: SocketAddr,
    pool: SlotPool,
    /// The worker fleet, when configured with workers (coordinator
    /// mode). `None` executes jobs in-process, exactly as before.
    fleet: Option<Fleet>,
    jobs: Mutex<HashMap<u64, JobHandle>>,
    next_job: AtomicU64,
    shutdown: AtomicBool,
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_deadline: AtomicU64,
    keyblocks_committed: AtomicU64,
    bytes_streamed: AtomicU64,
}

impl Inner {
    fn set_state(&self, job: u64, state: JobState) {
        let mut jobs = self.jobs.lock().expect("registry lock");
        let prev = jobs.get_mut(&job).map(|h| {
            let prev = h.state;
            debug_assert!(
                prev.can_transition(state),
                "illegal job state transition {prev:?} -> {state:?} (job {job})"
            );
            h.state = state;
            prev
        });
        drop(jobs);
        let m = serve_metrics();
        if let Some(prev) = prev {
            if let Some(g) = state_gauge(m, prev) {
                g.dec();
            }
            if let Some(g) = state_gauge(m, state) {
                g.inc();
            }
        }
        match state {
            JobState::Done => {
                self.jobs_done.fetch_add(1, Ordering::Relaxed);
                m.jobs_done.inc();
            }
            JobState::Failed => {
                self.jobs_failed.fetch_add(1, Ordering::Relaxed);
                m.jobs_failed.inc();
            }
            JobState::Cancelled => {
                self.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
                m.jobs_cancelled.inc();
            }
            JobState::DeadlineExceeded => {
                self.jobs_deadline.fetch_add(1, Ordering::Relaxed);
                m.jobs_deadline_exceeded.inc();
            }
            _ => {}
        }
    }

    fn stats(&self) -> ServerStats {
        let jobs = self.jobs.lock().expect("registry lock");
        let queued = jobs
            .values()
            .filter(|h| matches!(h.state, JobState::Queued | JobState::Planning))
            .count();
        let running = jobs
            .values()
            .filter(|h| h.state == JobState::Running)
            .count();
        drop(jobs);
        let occ = self.pool.occupancy();
        ServerStats {
            jobs_queued: queued,
            jobs_running: running,
            jobs_done: self.jobs_done.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
            jobs_deadline_exceeded: self.jobs_deadline.load(Ordering::Relaxed),
            map_busy: occ.map_busy,
            map_total: occ.map_total,
            reduce_busy: occ.reduce_busy,
            reduce_total: occ.reduce_total,
            keyblocks_committed: self.keyblocks_committed.load(Ordering::Relaxed),
            bytes_streamed: self.bytes_streamed.load(Ordering::Relaxed),
            workers: self.fleet.as_ref().map(|f| f.stats()).unwrap_or_default(),
        }
    }

    /// Cancels every job that has not yet reached a terminal state.
    fn cancel_all(&self) {
        let jobs = self.jobs.lock().expect("registry lock");
        for h in jobs.values() {
            if !h.state.is_terminal() {
                h.cancel.cancel();
            }
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    inner: Arc<Inner>,
}

/// Control handle usable from other threads (tests, signal handlers).
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<Inner>,
}

impl ServerHandle {
    /// Stops the accept loop and cancels outstanding jobs. Idempotent.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.cancel_all();
        // Wake the blocking acceptor.
        let _ = TcpStream::connect(self.inner.addr);
    }

    /// A stats snapshot, bypassing the wire protocol.
    pub fn stats(&self) -> ServerStats {
        self.inner.stats()
    }
}

impl Server {
    /// Binds the service. Use port 0 to let the OS pick (tests).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        // Register the serving metrics before any traffic, so a scrape
        // of an idle daemon already shows the full inventory at zero.
        let _ = serve_metrics();
        let pool = SlotPool::new(config.map_slots, config.reduce_slots)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        let fleet = if config.workers.is_empty() {
            None
        } else {
            Some(
                Fleet::connect(FleetConfig::with_heartbeat(
                    config.workers.clone(),
                    config.heartbeat_every,
                    config.heartbeat_timeout,
                ))
                .map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
                })?,
            )
        };
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Ok(Server {
            listener,
            inner: Arc::new(Inner {
                config,
                addr: local,
                pool,
                fleet,
                jobs: Mutex::new(HashMap::new()),
                next_job: AtomicU64::new(1),
                shutdown: AtomicBool::new(false),
                jobs_done: AtomicU64::new(0),
                jobs_failed: AtomicU64::new(0),
                jobs_cancelled: AtomicU64::new(0),
                jobs_deadline: AtomicU64::new(0),
                keyblocks_committed: AtomicU64::new(0),
                bytes_streamed: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (the OS-picked port when bound to port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A control handle for shutting the server down from elsewhere.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Runs the accept loop until a `Shutdown` request (or
    /// [`ServerHandle::shutdown`]) arrives. Each connection gets a
    /// reader thread; each admitted job gets a worker thread.
    pub fn run(self) -> std::io::Result<()> {
        for conn in self.listener.incoming() {
            if self.inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            let inner = Arc::clone(&self.inner);
            thread::spawn(move || handle_connection(inner, stream));
        }
        Ok(())
    }
}

/// One connection: a reader loop on this thread, a writer thread
/// draining the outbound channel, and a detached thread per admitted
/// job. The channel fan-in is what lets keyblock frames of concurrent
/// jobs interleave on one socket without tearing frames.
fn handle_connection(inner: Arc<Inner>, stream: TcpStream) {
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut read_half = stream;

    // Peek the connection's first frame: handshake-aware peers open
    // with a [`Hello`] (its `magic` field appears in no legacy
    // request), older clients open straight with a `Request`. Either
    // way no frame is lost, and — as everywhere on this socket — a
    // malformed or hostile opener draws a protocol `Error` frame
    // before the connection closes, never a silent hang-up.
    let mut first_request: Option<Request> = None;
    // Whether this peer's handshake offered (and was granted) binary
    // keyblock frames. Legacy openers never did.
    let mut binary = false;
    match frame::read_frame(&mut read_half) {
        Ok(Some(payload)) => {
            let text = match std::str::from_utf8(&payload) {
                Ok(t) => t,
                Err(e) => {
                    send_error_frame(&mut write_half, format!("payload is not UTF-8: {e}"));
                    return;
                }
            };
            match serde_json::from_str::<Hello>(text) {
                Ok(hello) if hello.magic == frame::HELLO_MAGIC => {
                    // Answer the handshake directly (the writer thread
                    // only speaks `Response`); a version mismatch has
                    // already been reported by `handshake_accept`'s
                    // reply being absent, so just close.
                    if frame::handshake_accept(&mut write_half, &hello, Role::Coordinator).is_err()
                    {
                        return;
                    }
                    binary = hello.accept_binary;
                }
                _ => match serde_json::from_str::<Request>(text) {
                    Ok(req) => first_request = Some(req),
                    Err(e) => {
                        send_error_frame(
                            &mut write_half,
                            FrameError::Malformed(e.to_string()).to_string(),
                        );
                        return;
                    }
                },
            }
        }
        Ok(None) => return,
        Err(e @ FrameError::Oversized { .. })
        | Err(e @ FrameError::Malformed(_))
        | Err(e @ FrameError::VersionMismatch { .. }) => {
            send_error_frame(&mut write_half, e.to_string());
            return;
        }
        Err(_) => return,
    }

    let (tx, rx) = channel::<Outbound>();
    let writer_inner = Arc::clone(&inner);
    let writer = thread::spawn(move || write_loop(writer_inner, write_half, rx));

    if let Some(req) = first_request {
        serve_metrics().frames_in.inc();
        if !handle_request(&inner, req, &tx, binary) {
            drop(tx);
            let _ = writer.join();
            return;
        }
    }
    loop {
        match frame::recv::<Request>(&mut read_half) {
            Ok(Some(req)) => {
                serve_metrics().frames_in.inc();
                let proceed = handle_request(&inner, req, &tx, binary);
                if !proceed {
                    break;
                }
            }
            // Clean disconnect: the job threads keep their tx clones
            // and keep running (hang-up tolerance); we just leave.
            Ok(None) => break,
            Err(FrameError::Io(_)) | Err(FrameError::Truncated { .. }) => break,
            // The stream cannot be resynchronized after a bad length
            // or bad payload; a mid-stream `Hello` is equally
            // unexpected. Report and close.
            Err(e @ FrameError::Oversized { .. })
            | Err(e @ FrameError::Malformed(_))
            | Err(e @ FrameError::VersionMismatch { .. }) => {
                let _ = tx.send(Outbound::Json(Response::Error {
                    message: e.to_string(),
                }));
                break;
            }
        }
    }
    drop(tx);
    let _ = writer.join();
}

/// One-off protocol `Error` frame on a connection whose writer thread
/// hasn't started (the first-frame peek path).
fn send_error_frame(stream: &mut TcpStream, message: String) {
    if frame::send(stream, &Response::Error { message }).is_ok() {
        serve_metrics().frames_out.inc();
    }
}

/// Serializes responses onto the socket, accounting streamed bytes.
/// Either flavor leaves in one vectored write (`write_frame`); a
/// binary keyblock's bytes pass through untouched.
fn write_loop(inner: Arc<Inner>, mut stream: TcpStream, rx: Receiver<Outbound>) {
    for out in &rx {
        let (payload, is_keyblock): (std::borrow::Cow<'_, [u8]>, bool) = match &out {
            Outbound::Json(resp) => {
                let text = match serde_json::to_string(resp) {
                    Ok(t) => t,
                    Err(_) => continue,
                };
                (
                    std::borrow::Cow::Owned(text.into_bytes()),
                    matches!(resp, Response::Keyblock { .. }),
                )
            }
            Outbound::BinKeyblock(bytes) => (std::borrow::Cow::Borrowed(bytes.as_slice()), true),
        };
        if frame::write_frame(&mut stream, &payload).is_err() {
            // Consumer hung up: keep draining so job threads never
            // block on a dead connection, but stop writing.
            for _ in rx.iter() {}
            return;
        }
        serve_metrics().frames_out.inc();
        if is_keyblock {
            inner
                .bytes_streamed
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
            serve_metrics().streamed_bytes.add(payload.len() as u64);
        }
    }
    let _ = stream.flush();
}

/// Dispatches one request; returns false when the connection (or the
/// whole server) should wind down. `binary` is the connection's
/// negotiated keyblock encoding.
fn handle_request(inner: &Arc<Inner>, req: Request, tx: &Sender<Outbound>, binary: bool) -> bool {
    match req {
        Request::Submit {
            spec,
            input,
            options,
        } => {
            admit(inner, spec, input, options, tx, binary);
            true
        }
        Request::Cancel { job } => {
            let jobs = inner.jobs.lock().expect("registry lock");
            match jobs.get(&job) {
                Some(h) => h.cancel.cancel(),
                None => {
                    let _ = tx.send(Outbound::Json(Response::Error {
                        message: format!("unknown job id {job}"),
                    }));
                }
            }
            true
        }
        Request::Stats => {
            let _ = tx.send(Outbound::Json(Response::Stats {
                stats: inner.stats(),
            }));
            true
        }
        Request::Metrics => {
            let _ = tx.send(Outbound::Json(Response::Metrics {
                text: sidr_obs::render_global(),
            }));
            true
        }
        Request::Shutdown => {
            inner.shutdown.store(true, Ordering::SeqCst);
            inner.cancel_all();
            // Wake the acceptor so `Server::run` observes the flag.
            let _ = TcpStream::connect(inner.addr);
            false
        }
    }
}

/// The admission pre-flight (§3.2.1 meets the static verifier): the
/// spec is analyzed *before* anything is scheduled, and a plan with
/// error-severity findings never reaches the pool.
fn admit(
    inner: &Arc<Inner>,
    spec: JobSpec,
    input: String,
    options: SubmitOptions,
    tx: &Sender<Outbound>,
    binary: bool,
) {
    let report = match analyze_spec(&spec, &inner.config.analyze) {
        Ok(r) => r,
        Err(e) => {
            serve_metrics().rejections.inc();
            let _ = tx.send(Outbound::Json(Response::Rejected {
                reason: format!("pre-flight could not analyze the spec: {e}"),
                diagnostics: Vec::new(),
            }));
            return;
        }
    };
    if report.has_errors() {
        serve_metrics().rejections.inc();
        let _ = tx.send(Outbound::Json(Response::Rejected {
            reason: "admission pre-flight found plan errors".into(),
            diagnostics: report
                .diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .map(|d| d.to_string())
                .collect(),
        }));
        return;
    }

    let job = inner.next_job.fetch_add(1, Ordering::Relaxed);
    let cancel = CancelToken::new();
    inner.jobs.lock().expect("registry lock").insert(
        job,
        JobHandle {
            state: JobState::Queued,
            cancel: cancel.clone(),
        },
    );
    serve_metrics().jobs_queued.inc();
    let _ = tx.send(Outbound::Json(Response::Accepted {
        job,
        keyblocks: spec.num_reducers,
        num_maps: spec.splits.len(),
    }));

    let inner = Arc::clone(inner);
    let tx = tx.clone();
    thread::spawn(move || run_admitted_job(inner, job, spec, input, options, cancel, tx, binary));
}

/// One admitted job, end to end: open the input, execute on the
/// shared pool streaming each keyblock as it commits, then send the
/// terminal frame. The streaming collector tolerates hang-ups, so a
/// vanished client mutes the stream while the job completes to its
/// sink (and the lifetime counters).
#[allow(clippy::too_many_arguments)]
fn run_admitted_job(
    inner: Arc<Inner>,
    job: u64,
    spec: JobSpec,
    input: String,
    options: SubmitOptions,
    cancel: CancelToken,
    tx: Sender<Outbound>,
    binary: bool,
) {
    inner.set_state(job, JobState::Planning);
    let file = match ScincFile::open(&input) {
        Ok(f) => f,
        Err(e) => {
            inner.set_state(job, JobState::Failed);
            let _ = tx.send(Outbound::Json(Response::Failed {
                job,
                error: format!("cannot open input {input:?}: {e}"),
            }));
            return;
        }
    };

    // With speculation enabled the engine's monitor publishes coarse
    // progress and projected completion through this probe; the
    // deadline watchdog reads it to act *before* the deadline instead
    // of only at it.
    let probe = if spec.speculation.enabled {
        Some(Arc::new(ProgressProbe::new()))
    } else {
        None
    };
    let opts = SpecRunOptions {
        priority_region: options.priority_region.clone(),
        validate_annotations: options.validate_annotations,
        filter_pushdown: options.filter_pushdown,
        map_think: Duration::from_millis(options.map_think_ms),
        reduce_think: Duration::from_millis(options.reduce_think_ms),
        fault_plan: options.fault_plan.clone(),
        retry: spec.retry,
        speculation: spec.speculation.clone(),
        progress: probe.clone(),
    };

    let sink = Arc::new(InMemoryOutput::<Coord, f64>::new());
    let (out, early_rx) = streaming_output();
    let out = out
        .tolerate_hangup()
        .with_sink(Arc::clone(&sink) as Arc<dyn OutputCollector<Coord, f64>>);

    inner.set_state(job, JobState::Running);

    // Deadline watchdog: a detached ticker that cancels the job if it
    // is still running when the spec's deadline expires. Graceful
    // degradation, not failure — keyblocks already streamed stay
    // valid, final results; only the remainder is abandoned.
    let deadline_hit = Arc::new(AtomicBool::new(false));
    let job_finished = Arc::new(AtomicBool::new(false));
    if let Some(ms) = spec.deadline_ms {
        let hit = Arc::clone(&deadline_hit);
        let finished = Arc::clone(&job_finished);
        let watchdog_cancel = cancel.clone();
        let watchdog_probe = probe.clone();
        thread::spawn(move || {
            let started = std::time::Instant::now();
            let deadline = started + Duration::from_millis(ms);
            // Tick instead of one long sleep so the thread retires
            // promptly once the job ends.
            while std::time::Instant::now() < deadline {
                if finished.load(Ordering::SeqCst) {
                    return;
                }
                // Proactive half: when the engine's projection says
                // the remaining work will not fit inside the deadline,
                // boost the speculation trigger *now* — stragglers get
                // raced while there is still time for the twin to win.
                // Cancellation stays the backstop, not the first move.
                if let Some(p) = &watchdog_probe {
                    let elapsed = started.elapsed().as_millis() as u64;
                    let threatened = p
                        .projected_remaining_ms()
                        .is_some_and(|rem| elapsed.saturating_add(rem) > ms);
                    if threatened && p.request_boost() {
                        serve_metrics().deadline_boosts.inc();
                        eprintln!(
                            "[{}] job deadline pressure: projected completion exceeds \
                             deadline_ms={ms}; speculation trigger boosted",
                            sidr_core::diag::codes::DEADLINE_PRESSURE
                        );
                    }
                }
                thread::sleep(Duration::from_millis(5).min(Duration::from_millis(ms.max(1))));
            }
            if !finished.load(Ordering::SeqCst) {
                hit.store(true, Ordering::SeqCst);
                watchdog_cancel.cancel();
            }
        });
    }
    let result = thread::scope(|s| {
        let fwd_inner = Arc::clone(&inner);
        let fwd_tx = tx.clone();
        let forwarder = s.spawn(move || {
            let m = serve_metrics();
            let mut first = true;
            for early in early_rx {
                fwd_inner
                    .keyblocks_committed
                    .fetch_add(1, Ordering::Relaxed);
                m.keyblocks.inc();
                if first {
                    // `early.at` is measured from job start: the
                    // paper's time-to-first-result, as served.
                    m.ttfb_seconds.observe(early.at.as_secs_f64());
                    first = false;
                }
                let at_ms = early.at.as_millis() as u64;
                // Binary peers get the packed frame: encoded once,
                // here, into its exact-size buffer — the writer and
                // the socket see only bytes. A keyblock the binary
                // layout cannot carry (mixed coordinate ranks) falls
                // back to JSON for that frame alone.
                if binary {
                    if let Ok(bin) =
                        binframe::encode_keyblock(job, early.reducer, at_ms, &early.records)
                    {
                        let _ = fwd_tx.send(Outbound::BinKeyblock(bin));
                        continue;
                    }
                }
                let _ = fwd_tx.send(Outbound::Json(Response::Keyblock {
                    job,
                    reducer: early.reducer,
                    at_ms,
                    records: early.records,
                }));
            }
        });
        // Same scheduler either way; only where attempts execute
        // differs. In coordinator mode each attempt is dispatched to
        // the fleet through the engine's `TaskExecutor` seam.
        let result = match &inner.fleet {
            Some(fleet) => {
                let exec_opts = ExecOptions {
                    validate_annotations: options.validate_annotations,
                    filter_pushdown: options.filter_pushdown,
                    fault_plan: options.fault_plan.clone(),
                };
                match fleet.prepare_job(&spec, &input, &exec_opts) {
                    Ok(remote) => {
                        let r = run_spec_with_executor(
                            &file,
                            &spec,
                            &opts,
                            &out,
                            &inner.pool,
                            Some(&cancel),
                            &remote,
                        );
                        remote.finish();
                        r
                    }
                    Err(e) => Err(sidr_core::SidrError::Engine(e)),
                }
            }
            None => run_spec_on_pool(&file, &spec, &opts, &out, &inner.pool, Some(&cancel)),
        };
        // Close the early-result channel so the forwarder drains out.
        drop(out);
        let _ = forwarder.join();
        result
    });

    job_finished.store(true, Ordering::SeqCst);
    match result {
        Ok(job_result) => {
            inner.set_state(job, JobState::Done);
            let _ = tx.send(Outbound::Json(Response::Done {
                job,
                keyblocks: spec.num_reducers,
                records: sink.len() as u64,
                events: job_result.events,
            }));
        }
        Err(e) if is_cancellation(&e) && deadline_hit.load(Ordering::SeqCst) => {
            inner.set_state(job, JobState::DeadlineExceeded);
            let _ = tx.send(Outbound::Json(Response::DeadlineExceeded {
                job,
                deadline_ms: spec.deadline_ms.unwrap_or(0),
            }));
        }
        Err(e) if is_cancellation(&e) => {
            inner.set_state(job, JobState::Cancelled);
            let _ = tx.send(Outbound::Json(Response::Cancelled { job }));
        }
        Err(e) => {
            inner.set_state(job, JobState::Failed);
            let _ = tx.send(Outbound::Json(Response::Failed {
                job,
                error: e.to_string(),
            }));
        }
    }
}

fn is_cancellation(e: &sidr_core::SidrError) -> bool {
    matches!(e, sidr_core::SidrError::Engine(MrError::Cancelled))
}

#[cfg(test)]
mod tests {
    use super::JobState;
    use JobState::*;

    const ALL: [JobState; 7] = [
        Queued,
        Planning,
        Running,
        Done,
        Failed,
        Cancelled,
        DeadlineExceeded,
    ];

    #[test]
    fn transition_matrix_matches_the_documented_lifecycle() {
        let legal: &[(JobState, JobState)] = &[
            (Queued, Planning),
            (Queued, Cancelled),
            (Planning, Running),
            (Planning, Failed),
            (Planning, Cancelled),
            (Running, Done),
            (Running, Failed),
            (Running, Cancelled),
            (Running, DeadlineExceeded),
        ];
        for from in ALL {
            for to in ALL {
                assert_eq!(
                    from.can_transition(to),
                    legal.contains(&(from, to)),
                    "{from:?} -> {to:?}"
                );
            }
        }
    }

    #[test]
    fn terminal_states_have_no_successors_and_no_state_loops() {
        for from in ALL {
            assert!(!from.can_transition(from), "{from:?} must not self-loop");
            if from.is_terminal() {
                for to in ALL {
                    assert!(
                        !from.can_transition(to),
                        "terminal {from:?} must not reach {to:?}"
                    );
                }
            } else {
                assert!(
                    ALL.iter()
                        .any(|to| to.is_terminal() && from.can_transition(*to)),
                    "{from:?} must be able to reach a terminal state"
                );
            }
        }
    }
}
