//! The threaded job runtime: slot-limited Map/Reduce worker pools,
//! barrier policies, inverted scheduling, fault injection and
//! dependency-based recovery.
//!
//! Slots are owned by a [`SlotPool`] — the cluster-wide map and reduce
//! capacity (Hadoop's per-TaskTracker slots, §4: 4 map + 3 reduce per
//! node). [`run_job`] runs one job over a pool of its own;
//! [`run_job_shared`] runs a job against a pool *shared with other
//! concurrently running jobs* (the serving path), so the whole
//! cluster's slot budget is enforced across jobs rather than per job.
//! Reduce tasks occupy a slot from the start of their copy phase,
//! fetching map outputs as the maps finish — the overlap stock Hadoop
//! already has — and begin their merge + reduce only when their
//! barrier is met: *all* maps under the global barrier, or exactly
//! their dependency set `I_ℓ` under a SIDR plan (§3.2, Fig. 4).
//!
//! Jobs are cancellable via a [`CancelToken`]: workers observe the
//! token at every blocking point and abandon the job with
//! [`MrError::Cancelled`].

use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::chaos::{self, Mutation};
use crate::sync::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::counters::{Counters, CountersSnapshot};
use crate::error::MrError;
use crate::executor::{Executor, ReduceSource, RemoteReduceError};
use crate::fault::{FaultKind, FaultPlan, RetryPolicy};
use crate::output::OutputCollector;
use crate::plan::RoutingPlan;
use crate::shuffle::{
    CorruptionMode, Fetched, GroupBatch, MapOutputBuilder, MapOutputFile, MergeIter, ShuffleStore,
};
use crate::smof3::Smof3View;
use crate::speculation::{ProgressProbe, SpeculationPolicy};
use crate::split::{InputSplit, MapTaskId};
use crate::task::{Combiner, Mapper, MrKey, MrValue, RecordSource, Reducer};
use crate::timeline::{TaskEvent, TaskKind, Timeline};
use crate::Result;

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct JobConfig {
    /// Concurrent Map tasks (cluster-wide map slots).
    pub map_slots: usize,
    /// Concurrent Reduce tasks (cluster-wide reduce slots).
    pub reduce_slots: usize,
    /// Cross-check the shuffle's count annotations against the plan's
    /// expected raw counts before each reduce starts (§3.2.1
    /// approach 2).
    pub validate_annotations: bool,
    /// Deterministic, seeded fault injection: which task attempts
    /// fail, straggle, or commit corrupt output (subsumes the old
    /// `fail_reducers` hook — see
    /// [`FaultPlan::fail_reducers_first_attempt`]).
    pub fault_plan: FaultPlan,
    /// Bounded retries with deterministic backoff; a task fails the
    /// job ([`MrError::TaskFailed`]) only once its budget is spent.
    pub retry: RetryPolicy,
    /// Intermediate data is consumed on fetch instead of persisted; a
    /// failed reduce must then re-execute the Map tasks it fetched
    /// from (§6 future work).
    pub volatile_intermediate: bool,
    /// Artificial per-Map-task cost (examples/teaching only).
    pub map_think: Duration,
    /// Artificial per-Reduce-task cost (examples/teaching only).
    pub reduce_think: Duration,
    /// When set, map output is spilled to annotated on-disk files
    /// (the SMOF format of [`crate::shuffle_file`]) in this directory
    /// instead of staying resident — Hadoop's actual shuffle path.
    pub spill_dir: Option<std::path::PathBuf>,
    /// Map-side sort-buffer limit in records: buffers exceeding it
    /// are sorted and spilled as runs, merged at task end (Hadoop's
    /// `io.sort.mb` pipeline). `None` keeps everything in memory.
    /// Runs land in `spill_dir`, or in a per-job directory under
    /// `$TMP/sidr-map-spill` — namespaced by job so concurrent jobs
    /// on one pool never collide on run filenames.
    pub map_spill_records: Option<usize>,
    /// Speculative execution: race a second attempt of a map whose
    /// elapsed time exceeds a quantile of its committed cohort; first
    /// commit wins, the loser's output is never published. Disabled by
    /// default.
    pub speculation: SpeculationPolicy,
    /// Live progress/projection channel to the serving layer's
    /// deadline watchdog; the watchdog's boost request makes the
    /// speculation monitor aggressive before the deadline cancels.
    pub progress: Option<Arc<ProgressProbe>>,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            map_slots: 4,
            reduce_slots: 3,
            validate_annotations: false,
            fault_plan: FaultPlan::default(),
            retry: RetryPolicy::default(),
            volatile_intermediate: false,
            map_think: Duration::ZERO,
            reduce_think: Duration::ZERO,
            spill_dir: None,
            map_spill_records: None,
            speculation: SpeculationPolicy::default(),
            progress: None,
        }
    }
}

/// Process-wide job sequence, used to namespace per-job scratch
/// directories (two concurrent jobs on one [`SlotPool`] must never
/// share spill filenames).
static JOB_SEQ: AtomicU64 = AtomicU64::new(0);

// The safety-net re-check interval for blocked workers lives on
// [`RetryPolicy::wait_tick_ms`] (default 25 ms, `SIDR_WAIT_TICK_MS`
// overrides): every blocking point is condvar-notified on progress,
// failure *and* cancellation (see [`CancelToken::cancel`] /
// `Shared::fail`), so the tick only guards against a missed
// notification bug turning into a hang. A worker that makes progress
// only because the tick fired increments `sidr_mr_tick_wakeups_total`
// — the sidr-check explorer reports the same condition as a
// `LostWakeup` finding.

/// A blocking point's wake-up target: the condvar a worker may be
/// parked on, paired with the mutex that guards its predicate.
///
/// `wake` takes (and immediately drops) the mutex before notifying.
/// That closes the lost-wakeup window: a waiter that has already
/// checked the cancel flag under the lock but not yet entered
/// `wait()` still holds the lock, so the waker blocks until the
/// waiter is actually parked — the notification cannot land in the
/// gap.
pub trait CancelWake: Send + Sync {
    /// Wakes the blocking point so it re-checks its cancel predicate.
    fn wake(&self);
}

struct PairWaker<T: Send + 'static> {
    mutex: Arc<Mutex<T>>,
    cv: Arc<Condvar>,
}

impl<T: Send + 'static> CancelWake for PairWaker<T> {
    fn wake(&self) {
        drop(self.mutex.lock());
        self.cv.notify_all();
    }
}

struct TokenInner {
    cancelled: AtomicBool,
    next_id: AtomicU64,
    wakers: Mutex<Vec<(u64, Arc<dyn CancelWake>)>>,
}

/// Cooperative cancellation for a running job.
///
/// Cloning shares the flag: the serving layer keeps one clone per
/// `JobHandle` while the runtime's workers poll another. Cancellation
/// is observed at every blocking point (slot acquisition, eligibility
/// and barrier waits); each blocking point's condvar is registered as
/// a waker while the job runs, so [`cancel`](CancelToken::cancel)
/// wakes parked workers immediately and `run_job_shared` returns
/// [`MrError::Cancelled`] within notification latency, not within a
/// poll tick.
#[derive(Clone)]
pub struct CancelToken(Arc<TokenInner>);

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken(Arc::new(TokenInner {
            cancelled: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            wakers: Mutex::new(Vec::new()),
        }))
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation and wakes every registered blocking
    /// point. Idempotent.
    pub fn cancel(&self) {
        self.0.cancelled.store(true, Ordering::SeqCst);
        let wakers: Vec<Arc<dyn CancelWake>> = self
            .0
            .wakers
            .lock()
            .iter()
            .map(|(_, w)| Arc::clone(w))
            .collect();
        for w in wakers {
            w.wake();
        }
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.cancelled.load(Ordering::SeqCst)
    }

    /// Registers a blocking point to be woken on cancel, returning an
    /// RAII registration that unsubscribes on drop. If the token is
    /// already cancelled the waker fires immediately.
    ///
    /// Registration is *only* RAII — there is no manual unsubscribe —
    /// so a worker that exits (or unwinds) between registering and
    /// parking can never leak its waker slot on a long-lived token.
    pub fn register(&self, waker: Arc<dyn CancelWake>) -> WakerRegistration {
        let id = self.0.next_id.fetch_add(1, Ordering::Relaxed);
        self.0.wakers.lock().push((id, Arc::clone(&waker)));
        if self.is_cancelled() {
            waker.wake();
        }
        WakerRegistration {
            token: self.clone(),
            id,
        }
    }

    /// Blocking points currently registered (diagnostic: a quiesced
    /// token must report 0 or registrations have leaked).
    pub fn waker_count(&self) -> usize {
        self.0.wakers.lock().len()
    }
}

/// One blocking point's registration on a [`CancelToken`];
/// unsubscribes on drop (see [`CancelToken::register`]).
pub struct WakerRegistration {
    token: CancelToken,
    id: u64,
}

impl Drop for WakerRegistration {
    fn drop(&mut self) {
        self.token.0.wakers.lock().retain(|(i, _)| *i != self.id);
    }
}

/// The waker registrations for one job run, dropped — and thereby
/// unsubscribed — when the job returns.
fn subscribe_all(
    token: Option<&CancelToken>,
    wakers: impl IntoIterator<Item = Arc<dyn CancelWake>>,
) -> Vec<WakerRegistration> {
    match token {
        None => Vec::new(),
        Some(t) => wakers.into_iter().map(|w| t.register(w)).collect(),
    }
}

/// A counting semaphore over one slot class (map or reduce). The
/// mutex/condvar pair is `Arc`'d so cancel tokens can hold a
/// `PairWaker` over it. Public so sidr-check scenarios can drive
/// acquire/release/wake_all directly; jobs only ever touch it through
/// a [`SlotPool`].
pub struct Semaphore {
    total: usize,
    busy: Arc<Mutex<usize>>,
    cv: Arc<Condvar>,
    /// Occupancy gauge for this slot class (process-global).
    busy_gauge: Arc<sidr_obs::Gauge>,
}

impl std::fmt::Debug for Semaphore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Semaphore")
            .field("total", &self.total)
            .field("busy", &self.in_use())
            .finish()
    }
}

impl Semaphore {
    fn new(total: usize, busy_gauge: Arc<sidr_obs::Gauge>) -> Self {
        Semaphore {
            total,
            busy: Arc::new(Mutex::new(0)),
            cv: Arc::new(Condvar::new()),
            busy_gauge,
        }
    }

    /// Occupies one slot, blocking until one frees. Returns `false`
    /// without occupying anything if `abort()` turns true first.
    /// Blocked waiters are condvar-woken on release, on job failure
    /// and on cancellation; the timed wait (`tick`) is only a safety
    /// net, and acquiring *because* it fired counts a tick wakeup.
    pub fn acquire(&self, abort: &dyn Fn() -> bool, tick: Duration) -> bool {
        let mut busy = self.busy.lock();
        let mut ticked = false;
        while *busy >= self.total {
            if abort() {
                return false;
            }
            ticked = self.cv.wait_for(&mut busy, tick).timed_out();
        }
        if ticked {
            crate::metrics::runtime().tick_wakeups.inc();
        }
        *busy += 1;
        drop(busy);
        self.busy_gauge.inc();
        true
    }

    /// Frees one slot and wakes one waiter.
    pub fn release(&self) {
        let mut busy = self.busy.lock();
        debug_assert!(*busy > 0, "slot released but none occupied");
        *busy -= 1;
        drop(busy);
        self.busy_gauge.dec();
        if !chaos::on(Mutation::DropSemReleaseNotify) {
            self.cv.notify_one();
        }
    }

    /// Wakes every waiter so it re-checks its abort predicate (used
    /// when a sharing job fails or is cancelled).
    pub fn wake_all(&self) {
        drop(self.busy.lock());
        self.cv.notify_all();
    }

    /// A cancel waker parked on this semaphore's condvar.
    pub fn waker(&self) -> Arc<dyn CancelWake> {
        Arc::new(PairWaker {
            mutex: Arc::clone(&self.busy),
            cv: Arc::clone(&self.cv),
        })
    }

    /// Slots currently occupied.
    pub fn in_use(&self) -> usize {
        *self.busy.lock()
    }
}

/// Occupied slot; releases on drop.
struct SlotGuard<'p>(&'p Semaphore);

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// The cluster-wide slot capacity: `map_slots` concurrent Map tasks
/// and `reduce_slots` concurrent Reduce tasks, *across every job
/// sharing the pool*. Wrap it in an `Arc` and pass it to
/// [`run_job_shared`] from multiple threads to multiplex jobs over one
/// cluster's worth of slots — the multi-tenant serving configuration.
#[derive(Debug)]
pub struct SlotPool {
    map: Semaphore,
    reduce: Semaphore,
}

/// Point-in-time slot usage, for server stats.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotOccupancy {
    pub map_busy: usize,
    pub map_total: usize,
    pub reduce_busy: usize,
    pub reduce_total: usize,
}

impl SlotPool {
    /// Builds a pool; both slot classes must be non-empty.
    pub fn new(map_slots: usize, reduce_slots: usize) -> Result<Self> {
        if map_slots == 0 || reduce_slots == 0 {
            return Err(MrError::BadConfig(
                "map_slots and reduce_slots must be > 0".into(),
            ));
        }
        let m = crate::metrics::runtime();
        m.map_slots_total.set(map_slots as i64);
        m.reduce_slots_total.set(reduce_slots as i64);
        Ok(SlotPool {
            map: Semaphore::new(map_slots, Arc::clone(&m.map_slots_busy)),
            reduce: Semaphore::new(reduce_slots, Arc::clone(&m.reduce_slots_busy)),
        })
    }

    pub fn map_slots(&self) -> usize {
        self.map.total
    }

    pub fn reduce_slots(&self) -> usize {
        self.reduce.total
    }

    pub fn occupancy(&self) -> SlotOccupancy {
        SlotOccupancy {
            map_busy: self.map.in_use(),
            map_total: self.map.total,
            reduce_busy: self.reduce.in_use(),
            reduce_total: self.reduce.total,
        }
    }

    /// Checker-scenario access to the raw map semaphore.
    #[cfg(check)]
    pub fn map_sem(&self) -> &Semaphore {
        &self.map
    }

    /// Checker-scenario access to the raw reduce semaphore.
    #[cfg(check)]
    pub fn reduce_sem(&self) -> &Semaphore {
        &self.reduce
    }
}

/// Outcome of a completed job.
#[derive(Clone, Debug)]
pub struct JobResult {
    pub counters: CountersSnapshot,
    pub events: Vec<TaskEvent>,
    pub elapsed: Duration,
}

impl JobResult {
    /// Time of the first committed reduce output. Scans for the
    /// minimum — no allocation, no sort (experiments call this in
    /// loops).
    pub fn first_result(&self) -> Option<Duration> {
        self.times(TaskKind::ReduceEnd).min()
    }

    /// Sorted completion times of one event kind.
    pub fn completions(&self, kind: TaskKind) -> Vec<Duration> {
        let mut t: Vec<Duration> = self.times(kind).collect();
        // `events` is time-sorted, so the filtered view almost always
        // already is too; sort only if recording raced out of order.
        if !t.is_sorted() {
            t.sort_unstable();
        }
        t
    }

    /// Fraction of Map tasks complete when the first result committed.
    pub fn maps_done_at_first_result(&self) -> Option<f64> {
        let first = self.first_result()?;
        let (done, total) = self
            .times(TaskKind::MapEnd)
            .fold((0usize, 0usize), |(done, total), t| {
                (done + usize::from(t <= first), total + 1)
            });
        if total == 0 {
            return None;
        }
        Some(done as f64 / total as f64)
    }

    fn times(&self, kind: TaskKind) -> impl Iterator<Item = Duration> + '_ {
        self.events
            .iter()
            .filter(move |e| e.kind == kind)
            .map(|e| e.at)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MapStatus {
    /// Not yet eligible (SIDR inverted scheduling: no running reduce
    /// depends on it yet, §3.3).
    Ineligible,
    /// Ready to be claimed by a map worker.
    Eligible,
    Running,
    Done,
    /// No reduce depends on this map; it never runs.
    Skipped,
}

struct State {
    maps: Vec<MapStatus>,
    /// Attempt id the next launch of each map gets (counts every
    /// execution: first run, retries, recovery re-executions).
    map_attempt: Vec<u32>,
    /// Failed attempts per map, charged against the retry budget.
    map_failures: Vec<u32>,
    /// Attempt id of the most recently *committed* output generation,
    /// meaningful only while `maps[m] == Done`. Reducers fetch exactly
    /// this epoch from the shuffle store: consuming a different
    /// attempt's data — possible between a re-execution's `put` and
    /// its `Done` — would orphan a partition no recovery rebuilds.
    map_commit_epoch: Vec<u32>,
    /// Maps re-enqueued by recovery (lost or corrupt output), stamped
    /// with the re-enqueue instant so the recovery-latency histogram
    /// can observe re-enqueue → recommit.
    recovering: HashMap<MapTaskId, Instant>,
    /// First-commit-wins claim per map: the attempt id that owns (or
    /// will own) the right to publish this generation's output.
    /// `None` = unclaimed. Taken *before* the shuffle `put`, so a
    /// racing loser never publishes at all.
    map_claim: Vec<Option<u32>>,
    /// Attempts below this floor can never claim: recovery re-enqueues
    /// raise it past every attempt of the dead generation, so a
    /// still-straggling old racer cannot commit into the new one.
    map_claim_floor: Vec<u32>,
    /// Whether the current generation of each map already got its
    /// speculative twin (the at-most-one-extra-attempt invariant).
    map_speculated: Vec<bool>,
    /// Running attempts per map: 0, 1, or 2 while a race is on.
    map_running_attempts: Vec<u8>,
    /// When the generation's primary attempt started running (the
    /// speculation monitor's elapsed-time reference). Cleared on
    /// commit and on re-enqueue.
    map_started: Vec<Option<Instant>>,
    /// Whether the running primary attempt's `MapStart` is on the
    /// timeline yet. Speculative claims wait for it, so a twin's
    /// `MapSpeculated` event can never precede its racer's start in
    /// the recorded stream (the oracle's attempt numbering relies on
    /// that order).
    map_start_logged: Vec<bool>,
    /// Committed map durations, milliseconds — the speculation
    /// trigger's cohort.
    map_durations_ms: Vec<u64>,
    /// Maps the speculation monitor granted a twin, awaiting claim by
    /// an idle map worker. Entries go stale harmlessly (re-validated
    /// at claim time).
    spec_queue: VecDeque<MapTaskId>,
    /// Next position in the plan's reduce launch order.
    reduce_cursor: usize,
    reduces_done: usize,
    failed: bool,
}

impl State {
    /// Hands a Done map back to the eligible set for re-execution
    /// (dependency-scoped recovery). No-op unless the map is Done —
    /// concurrent reducers may both detect the same lost output.
    /// Returns true when this call performed the re-enqueue.
    fn reenqueue_for_recovery(&mut self, m: MapTaskId, counters: &Counters) -> bool {
        if self.maps[m] != MapStatus::Done {
            return false;
        }
        self.maps[m] = MapStatus::Eligible;
        self.recovering.entry(m).or_insert_with(Instant::now);
        // A fresh generation: it gets its own commit claim and its own
        // speculation budget, and no attempt of the dead generation —
        // e.g. a speculation loser still straggling — may claim into
        // it (its epoch would not match what recovery promised).
        self.map_claim[m] = None;
        self.map_claim_floor[m] = self.map_attempt[m];
        self.map_speculated[m] = false;
        self.map_started[m] = None;
        Counters::add(&counters.maps_reexecuted, 1);
        crate::metrics::runtime().maps_recovered.inc();
        true
    }

    /// First-commit-wins: claims the right to publish map `m`'s output
    /// for `attempt`. True when `attempt` holds the claim after the
    /// call (idempotent for the claim holder); false when another
    /// attempt claimed first or `attempt` predates the generation
    /// floor.
    fn try_claim_commit(&mut self, m: MapTaskId, attempt: u32) -> bool {
        if attempt < self.map_claim_floor[m] {
            return false;
        }
        match self.map_claim[m] {
            None => {
                self.map_claim[m] = Some(attempt);
                true
            }
            Some(a) => a == attempt,
        }
    }

    /// Whether `attempt` can no longer win map `m`'s commit race: a
    /// racer claimed or committed, or recovery started a newer
    /// generation. A lost attempt aborts instead of finishing work
    /// nobody will consume.
    fn race_lost(&self, m: MapTaskId, attempt: u32) -> bool {
        attempt < self.map_claim_floor[m]
            || self.maps[m] == MapStatus::Done
            || self.map_claim[m].is_some_and(|a| a != attempt)
    }
}

struct Shared<'j, K2: MrKey, V2: MrValue> {
    /// `Arc`'d (with `cv`) so cancel tokens can hold a [`PairWaker`]
    /// over the pair while the job runs.
    state: Arc<Mutex<State>>,
    cv: Arc<Condvar>,
    shuffle: ShuffleStore<K2, V2>,
    counters: Counters,
    timeline: Timeline,
    error: Mutex<Option<MrError>>,
    plan: &'j dyn RoutingPlan<K2>,
    config: &'j JobConfig,
    pool: &'j SlotPool,
    cancel: Option<&'j CancelToken>,
    num_maps: usize,
    /// Safety-net re-check interval for this job's blocking points
    /// (from [`RetryPolicy::wait_tick`]).
    wait_tick: Duration,
    /// Where map-side sort-buffer runs spill (set iff
    /// `config.map_spill_records` is): the configured spill dir, or a
    /// job-id-namespaced scratch directory under the system temp dir.
    map_spill_dir: Option<std::path::PathBuf>,
}

impl<K2: MrKey, V2: MrValue> Shared<'_, K2, V2> {
    fn fail(&self, err: MrError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
        drop(slot);
        self.state.lock().failed = true;
        self.cv.notify_all();
        // Workers of this job may be parked on the pool's semaphores
        // (which other jobs hold); wake them so they re-check the
        // failure flag immediately instead of on the next tick.
        self.pool.map.wake_all();
        self.pool.reduce.wake_all();
    }

    fn cancel_requested(&self) -> bool {
        self.cancel.is_some_and(|c| c.is_cancelled())
    }

    /// When cancellation was requested, records it as the job failure
    /// (first error wins) and returns true.
    fn observe_cancel(&self) -> bool {
        if self.cancel_requested() {
            self.fail(MrError::Cancelled);
            return true;
        }
        false
    }

    /// Sleeps `dur`, waking early — and returning false — when the job
    /// is cancelled or `abort(state)` turns true. Parks on the state
    /// condvar, which is registered as a cancel waker and notified by
    /// `fail()`, so a cancelled straggle/backoff sleep unblocks with
    /// notification latency instead of waiting out its full delay.
    #[cfg(not(check))]
    fn sleep_interruptible(&self, dur: Duration, abort: &dyn Fn(&State) -> bool) -> bool {
        let deadline = Instant::now() + dur;
        let mut st = self.state.lock();
        loop {
            if self.cancel_requested() || abort(&st) {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return true;
            }
            // Bounded by the safety-net tick like every other blocking
            // point; a timeout here is expected (it *is* the sleep),
            // so it never counts as a tick wakeup.
            self.cv
                .wait_for(&mut st, (deadline - now).min(self.wait_tick));
        }
    }

    /// Checker builds: wall clocks are virtual and a timed condvar
    /// wait that only ever times out would read as a lost wakeup to
    /// the explorer, so the sleep is a plain virtual yield followed by
    /// one abort check.
    #[cfg(check)]
    fn sleep_interruptible(&self, dur: Duration, abort: &dyn Fn(&State) -> bool) -> bool {
        crate::sync::thread::sleep(dur);
        let st = self.state.lock();
        !(self.cancel_requested() || abort(&st))
    }
}

/// Runs one MapReduce job to completion on a slot pool of its own
/// (sized from `config.map_slots` / `config.reduce_slots`).
///
/// * `splits` — the input splits (one Map task each),
/// * `source_factory` — opens the RecordReader for a split,
/// * `mapper` / `combiner` / `reducer` — the user functions,
/// * `plan` — partitioning, barrier, fetch and scheduling policy,
/// * `output` — where committed reduce output goes.
#[allow(clippy::too_many_arguments)]
pub fn run_job<K1, V1, K2, V2, V3, SF, S>(
    splits: &[InputSplit],
    source_factory: &SF,
    mapper: &dyn Mapper<InKey = K1, InValue = V1, OutKey = K2, OutValue = V2>,
    combiner: Option<&dyn Combiner<Key = K2, Value = V2>>,
    reducer: &dyn Reducer<Key = K2, InValue = V2, OutValue = V3>,
    plan: &dyn RoutingPlan<K2>,
    output: &dyn OutputCollector<K2, V3>,
    config: &JobConfig,
) -> Result<JobResult>
where
    K1: MrKey,
    V1: MrValue,
    K2: MrKey + crate::wire::WireFormat,
    V2: MrValue + crate::wire::WireFormat,
    V3: MrValue,
    SF: Fn(MapTaskId, &InputSplit) -> Result<S> + Sync,
    S: RecordSource<Key = K1, Value = V1>,
{
    let pool = SlotPool::new(config.map_slots, config.reduce_slots)?;
    run_job_shared(
        splits,
        source_factory,
        mapper,
        combiner,
        reducer,
        plan,
        output,
        config,
        &pool,
        None,
    )
}

/// Runs one MapReduce job over a [`SlotPool`] that may be shared with
/// other jobs running concurrently on other threads — the serving
/// path. `config.map_slots` / `config.reduce_slots` are ignored here:
/// the pool owns the cluster's slot budget, and at most
/// `pool.map_slots()` Map tasks and `pool.reduce_slots()` Reduce tasks
/// run at once *across all sharing jobs*.
///
/// Passing a `cancel` token makes the job abandonable: once cancelled,
/// the job unwinds and this returns [`MrError::Cancelled`].
#[allow(clippy::too_many_arguments)]
pub fn run_job_shared<K1, V1, K2, V2, V3, SF, S>(
    splits: &[InputSplit],
    source_factory: &SF,
    mapper: &dyn Mapper<InKey = K1, InValue = V1, OutKey = K2, OutValue = V2>,
    combiner: Option<&dyn Combiner<Key = K2, Value = V2>>,
    reducer: &dyn Reducer<Key = K2, InValue = V2, OutValue = V3>,
    plan: &dyn RoutingPlan<K2>,
    output: &dyn OutputCollector<K2, V3>,
    config: &JobConfig,
    pool: &SlotPool,
    cancel: Option<&CancelToken>,
) -> Result<JobResult>
where
    K1: MrKey,
    V1: MrValue,
    K2: MrKey + crate::wire::WireFormat,
    V2: MrValue + crate::wire::WireFormat,
    V3: MrValue,
    SF: Fn(MapTaskId, &InputSplit) -> Result<S> + Sync,
    S: RecordSource<Key = K1, Value = V1>,
{
    run_job_with_executor(
        splits,
        source_factory,
        mapper,
        combiner,
        reducer,
        plan,
        output,
        config,
        pool,
        cancel,
        Executor::Local,
    )
}

/// [`run_job_shared`] with an explicit [`Executor`] choosing where
/// task attempts run. `Executor::Local` is byte-for-byte the classic
/// in-process path; `Executor::Remote` dispatches every map and reduce
/// attempt through a [`crate::executor::TaskExecutor`] (the worker
/// fleet), while this process keeps the scheduler: eligibility,
/// inverted scheduling, barriers, slots, retry budgets and
/// dependency-scoped recovery.
#[allow(clippy::too_many_arguments)]
pub fn run_job_with_executor<K1, V1, K2, V2, V3, SF, S>(
    splits: &[InputSplit],
    source_factory: &SF,
    mapper: &dyn Mapper<InKey = K1, InValue = V1, OutKey = K2, OutValue = V2>,
    combiner: Option<&dyn Combiner<Key = K2, Value = V2>>,
    reducer: &dyn Reducer<Key = K2, InValue = V2, OutValue = V3>,
    plan: &dyn RoutingPlan<K2>,
    output: &dyn OutputCollector<K2, V3>,
    config: &JobConfig,
    pool: &SlotPool,
    cancel: Option<&CancelToken>,
    executor: Executor<'_, K2, V3>,
) -> Result<JobResult>
where
    K1: MrKey,
    V1: MrValue,
    K2: MrKey + crate::wire::WireFormat,
    V2: MrValue + crate::wire::WireFormat,
    V3: MrValue,
    SF: Fn(MapTaskId, &InputSplit) -> Result<S> + Sync,
    S: RecordSource<Key = K1, Value = V1>,
{
    if splits.is_empty() {
        return Err(MrError::BadConfig("no input splits".into()));
    }
    let num_maps = splits.len();
    let num_reducers = plan.num_reducers();
    let reduce_order = plan.reduce_order();
    if reduce_order.len() != num_reducers {
        return Err(MrError::BadConfig(format!(
            "reduce_order has {} entries for {} reducers",
            reduce_order.len(),
            num_reducers
        )));
    }

    // Initial map eligibility: everything eligible under classic
    // scheduling; nothing eligible under inverted scheduling except
    // that maps no reduce depends on are skipped outright.
    let mut maps = vec![
        if plan.invert_scheduling() {
            MapStatus::Ineligible
        } else {
            MapStatus::Eligible
        };
        num_maps
    ];
    if plan.invert_scheduling() {
        let mut needed = vec![false; num_maps];
        let mut any_global = false;
        for r in 0..num_reducers {
            match plan.reduce_deps(r) {
                None => {
                    any_global = true;
                    break;
                }
                Some(deps) => {
                    for m in deps {
                        if m >= num_maps {
                            return Err(MrError::BadConfig(format!(
                                "reduce {r} depends on nonexistent map {m}"
                            )));
                        }
                        needed[m] = true;
                    }
                }
            }
        }
        if any_global {
            maps.fill(MapStatus::Ineligible);
        } else {
            for (m, &need) in needed.iter().enumerate() {
                if !need {
                    maps[m] = MapStatus::Skipped;
                }
            }
        }
    }

    // A process-unique job id namespaces this job's scratch space:
    // concurrent jobs sharing one pool (the serving path) must never
    // collide on map-spill run filenames.
    let job_id = JOB_SEQ.fetch_add(1, Ordering::Relaxed);
    let (map_spill_dir, scratch_spill_dir) = match (config.map_spill_records, &config.spill_dir) {
        (None, _) => (None, None),
        (Some(_), Some(dir)) => (Some(dir.clone()), None),
        (Some(_), None) => {
            let dir = std::env::temp_dir()
                .join("sidr-map-spill")
                .join(format!("job{job_id:06}-{}", std::process::id()));
            (Some(dir.clone()), Some(dir))
        }
    };
    if let Some(dir) = &map_spill_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| MrError::BadConfig(format!("map spill dir {}: {e}", dir.display())))?;
    }

    let shared = Shared {
        state: Arc::new(Mutex::new(State {
            maps,
            map_attempt: vec![0; num_maps],
            map_failures: vec![0; num_maps],
            map_commit_epoch: vec![0; num_maps],
            recovering: HashMap::new(),
            map_claim: vec![None; num_maps],
            map_claim_floor: vec![0; num_maps],
            map_speculated: vec![false; num_maps],
            map_running_attempts: vec![0; num_maps],
            map_started: vec![None; num_maps],
            map_start_logged: vec![false; num_maps],
            map_durations_ms: Vec::new(),
            spec_queue: VecDeque::new(),
            reduce_cursor: 0,
            reduces_done: 0,
            failed: false,
        })),
        cv: Arc::new(Condvar::new()),
        shuffle: match &config.spill_dir {
            None => ShuffleStore::new(config.volatile_intermediate),
            Some(dir) => {
                std::fs::create_dir_all(dir)
                    .map_err(|e| MrError::BadConfig(format!("spill dir {}: {e}", dir.display())))?;
                ShuffleStore::with_spill(
                    config.volatile_intermediate,
                    crate::shuffle::SpillCodec::smof(dir.clone()),
                )
            }
        },
        counters: Counters::default(),
        timeline: Timeline::new(),
        error: Mutex::new(None),
        plan,
        config,
        pool,
        cancel,
        num_maps,
        wait_tick: config.retry.wait_tick(),
        map_spill_dir,
    };
    {
        let skipped = shared
            .state
            .lock()
            .maps
            .iter()
            .filter(|&&s| s == MapStatus::Skipped)
            .count();
        Counters::add(&shared.counters.maps_skipped, skipped as u64);
    }

    // Register this job's blocking points with the cancel token so
    // `cancel()` wakes parked workers immediately (dropped — and
    // unsubscribed — when the job returns).
    let _wakers = subscribe_all(
        cancel,
        [
            Arc::new(PairWaker {
                mutex: Arc::clone(&shared.state),
                cv: Arc::clone(&shared.cv),
            }) as Arc<dyn CancelWake>,
            pool.map.waker(),
            pool.reduce.waker(),
        ],
    );

    // One worker thread per slot the pool could ever grant this job,
    // capped by the task counts; permits are what actually bound
    // concurrency when the pool is shared. Under speculation every
    // map can have a racing twin, so the cap doubles — a twin must
    // never wait for the straggler it is racing to free a thread.
    let max_map_tasks = if config.speculation.enabled {
        num_maps.saturating_mul(2)
    } else {
        num_maps
    };
    let map_workers = pool.map_slots().min(max_map_tasks);
    let reduce_workers = pool.reduce_slots().min(num_reducers);
    crate::sync::thread::scope(|scope| {
        for _ in 0..map_workers {
            scope.spawn(|| map_worker(&shared, splits, source_factory, mapper, combiner, executor));
        }
        for _ in 0..reduce_workers {
            scope.spawn(|| reduce_worker(&shared, &reduce_order, reducer, output, executor));
        }
        // The time-based speculation monitor is meaningless under the
        // virtual scheduler (no wall clock); there the deterministic
        // `force_maps` hook in the map workers is the only trigger.
        #[cfg(not(check))]
        if config.speculation.enabled {
            scope.spawn(|| speculation_monitor(&shared, num_reducers));
        }
    });

    // The job owns its default run-spill scratch dir; failed attempts
    // may have left runs behind, so sweep the whole directory.
    if let Some(dir) = &scratch_spill_dir {
        std::fs::remove_dir_all(dir).ok();
    }

    if let Some(err) = shared.error.lock().take() {
        return Err(err);
    }
    let counters = shared.counters.snapshot();
    // §3.2.1 approach 2, whole-job form: in debug builds, balance the
    // runtime map-output tally against the plan's static prediction.
    // Only meaningful when annotation validation is on (filter
    // pushdown voids the geometric tallies) and every map ran exactly
    // once (skips, recovery re-executions and speculative twins — both
    // racers tally their records — change the totals).
    #[cfg(debug_assertions)]
    if shared.config.validate_annotations
        && counters.maps_skipped == 0
        && counters.maps_reexecuted == 0
        && !shared.state.lock().map_speculated.iter().any(|&s| s)
    {
        let expected: Option<u64> = (0..num_reducers)
            .map(|r| shared.plan.expected_raw_count(r))
            .sum();
        if let Some(expected) = expected {
            debug_assert_eq!(
                counters.map_records_out, expected,
                "static plan prediction disagrees with the runtime map-output tally"
            );
        }
    }
    let elapsed = shared.timeline.job_end().unwrap_or_default();
    Ok(JobResult {
        counters,
        events: shared.timeline.events(),
        elapsed,
    })
}

fn map_worker<K1, V1, K2, V2, V3, SF, S>(
    shared: &Shared<'_, K2, V2>,
    splits: &[InputSplit],
    source_factory: &SF,
    mapper: &dyn Mapper<InKey = K1, InValue = V1, OutKey = K2, OutValue = V2>,
    combiner: Option<&dyn Combiner<Key = K2, Value = V2>>,
    executor: Executor<'_, K2, V3>,
) where
    K1: MrKey,
    V1: MrValue,
    K2: MrKey + crate::wire::WireFormat,
    V2: MrValue + crate::wire::WireFormat,
    V3: MrValue,
    SF: Fn(MapTaskId, &InputSplit) -> Result<S> + Sync,
    S: RecordSource<Key = K1, Value = V1>,
{
    loop {
        let (task, attempt, speculative) = {
            let mut st = shared.state.lock();
            let mut ticked = false;
            loop {
                if st.failed || st.reduces_done == shared.plan.num_reducers() {
                    return;
                }
                if shared.cancel_requested() {
                    drop(st);
                    shared.observe_cancel();
                    return;
                }
                if let Some(i) = st.maps.iter().position(|&s| s == MapStatus::Eligible) {
                    if ticked {
                        crate::metrics::runtime().tick_wakeups.inc();
                    }
                    st.maps[i] = MapStatus::Running;
                    let attempt = st.map_attempt[i];
                    st.map_attempt[i] += 1;
                    st.map_running_attempts[i] = 1;
                    st.map_started[i] = Some(Instant::now());
                    st.map_start_logged[i] = false;
                    break (i, attempt, false);
                }
                // No fresh work: claim a speculative twin for a
                // running straggler (fresh tasks always outrank
                // speculation — racing must never starve first
                // attempts of a slot).
                if shared.config.speculation.enabled {
                    if let Some(m) = claim_speculative(&mut st, shared) {
                        if ticked {
                            crate::metrics::runtime().tick_wakeups.inc();
                        }
                        let attempt = st.map_attempt[m];
                        st.map_attempt[m] += 1;
                        st.map_running_attempts[m] += 1;
                        break (m, attempt, true);
                    }
                }
                // Nothing eligible: either all maps are done/skipped
                // (reduces still draining) or eligibility will arrive
                // when a reduce starts / recovery re-enqueues.
                ticked = shared.cv.wait_for(&mut st, shared.wait_tick).timed_out();
            }
        };
        if speculative {
            shared
                .timeline
                .record_attempt(TaskKind::MapSpeculated, task, attempt);
            crate::metrics::runtime().speculative_launched.inc();
            if let Some(p) = &shared.config.progress {
                p.note_speculative_launch();
            }
        }

        // Mutation hook: a widened critical section — holding the
        // state lock across the slot acquire whose abort callback
        // itself locks state is the classic self-deadlock the checker
        // must catch.
        let held_state = if chaos::on(Mutation::HoldStateAcrossAcquire) {
            Some(shared.state.lock())
        } else {
            None
        };
        // The task is assigned; now occupy a cluster-wide map slot
        // (never blocks on a dedicated pool, where workers == slots).
        if !shared.pool.map.acquire(
            &|| shared.cancel_requested() || shared.state.lock().failed,
            shared.wait_tick,
        ) {
            shared.observe_cancel();
            return;
        }
        drop(held_state);
        let _slot = SlotGuard(&shared.pool.map);

        let started = Instant::now();
        shared
            .timeline
            .record_attempt(TaskKind::MapStart, task, attempt);
        if shared.config.speculation.enabled {
            // Unblock speculative claims waiting on this start being
            // in the log (see `map_start_logged`).
            shared.state.lock().map_start_logged[task] = true;
            shared.cv.notify_all();
        }
        let map_result = match executor {
            Executor::Local => run_map_task(
                shared,
                task,
                attempt,
                &splits[task],
                source_factory,
                mapper,
                combiner,
            ),
            // Remote: the worker runs the attempt and keeps the
            // committed partitions (each racer's output on its own
            // worker — no shared store to collide in); the
            // scheduler's claim + bookkeeping below decide the race.
            Executor::Remote(exec) => if speculative {
                exec.execute_map_speculative(task, attempt, &splits[task], &shared.counters)
            } else {
                exec.execute_map(task, attempt, &splits[task], &shared.counters)
            }
            .map(|()| MapRun::Committed),
        };
        match map_result {
            Ok(MapRun::Committed) => {
                if !shared.config.map_think.is_zero() {
                    // Interruptible, proceed regardless: committing
                    // after a cancelled think is harmless and the
                    // claim-loop head observes the cancel next.
                    shared.sleep_interruptible(shared.config.map_think, &|_| false);
                }
                // The authoritative first-commit-wins decision. The
                // local path already claimed before its `put` (this
                // re-check is idempotent); the remote path decides
                // here. Losing is only possible in a race.
                let won = {
                    let mut st = shared.state.lock();
                    let won = st.try_claim_commit(task, attempt);
                    st.map_running_attempts[task] = st.map_running_attempts[task].saturating_sub(1);
                    won
                };
                if !won {
                    lose_race(shared, task, attempt);
                    continue;
                }
                // `MapEnd` strictly precedes the `Done` transition, so
                // no dependent barrier event can land before it.
                shared
                    .timeline
                    .record_attempt(TaskKind::MapEnd, task, attempt);
                crate::metrics::runtime()
                    .map_task_seconds
                    .observe_duration(started.elapsed());
                if speculative {
                    crate::metrics::runtime().speculative_won.inc();
                }
                let recovered = {
                    let mut st = shared.state.lock();
                    st.maps[task] = MapStatus::Done;
                    st.map_commit_epoch[task] = attempt;
                    st.map_started[task] = None;
                    st.map_durations_ms
                        .push(started.elapsed().as_millis() as u64);
                    st.recovering.remove(&task)
                };
                if let Some(reenqueued_at) = recovered {
                    crate::metrics::runtime()
                        .recovery_seconds
                        .observe_duration(reenqueued_at.elapsed());
                }
                // Mutation hook: committing `Done` without the
                // notify_all leaves barrier-blocked reducers asleep —
                // the lost wakeup the checker must catch.
                if !chaos::on(Mutation::DropMapDoneNotify) {
                    shared.cv.notify_all();
                }
            }
            Ok(MapRun::LostRace) => {
                {
                    let mut st = shared.state.lock();
                    st.map_running_attempts[task] = st.map_running_attempts[task].saturating_sub(1);
                }
                lose_race(shared, task, attempt);
            }
            Ok(MapRun::Aborted) => {
                // Job cancelled or failed mid-attempt.
                {
                    let mut st = shared.state.lock();
                    st.map_running_attempts[task] = st.map_running_attempts[task].saturating_sub(1);
                }
                shared.observe_cancel();
                return;
            }
            Err(e) => {
                // An attempt that died *after* its race was decided is
                // a loser, not a failure: no budget charge, no
                // re-enqueue (the winner's commit stands).
                let lost = {
                    let mut st = shared.state.lock();
                    st.map_running_attempts[task] = st.map_running_attempts[task].saturating_sub(1);
                    st.race_lost(task, attempt)
                };
                if lost {
                    lose_race(shared, task, attempt);
                    continue;
                }
                // Transient failures (source I/O, injected faults)
                // are charged against the retry budget and the task
                // is handed back to the eligible set after a
                // deterministic backoff; only an exhausted budget
                // fails the job.
                Counters::add(&shared.counters.map_failures, 1);
                shared
                    .timeline
                    .record_attempt(TaskKind::MapFailed, task, attempt);
                let failures = {
                    let mut st = shared.state.lock();
                    // A failed claim holder releases its claim or the
                    // task could never commit.
                    if st.map_claim[task] == Some(attempt) {
                        st.map_claim[task] = None;
                    }
                    st.map_failures[task] += 1;
                    st.map_failures[task]
                };
                if failures >= shared.config.retry.max_task_attempts {
                    shared.fail(MrError::TaskFailed {
                        task: format!("map {task}"),
                        cause: format!("{e} ({failures} attempts exhausted)"),
                    });
                    return;
                }
                if !shared
                    .sleep_interruptible(shared.config.retry.backoff(failures), &|st| st.failed)
                {
                    shared.observe_cancel();
                    return;
                }
                let mut st = shared.state.lock();
                if st.failed {
                    return;
                }
                if st.race_lost(task, attempt) {
                    // The racing twin won while this attempt backed
                    // off: the task is committed, nothing to retry.
                    drop(st);
                    shared.cv.notify_all();
                    continue;
                }
                if st.map_running_attempts[task] > 0 {
                    // A racer is still in flight; it will commit, or
                    // fail and re-enqueue through this same path.
                    continue;
                }
                st.maps[task] = MapStatus::Eligible;
                st.map_speculated[task] = false;
                st.map_started[task] = None;
                let next_attempt = st.map_attempt[task];
                drop(st);
                Counters::add(&shared.counters.map_retries, 1);
                crate::metrics::runtime().task_retries_map.inc();
                shared
                    .timeline
                    .record_attempt(TaskKind::MapRetry, task, next_attempt);
                shared.cv.notify_all();
            }
        }
    }
}

/// How one map attempt ended, beyond plain failure.
enum MapRun {
    /// Work complete and (locally) output published under a held
    /// claim; the remote path claims afterwards instead.
    Committed,
    /// The racing twin decided the generation first; this attempt
    /// published nothing and its work is discarded.
    LostRace,
    /// The job was cancelled or failed while the attempt ran.
    Aborted,
}

/// Records one attempt losing its first-commit-wins race: a
/// `MapSpeculationLost` timeline event for either racer plus the
/// wasted-work metric, then a notify so anything watching the race
/// re-checks.
fn lose_race<K2: MrKey, V2: MrValue>(shared: &Shared<'_, K2, V2>, task: MapTaskId, attempt: u32) {
    shared
        .timeline
        .record_attempt(TaskKind::MapSpeculationLost, task, attempt);
    crate::metrics::runtime().speculative_wasted.inc();
    shared.cv.notify_all();
}

/// Pops the next valid speculation grant under the state lock: forced
/// maps (the deterministic test hook) first, then the monitor's
/// queue. A grant is only valid against a map still running exactly
/// one unclaimed attempt — anything else is stale and dropped.
fn claim_speculative<K2: MrKey, V2: MrValue>(
    st: &mut State,
    shared: &Shared<'_, K2, V2>,
) -> Option<MapTaskId> {
    fn valid(st: &State, m: MapTaskId) -> bool {
        st.maps[m] == MapStatus::Running
            && st.map_claim[m].is_none()
            && st.map_running_attempts[m] == 1
            && st.map_start_logged[m]
    }
    for &m in &shared.config.speculation.force_maps {
        if m < shared.num_maps && !st.map_speculated[m] && valid(st, m) {
            st.map_speculated[m] = true;
            return Some(m);
        }
    }
    while let Some(m) = st.spec_queue.pop_front() {
        if valid(st, m) {
            return Some(m);
        }
    }
    None
}

fn run_map_task<K1, V1, K2, V2, SF, S>(
    shared: &Shared<'_, K2, V2>,
    task: MapTaskId,
    attempt: u32,
    split: &InputSplit,
    source_factory: &SF,
    mapper: &dyn Mapper<InKey = K1, InValue = V1, OutKey = K2, OutValue = V2>,
    combiner: Option<&dyn Combiner<Key = K2, Value = V2>>,
) -> Result<MapRun>
where
    K1: MrKey,
    V1: MrValue,
    K2: MrKey + crate::wire::WireFormat,
    V2: MrValue + crate::wire::WireFormat,
    SF: Fn(MapTaskId, &InputSplit) -> Result<S> + Sync,
    S: RecordSource<Key = K1, Value = V1>,
{
    // Injected faults for exactly this (task, attempt): a straggler
    // delays, a failure dies before any work, a source fault flips
    // the record stream into a transient I/O error mid-read.
    let fault = shared.config.fault_plan.map_fault(task, attempt);
    match fault {
        // Interruptible: a straggler whose race is already lost — or
        // whose job is cancelled — must unblock within a notification,
        // not wait out the injected delay. A fully-slept straggler
        // falls through to the normal map path below.
        Some(FaultKind::Straggle { delay_ms })
            if !shared.sleep_interruptible(Duration::from_millis(delay_ms), &|st| {
                st.failed || st.race_lost(task, attempt)
            }) =>
        {
            let lost = shared.state.lock().race_lost(task, attempt);
            return Ok(if lost {
                MapRun::LostRace
            } else {
                MapRun::Aborted
            });
        }
        Some(FaultKind::Fail) => {
            return Err(MrError::Source(format!(
                "injected failure: map {task} attempt {attempt}"
            )));
        }
        _ => {}
    }
    let source_err_after = match fault {
        Some(FaultKind::SourceError { after_records }) => Some(after_records),
        _ => None,
    };
    let mut source = source_factory(task, split)?;
    let mut builder = MapOutputBuilder::new(shared.plan.num_reducers());
    if let Some(limit) = shared.config.map_spill_records {
        let dir = shared
            .map_spill_dir
            .clone()
            .expect("map_spill_dir is set whenever map_spill_records is");
        builder = builder.with_spill(limit, dir, task);
    }
    let mut records_in = 0u64;
    let mut records_out = 0u64;
    // The emit callback cannot return errors; park the first one.
    let mut push_err: Option<MrError> = None;
    while let Some((k, v)) = source.next_record()? {
        if source_err_after.is_some_and(|after| records_in >= after) {
            return Err(MrError::Source(format!(
                "injected transient I/O error: map {task} attempt {attempt} \
                 after {records_in} records"
            )));
        }
        records_in += 1;
        mapper.map(&k, &v, &mut |k2, v2| {
            if push_err.is_some() {
                return;
            }
            let reducer = shared.plan.partition(&k2);
            if let Err(e) = builder.push(reducer, k2, v2) {
                push_err = Some(e);
            }
            records_out += 1;
        });
        if let Some(e) = push_err {
            return Err(e);
        }
    }
    Counters::add(&shared.counters.map_records_in, records_in);
    Counters::add(&shared.counters.map_records_out, records_out);
    // First-commit-wins, decided *before* anything is published: a
    // racing loser that put after the winner committed would overwrite
    // the committed shuffle entries at an epoch no commit will ever
    // stamp — a half-put partition recovery treats as committed and
    // reducers wait on forever. `DropSpeculationClaim` re-introduces
    // exactly that bug for the checker's mutation test (the
    // authoritative claim re-check in the worker still runs, so the
    // mutated loser publishes but never marks Done).
    if !chaos::on(Mutation::DropSpeculationClaim)
        && !shared.state.lock().try_claim_commit(task, attempt)
    {
        return Ok(MapRun::LostRace);
    }
    for (reducer, file) in builder.finish(combiner, &shared.counters)? {
        shared.shuffle.put(task, reducer, attempt, file)?;
    }
    // Post-commit corruption: the attempt "succeeds", but its files
    // are damaged after commit — discovered only when a reduce
    // fetches and the integrity check fails, which is what drives the
    // CRC-detection → dependency-scoped re-execution path.
    match fault {
        Some(FaultKind::CorruptOutput) => {
            shared.shuffle.corrupt_map(task, CorruptionMode::BitFlip)?;
        }
        Some(FaultKind::TruncateOutput) => {
            shared.shuffle.corrupt_map(task, CorruptionMode::Truncate)?;
        }
        _ => {}
    }
    Ok(MapRun::Committed)
}

fn reduce_worker<K2, V2, V3>(
    shared: &Shared<'_, K2, V2>,
    reduce_order: &[usize],
    reducer_fn: &dyn Reducer<Key = K2, InValue = V2, OutValue = V3>,
    output: &dyn OutputCollector<K2, V3>,
    executor: Executor<'_, K2, V3>,
) where
    K2: MrKey,
    V2: MrValue,
    V3: MrValue,
{
    loop {
        {
            let st = shared.state.lock();
            if st.failed || st.reduce_cursor >= reduce_order.len() {
                return;
            }
        }
        // Occupy a cluster-wide reduce slot *before* claiming from the
        // launch order: a claimed reduce starts its copy phase and (under
        // inverted scheduling) makes its maps eligible, so the number of
        // in-flight reduces across all jobs must never exceed the pool.
        if !shared.pool.reduce.acquire(
            &|| shared.cancel_requested() || shared.state.lock().failed,
            shared.wait_tick,
        ) {
            shared.observe_cancel();
            return;
        }
        let _slot = SlotGuard(&shared.pool.reduce);
        let r = {
            let mut st = shared.state.lock();
            if st.failed || st.reduce_cursor >= reduce_order.len() {
                return;
            }
            if shared.cancel_requested() {
                drop(st);
                shared.observe_cancel();
                return;
            }
            let r = reduce_order[st.reduce_cursor];
            st.reduce_cursor += 1;
            // SIDR inverted scheduling: starting this reduce makes the
            // maps it depends on eligible ("whenever a Reduce task is
            // scheduled … all Map tasks that contribute to the Reduce
            // task are marked as schedulable", §3.3).
            if shared.plan.invert_scheduling() {
                match shared.plan.reduce_deps(r) {
                    Some(deps) => {
                        for m in deps {
                            if st.maps[m] == MapStatus::Ineligible {
                                st.maps[m] = MapStatus::Eligible;
                            }
                        }
                    }
                    None => {
                        // Global-barrier reduce under inverted
                        // scheduling: everything becomes eligible.
                        for s in st.maps.iter_mut() {
                            if *s == MapStatus::Ineligible {
                                *s = MapStatus::Eligible;
                            }
                        }
                    }
                }
            }
            drop(st);
            shared.cv.notify_all();
            r
        };

        let started = Instant::now();
        shared.timeline.record(TaskKind::ReduceStart, r);
        let reduce_result = match executor {
            Executor::Local => run_reduce_task(shared, r, reducer_fn, output),
            Executor::Remote(exec) => run_reduce_task_remote(shared, r, exec, output),
        };
        if let Err(e) = reduce_result {
            shared.fail(e);
            return;
        }
        crate::metrics::runtime()
            .reduce_task_seconds
            .observe_duration(started.elapsed());
        let mut st = shared.state.lock();
        st.reduces_done += 1;
        drop(st);
        shared.cv.notify_all();
    }
}

/// Copy-phase fetch slot: outer `None` = not fetched yet, inner
/// `None` = the map produced no output for this reducer.
type FetchSlot<K, V> = Option<Option<ShuffleInput<K, V>>>;

/// A fetched non-empty partition, however the store surfaced it:
/// decoded records, or a zero-copy v3 frame the merge cursors borrow
/// from directly.
enum ShuffleInput<K, V> {
    File(Arc<MapOutputFile<K, V>>),
    Frame(Smof3View<K, V>),
}

// Manual impl: both variants clone by reference count, so no
// `K: Clone`/`V: Clone` bound is needed (derive would add one).
impl<K, V> Clone for ShuffleInput<K, V> {
    fn clone(&self) -> Self {
        match self {
            ShuffleInput::File(f) => ShuffleInput::File(Arc::clone(f)),
            ShuffleInput::Frame(v) => ShuffleInput::Frame(v.clone()),
        }
    }
}

/// Records handed through the merge per [`GroupBatch`] fill once the
/// first group is out: big enough to amortize heap bookkeeping, small
/// enough that a batch of ⟨coord, f64⟩ stays cache-resident.
const REDUCE_BATCH_RECORDS: usize = 4096;

fn run_reduce_task<K2, V2, V3>(
    shared: &Shared<'_, K2, V2>,
    r: usize,
    reducer_fn: &dyn Reducer<Key = K2, InValue = V2, OutValue = V3>,
    output: &dyn OutputCollector<K2, V3>,
) -> Result<()>
where
    K2: MrKey,
    V2: MrValue,
    V3: MrValue,
{
    let sources: Vec<MapTaskId> = match shared.plan.fetch_sources(r) {
        Some(deps) => deps,
        None => (0..shared.num_maps).collect(),
    };
    let mut attempt: u32 = 0;
    loop {
        // Injected reduce stragglers delay the attempt up front
        // (interruptibly — a cancelled job must not wait one out).
        if let Some(FaultKind::Straggle { delay_ms }) =
            shared.config.fault_plan.reduce_fault(r, attempt)
        {
            if !shared.sleep_interruptible(Duration::from_millis(delay_ms), &|st| st.failed) {
                shared.observe_cancel();
                return Ok(());
            }
        }
        // Copy phase: fetch from whichever source completes next —
        // not in source order — and pre-open its merge cursor as soon
        // as every earlier source's cursor is open too. The reducer
        // holds its slot through the copy anyway (§3.2), so no byte
        // waits for the barrier, while the merge's file order (which
        // breaks ties between equal keys) stays the plan's
        // deterministic fetch order.
        let mut merge: MergeIter<K2, V2> = MergeIter::new();
        // (source map, raw ⟨k,v⟩ annotation) per non-empty input, for
        // the §3.2.1 annotation tally and the volatile-recovery `I_ℓ`
        // list; the records themselves live in the merge's cursors.
        let mut inputs: Vec<(MapTaskId, u64)> = Vec::new();
        // Per-source fetch outcome: None = not fetched yet,
        // Some(None) = map produced nothing for this reducer.
        let mut fetched: Vec<FetchSlot<K2, V2>> = vec![None; sources.len()];
        // Oldest commit epoch an upcoming fetch of source `i` may
        // accept. Bumped when a fetch finds a *newer* attempt's data
        // in the store: that attempt's `put` landed but its `Done` has
        // not, so the source is not ready again until the state's
        // commit epoch catches up — consuming the fresh data on the
        // strength of the old observation would orphan the partition
        // (recovery treats the in-flight re-execution as already
        // rebuilding it and re-enqueues nothing).
        let mut min_epoch: Vec<u32> = vec![0; sources.len()];
        let mut opened = 0;
        let mut remaining = sources.len();
        let copy_start = Instant::now();
        let mut copy_wait = Duration::ZERO;
        while remaining > 0 {
            let ready: Vec<(usize, u32)> = {
                let mut st = shared.state.lock();
                let mut ticked = false;
                loop {
                    if st.failed {
                        return Ok(()); // another task already reported
                    }
                    if shared.cancel_requested() {
                        drop(st);
                        shared.observe_cancel();
                        return Ok(());
                    }
                    let mut ready = Vec::new();
                    for (i, slot) in fetched.iter().enumerate() {
                        if slot.is_some() {
                            continue;
                        }
                        match st.maps[sources[i]] {
                            MapStatus::Done => {
                                let epoch = st.map_commit_epoch[sources[i]];
                                if epoch >= min_epoch[i] {
                                    ready.push((i, epoch));
                                }
                            }
                            MapStatus::Skipped => {
                                return Err(MrError::BadConfig(format!(
                                    "reduce {r} depends on skipped map {}",
                                    sources[i]
                                )));
                            }
                            _ => {}
                        }
                    }
                    if !ready.is_empty() {
                        if ticked {
                            crate::metrics::runtime().tick_wakeups.inc();
                        }
                        break ready;
                    }
                    let parked = Instant::now();
                    ticked = shared.cv.wait_for(&mut st, shared.wait_tick).timed_out();
                    copy_wait += parked.elapsed();
                }
            };
            for (i, epoch) in ready {
                match shared.shuffle.fetch(sources[i], r, epoch, &shared.counters) {
                    Ok(Fetched::File(file)) => {
                        fetched[i] = Some(Some(ShuffleInput::File(file)));
                        remaining -= 1;
                    }
                    Ok(Fetched::Frame(view)) => {
                        fetched[i] = Some(Some(ShuffleInput::Frame(view)));
                        remaining -= 1;
                    }
                    Ok(Fetched::Empty) => {
                        fetched[i] = Some(None);
                        remaining -= 1;
                    }
                    Ok(Fetched::Stale { store_epoch }) => {
                        // A re-execution's output landed between our
                        // commit observation and this fetch. Leave the
                        // slot unfetched and wait for that attempt's
                        // commit; its `Done` transition notifies.
                        min_epoch[i] = store_epoch;
                    }
                    Err(MrError::CorruptShuffle { .. }) => {
                        // CRC caught a damaged map output at copy
                        // time. Dependency-scoped recovery: re-enqueue
                        // *only* that map; this reduce keeps
                        // condvar-waiting in the copy phase for the
                        // new attempt instead of failing the job. The
                        // damaged replicas stay put — other reducers
                        // must discover the corruption on their own
                        // (map, reducer) entries, never observe an
                        // evicted entry as "map produced nothing" —
                        // and the re-executed attempt's `put` replaces
                        // them all.
                        let m = sources[i];
                        Counters::add(&shared.counters.corrupt_fetches, 1);
                        let mut st = shared.state.lock();
                        st.reenqueue_for_recovery(m, &shared.counters);
                        drop(st);
                        shared.cv.notify_all();
                    }
                    Err(e) => return Err(e),
                }
            }
            while let Some(slot) = fetched.get(opened).and_then(|s| s.as_ref()) {
                if let Some(input) = slot {
                    let raw = match input {
                        ShuffleInput::File(f) => {
                            merge.push_file(Arc::clone(f));
                            f.raw_count
                        }
                        ShuffleInput::Frame(v) => {
                            merge.push_frame(v.clone());
                            v.raw_count()
                        }
                    };
                    inputs.push((sources[opened], raw));
                }
                opened += 1;
            }
        }
        shared
            .timeline
            .record_attempt(TaskKind::ReduceBarrierMet, r, attempt);
        let m = crate::metrics::runtime();
        m.barrier_wait_seconds
            .observe_duration(copy_start.elapsed());
        m.copy_wait_seconds.observe_duration(copy_wait);

        // §3.2.1 approach 2: tally the raw ⟨k,v⟩ annotation before
        // processing; starting with less input than the geometry
        // promises would produce "an answer based on insufficient
        // input".
        if shared.config.validate_annotations {
            if let Some(expected) = shared.plan.expected_raw_count(r) {
                let actual: u64 = inputs.iter().map(|(_, raw)| *raw).sum();
                if actual != expected {
                    return Err(MrError::AnnotationMismatch {
                        reducer: r,
                        expected,
                        actual,
                    });
                }
            }
        }

        // Injected reduce failure: the attempt dies after the barrier
        // (the worst spot — every fetch already paid for).
        if matches!(
            shared.config.fault_plan.reduce_fault(r, attempt),
            Some(FaultKind::Fail) | Some(FaultKind::SourceError { .. })
        ) {
            Counters::add(&shared.counters.reduce_failures, 1);
            shared
                .timeline
                .record_attempt(TaskKind::ReduceFailed, r, attempt);
            if attempt + 1 >= shared.config.retry.max_task_attempts {
                return Err(MrError::TaskFailed {
                    task: format!("reduce {r}"),
                    cause: format!("injected failure ({} attempts exhausted)", attempt + 1),
                });
            }
            if shared.config.volatile_intermediate && !chaos::on(Mutation::SkipRecoveryRewait) {
                // The fetched files were consumed; re-execute exactly
                // the maps whose data this reduce lost — its `I_ℓ` —
                // (§6: "re-execute subsets of Map tasks in the event
                // of a Reduce task failure in place of persisting all
                // intermediate data").
                let lost: Vec<MapTaskId> = inputs.iter().map(|(m, _)| *m).collect();
                let mut st = shared.state.lock();
                for m in &lost {
                    st.reenqueue_for_recovery(*m, &shared.counters);
                }
                drop(st);
                shared.cv.notify_all();
            }
            crate::metrics::runtime().task_retries_reduce.inc();
            if !shared
                .sleep_interruptible(shared.config.retry.backoff(attempt + 1), &|st| st.failed)
            {
                shared.observe_cancel();
                return Ok(());
            }
            attempt += 1;
            continue;
        }

        // Streaming merge + reduce, batched: groups leave the k-way
        // merge in cache-sized [`GroupBatch`]es, and each group's
        // output reaches the collector (`stream_group`) while later
        // groups are still merging. The first batch is a single group
        // so the §3.4 early-result clock starts as soon as the merge
        // can produce anything; after that, batches amortize the
        // per-group heap bookkeeping. No whole-keyspace
        // `Vec<(K, Vec<V>)>` is ever materialized; the final `commit`
        // keeps §2.3's atomic committal.
        let mut out: Vec<(K2, V3)> = Vec::new();
        let mut emitted = 0u64;
        let mut first_group = true;
        let mut batch: GroupBatch<K2, V2> = GroupBatch::new();
        loop {
            let budget = if first_group { 1 } else { REDUCE_BATCH_RECORDS };
            if merge.fill_batch(&mut batch, budget) == 0 {
                break;
            }
            for (key, values) in batch.groups() {
                let group_start = out.len();
                reducer_fn.reduce(key, values, &mut |v3| {
                    out.push((key.clone(), v3));
                    emitted += 1;
                });
                if out.len() > group_start {
                    output
                        .stream_group(r, &out[group_start..])
                        .map_err(|e| MrError::Output(e.to_string()))?;
                    if first_group {
                        shared
                            .timeline
                            .record_attempt(TaskKind::ReduceFirstGroup, r, attempt);
                        first_group = false;
                    }
                }
            }
        }
        shared
            .timeline
            .record_attempt(TaskKind::ReduceMergeDone, r, attempt);
        let merged = merge.records_consumed();
        m.merge_records.add(merged);
        m.merge_bytes
            .add(merged.saturating_mul(std::mem::size_of::<(K2, V2)>() as u64));
        Counters::add(&shared.counters.reduce_records_out, emitted);
        if !shared.config.reduce_think.is_zero() {
            shared.sleep_interruptible(shared.config.reduce_think, &|_| false);
        }
        output
            .commit(r, out)
            .map_err(|e| MrError::Output(e.to_string()))?;
        shared
            .timeline
            .record_attempt(TaskKind::ReduceEnd, r, attempt);
        return Ok(());
    }
}

/// The remote counterpart of [`run_reduce_task`]: the scheduler only
/// waits for *readiness* — every source map `Done` at an acceptable
/// commit epoch — and then hands the attempt to the executor, which
/// has a worker fetch the partitions from their holders directly (no
/// bytes move through this process) and stream key groups back.
///
/// Fault mapping mirrors the local path exactly:
/// * a holder dying *before* the attempt consumed anything
///   ([`RemoteReduceError::SourcesLost`]) re-enqueues exactly the lost
///   maps and retries the same attempt, like a CRC-detected corrupt
///   fetch — no retry budget charged;
/// * an attempt dying *after* its copy phase
///   ([`RemoteReduceError::AttemptFailed`]) is charged against the
///   budget and, under volatile intermediate data, re-executes its
///   whole dependency set, like a post-barrier injected failure.
fn run_reduce_task_remote<K2, V2, V3>(
    shared: &Shared<'_, K2, V2>,
    r: usize,
    exec: &dyn crate::executor::TaskExecutor<K2, V3>,
    output: &dyn OutputCollector<K2, V3>,
) -> Result<()>
where
    K2: MrKey,
    V2: MrValue,
    V3: MrValue,
{
    let sources: Vec<MapTaskId> = match shared.plan.fetch_sources(r) {
        Some(deps) => deps,
        None => (0..shared.num_maps).collect(),
    };
    let mut attempt: u32 = 0;
    // Oldest commit epoch a dispatch may bind source `i` at — bumped
    // past any generation known consumed or lost, so a retry waits for
    // a *fresh* recommit instead of re-fetching a dead epoch.
    let mut min_epoch: Vec<u32> = vec![0; sources.len()];
    loop {
        // Injected reduce stragglers delay the attempt up front,
        // coordinator-side, exactly like the local path.
        if let Some(FaultKind::Straggle { delay_ms }) =
            shared.config.fault_plan.reduce_fault(r, attempt)
        {
            if !shared.sleep_interruptible(Duration::from_millis(delay_ms), &|st| st.failed) {
                shared.observe_cancel();
                return Ok(());
            }
        }

        // Readiness barrier: every source Done at epoch >= min_epoch.
        let copy_start = Instant::now();
        let mut copy_wait = Duration::ZERO;
        let epochs: Vec<u32> = {
            let mut st = shared.state.lock();
            let mut ticked = false;
            loop {
                if st.failed {
                    return Ok(()); // another task already reported
                }
                if shared.cancel_requested() {
                    drop(st);
                    shared.observe_cancel();
                    return Ok(());
                }
                let mut ready = Vec::with_capacity(sources.len());
                for (i, &m) in sources.iter().enumerate() {
                    match st.maps[m] {
                        MapStatus::Done => {
                            let epoch = st.map_commit_epoch[m];
                            if epoch >= min_epoch[i] {
                                ready.push(epoch);
                            }
                        }
                        MapStatus::Skipped => {
                            return Err(MrError::BadConfig(format!(
                                "reduce {r} depends on skipped map {m}"
                            )));
                        }
                        _ => {}
                    }
                }
                if ready.len() == sources.len() {
                    if ticked {
                        crate::metrics::runtime().tick_wakeups.inc();
                    }
                    break ready;
                }
                let parked = Instant::now();
                ticked = shared.cv.wait_for(&mut st, shared.wait_tick).timed_out();
                copy_wait += parked.elapsed();
            }
        };
        shared
            .timeline
            .record_attempt(TaskKind::ReduceBarrierMet, r, attempt);
        let m = crate::metrics::runtime();
        m.barrier_wait_seconds
            .observe_duration(copy_start.elapsed());
        m.copy_wait_seconds.observe_duration(copy_wait);

        // Coordinator-side injected reduce failure, at the same point
        // in the attempt's life as the local post-barrier injection.
        if matches!(
            shared.config.fault_plan.reduce_fault(r, attempt),
            Some(FaultKind::Fail) | Some(FaultKind::SourceError { .. })
        ) {
            Counters::add(&shared.counters.reduce_failures, 1);
            shared
                .timeline
                .record_attempt(TaskKind::ReduceFailed, r, attempt);
            if attempt + 1 >= shared.config.retry.max_task_attempts {
                return Err(MrError::TaskFailed {
                    task: format!("reduce {r}"),
                    cause: format!("injected failure ({} attempts exhausted)", attempt + 1),
                });
            }
            if shared.config.volatile_intermediate {
                reenqueue_sources(shared, &sources, &epochs, &mut min_epoch);
            }
            crate::metrics::runtime().task_retries_reduce.inc();
            if !shared
                .sleep_interruptible(shared.config.retry.backoff(attempt + 1), &|st| st.failed)
            {
                shared.observe_cancel();
                return Ok(());
            }
            attempt += 1;
            continue;
        }

        let srcs: Vec<ReduceSource> = sources
            .iter()
            .zip(&epochs)
            .map(|(&map, &epoch)| ReduceSource { map, epoch })
            .collect();
        let expected_raw = if shared.config.validate_annotations {
            shared.plan.expected_raw_count(r)
        } else {
            None
        };

        // Stream groups to the collector as the worker sends them,
        // accumulating for the final atomic commit (§2.3).
        let mut out: Vec<(K2, V3)> = Vec::new();
        let mut first_group = true;
        let result = {
            let mut emit = |records: Vec<(K2, V3)>| -> Result<()> {
                if !records.is_empty() {
                    output
                        .stream_group(r, &records)
                        .map_err(|e| MrError::Output(e.to_string()))?;
                    if first_group {
                        shared
                            .timeline
                            .record_attempt(TaskKind::ReduceFirstGroup, r, attempt);
                        first_group = false;
                    }
                    out.extend(records);
                }
                Ok(())
            };
            exec.execute_reduce(r, attempt, &srcs, expected_raw, &mut emit)
        };
        match result {
            Ok(emitted) => {
                shared
                    .timeline
                    .record_attempt(TaskKind::ReduceMergeDone, r, attempt);
                Counters::add(&shared.counters.reduce_records_out, emitted);
                if !shared.config.reduce_think.is_zero() {
                    shared.sleep_interruptible(shared.config.reduce_think, &|_| false);
                }
                output
                    .commit(r, out)
                    .map_err(|e| MrError::Output(e.to_string()))?;
                shared
                    .timeline
                    .record_attempt(TaskKind::ReduceEnd, r, attempt);
                return Ok(());
            }
            Err(RemoteReduceError::SourcesLost(lost)) => {
                // Nothing was consumed: re-enqueue exactly the maps
                // that died with their holder (their `I_ℓ` share) and
                // retry the same attempt once they recommit.
                Counters::add(&shared.counters.corrupt_fetches, 1);
                {
                    let mut st = shared.state.lock();
                    for (i, &m) in sources.iter().enumerate() {
                        if !lost.contains(&m) {
                            continue;
                        }
                        // Guard: only recover the generation we bound.
                        // A concurrent reducer may already have
                        // re-enqueued it (not Done) or a re-execution
                        // may have recommitted (newer epoch).
                        if st.maps[m] == MapStatus::Done && st.map_commit_epoch[m] == epochs[i] {
                            st.reenqueue_for_recovery(m, &shared.counters);
                        }
                        min_epoch[i] = epochs[i] + 1;
                    }
                }
                shared.cv.notify_all();
            }
            Err(RemoteReduceError::AttemptFailed(cause)) => {
                Counters::add(&shared.counters.reduce_failures, 1);
                shared
                    .timeline
                    .record_attempt(TaskKind::ReduceFailed, r, attempt);
                if !out.is_empty() {
                    // Groups already reached the collector: retrying
                    // would stream duplicates. At-most-once streaming
                    // makes this fatal.
                    return Err(MrError::TaskFailed {
                        task: format!("reduce {r}"),
                        cause: format!("{cause} (after streaming began; cannot retry atomically)"),
                    });
                }
                if attempt + 1 >= shared.config.retry.max_task_attempts {
                    return Err(MrError::TaskFailed {
                        task: format!("reduce {r}"),
                        cause: format!("{cause} ({} attempts exhausted)", attempt + 1),
                    });
                }
                if shared.config.volatile_intermediate {
                    // The attempt consumed its fetches before dying:
                    // re-execute the whole dependency set (§6).
                    reenqueue_sources(shared, &sources, &epochs, &mut min_epoch);
                }
                crate::metrics::runtime().task_retries_reduce.inc();
                if !shared
                    .sleep_interruptible(shared.config.retry.backoff(attempt + 1), &|st| st.failed)
                {
                    shared.observe_cancel();
                    return Ok(());
                }
                attempt += 1;
            }
            Err(RemoteReduceError::Fatal(e)) => return Err(e),
        }
    }
}

/// Re-enqueues every source whose bound generation is still current
/// (epoch-guarded, like the `SourcesLost` arm) and advances
/// `min_epoch` past the consumed generation so the retry binds fresh
/// commits only.
/// The speculation monitor: wakes every `check_interval_ms`, compares
/// each running map's elapsed time against the committed cohort's
/// quantile × slowdown, and grants speculative twins for the
/// stragglers — ordered by dependency-matrix blocking weight, so the
/// map stalling the most keyblocks races first. Also publishes the
/// projected completion the serving layer's proactive deadline
/// watchdog reads; a boost request from the watchdog drops the
/// trigger to "slower than the cohort" with a one-commit floor.
///
/// Not compiled under `--cfg check`: wall-clock triggers are
/// meaningless on the virtual scheduler, where the deterministic
/// `force_maps` hook is the only speculation source.
#[cfg(not(check))]
fn speculation_monitor<K2: MrKey, V2: MrValue>(shared: &Shared<'_, K2, V2>, num_reducers: usize) {
    let policy = &shared.config.speculation;
    let interval = Duration::from_millis(policy.check_interval_ms.max(1));
    // Static blocking weight per map: how many reducers' dependency
    // sets contain it (a global-barrier reducer blocks on every map).
    let mut weight = vec![0usize; shared.num_maps];
    for r in 0..num_reducers {
        match shared.plan.reduce_deps(r) {
            Some(deps) => {
                for m in deps {
                    if m < shared.num_maps {
                        weight[m] += 1;
                    }
                }
            }
            None => {
                for w in weight.iter_mut() {
                    *w += 1;
                }
            }
        }
    }
    let mut st = shared.state.lock();
    loop {
        if st.failed || st.reduces_done == num_reducers || shared.cancel_requested() {
            return;
        }
        shared.cv.wait_for(&mut st, interval);
        if st.failed || st.reduces_done == num_reducers || shared.cancel_requested() {
            return;
        }

        let boosted = shared
            .config
            .progress
            .as_ref()
            .is_some_and(|p| p.boost_requested());
        let mut cohort = st.map_durations_ms.clone();
        cohort.sort_unstable();
        let quantile_ms = policy.cohort_quantile_ms(&cohort, boosted);

        let mut granted = false;
        if let Some(q) = quantile_ms {
            let threshold = Duration::from_millis(
                (q as f64 * policy.effective_slowdown(boosted)).ceil() as u64,
            );
            let mut candidates: Vec<(usize, MapTaskId)> = (0..shared.num_maps)
                .filter(|&m| {
                    st.maps[m] == MapStatus::Running
                        && !st.map_speculated[m]
                        && st.map_claim[m].is_none()
                        && st.map_running_attempts[m] == 1
                        && st.map_started[m].is_some_and(|t| t.elapsed() >= threshold)
                })
                .map(|m| (weight[m], m))
                .collect();
            // Highest blocking weight races first.
            candidates.sort_by(|a, b| b.cmp(a));
            for (_, m) in candidates {
                st.map_speculated[m] = true;
                st.spec_queue.push_back(m);
                granted = true;
            }
        }

        if let Some(probe) = &shared.config.progress {
            let maps_done = st
                .maps
                .iter()
                .filter(|s| matches!(s, MapStatus::Done | MapStatus::Skipped))
                .count();
            probe.publish(
                maps_done as u64,
                shared.num_maps as u64,
                st.reduces_done as u64,
                num_reducers as u64,
            );
            // Projected completion: cohort quantile × remaining task
            // waves per slot class. Crude on purpose — the watchdog
            // only needs "does this threaten the deadline".
            if let Some(q) = quantile_ms {
                let pending_maps = (shared.num_maps - maps_done) as u64;
                let pending_reduces = (num_reducers - st.reduces_done) as u64;
                let map_waves = pending_maps.div_ceil(shared.pool.map_slots().max(1) as u64);
                let reduce_waves =
                    pending_reduces.div_ceil(shared.pool.reduce_slots().max(1) as u64);
                probe.publish_projection(q.max(1).saturating_mul(map_waves + reduce_waves));
            }
        }

        if granted {
            // Idle map workers park on this condvar; hand them the
            // queue without waiting for their safety-net tick.
            shared.cv.notify_all();
        }
    }
}

fn reenqueue_sources<K2: MrKey, V2: MrValue>(
    shared: &Shared<'_, K2, V2>,
    sources: &[MapTaskId],
    epochs: &[u32],
    min_epoch: &mut [u32],
) {
    let mut st = shared.state.lock();
    for (i, &m) in sources.iter().enumerate() {
        if st.maps[m] == MapStatus::Done && st.map_commit_epoch[m] == epochs[i] {
            st.reenqueue_for_recovery(m, &shared.counters);
        }
        min_epoch[i] = epochs[i] + 1;
    }
    drop(st);
    shared.cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;

    const WAIT_TICK: Duration = Duration::from_millis(25);

    /// A cancel must reach a waiter parked on a semaphore's condvar by
    /// notification — well inside one `WAIT_TICK` — not by waiting for
    /// the next safety-net poll.
    #[test]
    fn cancel_wakes_semaphore_waiter_sub_tick() {
        let sem = Arc::new(Semaphore::new(1, Arc::new(sidr_obs::Gauge::default())));
        assert!(sem.acquire(&|| false, WAIT_TICK)); // occupy the only slot
        let token = CancelToken::new();
        let registration = token.register(sem.waker());

        let waiter = {
            let sem = Arc::clone(&sem);
            let token = token.clone();
            std::thread::spawn(move || sem.acquire(&|| token.is_cancelled(), WAIT_TICK))
        };
        // Give the waiter ample time to park on the condvar.
        std::thread::sleep(Duration::from_millis(60));
        let cancelled_at = Instant::now();
        token.cancel();
        let got = waiter.join().unwrap();
        let latency = cancelled_at.elapsed();
        assert!(!got, "waiter must abort, not acquire");
        assert!(
            latency < Duration::from_millis(10),
            "cancel→wake took {latency:?}; expected notification latency, \
             not a poll tick"
        );
        drop(registration);
        assert_eq!(token.waker_count(), 0);
        sem.release();
    }

    /// Subscribing to an already-cancelled token fires the waker
    /// immediately, so a waiter that raced past the flag check still
    /// gets woken.
    #[test]
    fn subscribe_after_cancel_fires_immediately() {
        let sem = Arc::new(Semaphore::new(1, Arc::new(sidr_obs::Gauge::default())));
        assert!(sem.acquire(&|| false, WAIT_TICK));
        let token = CancelToken::new();
        token.cancel();
        let waiter = {
            let sem = Arc::clone(&sem);
            let token = token.clone();
            std::thread::spawn(move || sem.acquire(&|| token.is_cancelled(), WAIT_TICK))
        };
        std::thread::sleep(Duration::from_millis(20));
        // The waiter aborts on its own flag check; the subscription
        // path must still wake, not deadlock, if it happens after.
        let _registration = token.register(sem.waker());
        assert!(!waiter.join().unwrap());
        sem.release();
    }

    /// A worker that exits — or unwinds — between registering its
    /// waker and parking must not leak its slot on the token: every
    /// registration path is RAII, so the token quiesces to zero wakers
    /// no matter how the registration scope ends.
    #[test]
    fn waker_registrations_never_leak_slots() {
        let sem = Arc::new(Semaphore::new(1, Arc::new(sidr_obs::Gauge::default())));
        let token = CancelToken::new();
        {
            let _a = token.register(sem.waker());
            let _b = token.register(sem.waker());
            assert_eq!(token.waker_count(), 2);
            // A worker dying between subscribe and wait unwinds
            // through its registration.
            let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _c = token.register(sem.waker());
                assert_eq!(token.waker_count(), 3);
                panic!("worker died between subscribe and wait");
            }));
            assert!(died.is_err());
            assert_eq!(token.waker_count(), 2, "unwound registration leaked");
        }
        assert_eq!(token.waker_count(), 0, "dropped registrations leaked");
        // Cancelling a quiesced token has nobody stale to wake.
        token.cancel();
        assert!(sem.acquire(&|| false, WAIT_TICK));
        sem.release();
    }
}
