//! Property-based tests for the coordinate-geometry invariants that
//! SIDR's correctness rests on: linearization is a bijection, slab
//! intersection is sound, extraction-shape images/preimages are
//! consistent, and `partition+` geometry covers every key exactly once
//! with bounded skew.

use proptest::prelude::*;
use sidr_coords::{
    choose_skew_shape, ContiguousPartition, Coord, ExtractionShape, PartialPolicy, Shape, Slab,
    Tiling,
};

/// Small shapes (rank 1–4, extents 1–12) keep exhaustive inner loops
/// cheap while still exercising carries across every dimension.
fn small_shape() -> impl Strategy<Value = Shape> {
    prop::collection::vec(1u64..=12, 1..=4).prop_map(|v| Shape::new(v).unwrap())
}

/// A shape and a tile no larger than it in any dimension.
fn shape_and_tile() -> impl Strategy<Value = (Shape, Shape)> {
    small_shape().prop_flat_map(|space| {
        let tiles = space
            .extents()
            .iter()
            .map(|&e| 1u64..=e)
            .collect::<Vec<_>>();
        (Just(space), tiles).prop_map(|(space, t)| (space, Shape::new(t).unwrap()))
    })
}

/// A shape and an in-bounds slab of it.
fn shape_and_slab() -> impl Strategy<Value = (Shape, Slab)> {
    small_shape().prop_flat_map(|space| {
        let dims = space
            .extents()
            .iter()
            .map(|&e| (0u64..e).prop_flat_map(move |c| (Just(c), 1u64..=(e - c))))
            .collect::<Vec<_>>();
        (Just(space), dims).prop_map(|(space, cs)| {
            let corner: Vec<u64> = cs.iter().map(|&(c, _)| c).collect();
            let shape: Vec<u64> = cs.iter().map(|&(_, s)| s).collect();
            (
                space,
                Slab::new(Coord::new(corner), Shape::new(shape).unwrap()).unwrap(),
            )
        })
    })
}

proptest! {
    #[test]
    fn linearize_delinearize_bijection(space in small_shape()) {
        let count = space.count();
        for idx in 0..count {
            let c = space.delinearize(idx).unwrap();
            prop_assert_eq!(space.linearize(&c).unwrap(), idx);
        }
    }

    #[test]
    fn iter_coords_is_exhaustive_and_ordered(space in small_shape()) {
        let coords: Vec<Coord> = space.iter_coords().collect();
        prop_assert_eq!(coords.len() as u64, space.count());
        for (i, c) in coords.iter().enumerate() {
            prop_assert_eq!(space.linearize(c).unwrap(), i as u64);
        }
    }

    #[test]
    fn slab_intersection_agrees_with_membership((space, a) in shape_and_slab()) {
        // Build a second slab from the same space by reflecting the
        // corner; compare intersect() against brute-force membership.
        let b = Slab::whole(&space);
        let i = a.intersect(&b).unwrap();
        match i {
            Some(inter) => {
                for c in space.iter_coords() {
                    prop_assert_eq!(
                        inter.contains(&c),
                        a.contains(&c) && b.contains(&c)
                    );
                }
            }
            None => {
                for c in space.iter_coords() {
                    prop_assert!(!(a.contains(&c) && b.contains(&c)));
                }
            }
        }
    }

    #[test]
    fn split_along_longest_partitions((_, slab) in shape_and_slab(), n in 1u64..6) {
        let pieces = slab.split_along_longest(n);
        let total: u64 = pieces.iter().map(Slab::count).sum();
        prop_assert_eq!(total, slab.count());
        for (i, a) in pieces.iter().enumerate() {
            prop_assert!(slab.contains_slab(a));
            for b in &pieces[i + 1..] {
                prop_assert!(!a.intersects(b));
            }
        }
    }

    #[test]
    fn tiling_clip_assigns_every_coord((space, tile) in shape_and_tile()) {
        let t = Tiling::new(space.clone(), tile, PartialPolicy::Clip).unwrap();
        for c in space.iter_coords() {
            let idx = t.instance_index_of(&c).unwrap();
            prop_assert!(idx.is_some());
            let slab = t.instance_slab(idx.unwrap()).unwrap();
            prop_assert!(slab.contains(&c));
        }
    }

    #[test]
    fn tiling_instance_slabs_are_disjoint((space, tile) in shape_and_tile()) {
        let t = Tiling::new(space, tile, PartialPolicy::Clip).unwrap();
        let n = t.instance_count();
        for i in 0..n {
            let a = t.instance_slab(i).unwrap();
            for j in (i + 1)..n {
                prop_assert!(!a.intersects(&t.instance_slab(j).unwrap()));
            }
        }
    }

    #[test]
    fn run_cover_is_exact((space, tile) in shape_and_tile(), frac_start in 0.0f64..1.0, frac_len in 0.0f64..1.0) {
        let t = Tiling::new(space, tile, PartialPolicy::Discard).unwrap();
        let n = t.instance_count();
        if n == 0 { return Ok(()); }
        let start = ((n as f64) * frac_start) as u64 % n;
        let end = (start + 1 + ((n - start - 1) as f64 * frac_len) as u64).min(n);
        let cover = t.run_cover(start, end).unwrap();
        // Exactness: total covered elements equal the run's elements,
        // and every instance in the run lies inside exactly one slab.
        let covered: u64 = cover.iter().map(Slab::count).sum();
        let expected: u64 = (start..end).map(|i| t.instance_slab(i).unwrap().count()).sum();
        prop_assert_eq!(covered, expected);
        for i in start..end {
            let inst = t.instance_slab(i).unwrap();
            prop_assert_eq!(cover.iter().filter(|s| s.contains_slab(&inst)).count(), 1);
        }
        for i in (0..start).chain(end..n) {
            let inst = t.instance_slab(i).unwrap();
            prop_assert!(cover.iter().all(|s| !s.intersects(&inst)));
        }
    }

    #[test]
    fn extraction_image_soundness((space, tile) in shape_and_tile()) {
        let es = ExtractionShape::new(space.clone(), tile).unwrap();
        // The image of any slab contains the mapped key of every input
        // key in the slab.
        let whole = Slab::whole(&space);
        for piece in whole.split_along_longest(3) {
            let image = es.image_of_slab(&piece).unwrap();
            for k in piece.iter_coords() {
                if let Some(kp) = es.map_key(&k).unwrap() {
                    let img = image.as_ref().expect("image must exist when keys map");
                    prop_assert!(img.contains(&kp));
                }
            }
        }
    }

    #[test]
    fn extraction_preimage_soundness((space, tile) in shape_and_tile()) {
        let es = ExtractionShape::new(space.clone(), tile).unwrap();
        let Ok(kspace) = es.intermediate_space() else { return Ok(()); };
        for kp in kspace.iter_coords() {
            let pre = es.preimage_of_key(&kp).unwrap();
            for k in pre.iter_coords() {
                prop_assert_eq!(es.map_key(&k).unwrap(), Some(kp.clone()));
            }
        }
    }

    #[test]
    fn partition_covers_once((space, tile) in shape_and_tile(), r in 1usize..8) {
        let p = ContiguousPartition::new(space.clone(), tile, r).unwrap();
        let mut counts = vec![0u64; r];
        for k in space.iter_coords() {
            let b = p.keyblock_of_key(&k).unwrap();
            prop_assert!(b < r);
            counts[b] += 1;
        }
        for (id, &c) in counts.iter().enumerate() {
            prop_assert_eq!(c, p.block_key_count(id).unwrap());
        }
        prop_assert_eq!(counts.iter().sum::<u64>(), space.count());
    }

    #[test]
    fn partition_with_chosen_shape_is_row_major_contiguous(space in small_shape(), r in 1usize..8, bound in 1u64..64) {
        // With the system-chosen skew shape (a row-major-contiguous
        // prefix shape), block ids are monotone non-decreasing along
        // row-major K' — the contiguity that makes Reduce output dense
        // (§3.1, §4.4).
        let p = ContiguousPartition::with_skew_bound(space.clone(), r, bound).unwrap();
        let mut last = 0usize;
        for k in space.iter_coords() {
            let b = p.keyblock_of_key(&k).unwrap();
            prop_assert!(b >= last, "block id decreased at {}", k);
            last = b;
        }
    }

    #[test]
    fn partition_block_sizes_monotone_nonincreasing((space, tile) in shape_and_tile(), r in 1usize..8) {
        // Instance-run lengths never increase with block id: the final
        // partition is "allowed to be smaller than the rest" (§3.1).
        let p = ContiguousPartition::new(space, tile, r).unwrap();
        let sizes: Vec<u64> = (0..r).map(|i| { let (s, e) = p.block_run(i); e - s }).collect();
        prop_assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
        prop_assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn chosen_skew_shape_respects_bound(space in small_shape(), bound in 1u64..64) {
        let s = choose_skew_shape(&space, bound).unwrap();
        prop_assert!(s.count() <= bound);
        prop_assert_eq!(s.rank(), space.rank());
        for d in 0..s.rank() {
            prop_assert!(s[d] <= space[d] || s[d] == 1);
        }
    }
}
