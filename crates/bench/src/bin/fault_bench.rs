//! `fault-bench`: fault-tolerance macro-benchmark.
//!
//! Runs the full injected-fault matrix (task failure, transient source
//! error, corrupt/truncated shuffle output, straggler) on the Figure 8
//! weekly-averages workload, then compares *dependency-scoped*
//! recovery (a failed reduce re-executes only its `I_ℓ`, §6) against
//! *global* re-execution (the barrier regime, where a failed reduce
//! has fetched from every map). Emits `results/BENCH_fault.json`:
//!
//! ```text
//! cargo run --release -p sidr-bench --bin fault-bench
//! cargo run --release -p sidr-bench --bin fault-bench -- --tiny
//! ```
//!
//! Every scenario's output is compared against a fault-free run of the
//! same query; the report is only healthy when all of them match.

use std::process::ExitCode;
use std::time::Instant;

use serde::Serialize;

use sidr_coords::Shape;
use sidr_core::framework::{run_query, FrameworkMode, RunOptions};
use sidr_core::{Operator, StructuralQuery};
use sidr_mapreduce::{FaultKind, FaultPlan, FaultTarget};
use sidr_scifile::gen::{DatasetSpec, ValueModel};
use sidr_scifile::ScincFile;

struct Args {
    tiny: bool,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tiny: false,
        out: "results/BENCH_fault.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tiny" => args.tiny = true,
            "--out" => args.out = it.next().ok_or("--out needs a path")?,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

/// The workload: Figure 8's weekly-averages geometry, scaled so the
/// dataset generates in seconds ({364,50,40} instead of
/// {364,250,200}); `--tiny` swaps in the CI-scale Query 1 analog.
struct Workload {
    name: &'static str,
    query: StructuralQuery,
    reducers: usize,
    split_bytes: u64,
}

fn workload(tiny: bool) -> Workload {
    if tiny {
        Workload {
            name: "query1-tiny",
            query: StructuralQuery::new(
                "windspeed",
                Shape::new(vec![48, 36, 36, 10]).expect("valid"),
                Shape::new(vec![2, 36, 36, 10]).expect("valid"),
                Operator::Mean,
            )
            .expect("query is structural"),
            reducers: 4,
            split_bytes: 36 * 36 * 10 * 4 * 4, // 4 rows/split -> 12 maps
        }
    } else {
        Workload {
            name: "fig08-scaled",
            query: StructuralQuery::new(
                "temperature",
                Shape::new(vec![364, 50, 40]).expect("valid"),
                Shape::new(vec![7, 5, 1]).expect("valid"),
                Operator::Mean,
            )
            .expect("query is structural"),
            reducers: 22,
            split_bytes: 50 * 40 * 4 * 14, // 2 weeks/split -> 26 maps
        }
    }
}

#[derive(Serialize)]
struct MatrixRow {
    fault: String,
    target_map: usize,
    recovered: bool,
    output_identical: bool,
    map_retries: u64,
    corrupt_fetches: u64,
    maps_reexecuted: u64,
    wall_ms: u64,
}

#[derive(Serialize)]
struct RecoveryRow {
    reduce_failures: usize,
    /// Maps re-run under dependency-scoped recovery: Σ|I_ℓ| of the
    /// failed reduces.
    scoped_maps_rerun: u64,
    /// Maps re-run under the global barrier: every failed reduce had
    /// fetched from every map.
    global_maps_rerun: u64,
    scoped_wall_ms: u64,
    global_wall_ms: u64,
    output_identical: bool,
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    workload: String,
    num_maps: usize,
    num_reducers: usize,
    matrix: Vec<MatrixRow>,
    recovery: Vec<RecoveryRow>,
    /// Every faulted run, matrix and recovery alike, produced output
    /// identical to the fault-free baseline.
    output_identical: bool,
}

fn base_options(w: &Workload, mode: FrameworkMode) -> RunOptions {
    let mut opts = RunOptions::new(mode, w.reducers);
    opts.split_bytes = w.split_bytes;
    opts.map_slots = 4;
    opts.reduce_slots = 2;
    opts
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("fault-bench: {msg}");
            return ExitCode::from(2);
        }
    };
    let w = workload(args.tiny);

    let dir = std::env::temp_dir().join("sidr-fault-bench");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{}-{}.scinc", w.name, std::process::id()));
    let space = w.query.input_space().clone();
    DatasetSpec {
        variable: w.query.variable.clone(),
        dim_names: (0..space.rank()).map(|d| format!("d{d}")).collect(),
        space,
        model: ValueModel::LinearIndex,
        seed: 0,
    }
    .generate::<f32>(&path)
    .expect("dataset generates");
    let file = ScincFile::open(&path).expect("dataset opens");

    // Fault-free ground truth (SIDR mode; QueryOutcome records are
    // sorted, so they compare across modes).
    let baseline = run_query(&file, &w.query, &base_options(&w, FrameworkMode::Sidr))
        .expect("fault-free baseline runs");
    let num_maps = baseline.num_maps;
    let mut all_identical = true;

    // ---- The fault matrix, one kind at a time on a mid-job map. ----
    let victim = num_maps / 2;
    let mut matrix = Vec::new();
    for kind in [
        FaultKind::Fail,
        FaultKind::SourceError { after_records: 64 },
        FaultKind::CorruptOutput,
        FaultKind::TruncateOutput,
        FaultKind::Straggle { delay_ms: 5 },
    ] {
        let mut opts = base_options(&w, FrameworkMode::Sidr);
        opts.fault_plan = FaultPlan::none().with(FaultTarget::Map(victim), 0, kind);
        let started = Instant::now();
        let outcome = run_query(&file, &w.query, &opts);
        let wall_ms = started.elapsed().as_millis() as u64;
        let (recovered, identical, retries, corrupt, rerun) = match &outcome {
            Ok(o) => (
                true,
                o.records == baseline.records,
                o.result.counters.map_retries,
                o.result.counters.corrupt_fetches,
                o.result.counters.maps_reexecuted,
            ),
            Err(_) => (false, false, 0, 0, 0),
        };
        all_identical &= recovered && identical;
        matrix.push(MatrixRow {
            fault: format!("{kind:?}"),
            target_map: victim,
            recovered,
            output_identical: identical,
            map_retries: retries,
            corrupt_fetches: corrupt,
            maps_reexecuted: rerun,
            wall_ms,
        });
    }

    // ---- Scoped vs global recovery under reduce failures. ----
    let mut recovery = Vec::new();
    for failures in [1usize, 2] {
        let failed: Vec<usize> = (0..failures).map(|i| (i * 2) % w.reducers).collect();
        let mut row = RecoveryRow {
            reduce_failures: failures,
            scoped_maps_rerun: 0,
            global_maps_rerun: 0,
            scoped_wall_ms: 0,
            global_wall_ms: 0,
            output_identical: true,
        };
        for global in [false, true] {
            let mode = if global {
                FrameworkMode::SciHadoop
            } else {
                FrameworkMode::Sidr
            };
            let mut opts = base_options(&w, mode);
            opts.volatile_intermediate = true;
            opts.fault_plan = FaultPlan::fail_reducers_first_attempt(failed.iter().copied());
            let started = Instant::now();
            let outcome = run_query(&file, &w.query, &opts).expect("recovery run survives");
            let wall_ms = started.elapsed().as_millis() as u64;
            let rerun = outcome.result.counters.maps_reexecuted;
            let identical = outcome.records == baseline.records;
            row.output_identical &= identical;
            all_identical &= identical;
            if global {
                row.global_maps_rerun = rerun;
                row.global_wall_ms = wall_ms;
            } else {
                row.scoped_maps_rerun = rerun;
                row.scoped_wall_ms = wall_ms;
            }
        }
        recovery.push(row);
    }

    let report = BenchReport {
        bench: "sidr dependency-scoped fault tolerance".into(),
        workload: w.name.into(),
        num_maps,
        num_reducers: w.reducers,
        matrix,
        recovery,
        output_identical: all_identical,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    if let Some(parent) = std::path::Path::new(&args.out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("fault-bench: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("{json}");
    std::fs::remove_file(&path).ok();
    if all_identical {
        ExitCode::SUCCESS
    } else {
        eprintln!("fault-bench: some faulted run diverged from the baseline");
        ExitCode::FAILURE
    }
}
