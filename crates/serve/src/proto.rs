//! Messages exchanged between `sidr-submit` and `sidr-serve`.
//!
//! The submission payload is the [`JobSpec`] itself — byte-for-byte
//! the document `sidr plan --spec` writes and `sidr-lint --spec`
//! verifies — so the planner, the linter and the server share one
//! wire contract (guarded by the round-trip tests in
//! `crates/core/tests/spec_wire.rs`).
//!
//! Streaming model: one [`Request::Submit`] yields an
//! [`Response::Accepted`] (or `Rejected`), then a [`Response::Keyblock`]
//! frame *per reduce commit, the moment it commits* — §3.4's early,
//! correct results crossing the wire while the job's remaining maps
//! are still running — and finally exactly one terminal frame
//! (`Done`, `Failed` or `Cancelled`). Frames of concurrent jobs on
//! the same connection interleave; every per-job frame carries its
//! job id.

use serde::{Deserialize, Serialize};

use sidr_coords::{Coord, Slab};
use sidr_core::spec::JobSpec;
use sidr_mapreduce::{FaultPlan, TaskEvent};

use crate::fleet::WorkerStat;

/// Per-submission execution knobs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SubmitOptions {
    /// Keyblocks covering this region of `K′` are scheduled first
    /// (§3.4 computational steering); overrides the spec's stored
    /// reduce order.
    pub priority_region: Option<Slab>,
    /// Cross-check count annotations before each reduce (§3.2.1).
    pub validate_annotations: bool,
    /// Push a `Filter` operator's predicate below the shuffle.
    pub filter_pushdown: bool,
    /// Artificial per-map-task cost in milliseconds (demos and
    /// scheduling tests — lets early results visibly precede late
    /// maps on datasets that would otherwise finish instantly).
    pub map_think_ms: u64,
    /// Artificial per-reduce-task cost in milliseconds.
    pub reduce_think_ms: u64,
    /// Chaos hook: a deterministic fault script injected into the run
    /// (empty plan = none). Lets clients exercise the retry and
    /// dependency-scoped recovery machinery end to end.
    pub fault_plan: FaultPlan,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        SubmitOptions {
            priority_region: None,
            validate_annotations: true,
            filter_pushdown: false,
            map_think_ms: 0,
            reduce_think_ms: 0,
            fault_plan: FaultPlan::none(),
        }
    }
}

/// Client → server.
// A `Request` is decoded once per frame and immediately consumed, so
// the `Submit` variant's size is irrelevant; boxing the spec would
// complicate the derive for no win.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Request {
    /// Submit a job: the spec, the server-side path of the `.scinc`
    /// input it runs against, and execution options.
    Submit {
        spec: JobSpec,
        input: String,
        options: SubmitOptions,
    },
    /// Request cancellation of a job (any connection may cancel any
    /// job; the terminal `Cancelled` frame goes to the submitter).
    Cancel { job: u64 },
    /// Request a [`ServerStats`] snapshot.
    Stats,
    /// Request the process's full metric registry as Prometheus text
    /// exposition (a scrape over the job protocol).
    Metrics,
    /// Stop accepting connections and cancel outstanding jobs.
    Shutdown,
}

/// Server → client.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Response {
    /// The submission passed the admission pre-flight and is queued.
    Accepted {
        job: u64,
        keyblocks: usize,
        num_maps: usize,
    },
    /// The admission pre-flight found errors; nothing was scheduled.
    Rejected {
        reason: String,
        diagnostics: Vec<String>,
    },
    /// One keyblock's complete, final output — sent the moment its
    /// reduce committed, while the job may still be mapping.
    Keyblock {
        job: u64,
        reducer: usize,
        /// Milliseconds from job start to this commit.
        at_ms: u64,
        records: Vec<(Coord, f64)>,
    },
    /// Terminal: the job completed; every keyblock was streamed.
    Done {
        job: u64,
        keyblocks: usize,
        records: u64,
        /// The engine's task timeline, so clients can verify early
        /// delivery (first `ReduceEnd` before the last `MapEnd`).
        events: Vec<TaskEvent>,
    },
    /// Terminal: the job failed.
    Failed { job: u64, error: String },
    /// Terminal: the job observed its cancel token and stopped.
    Cancelled { job: u64 },
    /// Terminal: the job was still running at its spec'd deadline and
    /// was cancelled by the server's watchdog. Keyblocks already
    /// streamed remain valid, final results (§3.4).
    DeadlineExceeded {
        job: u64,
        /// The deadline that expired, milliseconds.
        deadline_ms: u64,
    },
    /// A stats snapshot (reply to [`Request::Stats`]).
    Stats { stats: ServerStats },
    /// Prometheus text exposition (reply to [`Request::Metrics`]).
    Metrics { text: String },
    /// Protocol-level error (malformed frame, unknown job id, …).
    Error { message: String },
}

/// A point-in-time view of the server, §4-style observability for the
/// shared pool.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Jobs admitted but not yet running (queued or planning).
    pub jobs_queued: usize,
    /// Jobs currently executing on the pool.
    pub jobs_running: usize,
    /// Lifetime completions.
    pub jobs_done: u64,
    pub jobs_failed: u64,
    pub jobs_cancelled: u64,
    /// Jobs cancelled by the deadline watchdog.
    pub jobs_deadline_exceeded: u64,
    /// Map slots in use / total across all jobs.
    pub map_busy: usize,
    pub map_total: usize,
    /// Reduce slots in use / total across all jobs.
    pub reduce_busy: usize,
    pub reduce_total: usize,
    /// Lifetime keyblocks committed across all jobs.
    pub keyblocks_committed: u64,
    /// Lifetime payload bytes streamed to clients.
    pub bytes_streamed: u64,
    /// The worker fleet, one entry per configured worker (empty when
    /// the server executes in-process). `default` keeps the frame
    /// readable by stats clients of either era.
    #[serde(default)]
    pub workers: Vec<WorkerStat>,
}
