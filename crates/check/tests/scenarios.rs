//! The core concurrency scenarios from the runtime, explored
//! under the virtual scheduler. These compile only under
//! `RUSTFLAGS='--cfg check'`, where `sidr-mapreduce::sync` re-exports
//! the checker's primitives and the *production* SlotPool/CancelToken/
//! recovery code runs unmodified inside each explored schedule.
//!
//! Every scenario body is self-contained (fresh pool, fresh job) and
//! asserts its own postconditions, so a bad interleaving surfaces as a
//! replayable failing schedule — `assert_clean` prints the seed or
//! decision trace to re-run it.
#![cfg(check)]

use std::time::{Duration, Instant};

use sidr_check::{Explorer, Strategy};
use sidr_coords::{Shape, Slab};
use sidr_core::TimelineOracle;
use sidr_mapreduce::sync::atomic::{AtomicUsize, Ordering};
use sidr_mapreduce::sync::thread;
use sidr_mapreduce::{
    run_job_shared, CancelToken, DefaultPlan, FaultPlan, FnMapper, FnReducer, InMemoryOutput,
    InputSplit, JobConfig, MapTaskId, ModuloPartitioner, RetryPolicy, RoutingPlan,
    SliceRecordSource, SlotPool, SpeculationPolicy,
};

/// The safety-net tick passed to raw semaphore waits. Under the
/// virtual scheduler the duration is ignored: the timeout fires only
/// when nothing else can run, and doing so is a LostWakeup finding.
const TICK: Duration = Duration::from_millis(25);

/// Splits `0..n` into `n` one-record splits.
fn unit_splits(n: u64) -> Vec<InputSplit> {
    let space = Shape::new(vec![n]).unwrap();
    Slab::whole(&space)
        .split_along_longest(n)
        .into_iter()
        .map(|slab| InputSplit {
            byte_range: (
                slab.corner()[0] * 8,
                (slab.corner()[0] + slab.shape()[0]) * 8,
            ),
            slab,
            preferred_nodes: vec![],
        })
        .collect()
}

/// Source yielding one `(id, id)` record per split.
fn diagonal_source(
    id: MapTaskId,
    _split: &InputSplit,
) -> sidr_mapreduce::Result<SliceRecordSource<u64, u64>> {
    Ok(SliceRecordSource::new(vec![(id as u64, id as u64)]))
}

// ---------------------------------------------------------------------------
// Scenario 1: concurrent acquire/release/wake_all on one SlotPool.
// ---------------------------------------------------------------------------

/// Three acquirers contend for two map slots while a fourth thread
/// fires `wake_all` (the job-failure/cancellation broadcast) at an
/// arbitrary point. The virtual `held` counter proves mutual exclusion
/// of the slot count itself; the final `in_use` check proves no
/// release is lost or doubled.
fn slot_pool_scenario() {
    let pool = SlotPool::new(2, 1).unwrap();
    let held = AtomicUsize::new(0);
    thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(|| {
                if pool.map_sem().acquire(&|| false, TICK) {
                    let now = held.fetch_add(1, Ordering::SeqCst) + 1;
                    assert!(now <= 2, "{now} concurrent holders of 2 slots");
                    held.fetch_sub(1, Ordering::SeqCst);
                    pool.map_sem().release();
                }
            });
        }
        s.spawn(|| pool.map_sem().wake_all());
    });
    assert_eq!(pool.map_sem().in_use(), 0, "slots leaked");
}

#[test]
fn slot_pool_acquire_release_wake_all_is_clean() {
    let report = Explorer::new("slot-pool").run(
        Strategy::Exhaustive {
            max_schedules: 1_500,
        },
        slot_pool_scenario,
    );
    report.assert_clean();
    assert!(
        report.distinct >= 1_000,
        "only {} schedules",
        report.distinct
    );
}

// ---------------------------------------------------------------------------
// Scenario 2: cancellation racing a worker blocked on the last slot.
// ---------------------------------------------------------------------------

/// One thread holds the only map slot, a second blocks acquiring it
/// with a cancellation-abort predicate, a third cancels the token.
/// The registered semaphore waker must wake the blocked thread no
/// matter how the three interleave — a missed wake shows up as a
/// LostWakeup finding, a stuck one as Deadlock.
fn cancel_scenario() {
    let pool = SlotPool::new(1, 1).unwrap();
    let token = CancelToken::new();
    let reg = token.register(pool.map_sem().waker());
    thread::scope(|s| {
        s.spawn(|| {
            assert!(pool.map_sem().acquire(&|| false, TICK));
            pool.map_sem().release();
        });
        s.spawn(|| {
            if pool.map_sem().acquire(&|| token.is_cancelled(), TICK) {
                pool.map_sem().release();
            }
        });
        s.spawn(|| token.cancel());
    });
    assert_eq!(pool.map_sem().in_use(), 0, "slots leaked");
    drop(reg);
    assert_eq!(token.waker_count(), 0, "waker registration leaked");
}

#[test]
fn cancel_racing_blocked_worker_is_clean() {
    let report = Explorer::new("cancel-race").run(
        Strategy::Exhaustive {
            max_schedules: 1_500,
        },
        cancel_scenario,
    );
    report.assert_clean();
    assert!(
        report.distinct >= 1_000,
        "only {} schedules",
        report.distinct
    );
}

// ---------------------------------------------------------------------------
// Scenario 3: volatile recovery re-wait racing late map commits.
// ---------------------------------------------------------------------------

/// Overlapping dependency sets: r0 <- {m0, m1}, r1 <- {m1, m2}.
struct OverlapPlan;

impl RoutingPlan<u64> for OverlapPlan {
    fn num_reducers(&self) -> usize {
        2
    }
    fn partition(&self, key: &u64) -> usize {
        usize::from(*key > 1)
    }
    fn reduce_deps(&self, reducer: usize) -> Option<Vec<MapTaskId>> {
        Some(if reducer == 0 { vec![0, 1] } else { vec![1, 2] })
    }
    fn invert_scheduling(&self) -> bool {
        true
    }
}

/// Both reducers fail their first attempt over volatile intermediate
/// data, so each must re-execute its (overlapping) dependency set and
/// re-wait its barrier while the other's recovery commits maps late.
/// Output equality proves no stale/consumed data was reduced; the
/// timeline oracle proves the per-attempt barrier protocol held in
/// the explored interleaving.
fn recovery_scenario() {
    let pool = SlotPool::new(2, 2).unwrap();
    let splits = unit_splits(3);
    let mapper = FnMapper::new(|k: &u64, _v: &u64, emit: &mut dyn FnMut(u64, u64)| {
        emit(*k, 100 + *k);
        emit(*k + 1, 200 + *k);
    });
    let reducer =
        FnReducer::new(|_k: &u64, vs: &[u64], emit: &mut dyn FnMut(u64)| emit(vs.iter().sum()));
    let output = InMemoryOutput::new();
    let config = JobConfig {
        fault_plan: FaultPlan::fail_reducers_first_attempt([0, 1]),
        volatile_intermediate: true,
        retry: RetryPolicy {
            backoff_ms: 1,
            ..RetryPolicy::default()
        },
        ..Default::default()
    };
    let result = run_job_shared(
        &splits,
        &diagonal_source,
        &mapper,
        None,
        &reducer,
        &OverlapPlan,
        &output,
        &config,
        &pool,
        None,
    )
    .unwrap();
    assert_eq!(
        output.sorted_records(),
        vec![(0, 100), (1, 301), (2, 303), (3, 202)]
    );
    assert_eq!(result.counters.reduce_failures, 2);
    let oracle = TimelineOracle::new(3, 2)
        .volatile_intermediate(true)
        .with_deps(0, vec![0, 1])
        .with_deps(1, vec![1, 2]);
    if let Err(v) = oracle.check_complete(&result.events) {
        panic!("timeline protocol violation: {v}");
    }
}

#[test]
fn volatile_recovery_with_overlapping_deps_is_clean() {
    Explorer::new("recovery-rewait")
        .run(
            Strategy::Random {
                schedules: 250,
                seed: 0x51D2_0003,
            },
            recovery_scenario,
        )
        .assert_clean();
}

// ---------------------------------------------------------------------------
// Scenario 4: two jobs contending for the last slot of a shared pool.
// ---------------------------------------------------------------------------

/// The multi-tenant serving shape at its tightest: two concurrent jobs
/// multiplexed over a 1-map/1-reduce slot pool, so every task of one
/// job races every task of the other for the same semaphore.
fn last_slot_scenario() {
    let pool = SlotPool::new(1, 1).unwrap();
    thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                let splits = unit_splits(2);
                let mapper = FnMapper::new(|k: &u64, _v: &u64, emit: &mut dyn FnMut(u64, u64)| {
                    emit(0, *k + 1)
                });
                let reducer = FnReducer::new(|_k: &u64, vs: &[u64], emit: &mut dyn FnMut(u64)| {
                    emit(vs.iter().sum())
                });
                let plan = DefaultPlan::<u64, _>::new(ModuloPartitioner, 1);
                let output = InMemoryOutput::new();
                run_job_shared(
                    &splits,
                    &diagonal_source,
                    &mapper,
                    None,
                    &reducer,
                    &plan,
                    &output,
                    &JobConfig::default(),
                    &pool,
                    None,
                )
                .unwrap();
                assert_eq!(output.sorted_records(), vec![(0, 3)]);
            });
        }
    });
    assert_eq!(pool.map_sem().in_use(), 0, "map slots leaked");
    assert_eq!(pool.reduce_sem().in_use(), 0, "reduce slots leaked");
}

#[test]
fn two_jobs_contending_for_last_slot_is_clean() {
    Explorer::new("last-slot")
        .run(
            Strategy::Random {
                schedules: 250,
                seed: 0x51D2_0004,
            },
            last_slot_scenario,
        )
        .assert_clean();
}

// ---------------------------------------------------------------------------
// Scenario 5: speculative race — winner commit vs loser teardown vs
// reducer fetch, over volatile intermediate data.
// ---------------------------------------------------------------------------

/// 1:1 dependencies: reducer i <- map i, inverted scheduling.
struct PairPlan;

impl RoutingPlan<u64> for PairPlan {
    fn num_reducers(&self) -> usize {
        2
    }
    fn partition(&self, key: &u64) -> usize {
        (*key as usize) % 2
    }
    fn reduce_deps(&self, reducer: usize) -> Option<Vec<MapTaskId>> {
        Some(vec![reducer])
    }
    fn invert_scheduling(&self) -> bool {
        true
    }
}

/// Map 0 is force-speculated (the only trigger under the virtual
/// scheduler — wall clocks are meaningless here), so explored
/// schedules include the twin launching, either racer claiming the
/// commit first, the loser tearing down mid-put, and the dependent
/// reducer fetching at every point in between — over *volatile*
/// intermediate data, where a half-put entry that recovery treats as
/// committed would strand the reducer. Output equality proves the
/// winner's data (and only it) was reduced; the oracle proves the
/// attempt-stamped protocol, including the at-most-one-extra-attempt
/// rule (R6), held on every schedule.
fn speculation_scenario() {
    let pool = SlotPool::new(2, 2).unwrap();
    let splits = unit_splits(2);
    let mapper = FnMapper::new(|k: &u64, _v: &u64, emit: &mut dyn FnMut(u64, u64)| {
        emit(*k, 100 + *k);
    });
    let reducer =
        FnReducer::new(|_k: &u64, vs: &[u64], emit: &mut dyn FnMut(u64)| emit(vs.iter().sum()));
    let output = InMemoryOutput::new();
    let config = JobConfig {
        speculation: SpeculationPolicy::force([0]),
        volatile_intermediate: true,
        ..Default::default()
    };
    let result = run_job_shared(
        &splits,
        &diagonal_source,
        &mapper,
        None,
        &reducer,
        &PairPlan,
        &output,
        &config,
        &pool,
        None,
    )
    .unwrap();
    assert_eq!(output.sorted_records(), vec![(0, 100), (1, 101)]);
    let oracle = TimelineOracle::new(2, 2)
        .volatile_intermediate(true)
        .with_deps(0, vec![0])
        .with_deps(1, vec![1]);
    if let Err(v) = oracle.check_complete(&result.events) {
        panic!("timeline protocol violation: {v}");
    }
}

#[test]
fn speculative_race_against_reducer_fetch_is_clean() {
    Explorer::new("speculation-race")
        .run(
            Strategy::Random {
                schedules: 250,
                seed: 0x51D2_0005,
            },
            speculation_scenario,
        )
        .assert_clean();
}

// ---------------------------------------------------------------------------
// Scenario 6: budgeted spill tier — a mover writing a partition out
// races fetches of it and a concurrent release of its neighbor.
// ---------------------------------------------------------------------------

/// One sorted, encoded map-output partition (the spill tier CRC-checks
/// read-backs, so the fixtures go through the real encoder).
fn encoded_partition(salt: u64) -> std::sync::Arc<Vec<u8>> {
    let records: Vec<(sidr_coords::Coord, f64)> = (0..8)
        .map(|i| (sidr_coords::Coord::from([salt, i]), (salt * 10 + i) as f64))
        .collect();
    let file = sidr_mapreduce::MapOutputFile {
        raw_count: records.len() as u64,
        records,
    };
    std::sync::Arc::new(sidr_mapreduce::shuffle_file::encode_map_output(&file).unwrap())
}

/// A budget that admits exactly one partition puts the `Moving`
/// window — fetchers waiting on the `moved` condvar while the mover
/// writes outside the lock — on the hot path: the second insert must
/// evict the first to make room. One thread inserts both partitions,
/// one fetches the first at an arbitrary point (before, during or
/// after its move), one releases the second mid-move. Whatever the
/// interleaving: a fetched partition is byte-identical, resident
/// bytes never exceed the budget, and the backend holds exactly one
/// file per surviving spilled partition (a release during the move
/// must not leak the mover's file as an orphan).
fn spill_tier_scenario() {
    use sidr_mapreduce::tier::MemBackend;
    let backend = std::sync::Arc::new(MemBackend::new());
    let a = encoded_partition(0);
    let b = encoded_partition(1);
    let budget = a.len() as u64;
    let store = sidr_mapreduce::PartitionStore::new(
        sidr_mapreduce::TierConfig {
            budget_bytes: budget,
            ..Default::default()
        },
        std::sync::Arc::clone(&backend) as std::sync::Arc<dyn sidr_mapreduce::SpillBackend>,
    );
    store.prepare_job(9, FaultPlan::none(), &[1, 1]);
    let key_a = (9u64, 0usize, 0usize, 0u32);
    let key_b = (9u64, 1usize, 0usize, 0u32);
    thread::scope(|s| {
        s.spawn(|| {
            store.insert(key_a, std::sync::Arc::clone(&a));
            store.insert(key_b, std::sync::Arc::clone(&b));
        });
        s.spawn(|| {
            if let Some(bytes) = store.get(&key_a).unwrap() {
                assert_eq!(&*bytes, &*a, "fetch mid-spill must be byte-identical");
            }
        });
        s.spawn(|| store.remove(&key_b));
    });
    // Partition A is never released: it must read back intact.
    let read = store
        .get(&key_a)
        .unwrap()
        .expect("unreleased partition survives the spill");
    assert_eq!(&*read, &*a);
    let p = store.pressure();
    assert!(
        p.peak_resident_bytes <= budget,
        "admission makes room first: the watermark is a hard bound"
    );
    assert_eq!(
        backend.names().len(),
        p.spilled_partitions,
        "one backend file per surviving spilled partition — no orphans"
    );
    store.remove_job(9);
    assert_eq!(store.partition_count(), 0);
    assert!(backend.names().is_empty(), "job sweep leaves no files");
}

#[test]
fn spill_vs_fetch_vs_release_is_clean() {
    Explorer::new("spill-tier")
        .run(
            Strategy::Random {
                schedules: 250,
                seed: 0x51D2_0006,
            },
            spill_tier_scenario,
        )
        .assert_clean();
}

// ---------------------------------------------------------------------------
// Coverage acceptance: >= 10,000 distinct schedules across the four
// scenarios, under a minute (timed in release builds).
// ---------------------------------------------------------------------------

#[test]
fn ten_thousand_distinct_schedules_across_core_scenarios() {
    let start = Instant::now();
    let mut total = 0usize;

    let r = Explorer::new("slot-pool").run(
        Strategy::Exhaustive {
            max_schedules: 3_000,
        },
        slot_pool_scenario,
    );
    r.assert_clean();
    total += r.distinct;

    let r = Explorer::new("cancel-race").run(
        Strategy::Exhaustive {
            max_schedules: 3_000,
        },
        cancel_scenario,
    );
    r.assert_clean();
    total += r.distinct;

    let r = Explorer::new("recovery-rewait").run(
        Strategy::Random {
            schedules: 2_200,
            seed: 0x51D2_1003,
        },
        recovery_scenario,
    );
    r.assert_clean();
    total += r.distinct;

    let r = Explorer::new("last-slot").run(
        Strategy::Random {
            schedules: 2_200,
            seed: 0x51D2_1004,
        },
        last_slot_scenario,
    );
    r.assert_clean();
    total += r.distinct;

    // Backstop: if random collisions or an unexpectedly small DFS
    // space left the sum short, keep sweeping fresh seeds over the
    // recovery scenario (whose schedule space is effectively
    // unbounded) until the target is met.
    let mut round = 0u64;
    while total < 10_000 {
        round += 1;
        assert!(round <= 16, "schedule spaces too small: {total} distinct");
        let r = Explorer::new("recovery-rewait").run(
            Strategy::Random {
                schedules: 500,
                seed: 0x51D2_2000 + round,
            },
            recovery_scenario,
        );
        r.assert_clean();
        total += r.distinct;
    }
    assert!(total >= 10_000, "{total} distinct schedules");

    // Wall-clock acceptance is only meaningful with optimizations on
    // (the documented invocation is `--release`).
    #[cfg(not(debug_assertions))]
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "coverage took {:?}",
        start.elapsed()
    );
    #[cfg(debug_assertions)]
    let _ = start;
}
