//! Ablation: speculative execution under injected stragglers — now a
//! *closed-loop* benchmark against the real engine, not the simulator.
//!
//! §4.2 attributes reduce-completion variance to "abnormally
//! long-running Map tasks". Stock Hadoop's defense is speculative
//! execution — racing a second copy of the slowest map, first commit
//! wins. This binary injects a straggler into the fig08-scale
//! weekly-averages workload and measures, on the in-process engine:
//!
//! 1. wall time with speculation off vs on (the cohort-quantile
//!    trigger) — acceptance requires the rescue to cut wall time by
//!    at least 1.5x;
//! 2. the wasted-work ratio (losing racers per executed map attempt);
//! 3. the deadline-hit rate with the *proactive* watchdog: speculation
//!    configured to never self-trigger, so only a deadline-pressure
//!    boost (`ProgressProbe::request_boost`, the serving layer's
//!    SIDR-I014 path) can rescue the run.
//!
//! Emits `results/BENCH_speculation.json`:
//!
//! ```text
//! cargo run --release -p sidr-experiments --bin ablation_speculation
//! cargo run --release -p sidr-experiments --bin ablation_speculation -- --tiny
//! ```
//!
//! Every run's keyblock commits are compared against a fault-free
//! baseline; the report is only healthy when all of them match.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;

use sidr_coords::{Coord, Shape};
use sidr_core::framework::{run_spec_on_pool, SpecRunOptions};
use sidr_core::spec::JobSpec;
use sidr_core::{Operator, SidrPlanner, StructuralQuery};
use sidr_mapreduce::{
    FaultKind, FaultPlan, FaultTarget, InMemoryOutput, JobResult, ProgressProbe, SlotPool,
    SpeculationPolicy, SplitGenerator, TaskKind,
};
use sidr_scifile::gen::{DatasetSpec, ValueModel};
use sidr_scifile::ScincFile;

struct Args {
    tiny: bool,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tiny: false,
        out: "results/BENCH_speculation.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tiny" => args.tiny = true,
            "--out" => args.out = it.next().ok_or("--out needs a path")?,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

/// Figure-8's weekly-average geometry scaled to run in seconds:
/// {112,25,20} f32 rows averaged over {7,5,1} windows, 8
/// extraction-aligned splits; `--tiny` halves the time axis for CI.
struct Workload {
    name: &'static str,
    query: StructuralQuery,
    reducers: usize,
    splits_hint: u64,
    straggle_ms: u64,
    deadline_ms: u64,
    runs: usize,
}

fn workload(tiny: bool) -> Workload {
    let (rows, name, straggle_ms, runs) = if tiny {
        (56u64, "fig08-tiny", 600, 2)
    } else {
        (112u64, "fig08-scaled", 1_500, 3)
    };
    Workload {
        name,
        query: StructuralQuery::new(
            "temperature",
            Shape::new(vec![rows, 25, 20]).expect("valid"),
            Shape::new(vec![7, 5, 1]).expect("valid"),
            Operator::Mean,
        )
        .expect("query is structural"),
        reducers: 11,
        splits_hint: 4,
        straggle_ms,
        // The straggler alone busts the deadline; only a rescue
        // (speculative twin) can bring the job in under it.
        deadline_ms: straggle_ms,
        runs,
    }
}

/// The per-keyblock commits in canonical (reducer-sorted) order — the
/// byte-identity invariant every speculative run must preserve.
type Keyblocks = Vec<(usize, Vec<(Coord, f64)>)>;

struct RunOutput {
    wall_ms: u64,
    result: JobResult,
    keyblocks: Keyblocks,
}

fn run_once(file: &ScincFile, spec: &JobSpec, opts: &SpecRunOptions) -> RunOutput {
    let pool = SlotPool::new(4, 4).expect("pool");
    let out = InMemoryOutput::<Coord, f64>::new();
    let started = Instant::now();
    let result = run_spec_on_pool(file, spec, opts, &out, &pool, None).expect("run succeeds");
    let wall_ms = started.elapsed().as_millis() as u64;
    let mut keyblocks: Keyblocks = out
        .commits()
        .into_iter()
        .map(|c| (c.reducer, c.records))
        .collect();
    keyblocks.sort_by_key(|(reducer, _)| *reducer);
    RunOutput {
        wall_ms,
        result,
        keyblocks,
    }
}

fn count_events(result: &JobResult, kind: TaskKind) -> u64 {
    result.events.iter().filter(|e| e.kind == kind).count() as u64
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    workload: String,
    num_maps: usize,
    num_reducers: usize,
    straggle_ms: u64,
    runs: usize,
    /// Median wall time with the straggler and speculation disabled.
    wall_ms_off: u64,
    /// Median wall time with the cohort-quantile trigger racing the
    /// straggler.
    wall_ms_on: u64,
    speedup: f64,
    speculative_launched: u64,
    speculative_lost: u64,
    /// Losing racers per executed map attempt (speculation-on runs).
    wasted_work_ratio: f64,
    deadline_ms: u64,
    deadline_hits_off: usize,
    deadline_hits_on: usize,
    deadline_hit_rate_on: f64,
    /// Proactive-watchdog boosts issued across the deadline runs.
    deadline_boosts: u64,
    /// Every run, speculative or not, streamed keyblocks identical to
    /// the fault-free baseline.
    output_identical: bool,
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("ablation_speculation: {msg}");
            return ExitCode::from(2);
        }
    };
    let w = workload(args.tiny);

    let dir = std::env::temp_dir().join("sidr-speculation-bench");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{}-{}.scinc", w.name, std::process::id()));
    let space = w.query.input_space().clone();
    DatasetSpec {
        variable: w.query.variable.clone(),
        dim_names: (0..space.rank()).map(|d| format!("d{d}")).collect(),
        space,
        model: ValueModel::LinearIndex,
        seed: 0,
    }
    .generate::<f32>(&path)
    .expect("dataset generates");
    let file = ScincFile::open(&path).expect("dataset opens");

    let splits = SplitGenerator::new(w.query.input_space().clone(), w.splits_hint)
        .aligned(25 * 20 * 4 * 14, 7)
        .expect("splits generate");
    let plan = SidrPlanner::new(&w.query, w.reducers)
        .build(&splits)
        .expect("plan builds");
    let spec = JobSpec::from_plan(&w.query, &splits, &plan).expect("spec builds");
    let num_maps = splits.len();
    let straggler = num_maps - 1;
    let straggle_plan = || {
        FaultPlan::none().with(
            FaultTarget::Map(straggler),
            0,
            FaultKind::Straggle {
                delay_ms: w.straggle_ms,
            },
        )
    };

    // Fault-free ground truth.
    let baseline = run_once(&file, &spec, &SpecRunOptions::default());
    let mut all_identical = true;

    println!("== Speculation ablation: closed loop on the engine ==");
    println!(
        "workload {} ({} maps, {} reducers), straggler on map {straggler} ({} ms)\n",
        w.name, num_maps, w.reducers, w.straggle_ms
    );

    // ---- Arm 1: straggler, speculation off. ----
    let mut walls_off = Vec::new();
    let mut deadline_hits_off = 0usize;
    for _ in 0..w.runs {
        let run = run_once(
            &file,
            &spec,
            &SpecRunOptions {
                fault_plan: straggle_plan(),
                ..SpecRunOptions::default()
            },
        );
        all_identical &= run.keyblocks == baseline.keyblocks;
        deadline_hits_off += usize::from(run.wall_ms <= w.deadline_ms);
        walls_off.push(run.wall_ms);
    }

    // ---- Arm 2: straggler, cohort-quantile speculation on. ----
    let mut walls_on = Vec::new();
    let mut launched = 0u64;
    let mut lost = 0u64;
    let mut attempts = 0u64;
    for _ in 0..w.runs {
        let run = run_once(
            &file,
            &spec,
            &SpecRunOptions {
                fault_plan: straggle_plan(),
                speculation: SpeculationPolicy {
                    check_interval_ms: 5,
                    ..SpeculationPolicy::on()
                },
                ..SpecRunOptions::default()
            },
        );
        all_identical &= run.keyblocks == baseline.keyblocks;
        launched += count_events(&run.result, TaskKind::MapSpeculated);
        lost += count_events(&run.result, TaskKind::MapSpeculationLost);
        attempts += count_events(&run.result, TaskKind::MapStart);
        walls_on.push(run.wall_ms);
    }

    // ---- Arm 3: deadline pressure with the proactive watchdog. ----
    // The trigger's slowdown factor is set astronomically high, so the
    // *only* way a twin launches is the watchdog observing the
    // engine's completion projection threaten the deadline and
    // boosting the trigger — the serving layer's SIDR-I014 path.
    let mut deadline_hits_on = 0usize;
    let mut deadline_boosts = 0u64;
    for _ in 0..w.runs {
        let probe = Arc::new(ProgressProbe::new());
        let done = Arc::new(AtomicBool::new(false));
        let started = Instant::now();
        let watchdog = {
            let probe = probe.clone();
            let done = done.clone();
            let deadline_ms = w.deadline_ms;
            std::thread::spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    if let Some(rem) = probe.projected_remaining_ms() {
                        let elapsed = started.elapsed().as_millis() as u64;
                        // 4x safety margin on the projection: boost
                        // early enough for the rescue to land.
                        if elapsed.saturating_add(rem.saturating_mul(4)) > deadline_ms {
                            probe.request_boost();
                        }
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        };
        let run = run_once(
            &file,
            &spec,
            &SpecRunOptions {
                fault_plan: straggle_plan(),
                speculation: SpeculationPolicy {
                    slowdown: 1e9,
                    check_interval_ms: 5,
                    ..SpeculationPolicy::on()
                },
                progress: Some(probe.clone()),
                ..SpecRunOptions::default()
            },
        );
        done.store(true, Ordering::Relaxed);
        watchdog.join().expect("watchdog thread");
        all_identical &= run.keyblocks == baseline.keyblocks;
        deadline_hits_on += usize::from(run.wall_ms <= w.deadline_ms);
        deadline_boosts += u64::from(probe.boost_requested());
    }

    let wall_ms_off = median(walls_off);
    let wall_ms_on = median(walls_on);
    let speedup = wall_ms_off as f64 / wall_ms_on.max(1) as f64;
    let report = BenchReport {
        bench: "speculative execution vs stragglers (closed loop)".into(),
        workload: w.name.into(),
        num_maps,
        num_reducers: w.reducers,
        straggle_ms: w.straggle_ms,
        runs: w.runs,
        wall_ms_off,
        wall_ms_on,
        speedup,
        speculative_launched: launched,
        speculative_lost: lost,
        wasted_work_ratio: lost as f64 / attempts.max(1) as f64,
        deadline_ms: w.deadline_ms,
        deadline_hits_off,
        deadline_hits_on,
        deadline_hit_rate_on: deadline_hits_on as f64 / w.runs as f64,
        deadline_boosts,
        output_identical: all_identical,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    if let Some(parent) = std::path::Path::new(&args.out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("ablation_speculation: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("{json}");
    std::fs::remove_file(&path).ok();

    let mut healthy = true;
    if !all_identical {
        eprintln!("[!!] some speculative run diverged from the baseline");
        healthy = false;
    }
    if speedup < 1.5 {
        eprintln!("[!!] speculation cut wall time only {speedup:.2}x (acceptance: >= 1.5x)");
        healthy = false;
    }
    if deadline_hits_on < w.runs {
        eprintln!(
            "[!!] proactive watchdog missed the deadline in {} of {} runs",
            w.runs - deadline_hits_on,
            w.runs
        );
        healthy = false;
    }
    if healthy {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
