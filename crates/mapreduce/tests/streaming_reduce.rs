//! The reduce pipeline actually streams: under a SIDR plan
//! (dependency barriers, inverted scheduling), each reducer's first
//! emitted key group reaches the [`OutputCollector`] *before* the
//! merge of its last key group completes — observable both through
//! the `Timeline` (`ReduceFirstGroup` precedes `ReduceMergeDone`) and
//! through a collector that timestamps every `stream_group` delivery.
//! The final `commit` stays atomic and carries exactly the streamed
//! records, in order.

use parking_lot::Mutex;
use std::time::Instant;

use sidr_mapreduce::{
    run_job, FnMapper, FnReducer, InputSplit, JobConfig, MapTaskId, OutputCollector, RoutingPlan,
    SliceRecordSource, TaskKind,
};

/// Two reducers, four maps, SIDR-style: reducer 0 depends on maps
/// {0,1}, reducer 1 on maps {2,3}; keys 0..100 route to reducer 0,
/// the rest to reducer 1.
struct HalvesPlan;

impl RoutingPlan<u64> for HalvesPlan {
    fn num_reducers(&self) -> usize {
        2
    }
    fn partition(&self, key: &u64) -> usize {
        usize::from(*key >= 100)
    }
    fn reduce_deps(&self, reducer: usize) -> Option<Vec<MapTaskId>> {
        Some(if reducer == 0 { vec![0, 1] } else { vec![2, 3] })
    }
    fn invert_scheduling(&self) -> bool {
        true
    }
}

/// Map task `id` emits 50 keys in its reducer's key range, two values
/// per key — so every reducer merges 2 files × 100 records into 50
/// key groups of 4 values each.
fn source(
    id: MapTaskId,
    _split: &InputSplit,
) -> sidr_mapreduce::Result<SliceRecordSource<u64, u64>> {
    let base = if id < 2 { 0u64 } else { 100 };
    let mut records = Vec::new();
    for k in 0..50u64 {
        records.push((base + k, id as u64 * 1000 + k));
        records.push((base + k, id as u64 * 1000 + 500 + k));
    }
    Ok(SliceRecordSource::new(records))
}

/// One timestamped `stream_group` delivery.
struct StreamedBatch {
    reducer: usize,
    at: Instant,
    records: Vec<(u64, u64)>,
}

/// One timestamped atomic commit.
struct Commit {
    reducer: usize,
    at: Instant,
    records: Vec<(u64, u64)>,
}

/// Records every pre-commit group delivery and every commit.
#[derive(Default)]
struct RecordingOutput {
    streamed: Mutex<Vec<StreamedBatch>>,
    committed: Mutex<Vec<Commit>>,
}

impl OutputCollector<u64, u64> for RecordingOutput {
    fn commit(&self, reducer: usize, records: Vec<(u64, u64)>) -> sidr_mapreduce::Result<()> {
        self.committed.lock().push(Commit {
            reducer,
            at: Instant::now(),
            records,
        });
        Ok(())
    }

    fn stream_group(&self, reducer: usize, records: &[(u64, u64)]) -> sidr_mapreduce::Result<()> {
        self.streamed.lock().push(StreamedBatch {
            reducer,
            at: Instant::now(),
            records: records.to_vec(),
        });
        Ok(())
    }
}

#[test]
fn first_group_reaches_collector_before_merge_finishes() {
    let splits: Vec<InputSplit> = (0..4)
        .map(|_| InputSplit {
            slab: sidr_coords::Slab::whole(&sidr_coords::Shape::new(vec![1]).unwrap()),
            byte_range: (0, 0),
            preferred_nodes: vec![],
        })
        .collect();
    let mapper = FnMapper::new(|k: &u64, v: &u64, emit: &mut dyn FnMut(u64, u64)| emit(*k, *v));
    let reducer =
        FnReducer::new(|_k: &u64, vs: &[u64], emit: &mut dyn FnMut(u64)| emit(vs.iter().sum()));
    let output = RecordingOutput::default();
    let result = run_job(
        &splits,
        &source,
        &mapper,
        None,
        &reducer,
        &HalvesPlan,
        &output,
        &JobConfig::default(),
    )
    .unwrap();

    // Timeline: per reducer, the first group left the pipeline before
    // the merge of the last group completed, which in turn precedes
    // the atomic commit.
    for r in 0..2 {
        let at = |kind: TaskKind| {
            result
                .events
                .iter()
                .find(|e| e.kind == kind && e.task == r)
                .unwrap_or_else(|| panic!("no {kind:?} event for reducer {r}"))
                .at
        };
        let barrier = at(TaskKind::ReduceBarrierMet);
        let first_group = at(TaskKind::ReduceFirstGroup);
        let merge_done = at(TaskKind::ReduceMergeDone);
        let end = at(TaskKind::ReduceEnd);
        assert!(
            barrier <= first_group && first_group < merge_done && merge_done <= end,
            "reducer {r}: barrier {barrier:?} ≤ first group {first_group:?} \
             < merge done {merge_done:?} ≤ end {end:?} violated"
        );
    }

    // Collector's own clock agrees: for each reducer the first
    // streamed batch landed strictly before its commit, every batch
    // is one key group, and the concatenation of streamed batches is
    // exactly the committed output, order included.
    let streamed = output.streamed.lock();
    let committed = output.committed.lock();
    assert_eq!(committed.len(), 2);
    for commit in committed.iter() {
        let r = commit.reducer;
        let batches: Vec<&StreamedBatch> = streamed.iter().filter(|b| b.reducer == r).collect();
        assert_eq!(batches.len(), 50, "one stream_group call per key group");
        assert!(
            batches[0].at < commit.at,
            "reducer {r}: first group streamed after commit"
        );
        let replayed: Vec<(u64, u64)> = batches
            .iter()
            .flat_map(|b| b.records.iter().copied())
            .collect();
        assert_eq!(
            &replayed, &commit.records,
            "stream == commit, byte for byte"
        );
    }

    // The job itself is still correct: 100 key groups, each summing
    // its four values.
    assert_eq!(result.counters.reduce_records_out, 100);
}
