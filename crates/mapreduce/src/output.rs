//! Output collection: where committed Reduce output goes.

use parking_lot::Mutex;
use std::time::{Duration, Instant};

use crate::task::{MrKey, MrValue};
use crate::Result;

/// Receives the atomically committed output of Reduce tasks (§2.3:
/// "atomic committal of task output"). Implementations decide the
/// format — in-memory (tests), dense SciNC slabs (SIDR, §4.4),
/// sentinel or coordinate/value files (stock Hadoop, §4.4).
pub trait OutputCollector<K, V>: Send + Sync {
    /// Commits the complete output of one reducer.
    fn commit(&self, reducer: usize, records: Vec<(K, V)>) -> Result<()>;

    /// Incremental pre-commit delivery: the runtime calls this with
    /// each key group's output records the moment the streaming merge
    /// produces them — while later groups are still merging — and
    /// always follows with one [`commit`] carrying the reducer's
    /// complete output (atomic committal is unchanged). Collectors
    /// that can use partial output (progress meters, speculative
    /// consumers) override this; the default ignores the stream.
    ///
    /// [`commit`]: OutputCollector::commit
    fn stream_group(&self, _reducer: usize, _records: &[(K, V)]) -> Result<()> {
        Ok(())
    }
}

/// Collects output in memory, stamping each commit with its time —
/// enough to reconstruct "fraction of total output available" curves.
pub struct InMemoryOutput<K, V> {
    start: Instant,
    commits: Mutex<Vec<Commit<K, V>>>,
}

/// One committed reducer output.
#[derive(Clone, Debug)]
pub struct Commit<K, V> {
    pub reducer: usize,
    pub at: Duration,
    pub records: Vec<(K, V)>,
}

impl<K: MrKey, V: MrValue> Default for InMemoryOutput<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: MrKey, V: MrValue> InMemoryOutput<K, V> {
    pub fn new() -> Self {
        InMemoryOutput {
            start: Instant::now(),
            commits: Mutex::new(Vec::new()),
        }
    }

    /// All commits in commit order.
    pub fn commits(&self) -> Vec<Commit<K, V>> {
        let mut c = self.commits.lock().clone();
        c.sort_by_key(|c| c.at);
        c
    }

    /// Every output record, sorted by key (for comparisons across
    /// framework modes, which commit in different orders).
    pub fn sorted_records(&self) -> Vec<(K, V)> {
        let mut all: Vec<(K, V)> = self
            .commits
            .lock()
            .iter()
            .flat_map(|c| c.records.iter().cloned())
            .collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Total records committed.
    pub fn len(&self) -> usize {
        self.commits.lock().iter().map(|c| c.records.len()).sum()
    }

    /// True when nothing was committed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: MrKey, V: MrValue> OutputCollector<K, V> for InMemoryOutput<K, V> {
    fn commit(&self, reducer: usize, records: Vec<(K, V)>) -> Result<()> {
        self.commits.lock().push(Commit {
            reducer,
            at: self.start.elapsed(),
            records,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commits_are_recorded_with_order() {
        let out = InMemoryOutput::<u64, u64>::new();
        out.commit(1, vec![(5, 50)]).unwrap();
        out.commit(0, vec![(1, 10), (2, 20)]).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.sorted_records(), vec![(1, 10), (2, 20), (5, 50)]);
        let commits = out.commits();
        assert_eq!(commits[0].reducer, 1);
    }
}
