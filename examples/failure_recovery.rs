//! Dependency-based failure recovery (§6, future work, implemented).
//!
//! The paper proposes replacing the persistence of all intermediate
//! data with re-execution of exactly the Map tasks a failed Reduce
//! task depended on. This example injects a reduce failure under
//! both regimes and compares the recovery work.
//!
//! ```sh
//! cargo run --release --example failure_recovery
//! ```

use sidr_repro::coords::Shape;
use sidr_repro::core::framework::RunOptions;
use sidr_repro::core::{run_query, FrameworkMode, Operator, StructuralQuery};
use sidr_repro::scifile::gen::DatasetSpec;

fn main() {
    let space = Shape::new(vec![240, 16, 16]).expect("valid shape");
    let spec = DatasetSpec::temperature(space.clone(), 11);
    let path = std::env::temp_dir().join("sidr-recovery.scinc");
    let file = spec.generate::<f64>(&path).expect("dataset generates");
    let query = StructuralQuery::new(
        "temperature",
        space,
        Shape::new(vec![8, 4, 4]).expect("valid shape"),
        Operator::Mean,
    )
    .expect("query is structural");

    let mut baseline = None;
    for (label, volatile) in [
        ("persist intermediate data (Hadoop's design)", false),
        ("volatile + re-execute dependents (§6)", true),
    ] {
        let mut opts = RunOptions::new(FrameworkMode::Sidr, 6);
        opts.split_bytes = 64 << 10; // ~8 KiB rows -> a couple dozen maps
                                     // Reducer 3's first attempt dies (deterministic fault script).
        opts.fault_plan = sidr_repro::mapreduce::FaultPlan::fail_reducers_first_attempt([3]);
        opts.volatile_intermediate = volatile;
        let outcome = run_query(&file, &query, &opts).expect("query survives the failure");
        println!(
            "{label}:\n  reduce failures: {}, maps re-executed: {} of {}, output records: {}",
            outcome.result.counters.reduce_failures,
            outcome.result.counters.maps_reexecuted,
            outcome.num_maps,
            outcome.records.len()
        );
        match &baseline {
            None => baseline = Some(outcome.records),
            Some(expect) => {
                assert_eq!(
                    &outcome.records, expect,
                    "recovery must not change the answer"
                );
                println!("  output identical to the persisted-data run");
            }
        }
    }
    println!(
        "\nOnly the failed reducer's dependency set re-ran — the paper's \
         hypothesis that dependency information makes re-execution cheap."
    );
    std::fs::remove_file(&path).ok();
}
