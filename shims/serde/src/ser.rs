//! JSON serialization: the write half of the shim's data model.

use std::collections::BTreeMap;
use std::time::Duration;

/// A JSON writer with automatic comma placement.
pub struct JsonSer {
    out: String,
    /// One entry per open object/array: whether a separator is needed
    /// before the next item.
    needs_comma: Vec<bool>,
}

impl Default for JsonSer {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonSer {
    pub fn new() -> Self {
        JsonSer {
            out: String::new(),
            needs_comma: Vec::new(),
        }
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }

    pub fn begin_object(&mut self) {
        self.out.push('{');
        self.needs_comma.push(false);
    }

    pub fn end_object(&mut self) {
        self.out.push('}');
        self.needs_comma.pop();
    }

    pub fn begin_array(&mut self) {
        self.out.push('[');
        self.needs_comma.push(false);
    }

    pub fn end_array(&mut self) {
        self.out.push(']');
        self.needs_comma.pop();
    }

    /// Starts an object entry: separator plus `"name":`.
    pub fn field(&mut self, name: &str) {
        self.elem();
        self.write_escaped(name);
        self.out.push(':');
    }

    /// Starts an array element (separator only).
    pub fn elem(&mut self) {
        if let Some(top) = self.needs_comma.last_mut() {
            if *top {
                self.out.push(',');
            }
            *top = true;
        }
    }

    pub fn write_bool(&mut self, v: bool) {
        self.out.push_str(if v { "true" } else { "false" });
    }

    pub fn write_u64(&mut self, v: u64) {
        self.out.push_str(&v.to_string());
    }

    pub fn write_i64(&mut self, v: i64) {
        self.out.push_str(&v.to_string());
    }

    /// Writes a finite float. Rust's shortest-roundtrip `Display` is
    /// valid JSON for finite values; non-finite values are encoded as
    /// `null` (serde_json errors instead, but nothing here emits
    /// non-finite floats).
    pub fn write_f64(&mut self, v: f64) {
        if v.is_finite() {
            let s = v.to_string();
            self.out.push_str(&s);
            // serde_json always marks floats; keep `1.0` distinct
            // from the integer `1` for readability.
            if !s.contains(['.', 'e', 'E']) {
                self.out.push_str(".0");
            }
        } else {
            self.out.push_str("null");
        }
    }

    pub fn write_null(&mut self) {
        self.out.push_str("null");
    }

    /// Writes a JSON string literal with escapes.
    pub fn write_string(&mut self, v: &str) {
        self.write_escaped(v);
    }

    fn write_escaped(&mut self, v: &str) {
        self.out.push('"');
        for c in v.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

/// A value that can be written as JSON.
pub trait Serialize {
    fn serialize(&self, s: &mut JsonSer);
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut JsonSer) {
                s.write_u64(*self as u64);
            }
        }
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut JsonSer) {
                s.write_i64(*self as i64);
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize(&self, s: &mut JsonSer) {
        s.write_bool(*self);
    }
}

impl Serialize for f32 {
    fn serialize(&self, s: &mut JsonSer) {
        s.write_f64(f64::from(*self));
    }
}

impl Serialize for f64 {
    fn serialize(&self, s: &mut JsonSer) {
        s.write_f64(*self);
    }
}

impl Serialize for String {
    fn serialize(&self, s: &mut JsonSer) {
        s.write_string(self);
    }
}

impl Serialize for str {
    fn serialize(&self, s: &mut JsonSer) {
        s.write_string(self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, s: &mut JsonSer) {
        (**self).serialize(s);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, s: &mut JsonSer) {
        match self {
            None => s.write_null(),
            Some(v) => v.serialize(s),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, s: &mut JsonSer) {
        self.as_slice().serialize(s);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, s: &mut JsonSer) {
        s.begin_array();
        for item in self {
            s.elem();
            item.serialize(s);
        }
        s.end_array();
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self, s: &mut JsonSer) {
        s.begin_array();
        s.elem();
        self.0.serialize(s);
        s.elem();
        self.1.serialize(s);
        s.end_array();
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self, s: &mut JsonSer) {
        s.begin_array();
        s.elem();
        self.0.serialize(s);
        s.elem();
        self.1.serialize(s);
        s.elem();
        self.2.serialize(s);
        s.end_array();
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self, s: &mut JsonSer) {
        s.begin_object();
        for (k, v) in self {
            s.field(k);
            v.serialize(s);
        }
        s.end_object();
    }
}

impl Serialize for Duration {
    fn serialize(&self, s: &mut JsonSer) {
        s.begin_object();
        s.field("secs");
        s.write_u64(self.as_secs());
        s.field("nanos");
        s.write_u64(u64::from(self.subsec_nanos()));
        s.end_object();
    }
}

/// Serializes any value to a JSON string (used by the `serde_json`
/// shim).
pub fn to_json_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut s = JsonSer::new();
    value.serialize(&mut s);
    s.finish()
}
