//! On-disk map-output files with the §3.2.1 count annotation in the
//! header.
//!
//! "Approach 2 requires the addition of a field to the header for each
//! Map output file that indicates how many ⟨k,v⟩ are represented by
//! the set of all ⟨k′,v′⟩ in that file. With this addition, a Reduce
//! task can track the count of how many ⟨k,v⟩ are represented by the
//! contents of the files containing its intermediate data **without
//! having to read and parse those files**."
//!
//! Both layouts share a 24-byte prefix (little-endian) so the
//! annotation read never depends on the version:
//!
//! ```text
//! magic    b"SMOF"
//! version  u32
//! raw      u64   <- the annotation: raw ⟨k,v⟩ pairs represented
//! records  u64   <- ⟨k′,v′⟩ records that follow
//! ```
//!
//! Version 2 (variable-width records) continues:
//!
//! ```text
//! crc      u32   <- CRC-32 (IEEE) of the payload bytes
//! payload  records × (key, value) in WireFormat encoding
//! ```
//!
//! Version 3 (fixed-width records, mmap-friendly) continues:
//!
//! ```text
//! key_width  u32   <- packed key bytes per record
//! val_width  u32   <- packed value bytes per record
//! index_len  u32   <- key-offset index entries
//! crc        u32   <- CRC-32 (IEEE) of index + payload bytes
//! index      index_len × (key bytes, record offset u64)
//! payload    records × (key bytes ++ value bytes), no framing
//! ```
//!
//! v3 is chosen automatically when both key and value expose a
//! [`FixedCodec`] and every record packs to
//! the same widths (fixed-arity coordinate keyspaces always do).
//! Records then live at `payload_off + i × (key_width + val_width)`,
//! so a reader can address record `i` — or binary-search the sparse
//! key-offset index (one entry every [`INDEX_INTERVAL`] records) to
//! seek a keyrange — without decoding any predecessor. That is what
//! lets [`Smof3View`](crate::smof3::Smof3View) merge records straight
//! out of the file bytes.
//!
//! Version 2 added the CRC frame: a fetch of a corrupted or truncated
//! file fails with [`MrError::CorruptShuffle`] *before* any record is
//! decoded, which is what lets the copy phase trigger re-execution of
//! the producing map instead of reducing over damaged input
//! (aggressive checksum validation of intermediate layouts, after
//! "Only Aggressive Elephants are Fast Elephants").

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

use crate::error::MrError;
use crate::shuffle::MapOutputFile;
use crate::task::{MrKey, MrValue};
use crate::wire::{FixedCodec, WireFormat};
use crate::Result;

pub(crate) const MAGIC: [u8; 4] = *b"SMOF";
pub const VERSION_V2: u32 = 2;
pub const VERSION_V3: u32 = 3;
/// The version-independent prefix: magic, version, raw, records.
pub(crate) const PREFIX_LEN: usize = 4 + 4 + 8 + 8;
const V2_HEADER_LEN: usize = PREFIX_LEN + 4;
pub(crate) const V3_HEADER_LEN: usize = PREFIX_LEN + 4 + 4 + 4 + 4;
/// One sparse key-offset index entry per this many records (plus one
/// for record 0). Seeking a keyrange costs one binary search over the
/// index and at most this many direct record probes.
pub const INDEX_INTERVAL: usize = 256;

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `bytes`.
/// Slice-by-8: eight lookup tables consume 8 input bytes per step,
/// with a byte-at-a-time tail. Same digests as the classic
/// byte-at-a-time form — this sits on every shuffle fetch and SMOF
/// encode, so the inner loop matters.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = crc_tables();
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes(c[0..4].try_into().expect("len 4")) ^ crc;
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][c[4] as usize]
            ^ t[2][c[5] as usize]
            ^ t[1][c[6] as usize]
            ^ t[0][c[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

fn crc_tables() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, slot) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        for k in 1..8 {
            let (done, rest) = t.split_at_mut(k);
            let (t0, prev) = (&done[0], &done[k - 1]);
            for (slot, &p) in rest[0].iter_mut().zip(prev.iter()) {
                *slot = t0[(p & 0xFF) as usize] ^ (p >> 8);
            }
        }
        t
    })
}

/// Encodes one map-output file into a self-contained SMOF byte buffer
/// (header + CRC frame + payload) — the exact bytes
/// [`write_map_output`] puts on disk, and what travels inside a raw
/// frame when a worker serves a shuffle fetch over TCP. Emits the v3
/// fixed-width layout when the key/value types support it, v2
/// otherwise.
pub fn encode_map_output<K, V>(file: &MapOutputFile<K, V>) -> Result<Vec<u8>>
where
    K: MrKey + WireFormat,
    V: MrValue + WireFormat,
{
    if let (Some(kc), Some(vc)) = (K::fixed_codec(), V::fixed_codec()) {
        if let Some(out) = encode_map_output_v3(file, &kc, &vc) {
            return Ok(out);
        }
    }
    encode_map_output_v2(file)
}

/// Encodes the v2 (variable-width, per-record `WireFormat`) layout
/// unconditionally. Kept public as the compatibility encoder: decoders
/// must keep accepting it, and the v3 property tests cross-check
/// against it.
pub fn encode_map_output_v2<K, V>(file: &MapOutputFile<K, V>) -> Result<Vec<u8>>
where
    K: MrKey + WireFormat,
    V: MrValue + WireFormat,
{
    let mut payload = Vec::new();
    for (k, v) in &file.records {
        k.encode(&mut payload)?;
        v.encode(&mut payload)?;
    }
    let mut out = Vec::with_capacity(V2_HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION_V2.to_le_bytes());
    out.extend_from_slice(&file.raw_count.to_le_bytes());
    out.extend_from_slice(&(file.records.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// v3 layout, or `None` when this particular file can't use it (mixed
/// widths across records — e.g. coords of different rank).
fn encode_map_output_v3<K, V>(
    file: &MapOutputFile<K, V>,
    kc: &FixedCodec<K>,
    vc: &FixedCodec<V>,
) -> Option<Vec<u8>>
where
    K: MrKey,
    V: MrValue,
{
    let (kw, vw) = match file.records.first() {
        Some((k, v)) => ((kc.width)(k), (vc.width)(v)),
        None => (0, 0),
    };
    if kw + vw == 0 && !file.records.is_empty() {
        return None; // zero-width rows can't be addressed by offset
    }
    if file
        .records
        .iter()
        .any(|(k, v)| (kc.width)(k) != kw || (vc.width)(v) != vw)
    {
        return None;
    }
    // Index and payload are written contiguously so the CRC covers
    // both in one pass.
    let mut index_len = 0u32;
    let mut body = Vec::with_capacity(file.records.len() * (kw + vw));
    for (i, (k, _)) in file.records.iter().enumerate().step_by(INDEX_INTERVAL) {
        (kc.write)(k, &mut body);
        body.extend_from_slice(&(i as u64).to_le_bytes());
        index_len += 1;
    }
    for (k, v) in &file.records {
        (kc.write)(k, &mut body);
        (vc.write)(v, &mut body);
    }
    let mut out = Vec::with_capacity(V3_HEADER_LEN + body.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION_V3.to_le_bytes());
    out.extend_from_slice(&file.raw_count.to_le_bytes());
    out.extend_from_slice(&(file.records.len() as u64).to_le_bytes());
    out.extend_from_slice(&(kw as u32).to_le_bytes());
    out.extend_from_slice(&(vw as u32).to_le_bytes());
    out.extend_from_slice(&index_len.to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    Some(out)
}

/// Decodes a SMOF byte buffer (either version), verifying the CRC
/// frame before decoding a single record — the fetching side of the
/// over-TCP shuffle path. Corruption, truncation and trailing bytes
/// all surface as [`MrError::CorruptShuffle`].
pub fn decode_map_output<K, V>(bytes: &[u8]) -> Result<MapOutputFile<K, V>>
where
    K: MrKey + WireFormat,
    V: MrValue + WireFormat,
{
    let prefix = parse_prefix(bytes)?;
    match prefix.version {
        VERSION_V3 => decode_v3(bytes),
        _ => decode_v2(bytes, &prefix),
    }
}

fn decode_v2<K, V>(bytes: &[u8], prefix: &Prefix) -> Result<MapOutputFile<K, V>>
where
    K: MrKey + WireFormat,
    V: MrValue + WireFormat,
{
    if bytes.len() < V2_HEADER_LEN {
        return Err(MrError::CorruptShuffle {
            detail: "map-output file shorter than header".into(),
        });
    }
    let crc = u32::from_le_bytes(bytes[24..28].try_into().expect("len 4"));
    let payload = &bytes[V2_HEADER_LEN..];
    let actual_crc = crc32(payload);
    if actual_crc != crc {
        return Err(MrError::CorruptShuffle {
            detail: format!(
                "payload CRC {actual_crc:#010x} != header CRC {crc:#010x} ({} payload bytes)",
                payload.len()
            ),
        });
    }
    let mut buf = payload;
    // Cap the pre-allocation: a corrupt count field must not trigger a
    // huge allocation before decoding fails.
    let mut records = Vec::with_capacity((prefix.records as usize).min(1 << 20));
    for _ in 0..prefix.records {
        let k = K::decode(&mut buf)?;
        let v = V::decode(&mut buf)?;
        records.push((k, v));
    }
    if !buf.is_empty() {
        return Err(MrError::CorruptShuffle {
            detail: format!(
                "{} trailing bytes after {} records",
                buf.len(),
                prefix.records
            ),
        });
    }
    Ok(MapOutputFile {
        records,
        raw_count: prefix.raw,
    })
}

fn decode_v3<K, V>(bytes: &[u8]) -> Result<MapOutputFile<K, V>>
where
    K: MrKey + WireFormat,
    V: MrValue + WireFormat,
{
    let (Some(kc), Some(vc)) = (K::fixed_codec(), V::fixed_codec()) else {
        return Err(MrError::CorruptShuffle {
            detail: "v3 map-output file for a type without a fixed codec".into(),
        });
    };
    let meta = parse_v3_meta(bytes)?;
    let row = meta.key_width + meta.val_width;
    let payload = &bytes[meta.payload_off..];
    let mut records = Vec::with_capacity(meta.records.min(1 << 20));
    for i in 0..meta.records {
        let off = i * row;
        records.push((
            (kc.read)(&payload[off..off + meta.key_width]),
            (vc.read)(&payload[off + meta.key_width..off + row]),
        ));
    }
    Ok(MapOutputFile {
        records,
        raw_count: meta.raw,
    })
}

pub(crate) struct Prefix {
    pub version: u32,
    pub raw: u64,
    pub records: u64,
}

/// Parses the 24-byte version-independent prefix. This is all the
/// annotation path ever reads.
pub(crate) fn parse_prefix(bytes: &[u8]) -> Result<Prefix> {
    if bytes.len() < PREFIX_LEN {
        return Err(MrError::CorruptShuffle {
            detail: "map-output file shorter than header".into(),
        });
    }
    if bytes[..4] != MAGIC {
        return Err(MrError::CorruptShuffle {
            detail: format!("not a map-output file (magic {:?})", &bytes[..4]),
        });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("len 4"));
    if version != VERSION_V2 && version != VERSION_V3 {
        return Err(MrError::CorruptShuffle {
            detail: format!("unknown map-output version {version}"),
        });
    }
    Ok(Prefix {
        version,
        raw: u64::from_le_bytes(bytes[8..16].try_into().expect("len 8")),
        records: u64::from_le_bytes(bytes[16..24].try_into().expect("len 8")),
    })
}

/// Validated v3 geometry: where the index and payload live inside the
/// buffer. Produced only after the magic, version, length arithmetic,
/// CRC, and index invariants have all checked out, so downstream
/// record addressing can use plain slicing.
pub(crate) struct V3Meta {
    pub raw: u64,
    pub records: usize,
    pub key_width: usize,
    pub val_width: usize,
    pub index_len: usize,
    pub index_off: usize,
    pub payload_off: usize,
}

pub(crate) fn parse_v3_meta(bytes: &[u8]) -> Result<V3Meta> {
    let corrupt = |detail: String| MrError::CorruptShuffle { detail };
    let prefix = parse_prefix(bytes)?;
    if prefix.version != VERSION_V3 {
        return Err(corrupt(format!("expected v3, found v{}", prefix.version)));
    }
    if bytes.len() < V3_HEADER_LEN {
        return Err(corrupt("v3 map-output file shorter than header".into()));
    }
    let key_width = u32::from_le_bytes(bytes[24..28].try_into().expect("len 4")) as usize;
    let val_width = u32::from_le_bytes(bytes[28..32].try_into().expect("len 4")) as usize;
    let index_len = u32::from_le_bytes(bytes[32..36].try_into().expect("len 4")) as usize;
    let crc = u32::from_le_bytes(bytes[36..40].try_into().expect("len 4"));
    let records = usize::try_from(prefix.records)
        .map_err(|_| corrupt(format!("record count {} overflows", prefix.records)))?;
    let row = key_width + val_width;
    if records > 0 && row == 0 {
        return Err(corrupt(format!("{records} records of zero width")));
    }
    let entry = key_width + 8;
    let index_bytes = index_len
        .checked_mul(entry)
        .ok_or_else(|| corrupt("index size overflows".into()))?;
    let payload_bytes = records
        .checked_mul(row)
        .ok_or_else(|| corrupt("payload size overflows".into()))?;
    let expected = V3_HEADER_LEN
        .checked_add(index_bytes)
        .and_then(|n| n.checked_add(payload_bytes))
        .ok_or_else(|| corrupt("file size overflows".into()))?;
    if bytes.len() != expected {
        return Err(corrupt(format!(
            "file is {} bytes, geometry implies {expected}",
            bytes.len()
        )));
    }
    let body = &bytes[V3_HEADER_LEN..];
    let actual_crc = crc32(body);
    if actual_crc != crc {
        return Err(corrupt(format!(
            "body CRC {actual_crc:#010x} != header CRC {crc:#010x} ({} body bytes)",
            body.len()
        )));
    }
    let index_off = V3_HEADER_LEN;
    let payload_off = index_off + index_bytes;
    // The index must point at real records, in order, and each entry's
    // key bytes must match the record it points at (byte equality is
    // value equality for fixed-width encodings).
    let mut prev: Option<u64> = None;
    for e in 0..index_len {
        let at = index_off + e * entry;
        let rec = u64::from_le_bytes(bytes[at + key_width..at + entry].try_into().expect("len 8"));
        if rec >= records as u64 {
            return Err(corrupt(format!(
                "index entry {e} points at record {rec} of {records}"
            )));
        }
        if prev.is_some_and(|p| rec <= p) {
            return Err(corrupt(format!("index entry {e} out of order")));
        }
        prev = Some(rec);
        let rec_key = payload_off + rec as usize * row;
        if bytes[at..at + key_width] != bytes[rec_key..rec_key + key_width] {
            return Err(corrupt(format!("index entry {e} key mismatch")));
        }
    }
    Ok(V3Meta {
        raw: prefix.raw,
        records,
        key_width,
        val_width,
        index_len,
        index_off,
        payload_off,
    })
}

/// Type-free integrity check of one encoded map-output buffer: magic,
/// version, geometry, and payload CRC — everything decoding would
/// check short of reading records, so callers that only move bytes
/// (the worker's spill tier reading a partition back from disk) can
/// reject bit flips and truncation as [`MrError::CorruptShuffle`]
/// without knowing the key/value types.
pub fn verify_encoded(bytes: &[u8]) -> Result<()> {
    let prefix = parse_prefix(bytes)?;
    match prefix.version {
        VERSION_V3 => parse_v3_meta(bytes).map(|_| ()),
        _ => {
            if bytes.len() < V2_HEADER_LEN {
                return Err(MrError::CorruptShuffle {
                    detail: "v2 map-output file shorter than header".into(),
                });
            }
            let crc =
                u32::from_le_bytes(bytes[PREFIX_LEN..V2_HEADER_LEN].try_into().expect("len 4"));
            let actual = crc32(&bytes[V2_HEADER_LEN..]);
            if actual != crc {
                return Err(MrError::CorruptShuffle {
                    detail: format!("payload CRC {actual:#010x} != header CRC {crc:#010x}"),
                });
            }
            Ok(())
        }
    }
}

/// Writes one map-output file to `path`.
pub fn write_map_output<K, V>(path: impl AsRef<Path>, file: &MapOutputFile<K, V>) -> Result<()>
where
    K: MrKey + WireFormat,
    V: MrValue + WireFormat,
{
    let bytes = encode_map_output(file)?;
    let mut out = BufWriter::new(File::create(path).map_err(io_err)?);
    out.write_all(&bytes).map_err(io_err)?;
    out.flush().map_err(io_err)?;
    Ok(())
}

/// Reads *only* the version-independent prefix: `(raw_count,
/// record_count)` — the annotation tally path that lets a Reduce task
/// understand its data "at the logical level" without parsing it
/// (§3.2.1).
pub fn read_annotation(path: impl AsRef<Path>) -> Result<(u64, u64)> {
    let mut file = File::open(path).map_err(io_err)?;
    let mut prefix = [0u8; PREFIX_LEN];
    file.read_exact(&mut prefix).map_err(io_err)?;
    let p = parse_prefix(&prefix)?;
    Ok((p.raw, p.records))
}

/// Reads a complete map-output file back, verifying the CRC frame
/// before decoding a single record. Corruption and truncation both
/// surface as [`MrError::CorruptShuffle`].
pub fn read_map_output<K, V>(path: impl AsRef<Path>) -> Result<MapOutputFile<K, V>>
where
    K: MrKey + WireFormat,
    V: MrValue + WireFormat,
{
    let mut file = File::open(path).map_err(io_err)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(io_err)?;
    decode_map_output(&bytes)
}

/// Flips one payload byte in the file at `path` (fault injection: a
/// silently corrupted intermediate file). Files with no payload get
/// their stored CRC flipped instead, so the damage is always
/// CRC-detectable whichever layout version the file uses.
pub fn corrupt_payload(path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let mut bytes = std::fs::read(path).map_err(io_err)?;
    let prefix = parse_prefix(&bytes)?;
    let (header_len, crc_off) = match prefix.version {
        VERSION_V3 => (V3_HEADER_LEN, 36),
        _ => (V2_HEADER_LEN, 24),
    };
    if bytes.len() > header_len {
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
    } else if bytes.len() >= header_len {
        bytes[crc_off] ^= 0xFF; // no payload to flip: damage the stored CRC itself
    } else {
        return Err(MrError::CorruptShuffle {
            detail: "cannot corrupt a file shorter than its header".into(),
        });
    }
    std::fs::write(path, &bytes).map_err(io_err)?;
    Ok(())
}

/// Truncates the file at `path` mid-payload (fault injection: a map
/// output cut short by a crashed writer). Header-only files lose
/// their last header byte, so the damage is always detectable.
pub fn truncate_payload(path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(io_err)?;
    let keep = bytes.len().saturating_sub(1);
    std::fs::write(path, &bytes[..keep]).map_err(io_err)?;
    Ok(())
}

fn io_err(e: std::io::Error) -> MrError {
    MrError::Source(format!("shuffle spill I/O: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidr_coords::Coord;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sidr-smof-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn sample() -> MapOutputFile<Coord, f64> {
        MapOutputFile {
            records: vec![
                (Coord::from([0, 1]), 1.5),
                (Coord::from([0, 2]), -2.25),
                (Coord::from([1, 0]), 0.0),
            ],
            raw_count: 12, // combiner folded 12 raw pairs into 3
        }
    }

    /// Variable-width records (String keys have no fixed codec), so
    /// these files exercise the v2 path through the public API.
    fn sample_v2() -> MapOutputFile<String, f64> {
        MapOutputFile {
            records: vec![("apsu".to_string(), 1.5), ("tiamat".to_string(), -2.25)],
            raw_count: 7,
        }
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    /// Byte-at-a-time reference: the pre-slice-by-8 implementation,
    /// kept to pin the optimized loop to the same digests.
    fn crc32_bytewise(bytes: &[u8]) -> u32 {
        let t = &crc_tables()[0];
        let mut crc = !0u32;
        for &b in bytes {
            crc = t[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        !crc
    }

    #[test]
    fn crc32_slice_by_8_matches_bytewise_reference() {
        let mut rng = rand::SplitMix64::seed_from_u64(0x51D2);
        // All lengths through several 8-byte blocks, so every tail
        // shape (0..=7 remainder bytes) is hit, plus larger buffers.
        for len in (0..64).chain([255, 256, 4096, 10_000]) {
            let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            assert_eq!(crc32(&data), crc32_bytewise(&data), "len {len}");
        }
    }

    #[test]
    fn byte_buffer_roundtrip_matches_disk_format() {
        let path = temp_path("buffer");
        let f = sample();
        write_map_output(&path, &f).unwrap();
        let disk = std::fs::read(&path).unwrap();
        let encoded = encode_map_output(&f).unwrap();
        assert_eq!(encoded, disk, "encode must produce the on-disk bytes");
        let back: MapOutputFile<Coord, f64> = decode_map_output(&encoded).unwrap();
        assert_eq!(back.records, f.records);
        assert_eq!(back.raw_count, 12);
        // A flipped byte in the buffer is CRC-caught, same as on disk.
        let mut bad = encoded.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert!(matches!(
            decode_map_output::<Coord, f64>(&bad),
            Err(MrError::CorruptShuffle { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn coord_files_use_v3_and_decode_back() {
        let encoded = encode_map_output(&sample()).unwrap();
        let prefix = parse_prefix(&encoded).unwrap();
        assert_eq!(prefix.version, VERSION_V3);
        let meta = parse_v3_meta(&encoded).unwrap();
        assert_eq!((meta.key_width, meta.val_width), (16, 8));
        assert_eq!(meta.records, 3);
        assert_eq!(meta.index_len, 1); // 3 records < INDEX_INTERVAL
        let back: MapOutputFile<Coord, f64> = decode_map_output(&encoded).unwrap();
        assert_eq!(back.records, sample().records);
    }

    #[test]
    fn v2_encoder_still_accepted_by_decoder() {
        let f = sample();
        let encoded = encode_map_output_v2(&f).unwrap();
        assert_eq!(parse_prefix(&encoded).unwrap().version, VERSION_V2);
        let back: MapOutputFile<Coord, f64> = decode_map_output(&encoded).unwrap();
        assert_eq!(back.records, f.records);
        assert_eq!(back.raw_count, f.raw_count);
    }

    #[test]
    fn variable_width_types_fall_back_to_v2() {
        let f = sample_v2();
        let encoded = encode_map_output(&f).unwrap();
        assert_eq!(parse_prefix(&encoded).unwrap().version, VERSION_V2);
        let back: MapOutputFile<String, f64> = decode_map_output(&encoded).unwrap();
        assert_eq!(back.records, f.records);
    }

    #[test]
    fn mixed_rank_coords_fall_back_to_v2() {
        let f = MapOutputFile {
            records: vec![(Coord::from([1]), 1.0), (Coord::from([1, 2]), 2.0)],
            raw_count: 2,
        };
        let encoded = encode_map_output(&f).unwrap();
        assert_eq!(parse_prefix(&encoded).unwrap().version, VERSION_V2);
        let back: MapOutputFile<Coord, f64> = decode_map_output(&encoded).unwrap();
        assert_eq!(back.records, f.records);
    }

    #[test]
    fn full_roundtrip() {
        let path = temp_path("roundtrip");
        let f = sample();
        write_map_output(&path, &f).unwrap();
        let back: MapOutputFile<Coord, f64> = read_map_output(&path).unwrap();
        assert_eq!(back.records, f.records);
        assert_eq!(back.raw_count, 12);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn annotation_read_is_header_only() {
        let path = temp_path("annotation");
        write_map_output(&path, &sample()).unwrap();
        // Cut the file down to the version-independent prefix: the
        // annotation must still be readable (it never touches the
        // records, nor even the version-specific header fields).
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..PREFIX_LEN]).unwrap();
        let (raw, records) = read_annotation(&path).unwrap();
        assert_eq!((raw, records), (12, 3));
        // But a full read of the truncated file fails loudly — and as
        // a corruption, so the copy phase can recover.
        assert!(matches!(
            read_map_output::<Coord, f64>(&path),
            Err(MrError::CorruptShuffle { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let path = temp_path("magic");
        write_map_output(&path, &sample()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_annotation(&path).is_err());
        bytes[0] = b'S';
        bytes[4] = 9;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_annotation(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_detected_by_crc() {
        let path = temp_path("bitflip");
        write_map_output(&path, &sample()).unwrap();
        corrupt_payload(&path).unwrap();
        assert!(matches!(
            read_map_output::<Coord, f64>(&path),
            Err(MrError::CorruptShuffle { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_detected_by_crc() {
        let path = temp_path("truncate");
        write_map_output(&path, &sample()).unwrap();
        truncate_payload(&path).unwrap();
        assert!(matches!(
            read_map_output::<Coord, f64>(&path),
            Err(MrError::CorruptShuffle { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn trailing_garbage_detected() {
        let path = temp_path("trailing");
        write_map_output(&path, &sample()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0xAB);
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_map_output::<Coord, f64>(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v3_index_tampering_detected() {
        let f = MapOutputFile {
            records: (0..600u64).map(|i| (Coord::from([i]), i as f64)).collect(),
            raw_count: 600,
        };
        let encoded = encode_map_output(&f).unwrap();
        let meta = parse_v3_meta(&encoded).unwrap();
        assert_eq!(meta.index_len, 3); // records 0, 256, 512
                                       // Point the second index entry at the wrong record and re-seal
                                       // the CRC: the key-mismatch check must still reject it.
        let mut bad = encoded.clone();
        let entry = meta.key_width + 8;
        let off = meta.index_off + entry + meta.key_width;
        bad[off..off + 8].copy_from_slice(&300u64.to_le_bytes());
        let crc = crc32(&bad[V3_HEADER_LEN..]);
        bad[36..40].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            parse_v3_meta(&bad),
            Err(MrError::CorruptShuffle { .. })
        ));
    }

    #[test]
    fn empty_file_roundtrips_as_v3() {
        let f = MapOutputFile::<Coord, f64> {
            records: Vec::new(),
            raw_count: 0,
        };
        let encoded = encode_map_output(&f).unwrap();
        assert_eq!(encoded.len(), V3_HEADER_LEN);
        let back: MapOutputFile<Coord, f64> = decode_map_output(&encoded).unwrap();
        assert!(back.records.is_empty());
    }
}
