//! Dependency derivation: which input splits feed which keyblocks
//! (§3.2).
//!
//! "`I_ℓ` is the set of `Iᵢ` that, when processed by a RecordReader
//! and associated Map task, will produce at least one intermediate
//! key/value pair that will be assigned to `keyblock_ℓ`." SIDR
//! computes the keyblocks each split generates data for and inverts
//! the relationship (§3.2.1), so every Reduce task can use its actual
//! dependencies as its barrier — the precise communication model of
//! Fig. 5(b).

use sidr_coords::Slab;
use sidr_mapreduce::{InputSplit, MapTaskId};

use crate::partition_plus::PartitionPlus;
use crate::query::StructuralQuery;
use crate::Result;

/// The dependency structure of one job: split → keyblocks and its
/// inversion keyblock → splits.
#[derive(Clone, Debug)]
pub struct Dependencies {
    /// `I_ℓ` per keyblock: the Map tasks reducer ℓ depends on, in id
    /// order.
    reduce_deps: Vec<Vec<MapTaskId>>,
    /// Keyblocks each Map task produces data for, in id order.
    map_feeds: Vec<Vec<usize>>,
}

impl Dependencies {
    /// Derives dependencies for `splits` under `query` and the
    /// `partition+` keyblock assignment.
    ///
    /// For each split, the extraction shape maps the split's slab to
    /// the slab of intermediate keys it can produce (§3 Area 2); the
    /// partition geometry then yields the keyblocks those keys land
    /// in. The result is exact for disjoint extractions and a safe
    /// superset under strides (a superset only delays a reduce start,
    /// never corrupts it).
    pub fn derive(
        query: &StructuralQuery,
        partition: &PartitionPlus,
        splits: &[InputSplit],
    ) -> Result<Self> {
        let r = partition.num_reducers();
        let mut reduce_deps: Vec<Vec<MapTaskId>> = vec![Vec::new(); r];
        let mut map_feeds: Vec<Vec<usize>> = Vec::with_capacity(splits.len());
        for (map_id, split) in splits.iter().enumerate() {
            let blocks = Self::keyblocks_of_split(query, partition, &split.slab)?;
            for &b in &blocks {
                reduce_deps[b].push(map_id);
            }
            map_feeds.push(blocks);
        }
        Ok(Dependencies {
            reduce_deps,
            map_feeds,
        })
    }

    /// The keyblocks a single split produces data for.
    pub fn keyblocks_of_split(
        query: &StructuralQuery,
        partition: &PartitionPlus,
        split: &Slab,
    ) -> Result<Vec<usize>> {
        let Some(image) = query.image_of_split(split)? else {
            return Ok(Vec::new()); // split lies in a discarded region
        };
        // The image is a slab of K'. The partition's skew-shape tiling
        // turns it into a grid slab of dealing-unit instances; within
        // that grid slab, instances along the last dimension are
        // consecutive in row-major index order, and keyblocks are
        // contiguous index runs — so each grid row contributes the
        // whole range [block(first), block(last)].
        let cp = partition.partition();
        let tiling = cp.tiling();
        let Some(grid_slab) = tiling.instances_touched_by(&image)? else {
            return Ok(Vec::new());
        };
        let rank = grid_slab.rank();
        let last_len = grid_slab.shape()[rank - 1];
        let mut blocks = std::collections::BTreeSet::new();
        let mut add_run = |start_coord: &sidr_coords::Coord| -> Result<()> {
            let start = tiling.linearize_grid(start_coord)?;
            let first = cp.keyblock_of_instance(start);
            let last = cp.keyblock_of_instance(start + last_len - 1);
            blocks.extend(first..=last);
            Ok(())
        };
        if rank == 1 {
            add_run(grid_slab.corner())?;
        } else {
            let outer = sidr_coords::Shape::new(grid_slab.shape().extents()[..rank - 1].to_vec())?;
            for rel in outer.iter_coords() {
                let mut comps: Vec<u64> = rel
                    .components()
                    .iter()
                    .zip(grid_slab.corner().components())
                    .map(|(&a, &b)| a + b)
                    .collect();
                comps.push(grid_slab.corner()[rank - 1]);
                add_run(&sidr_coords::Coord::new(comps))?;
            }
        }
        Ok(blocks.into_iter().collect())
    }

    /// `I_ℓ`: the Map tasks reducer `reducer` depends on.
    pub fn reduce_deps(&self, reducer: usize) -> &[MapTaskId] {
        &self.reduce_deps[reducer]
    }

    /// Keyblocks a Map task produces data for.
    pub fn map_feeds(&self, map: MapTaskId) -> &[usize] {
        &self.map_feeds[map]
    }

    /// Number of keyblocks.
    pub fn num_reducers(&self) -> usize {
        self.reduce_deps.len()
    }

    /// Total (map, reducer) contact pairs = the SIDR column of
    /// Table 3.
    pub fn total_connections(&self) -> u64 {
        self.reduce_deps.iter().map(|d| d.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::Operator;
    use sidr_coords::{Coord, Shape};
    use sidr_mapreduce::SplitGenerator;

    fn shape(v: &[u64]) -> Shape {
        Shape::new(v.to_vec()).unwrap()
    }

    fn weekly_query() -> StructuralQuery {
        StructuralQuery::new(
            "temperature",
            shape(&[364, 10, 10]),
            shape(&[7, 5, 1]),
            Operator::Mean,
        )
        .unwrap()
    }

    /// Brute-force ground truth: which keyblocks a split feeds.
    fn brute_keyblocks(q: &StructuralQuery, pp: &PartitionPlus, split: &Slab) -> Vec<usize> {
        let mut blocks: Vec<usize> = split
            .iter_coords()
            .filter_map(|k| q.map_key(&k))
            .map(|kp| pp.partition().keyblock_of_key(&kp).unwrap())
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        blocks
    }

    #[test]
    fn derived_deps_match_brute_force() {
        let q = weekly_query();
        let pp = PartitionPlus::for_query(&q, 6).unwrap();
        let gen = SplitGenerator::new(q.input_space().clone(), 8);
        let splits = gen.exact_count(13).unwrap();
        let deps = Dependencies::derive(&q, &pp, &splits).unwrap();
        for (m, split) in splits.iter().enumerate() {
            let expect = brute_keyblocks(&q, &pp, &split.slab);
            assert_eq!(deps.map_feeds(m), &expect[..], "split {m}");
        }
        // Inversion is consistent.
        for r in 0..6 {
            for &m in deps.reduce_deps(r) {
                assert!(deps.map_feeds(m).contains(&r));
            }
        }
    }

    #[test]
    fn aligned_splits_feed_few_blocks() {
        // Extraction-aligned contiguous splits + contiguous keyblocks
        // → each split feeds one or two adjacent blocks (§3.4).
        let q = weekly_query();
        let pp = PartitionPlus::for_query(&q, 4).unwrap();
        let gen = SplitGenerator::new(q.input_space().clone(), 8);
        let splits = gen.aligned(7 * 10 * 10 * 8 * 4, 7).unwrap();
        let deps = Dependencies::derive(&q, &pp, &splits).unwrap();
        for m in 0..splits.len() {
            assert!(
                deps.map_feeds(m).len() <= 2,
                "split {m} feeds {:?}",
                deps.map_feeds(m)
            );
        }
    }

    #[test]
    fn discarded_region_split_feeds_nothing() {
        let q = StructuralQuery::new("v", shape(&[10, 4]), shape(&[4, 4]), Operator::Mean).unwrap();
        let pp = PartitionPlus::for_query(&q, 2).unwrap();
        // Rows 8..10 are in the discarded partial instance.
        let split = Slab::new(Coord::from([8, 0]), shape(&[2, 4])).unwrap();
        let blocks = Dependencies::keyblocks_of_split(&q, &pp, &split).unwrap();
        assert!(blocks.is_empty());
    }

    #[test]
    fn total_connections_is_sum_of_deps() {
        let q = weekly_query();
        let pp = PartitionPlus::for_query(&q, 5).unwrap();
        let gen = SplitGenerator::new(q.input_space().clone(), 8);
        let splits = gen.exact_count(10).unwrap();
        let deps = Dependencies::derive(&q, &pp, &splits).unwrap();
        let sum: u64 = (0..5).map(|r| deps.reduce_deps(r).len() as u64).sum();
        assert_eq!(deps.total_connections(), sum);
    }
}
