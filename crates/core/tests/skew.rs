//! §4.3's intermediate-key-skew pathology reproduced on the *real*
//! threaded engine (the fig13 binary reproduces it at paper scale on
//! the simulator).

use sidr_coords::{Coord, Shape};
use sidr_core::operators::OperatorReducer;
use sidr_core::source::{scinc_source_factory, StructuralMapper};
use sidr_core::{Operator, SidrPlanner, StructuralQuery};
use sidr_mapreduce::{
    run_job, CoordHashPartitioner, DefaultPlan, InMemoryOutput, JobConfig, SplitGenerator,
};
use sidr_scifile::gen::{DatasetSpec, ValueModel};

const REDUCERS: usize = 22;

fn shape(v: &[u64]) -> Shape {
    Shape::new(v.to_vec()).unwrap()
}

fn per_reducer_records(output: &InMemoryOutput<Coord, f64>) -> Vec<usize> {
    let mut counts = vec![0usize; REDUCERS];
    for c in output.commits() {
        counts[c.reducer] += c.records.len();
    }
    counts
}

#[test]
fn corner_keys_starve_reducers_under_hash_but_not_under_partition_plus() {
    // Even-sided extraction {2, 4} → all corner coordinates even.
    let space = shape(&[80, 44]);
    let spec = DatasetSpec {
        variable: "v".into(),
        dim_names: vec!["d0".into(), "d1".into()],
        space: space.clone(),
        model: ValueModel::LinearIndex,
        seed: 0,
    };
    let dir = std::env::temp_dir().join("sidr-skew-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("skew-{}.scinc", std::process::id()));
    let file = spec.generate::<f64>(&path).unwrap();

    let q = StructuralQuery::new("v", space.clone(), shape(&[2, 4]), Operator::Mean).unwrap();
    let splits = SplitGenerator::new(space, 8).exact_count(10).unwrap();
    let reducer = OperatorReducer { op: q.operator };
    let factory = scinc_source_factory::<f64>(&file, "v");

    // Stock: corner keys + hash-modulo.
    let stock_output = InMemoryOutput::new();
    let stock_mapper = StructuralMapper::new(q.extraction.clone()).emit_corner_keys();
    let stock_plan = DefaultPlan::<Coord, _>::new(CoordHashPartitioner, REDUCERS);
    run_job(
        &splits,
        &factory,
        &stock_mapper,
        None,
        &reducer,
        &stock_plan,
        &stock_output,
        &JobConfig::default(),
    )
    .unwrap();
    let stock = per_reducer_records(&stock_output);
    let starved = stock.iter().filter(|&&c| c == 0).count();
    assert!(
        starved >= REDUCERS / 2,
        "hash over all-even corner keys should starve >= half the reducers: {stock:?}"
    );
    let busiest = *stock.iter().max().unwrap() as f64;
    let mean = stock.iter().sum::<usize>() as f64 / REDUCERS as f64;
    assert!(
        busiest > 1.8 * mean,
        "overloaded reducers should see ~2x the mean: busiest {busiest}, mean {mean}"
    );

    // SIDR: partition+ over normalized keys — balanced.
    let sidr_output = InMemoryOutput::new();
    let sidr_mapper = StructuralMapper::new(q.extraction.clone());
    let sidr_plan = SidrPlanner::new(&q, REDUCERS).build(&splits).unwrap();
    run_job(
        &splits,
        &factory,
        &sidr_mapper,
        None,
        &reducer,
        &sidr_plan,
        &sidr_output,
        &JobConfig::default(),
    )
    .unwrap();
    let sidr = per_reducer_records(&sidr_output);
    assert_eq!(sidr.iter().filter(|&&c| c == 0).count(), 0, "{sidr:?}");
    let max = *sidr.iter().max().unwrap();
    let min = *sidr.iter().min().unwrap();
    assert!(
        (max - min) as u64 <= sidr_plan.partition().partition().skew_shape().count(),
        "partition+ skew beyond one dealing unit: {sidr:?}"
    );

    // Both produce the same *number* of output keys (the stock run's
    // keys are corner-scaled but 1:1 with SIDR's).
    assert_eq!(stock.iter().sum::<usize>(), sidr.iter().sum::<usize>());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn strided_corner_keys_use_stride_spacing() {
    // With a stride, corner coordinates step by the stride, not the
    // tile — the mapper must honor that.
    let space = shape(&[40]);
    let q =
        StructuralQuery::with_stride("v", space, shape(&[2]), vec![10], Operator::Mean).unwrap();
    let mapper = StructuralMapper::new(q.extraction.clone()).emit_corner_keys();
    let mut out = Vec::new();
    use sidr_mapreduce::Mapper as _;
    for i in 0..40u64 {
        mapper.map(&Coord::from([i]), &0.0, &mut |k, v| out.push((k, v)));
    }
    let keys: Vec<u64> = out.iter().map(|(k, _)| k[0]).collect();
    assert_eq!(keys, vec![0, 0, 10, 10, 20, 20, 30, 30]);
}
