//! Concurrency stress: many jobs in parallel, larger jobs with small
//! slot counts, and repeated runs shaking out ordering assumptions in
//! the runtime's locking.

use std::time::Duration;

use sidr_coords::{Shape, Slab};
use sidr_mapreduce::{
    run_job, DefaultPlan, FaultPlan, FnMapper, FnReducer, InMemoryOutput, InputSplit, JobConfig,
    MapTaskId, ModuloPartitioner, RoutingPlan, SliceRecordSource,
};

fn number_splits(n: u64, pieces: u64) -> Vec<InputSplit> {
    let space = Shape::new(vec![n]).unwrap();
    Slab::whole(&space)
        .split_along_longest(pieces)
        .into_iter()
        .map(|slab| InputSplit {
            byte_range: (
                slab.corner()[0] * 8,
                (slab.corner()[0] + slab.shape()[0]) * 8,
            ),
            slab,
            preferred_nodes: vec![],
        })
        .collect()
}

fn identity_source(
    _id: MapTaskId,
    split: &InputSplit,
) -> sidr_mapreduce::Result<SliceRecordSource<u64, u64>> {
    Ok(SliceRecordSource::new(
        split.slab.iter_coords().map(|c| (c[0], c[0])).collect(),
    ))
}

fn run_one(n: u64, splits: u64, reducers: usize, config: &JobConfig) -> u64 {
    let mapper =
        FnMapper::new(|k: &u64, v: &u64, emit: &mut dyn FnMut(u64, u64)| emit(k % 101, *v));
    let reducer =
        FnReducer::new(|_k: &u64, vs: &[u64], emit: &mut dyn FnMut(u64)| emit(vs.iter().sum()));
    let plan = DefaultPlan::<u64, _>::new(ModuloPartitioner, reducers);
    let output = InMemoryOutput::new();
    run_job(
        &splits_of(n, splits),
        &identity_source,
        &mapper,
        None,
        &reducer,
        &plan,
        &output,
        config,
    )
    .unwrap();
    output.sorted_records().iter().map(|(_, v)| v).sum()
}

fn splits_of(n: u64, pieces: u64) -> Vec<InputSplit> {
    number_splits(n, pieces)
}

#[test]
fn many_jobs_in_parallel_all_agree() {
    let expect: u64 = (0..4000u64).sum();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                scope.spawn(move || {
                    let config = JobConfig {
                        map_slots: 1 + i % 4,
                        reduce_slots: 1 + i % 3,
                        ..Default::default()
                    };
                    run_one(4000, 16 + i as u64, 7, &config)
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), expect);
        }
    });
}

#[test]
fn tiny_slots_large_job() {
    // 1 map slot, 1 reduce slot, 64 splits, 32 reducers: maximal
    // serialization, everything still completes and sums correctly.
    let config = JobConfig {
        map_slots: 1,
        reduce_slots: 1,
        ..Default::default()
    };
    assert_eq!(run_one(10_000, 64, 32, &config), (0..10_000u64).sum());
}

#[test]
fn repeated_runs_with_failures_are_stable() {
    struct ContigPlan {
        n: usize,
        maps_per: usize,
    }
    impl RoutingPlan<u64> for ContigPlan {
        fn num_reducers(&self) -> usize {
            self.n
        }
        fn partition(&self, key: &u64) -> usize {
            ((*key as usize) / 500).min(self.n - 1)
        }
        fn reduce_deps(&self, reducer: usize) -> Option<Vec<MapTaskId>> {
            // Keys are contiguous ranges; splits are contiguous too.
            let start = reducer * self.maps_per;
            Some((start..start + self.maps_per).collect())
        }
        fn invert_scheduling(&self) -> bool {
            true
        }
    }

    for round in 0..10u64 {
        let n_red = 8usize;
        let splits = number_splits(4000, 32); // 125 keys per split
        let mapper = FnMapper::new(|k: &u64, v: &u64, emit: &mut dyn FnMut(u64, u64)| emit(*k, *v));
        let reducer =
            FnReducer::new(|_k: &u64, vs: &[u64], emit: &mut dyn FnMut(u64)| emit(vs.iter().sum()));
        let plan = ContigPlan {
            n: n_red,
            maps_per: 4,
        };
        let output = InMemoryOutput::new();
        let result = run_job(
            &splits,
            &identity_source,
            &mapper,
            None,
            &reducer,
            &plan,
            &output,
            &JobConfig {
                fault_plan: FaultPlan::fail_reducers_first_attempt([
                    (round % n_red as u64) as usize
                ]),
                volatile_intermediate: true,
                map_think: Duration::from_micros(200),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.counters.reduce_failures, 1, "round {round}");
        assert_eq!(output.len(), 4000, "round {round}");
        let total: u64 = output.sorted_records().iter().map(|(_, v)| v).sum();
        assert_eq!(total, (0..4000u64).sum(), "round {round}");
    }
}
