//! Equivalence properties for the streaming k-way merge: over random
//! sets of key-sorted runs — duplicate keys spanning files, runs of
//! duplicates inside one file, empty files, empty inputs — the
//! [`MergeIter`] pipeline produces byte-for-byte the output of the
//! legacy flatten-clone-stable-sort merge it replaced, group ordering
//! included.

use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

use sidr_mapreduce::{merge_files, MapOutputFile, MergeIter};

/// The seed implementation `MergeIter` replaced, kept verbatim as the
/// reference: clone everything, stable-sort the concatenation, group.
/// Stability makes equal keys deliver in (file order, record order) —
/// the contract the streaming merge must preserve.
fn legacy_merge(files: &[Arc<MapOutputFile<u64, u32>>]) -> Vec<(u64, Vec<u32>)> {
    let mut all: Vec<(u64, u32)> = files
        .iter()
        .flat_map(|f| f.records.iter().cloned())
        .collect();
    all.sort_by_key(|a| a.0);
    let mut out: Vec<(u64, Vec<u32>)> = Vec::new();
    for (k, v) in all {
        match out.last_mut() {
            Some((lk, vs)) if *lk == k => vs.push(v),
            _ => out.push((k, vec![v])),
        }
    }
    out
}

/// Builds sorted map-output files from raw (unsorted) record lists.
/// Values carry their (file, position) provenance so any reordering
/// of equal keys is visible in the comparison.
fn make_files(raw: Vec<Vec<u64>>) -> Vec<Arc<MapOutputFile<u64, u32>>> {
    raw.into_iter()
        .enumerate()
        .map(|(f, mut keys)| {
            keys.sort_unstable();
            let records: Vec<(u64, u32)> = keys
                .into_iter()
                .enumerate()
                .map(|(i, k)| (k, (f * 10_000 + i) as u32))
                .collect();
            Arc::new(MapOutputFile {
                raw_count: records.len() as u64,
                records,
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Group-at-a-time streaming == legacy merge, exactly. The key
    /// range (0..12) is far smaller than the record counts, so keys
    /// routinely span several files and repeat within one file.
    #[test]
    fn streaming_groups_equal_legacy_merge(raw in vec(vec(0u64..12, 0..40), 0..8)) {
        let files = make_files(raw);
        let expected = legacy_merge(&files);

        let mut merge = MergeIter::with_files(files.iter().map(Arc::clone));
        let mut got: Vec<(u64, Vec<u32>)> = Vec::new();
        while let Some((k, vs)) = merge.next_group() {
            got.push((*k, vs.to_vec()));
        }
        prop_assert_eq!(&got, &expected);

        // The compatibility wrapper is the same thing materialized.
        prop_assert_eq!(&merge_files(&files), &expected);
    }

    /// Record-at-a-time streaming (the spill-run merge path) yields
    /// the flattened legacy order.
    #[test]
    fn streaming_records_equal_legacy_flat_order(raw in vec(vec(0u64..12, 0..40), 0..8)) {
        let files = make_files(raw);
        let expected: Vec<(u64, u32)> = legacy_merge(&files)
            .into_iter()
            .flat_map(|(k, vs)| vs.into_iter().map(move |v| (k, v)))
            .collect();

        let mut merge = MergeIter::with_files(files.iter().map(Arc::clone));
        let mut got = Vec::new();
        while let Some((k, v)) = merge.next_record() {
            got.push((*k, *v));
        }
        prop_assert_eq!(got, expected);
    }

    /// Cursors opened incrementally (the copy-phase overlap path)
    /// merge identically to batch construction.
    #[test]
    fn incremental_cursor_open_is_equivalent(raw in vec(vec(0u64..12, 0..40), 0..8)) {
        let files = make_files(raw);
        let mut incremental = MergeIter::new();
        for f in &files {
            incremental.push_file(Arc::clone(f));
        }
        let mut got: Vec<(u64, Vec<u32>)> = Vec::new();
        while let Some((k, vs)) = incremental.next_group() {
            got.push((*k, vs.to_vec()));
        }
        prop_assert_eq!(got, legacy_merge(&files));
    }
}
