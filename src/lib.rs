//! # sidr-repro — SIDR: Structure-Aware Intelligent Data Routing
//!
//! A from-scratch Rust reproduction of *SIDR: Structure-Aware
//! Intelligent Data Routing in Hadoop* (Buck et al., SC '13),
//! including every substrate the paper depends on:
//!
//! * [`coords`] — n-dimensional logical-coordinate geometry
//!   (shapes, slabs, tilings, extraction shapes, contiguous
//!   partitions),
//! * [`scifile`] — SciNC, a NetCDF-like scientific file format with
//!   coordinate-addressed slab I/O,
//! * [`dfs`] — an HDFS-like block/replica placement model,
//! * [`mapreduce`] — a Hadoop-like MapReduce engine with pluggable
//!   partitioners, barriers and schedulers,
//! * [`core`] — SIDR itself: structural queries, `partition+`,
//!   dependency derivation, inverted scheduling, early results,
//! * [`simcluster`] — a discrete-event simulator of the paper's
//!   25-node cluster for the paper-scale figures,
//! * [`analyze`] — the static plan verifier (`sidr-lint`): proves
//!   coverage, dependency, skew, scheduling and conservation
//!   invariants before any task runs,
//! * [`serve`] — `sidr-serve`, a multi-tenant query service: jobs
//!   submitted over TCP share one slot pool and stream each keyblock
//!   back the moment its reduce commits (§3.4 early results as a
//!   service), with `sidr-submit` as the client CLI,
//! * [`obs`] — dependency-free metrics (counters/gauges/histograms
//!   with Prometheus text exposition) and JSONL trace spans; the
//!   engine and the service are instrumented end to end, scrapeable
//!   live via `sidr-submit metrics`.
//!
//! ## Quickstart
//!
//! ```no_run
//! use sidr_repro::core::{run_query, FrameworkMode, Operator, StructuralQuery};
//! use sidr_repro::core::framework::RunOptions;
//! use sidr_repro::coords::Shape;
//! use sidr_repro::scifile::gen::DatasetSpec;
//!
//! // Generate a SciNC temperature dataset and down-sample it to
//! // weekly, half-degree averages under SIDR routing.
//! let space = Shape::new(vec![364, 50, 40]).unwrap();
//! let spec = DatasetSpec::temperature(space.clone(), 42);
//! let file = spec.generate::<f64>("/tmp/temps.scinc").unwrap();
//!
//! let query = StructuralQuery::new(
//!     "temperature", space, Shape::new(vec![7, 5, 1]).unwrap(), Operator::Mean,
//! ).unwrap();
//! let outcome = run_query(&file, &query, &RunOptions::new(FrameworkMode::Sidr, 4)).unwrap();
//! println!("{} weekly averages", outcome.records.len());
//! ```

pub use sidr_analyze as analyze;
pub use sidr_coords as coords;
pub use sidr_dfs as dfs;
pub use sidr_mapreduce as mapreduce;
pub use sidr_obs as obs;
pub use sidr_scifile as scifile;
pub use sidr_serve as serve;
pub use sidr_simcluster as simcluster;

/// The paper's contribution (re-exported from the `sidr-core` crate;
/// named `core` here for discoverability — the standard library's
/// `core` is still reachable as `::core`).
pub use sidr_core as core;
