//! The runtime's timeline protocol oracle.
//!
//! A job's [`TaskEvent`] stream is a total order (monotonic clock,
//! causal push order breaking ties), so the concurrency protocol the
//! runtime promises — attempt-stamped task lifecycles, per-reducer
//! dependency barriers, `I_ℓ`-confined recovery (§3.2, §6) — is
//! checkable after the fact from the events alone. The oracle is pure
//! data in, verdict out: the recovery tests run it over real jobs, the
//! fault-plan property sweep runs it over thousands of random jobs,
//! and the sidr-check scenarios run it over *every explored schedule*,
//! where a protocol violation that needs one specific interleaving
//! actually gets hit.
//!
//! Checked invariants:
//!
//! * **R1 — attempt monotonicity.** Each map's `MapStart` attempts are
//!   exactly 0, 1, 2, … (every launch counts), a map never starts
//!   while already running — unless the start was announced by a
//!   `MapSpeculated` grant, the one sanctioned way to race a second
//!   attempt against a running straggler — and each reducer's
//!   barrier/failure attempts count its `ReduceFailed` events.
//! * **R6 — at most one extra attempt.** `MapSpeculated(m, a)` must
//!   carry the next attempt id and is illegal while another grant for
//!   `m` is outstanding; every lifecycle exit (`MapEnd`, `MapFailed`,
//!   `MapSpeculationLost`) must name an attempt that is actually
//!   running. A speculative start is *not* recovery: it neither needs
//!   volatile mode nor a failed reducer's dependency set.
//! * **R2 — barrier after dependencies.** `ReduceBarrierMet(r)`
//!   requires a committed `MapEnd` for every map in `deps(r)` (all
//!   maps under a global barrier) earlier in the stream.
//! * **R3 — volatile re-wait.** With volatile intermediate data,
//!   attempt `a`'s barrier consumed `a` earlier fetches, so every map
//!   in `deps(r)` needs ≥ `a + 1` commits by then. Counting commits
//!   (not windows) keeps the rule sound when overlapping recoveries
//!   share re-executions. Only checked for dependency-barrier
//!   reducers: SIDR's `I_ℓ` is by construction the set of maps that
//!   contribute data, which is exactly the set the runtime re-runs.
//! * **R4 — confined recovery.** A re-execution of a *committed* map
//!   must be recovery (volatile mode) and confined to the union of
//!   `deps(r)` over reducers that have failed so far. Suppressed when
//!   [`corruption_possible`](TimelineOracle::corruption_possible):
//!   CRC-detected corrupt fetches re-enqueue without a timeline event,
//!   so confinement is not decidable from the stream.
//! * **R5 — completion** ([`check_complete`]): exactly one
//!   `ReduceEnd` per reducer, each preceded by its own attempt's
//!   `ReduceBarrierMet`.
//!
//! [`check_complete`]: TimelineOracle::check_complete

use sidr_mapreduce::{TaskEvent, TaskKind};

/// One broken invariant, with the index of the offending event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolViolation {
    /// Which invariant broke (`"R1"` … `"R5"`).
    pub invariant: &'static str,
    /// Human-readable account of the breakage.
    pub message: String,
    /// Index into the checked event slice (`events.len()` for
    /// end-of-stream violations).
    pub index: usize,
}

impl std::fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "timeline protocol violation [{}] at event {}: {}",
            self.invariant, self.index, self.message
        )
    }
}

impl std::error::Error for ProtocolViolation {}

/// Checks a job's event stream against the runtime's concurrency
/// protocol. Construct with the job's shape, then [`check`] any
/// prefix of a run or [`check_complete`] a finished one.
///
/// [`check`]: TimelineOracle::check
/// [`check_complete`]: TimelineOracle::check_complete
#[derive(Clone, Debug)]
pub struct TimelineOracle {
    num_maps: usize,
    /// Per-reducer dependency sets; `None` is a global barrier (all
    /// maps).
    deps: Vec<Option<Vec<usize>>>,
    volatile_intermediate: bool,
    corruption_possible: bool,
}

impl TimelineOracle {
    /// Oracle for a job of `num_maps` maps and `num_reducers`
    /// reducers, all reducers on the global barrier, persistent
    /// intermediate data, no corruption faults.
    pub fn new(num_maps: usize, num_reducers: usize) -> Self {
        TimelineOracle {
            num_maps,
            deps: vec![None; num_reducers],
            volatile_intermediate: false,
            corruption_possible: false,
        }
    }

    /// Declares reducer `r`'s dependency set `I_ℓ` (builder-style).
    pub fn with_deps(mut self, r: usize, deps: Vec<usize>) -> Self {
        self.deps[r] = Some(deps);
        self
    }

    /// Declares the job volatile: fetches consume intermediate data,
    /// arming the R3 re-wait check.
    pub fn volatile_intermediate(mut self, yes: bool) -> Self {
        self.volatile_intermediate = yes;
        self
    }

    /// Declares that map-output corruption faults may fire, which
    /// makes recovery re-executions undecidable from the stream and
    /// suppresses R4.
    pub fn corruption_possible(mut self, yes: bool) -> Self {
        self.corruption_possible = yes;
        self
    }

    fn effective_deps(&self, r: usize) -> Vec<usize> {
        match &self.deps[r] {
            Some(d) => d.clone(),
            None => (0..self.num_maps).collect(),
        }
    }

    /// Checks R1–R4 over any (prefix of a) job event stream, in
    /// stream order. The stream may belong to an unfinished, failed
    /// or cancelled job; only what happened is judged.
    pub fn check(&self, events: &[TaskEvent]) -> Result<(), ProtocolViolation> {
        self.run(events).map(|_| ())
    }

    /// [`check`](Self::check) plus R5: the stream must describe a
    /// complete successful job — every reducer committed exactly once,
    /// after a same-attempt barrier.
    pub fn check_complete(&self, events: &[TaskEvent]) -> Result<(), ProtocolViolation> {
        let st = self.run(events)?;
        for (r, done) in st.reduce_done.iter().enumerate() {
            if !done {
                return Err(ProtocolViolation {
                    invariant: "R5",
                    message: format!("reducer {r} never committed (no ReduceEnd)"),
                    index: events.len(),
                });
            }
        }
        Ok(())
    }

    fn run(&self, events: &[TaskEvent]) -> Result<OracleState, ProtocolViolation> {
        let nr = self.deps.len();
        let mut st = OracleState::new(self.num_maps, nr);
        let violation = |invariant, index, message: String| {
            Err(ProtocolViolation {
                invariant,
                message,
                index,
            })
        };
        for (i, e) in events.iter().enumerate() {
            let m = e.task;
            match e.kind {
                TaskKind::MapStart => {
                    if m >= self.num_maps {
                        return violation("R1", i, format!("MapStart for nonexistent map {m}"));
                    }
                    if st.spec_grant[m] == Some(e.attempt) {
                        // A granted speculative start: the attempt id
                        // was vetted (and `map_next_attempt` advanced)
                        // at the `MapSpeculated` event, and racing an
                        // already-running straggler is the whole
                        // point, so neither the while-running nor the
                        // recovery-confinement checks apply.
                        st.spec_grant[m] = None;
                        st.map_running[m].push(e.attempt);
                        st.map_failed_last[m] = false;
                        continue;
                    }
                    if !st.map_running[m].is_empty() && !st.map_speculated_ever[m] {
                        // With speculation in play the one-attempt
                        // invariant is already gone for this map (a
                        // straggling loser may still be draining while
                        // recovery launches the next generation), so
                        // the check stays armed only for maps that
                        // were never raced.
                        return violation(
                            "R1",
                            i,
                            format!("map {m} started (attempt {}) while running", e.attempt),
                        );
                    }
                    if e.attempt != st.map_next_attempt[m] {
                        return violation(
                            "R1",
                            i,
                            format!(
                                "map {m} started attempt {} but attempt {} was next",
                                e.attempt, st.map_next_attempt[m]
                            ),
                        );
                    }
                    // A committed map starting again is a recovery
                    // re-execution (a retry follows MapFailed, not
                    // MapEnd); recovery must be volatile-mode and
                    // confined to failed reducers' dependency sets —
                    // unless corrupt fetches (which re-enqueue without
                    // an event) are in play.
                    if st.map_committed_ever[m]
                        && !st.map_failed_last[m]
                        && !self.corruption_possible
                    {
                        if !self.volatile_intermediate {
                            return violation(
                                "R4",
                                i,
                                format!(
                                    "committed map {m} re-executed with persistent \
                                     intermediate data"
                                ),
                            );
                        }
                        if !st.recovery_allowed[m] {
                            return violation(
                                "R4",
                                i,
                                format!(
                                    "recovery re-ran map {m}, outside every failed \
                                     reducer's dependency set"
                                ),
                            );
                        }
                    }
                    st.map_next_attempt[m] += 1;
                    st.map_running[m].push(e.attempt);
                    st.map_failed_last[m] = false;
                }
                TaskKind::MapSpeculated => {
                    if m >= self.num_maps {
                        return violation(
                            "R6",
                            i,
                            format!("MapSpeculated for nonexistent map {m}"),
                        );
                    }
                    if st.spec_grant[m].is_some() {
                        return violation(
                            "R6",
                            i,
                            format!(
                                "map {m} granted a second speculative attempt while one \
                                 is outstanding"
                            ),
                        );
                    }
                    if e.attempt != st.map_next_attempt[m] {
                        return violation(
                            "R6",
                            i,
                            format!(
                                "map {m} speculated attempt {} but attempt {} was next",
                                e.attempt, st.map_next_attempt[m]
                            ),
                        );
                    }
                    // No running-attempt requirement: the grant and
                    // the primary's exit are recorded by different
                    // threads, so the stream may legally show MapEnd
                    // before the already-decided MapSpeculated.
                    st.spec_grant[m] = Some(e.attempt);
                    st.map_next_attempt[m] += 1;
                    st.map_speculated_ever[m] = true;
                }
                TaskKind::MapEnd => {
                    if m >= self.num_maps || !st.map_exit(m, e.attempt) {
                        return violation(
                            "R1",
                            i,
                            format!(
                                "MapEnd for map {m} attempt {} that isn't running",
                                e.attempt
                            ),
                        );
                    }
                    st.map_failed_last[m] = false;
                    st.map_committed_ever[m] = true;
                    st.map_end_count[m] += 1;
                }
                TaskKind::MapFailed => {
                    if m >= self.num_maps || !st.map_exit(m, e.attempt) {
                        return violation(
                            "R1",
                            i,
                            format!(
                                "MapFailed for map {m} attempt {} that isn't running",
                                e.attempt
                            ),
                        );
                    }
                    st.map_failed_last[m] = true;
                }
                TaskKind::MapSpeculationLost => {
                    if m >= self.num_maps || !st.map_exit(m, e.attempt) {
                        return violation(
                            "R6",
                            i,
                            format!(
                                "MapSpeculationLost for map {m} attempt {} that isn't running",
                                e.attempt
                            ),
                        );
                    }
                    // Losing a race is not failure: the winner's
                    // commit stands and `map_failed_last` is whatever
                    // the committed lifecycle left it.
                }
                TaskKind::ReduceSpeculated | TaskKind::ReduceSpeculationLost => {
                    // Reserved vocabulary: the engine races maps only
                    // (see DESIGN.md). Tolerated so future streams
                    // stay parseable; nothing to check.
                }
                TaskKind::MapRetry => {}
                TaskKind::ReduceStart => {
                    if m >= nr {
                        return violation(
                            "R1",
                            i,
                            format!("ReduceStart for nonexistent reducer {m}"),
                        );
                    }
                    if st.reduce_started[m] {
                        return violation("R1", i, format!("reducer {m} started twice"));
                    }
                    st.reduce_started[m] = true;
                }
                TaskKind::ReduceBarrierMet => {
                    if m >= nr || !st.reduce_started[m] {
                        return violation(
                            "R1",
                            i,
                            format!("barrier met for reducer {m} that isn't started"),
                        );
                    }
                    if e.attempt != st.reduce_failures[m] {
                        return violation(
                            "R1",
                            i,
                            format!(
                                "reducer {m} met its barrier on attempt {} after {} failures",
                                e.attempt, st.reduce_failures[m]
                            ),
                        );
                    }
                    for d in self.effective_deps(m) {
                        if st.map_end_count[d] == 0 {
                            return violation(
                                "R2",
                                i,
                                format!(
                                    "reducer {m} met its barrier before dependency map {d} \
                                     committed"
                                ),
                            );
                        }
                        if self.volatile_intermediate
                            && self.deps[m].is_some()
                            && st.map_end_count[d] < e.attempt + 1
                        {
                            return violation(
                                "R3",
                                i,
                                format!(
                                    "reducer {m} attempt {} met its barrier with only {} \
                                     commit(s) of volatile dependency map {d} (needs {})",
                                    e.attempt,
                                    st.map_end_count[d],
                                    e.attempt + 1
                                ),
                            );
                        }
                    }
                    st.reduce_barrier_attempt[m] = Some(e.attempt);
                }
                TaskKind::ReduceFailed => {
                    if m >= nr || !st.reduce_started[m] {
                        return violation(
                            "R1",
                            i,
                            format!("ReduceFailed for reducer {m} that isn't started"),
                        );
                    }
                    if e.attempt != st.reduce_failures[m] {
                        return violation(
                            "R1",
                            i,
                            format!(
                                "reducer {m} failed attempt {} after {} failures",
                                e.attempt, st.reduce_failures[m]
                            ),
                        );
                    }
                    st.reduce_failures[m] += 1;
                    for d in self.effective_deps(m) {
                        st.recovery_allowed[d] = true;
                    }
                }
                TaskKind::ReduceFirstGroup | TaskKind::ReduceMergeDone => {
                    if m >= nr || st.reduce_barrier_attempt[m] != Some(e.attempt) {
                        return violation(
                            "R2",
                            i,
                            format!(
                                "{:?} for reducer {m} attempt {} without that attempt's barrier",
                                e.kind, e.attempt
                            ),
                        );
                    }
                }
                TaskKind::ReduceEnd => {
                    if m >= nr || st.reduce_barrier_attempt[m] != Some(e.attempt) {
                        return violation(
                            "R2",
                            i,
                            format!(
                                "reducer {m} committed attempt {} without that attempt's barrier",
                                e.attempt
                            ),
                        );
                    }
                    if st.reduce_done[m] {
                        return violation("R5", i, format!("reducer {m} committed twice"));
                    }
                    st.reduce_done[m] = true;
                }
            }
        }
        Ok(st)
    }
}

struct OracleState {
    map_next_attempt: Vec<u32>,
    /// Attempt ids currently running per map — at most two with a
    /// speculation race in flight, at most one otherwise.
    map_running: Vec<Vec<u32>>,
    /// Outstanding `MapSpeculated` grant not yet consumed by its
    /// `MapStart` (R6: at most one per map at a time).
    spec_grant: Vec<Option<u32>>,
    /// Whether the map was ever raced — once true, the one-attempt-
    /// at-a-time reading of R1 no longer applies to it.
    map_speculated_ever: Vec<bool>,
    /// Last lifecycle event was `MapFailed` (so the next start is a
    /// retry, not a recovery re-execution).
    map_failed_last: Vec<bool>,
    map_committed_ever: Vec<bool>,
    map_end_count: Vec<u32>,
    /// Maps inside some failed reducer's dependency set — the union
    /// recovery is allowed to re-run (R4).
    recovery_allowed: Vec<bool>,
    reduce_started: Vec<bool>,
    reduce_failures: Vec<u32>,
    reduce_barrier_attempt: Vec<Option<u32>>,
    reduce_done: Vec<bool>,
}

impl OracleState {
    fn new(nm: usize, nr: usize) -> Self {
        OracleState {
            map_next_attempt: vec![0; nm],
            map_running: vec![Vec::new(); nm],
            spec_grant: vec![None; nm],
            map_speculated_ever: vec![false; nm],
            map_failed_last: vec![false; nm],
            map_committed_ever: vec![false; nm],
            map_end_count: vec![0; nm],
            recovery_allowed: vec![false; nm],
            reduce_started: vec![false; nr],
            reduce_failures: vec![0; nr],
            reduce_barrier_attempt: vec![None; nr],
            reduce_done: vec![false; nr],
        }
    }

    /// Removes `attempt` from map `m`'s running set; false if it
    /// wasn't running.
    fn map_exit(&mut self, m: usize, attempt: u32) -> bool {
        let running = &mut self.map_running[m];
        match running.iter().position(|&a| a == attempt) {
            Some(idx) => {
                running.swap_remove(idx);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ev(kind: TaskKind, task: usize, attempt: u32, ms: u64) -> TaskEvent {
        TaskEvent {
            kind,
            task,
            attempt,
            at: Duration::from_millis(ms),
        }
    }

    fn clean_run() -> Vec<TaskEvent> {
        vec![
            ev(TaskKind::ReduceStart, 0, 0, 0),
            ev(TaskKind::MapStart, 0, 0, 1),
            ev(TaskKind::MapEnd, 0, 0, 2),
            ev(TaskKind::MapStart, 1, 0, 3),
            ev(TaskKind::MapEnd, 1, 0, 4),
            ev(TaskKind::ReduceBarrierMet, 0, 0, 5),
            ev(TaskKind::ReduceMergeDone, 0, 0, 6),
            ev(TaskKind::ReduceEnd, 0, 0, 7),
        ]
    }

    #[test]
    fn clean_complete_run_passes() {
        let oracle = TimelineOracle::new(2, 1).with_deps(0, vec![0, 1]);
        oracle.check_complete(&clean_run()).unwrap();
    }

    #[test]
    fn barrier_before_dependency_commit_is_r2() {
        let events = vec![
            ev(TaskKind::ReduceStart, 0, 0, 0),
            ev(TaskKind::MapStart, 0, 0, 1),
            ev(TaskKind::MapEnd, 0, 0, 2),
            // map 1 never committed
            ev(TaskKind::ReduceBarrierMet, 0, 0, 3),
        ];
        let oracle = TimelineOracle::new(2, 1).with_deps(0, vec![0, 1]);
        let v = oracle.check(&events).unwrap_err();
        assert_eq!(v.invariant, "R2");
        assert_eq!(v.index, 3);
    }

    #[test]
    fn attempt_regression_is_r1() {
        let events = vec![
            ev(TaskKind::MapStart, 0, 0, 0),
            ev(TaskKind::MapEnd, 0, 0, 1),
            ev(TaskKind::MapStart, 0, 0, 2), // attempt 0 again
        ];
        let oracle = TimelineOracle::new(1, 1).volatile_intermediate(true);
        let v = oracle
            .clone()
            .corruption_possible(true)
            .check(&events)
            .unwrap_err();
        assert_eq!(v.invariant, "R1");
    }

    #[test]
    fn volatile_recovery_needs_recommit_before_rebarrier() {
        // Reducer fails attempt 0 and meets its attempt-1 barrier
        // without its volatile dependency ever recommitting: R3.
        let events = vec![
            ev(TaskKind::ReduceStart, 0, 0, 0),
            ev(TaskKind::MapStart, 0, 0, 1),
            ev(TaskKind::MapEnd, 0, 0, 2),
            ev(TaskKind::ReduceBarrierMet, 0, 0, 3),
            ev(TaskKind::ReduceFailed, 0, 0, 4),
            ev(TaskKind::ReduceBarrierMet, 0, 1, 5),
        ];
        let oracle = TimelineOracle::new(1, 1)
            .with_deps(0, vec![0])
            .volatile_intermediate(true);
        let v = oracle.check(&events).unwrap_err();
        assert_eq!(v.invariant, "R3");

        // With the re-execution in between, the same stream is legal.
        let fixed = vec![
            ev(TaskKind::ReduceStart, 0, 0, 0),
            ev(TaskKind::MapStart, 0, 0, 1),
            ev(TaskKind::MapEnd, 0, 0, 2),
            ev(TaskKind::ReduceBarrierMet, 0, 0, 3),
            ev(TaskKind::ReduceFailed, 0, 0, 4),
            ev(TaskKind::MapStart, 0, 1, 5),
            ev(TaskKind::MapEnd, 0, 1, 6),
            ev(TaskKind::ReduceBarrierMet, 0, 1, 7),
            ev(TaskKind::ReduceEnd, 0, 1, 8),
        ];
        oracle.check_complete(&fixed).unwrap();
    }

    #[test]
    fn recovery_outside_dependency_set_is_r4() {
        // Reducer 0 (deps {0}) fails; map 1 — only reducer 1 depends
        // on it — gets re-executed anyway.
        let events = vec![
            ev(TaskKind::ReduceStart, 0, 0, 0),
            ev(TaskKind::MapStart, 0, 0, 1),
            ev(TaskKind::MapEnd, 0, 0, 2),
            ev(TaskKind::MapStart, 1, 0, 3),
            ev(TaskKind::MapEnd, 1, 0, 4),
            ev(TaskKind::ReduceBarrierMet, 0, 0, 5),
            ev(TaskKind::ReduceFailed, 0, 0, 6),
            ev(TaskKind::MapStart, 1, 1, 7),
        ];
        let oracle = TimelineOracle::new(2, 2)
            .with_deps(0, vec![0])
            .with_deps(1, vec![1])
            .volatile_intermediate(true);
        let v = oracle.check(&events).unwrap_err();
        assert_eq!(v.invariant, "R4");
        assert_eq!(v.index, 7);

        // The same re-execution is acceptable once corrupt fetches
        // (invisible re-enqueues) are possible.
        oracle.corruption_possible(true).check(&events).unwrap();
    }

    #[test]
    fn incomplete_run_fails_only_the_complete_check() {
        let mut events = clean_run();
        events.pop(); // drop the ReduceEnd
        let oracle = TimelineOracle::new(2, 1).with_deps(0, vec![0, 1]);
        oracle.check(&events).unwrap();
        let v = oracle.check_complete(&events).unwrap_err();
        assert_eq!(v.invariant, "R5");
    }

    #[test]
    fn speculative_race_with_either_winner_passes() {
        // Map 0 straggles on attempt 0; a granted twin (attempt 1)
        // races it. Whichever attempt commits first, the stream is
        // legal — the loser exits with MapSpeculationLost.
        let oracle = TimelineOracle::new(1, 1).with_deps(0, vec![0]);
        let twin_wins = vec![
            ev(TaskKind::ReduceStart, 0, 0, 0),
            ev(TaskKind::MapStart, 0, 0, 1),
            ev(TaskKind::MapSpeculated, 0, 1, 2),
            ev(TaskKind::MapStart, 0, 1, 3),
            ev(TaskKind::MapEnd, 0, 1, 4),
            ev(TaskKind::ReduceBarrierMet, 0, 0, 5),
            ev(TaskKind::MapSpeculationLost, 0, 0, 6),
            ev(TaskKind::ReduceEnd, 0, 0, 7),
        ];
        oracle.check_complete(&twin_wins).unwrap();
        let primary_wins = vec![
            ev(TaskKind::ReduceStart, 0, 0, 0),
            ev(TaskKind::MapStart, 0, 0, 1),
            ev(TaskKind::MapSpeculated, 0, 1, 2),
            ev(TaskKind::MapStart, 0, 1, 3),
            ev(TaskKind::MapEnd, 0, 0, 4),
            ev(TaskKind::ReduceBarrierMet, 0, 0, 5),
            ev(TaskKind::MapSpeculationLost, 0, 1, 6),
            ev(TaskKind::ReduceEnd, 0, 0, 7),
        ];
        oracle.check_complete(&primary_wins).unwrap();
    }

    #[test]
    fn second_outstanding_grant_is_r6() {
        let events = vec![
            ev(TaskKind::MapStart, 0, 0, 0),
            ev(TaskKind::MapSpeculated, 0, 1, 1),
            ev(TaskKind::MapSpeculated, 0, 2, 2), // grant 1 never consumed
        ];
        let oracle = TimelineOracle::new(1, 1);
        let v = oracle.check(&events).unwrap_err();
        assert_eq!(v.invariant, "R6");
        assert_eq!(v.index, 2);
    }

    #[test]
    fn lifecycle_exit_for_idle_attempt_is_caught() {
        // A MapSpeculationLost naming an attempt that never started.
        let events = vec![
            ev(TaskKind::MapStart, 0, 0, 0),
            ev(TaskKind::MapSpeculationLost, 0, 1, 1),
        ];
        let oracle = TimelineOracle::new(1, 1);
        let v = oracle.check(&events).unwrap_err();
        assert_eq!(v.invariant, "R6");

        // And a MapEnd for the attempt the twin already committed.
        let events = vec![
            ev(TaskKind::MapStart, 0, 0, 0),
            ev(TaskKind::MapSpeculated, 0, 1, 1),
            ev(TaskKind::MapStart, 0, 1, 2),
            ev(TaskKind::MapEnd, 0, 1, 3),
            ev(TaskKind::MapEnd, 0, 1, 4), // double commit of attempt 1
        ];
        let v = oracle.check(&events).unwrap_err();
        assert_eq!(v.invariant, "R1");
        assert_eq!(v.index, 4);
    }

    #[test]
    fn ungranted_second_start_is_still_r1() {
        // Without a MapSpeculated grant, a second concurrent start of
        // a never-raced map keeps tripping the classic R1 check.
        let events = vec![
            ev(TaskKind::MapStart, 0, 0, 0),
            ev(TaskKind::MapStart, 0, 1, 1),
        ];
        let oracle = TimelineOracle::new(1, 1);
        let v = oracle.check(&events).unwrap_err();
        assert_eq!(v.invariant, "R1");
        assert_eq!(v.index, 1);
    }

    #[test]
    fn commit_without_same_attempt_barrier_is_r2() {
        let events = vec![
            ev(TaskKind::ReduceStart, 0, 0, 0),
            ev(TaskKind::MapStart, 0, 0, 1),
            ev(TaskKind::MapEnd, 0, 0, 2),
            ev(TaskKind::ReduceBarrierMet, 0, 0, 3),
            ev(TaskKind::ReduceEnd, 0, 1, 4), // attempt 1 never met a barrier
        ];
        let oracle = TimelineOracle::new(1, 1);
        let v = oracle.check(&events).unwrap_err();
        assert_eq!(v.invariant, "R2");
    }
}
