//! Shuffle: map-output files, fetch accounting, and sort-merge.
//!
//! Each Map task leaves one output file per reducer it produced data
//! for. A file's header carries the §3.2.1 *annotation*: "how many
//! ⟨k,v⟩ are represented by the set of all ⟨k′,v′⟩ in that file",
//! which lets a Reduce task tally raw input coverage without parsing
//! the file — the cross-check SIDR uses to validate that starting
//! early never consumes insufficient input.
//!
//! Fetches are counted: every (map, reducer) contact is one network
//! connection, the quantity Table 3 reports.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;

use crate::counters::Counters;
use crate::split::MapTaskId;
use crate::task::{MrKey, MrValue};

/// One map-output file: the intermediate pairs a single Map task
/// produced for a single reducer, sorted by key.
#[derive(Clone, Debug)]
pub struct MapOutputFile<K, V> {
    /// Records sorted by key (Hadoop sorts map output per partition).
    pub records: Vec<(K, V)>,
    /// Annotation: raw ⟨k,v⟩ pairs represented (≥ `records.len()` when
    /// a combiner folded pairs together).
    pub raw_count: u64,
}

impl<K, V> Default for MapOutputFile<K, V> {
    fn default() -> Self {
        MapOutputFile {
            records: Vec::new(),
            raw_count: 0,
        }
    }
}

/// One stored map-output file: resident or spilled to disk.
enum Stored<K, V> {
    Memory(Arc<MapOutputFile<K, V>>),
    Spilled {
        path: std::path::PathBuf,
        /// Header fields cached so annotation tallies never re-read.
        raw_count: u64,
        records: u64,
    },
}

/// The TaskTracker-served map-output files: held in memory by default,
/// or written to a spill directory in the on-disk format of
/// [`crate::shuffle_file`] (the header-annotated files of §3.2.1).
///
/// `fetch` optionally *consumes* the file, modeling the §6 future-work
/// regime where intermediate data is not persisted and a failed
/// Reduce task forces re-execution of the Map tasks it depended on.
pub struct ShuffleStore<K, V> {
    files: Mutex<HashMap<(MapTaskId, usize), Stored<K, V>>>,
    /// Signalled when new files arrive (fetchers waiting on slow maps).
    arrival: Condvar,
    /// Whether fetches remove files from the store.
    consume_on_fetch: bool,
    /// Spill codec, present when the store is disk-backed.
    spill: Option<SpillCodec<K, V>>,
}

/// Monomorphized writers/readers for the spill path, so the store (and
/// the runtime above it) needs no `WireFormat` bounds of its own.
pub struct SpillCodec<K, V> {
    pub dir: std::path::PathBuf,
    pub write: fn(&std::path::Path, &MapOutputFile<K, V>) -> crate::Result<()>,
    pub read: fn(&std::path::Path) -> crate::Result<MapOutputFile<K, V>>,
}

impl<K, V> SpillCodec<K, V>
where
    K: MrKey + crate::wire::WireFormat,
    V: MrValue + crate::wire::WireFormat,
{
    /// The standard codec: `shuffle_file`'s SMOF format under `dir`.
    pub fn smof(dir: impl Into<std::path::PathBuf>) -> Self {
        SpillCodec {
            dir: dir.into(),
            write: |path, file| crate::shuffle_file::write_map_output(path, file),
            read: |path| crate::shuffle_file::read_map_output(path),
        }
    }
}

impl<K: MrKey, V: MrValue> ShuffleStore<K, V> {
    pub fn new(consume_on_fetch: bool) -> Self {
        ShuffleStore {
            files: Mutex::new(HashMap::new()),
            arrival: Condvar::new(),
            consume_on_fetch,
            spill: None,
        }
    }

    /// A disk-backed store spilling through `codec`.
    pub fn with_spill(consume_on_fetch: bool, codec: SpillCodec<K, V>) -> Self {
        ShuffleStore {
            files: Mutex::new(HashMap::new()),
            arrival: Condvar::new(),
            consume_on_fetch,
            spill: Some(codec),
        }
    }

    /// Stores (or replaces, on re-execution) one map-output file.
    pub fn put(
        &self,
        map: MapTaskId,
        reducer: usize,
        file: MapOutputFile<K, V>,
    ) -> crate::Result<()> {
        let stored = match &self.spill {
            None => Stored::Memory(Arc::new(file)),
            Some(codec) => {
                let path = codec.dir.join(format!("map{map:06}-r{reducer:05}.smof"));
                (codec.write)(&path, &file)?;
                Stored::Spilled {
                    path,
                    raw_count: file.raw_count,
                    records: file.records.len() as u64,
                }
            }
        };
        let mut files = self.files.lock();
        files.insert((map, reducer), stored);
        self.arrival.notify_all();
        Ok(())
    }

    /// Fetches the file `map` produced for `reducer`, counting one
    /// connection (contacts happen even when the map produced nothing
    /// for this reducer — Hadoop "requires that every Reduce task
    /// contact every completed Map task", §4.6). Returns `None` for an
    /// empty (absent) file.
    pub fn fetch(
        &self,
        map: MapTaskId,
        reducer: usize,
        counters: &Counters,
    ) -> crate::Result<Option<Arc<MapOutputFile<K, V>>>> {
        Counters::add(&counters.shuffle_connections, 1);
        let entry = {
            let mut files = self.files.lock();
            if self.consume_on_fetch {
                files.remove(&(map, reducer))
            } else {
                match files.get(&(map, reducer)) {
                    None => None,
                    Some(Stored::Memory(f)) => Some(Stored::Memory(Arc::clone(f))),
                    Some(Stored::Spilled {
                        path,
                        raw_count,
                        records,
                    }) => Some(Stored::Spilled {
                        path: path.clone(),
                        raw_count: *raw_count,
                        records: *records,
                    }),
                }
            }
        };
        let got = match entry {
            None => None,
            Some(Stored::Memory(f)) => Some(f),
            Some(Stored::Spilled { path, .. }) => {
                let codec = self
                    .spill
                    .as_ref()
                    .expect("spilled entries only exist in spilling stores");
                let file = (codec.read)(&path)?;
                if self.consume_on_fetch {
                    // Not persisted: the bytes are gone once consumed.
                    std::fs::remove_file(&path).ok();
                }
                Some(Arc::new(file))
            }
        };
        if let Some(f) = &got {
            Counters::add(&counters.shuffled_records, f.records.len() as u64);
        }
        Ok(got)
    }

    /// The annotation of a stored file without reading its records —
    /// `(raw ⟨k,v⟩ represented, ⟨k′,v′⟩ records)` (§3.2.1).
    pub fn annotation(&self, map: MapTaskId, reducer: usize) -> Option<(u64, u64)> {
        match self.files.lock().get(&(map, reducer)) {
            None => None,
            Some(Stored::Memory(f)) => Some((f.raw_count, f.records.len() as u64)),
            Some(Stored::Spilled {
                raw_count, records, ..
            }) => Some((*raw_count, *records)),
        }
    }

    /// Whether a file is currently present (recovery logic checks
    /// before deciding to re-execute a map).
    pub fn contains(&self, map: MapTaskId, reducer: usize) -> bool {
        self.files.lock().contains_key(&(map, reducer))
    }

    /// Number of files currently stored.
    pub fn len(&self) -> usize {
        self.files.lock().len()
    }

    /// True when the store holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.lock().is_empty()
    }
}

/// Builds the per-reducer output files of one Map task: partitions,
/// optionally combines, sorts, annotates.
pub struct MapOutputBuilder<K, V> {
    per_reducer: Vec<Vec<(K, V)>>,
    raw_counts: Vec<u64>,
    buffered: usize,
    spill: Option<BuilderSpill<K, V>>,
}

/// Map-side sort-buffer spill configuration (Hadoop's `io.sort.mb`
/// pipeline, with the buffer limit expressed in records).
struct BuilderSpill<K, V> {
    /// Spill once this many records are buffered.
    threshold: usize,
    dir: std::path::PathBuf,
    /// Unique prefix (the map task id) for run-file names.
    task: MapTaskId,
    /// Sorted run files written so far, per reducer.
    runs: Vec<Vec<std::path::PathBuf>>,
    seq: usize,
    write: fn(&std::path::Path, &MapOutputFile<K, V>) -> crate::Result<()>,
    read: fn(&std::path::Path) -> crate::Result<MapOutputFile<K, V>>,
}

impl<K: MrKey, V: MrValue> MapOutputBuilder<K, V> {
    pub fn new(num_reducers: usize) -> Self {
        MapOutputBuilder {
            per_reducer: (0..num_reducers).map(|_| Vec::new()).collect(),
            raw_counts: vec![0; num_reducers],
            buffered: 0,
            spill: None,
        }
    }

    /// Enables map-side spilling: when more than `threshold` records
    /// are buffered, each partition is sorted and written out as a
    /// run; `finish` merges the runs — Hadoop's sort/spill/merge
    /// pipeline.
    pub fn with_spill(mut self, threshold: usize, dir: std::path::PathBuf, task: MapTaskId) -> Self
    where
        K: crate::wire::WireFormat,
        V: crate::wire::WireFormat,
    {
        let n = self.per_reducer.len();
        self.spill = Some(BuilderSpill {
            threshold: threshold.max(1),
            dir,
            task,
            runs: (0..n).map(|_| Vec::new()).collect(),
            seq: 0,
            write: |path, file| crate::shuffle_file::write_map_output(path, file),
            read: |path| crate::shuffle_file::read_map_output(path),
        });
        self
    }

    /// Adds one intermediate pair destined for `reducer`.
    #[inline]
    pub fn push(&mut self, reducer: usize, key: K, value: V) -> crate::Result<()> {
        self.per_reducer[reducer].push((key, value));
        self.raw_counts[reducer] += 1;
        self.buffered += 1;
        if let Some(spill) = &self.spill {
            if self.buffered >= spill.threshold {
                self.spill_runs()?;
            }
        }
        Ok(())
    }

    /// Writes every non-empty buffer out as a sorted run.
    fn spill_runs(&mut self) -> crate::Result<()> {
        let spill = self.spill.as_mut().expect("called only when spilling");
        for (reducer, records) in self.per_reducer.iter_mut().enumerate() {
            if records.is_empty() {
                continue;
            }
            records.sort_by(|a, b| a.0.cmp(&b.0));
            let path = spill.dir.join(format!(
                "map{:06}-r{reducer:05}-run{:04}.smof",
                spill.task, spill.seq
            ));
            let run = MapOutputFile {
                records: std::mem::take(records),
                raw_count: 0, // the annotation is stamped at finish
            };
            (spill.write)(&path, &run)?;
            spill.runs[reducer].push(path);
        }
        spill.seq += 1;
        self.buffered = 0;
        Ok(())
    }

    /// Finalizes into per-reducer files: sorts by key (merging any
    /// spilled runs), applies the combiner per key group, and stamps
    /// the raw-count annotation. Returns `(reducer, file)` for every
    /// non-empty partition; empty ones produce nothing (Hadoop serves
    /// an empty response for those; the store models that as absence).
    pub fn finish(
        mut self,
        combiner: Option<&dyn crate::task::Combiner<Key = K, Value = V>>,
        counters: &Counters,
    ) -> crate::Result<Vec<(usize, MapOutputFile<K, V>)>> {
        let spill = self.spill.take();
        let mut out = Vec::new();
        for (reducer, mut records) in self.per_reducer.into_iter().enumerate() {
            let raw = self.raw_counts[reducer];
            records.sort_by(|a, b| a.0.cmp(&b.0));
            // Merge spilled runs back in (each run is sorted, as is
            // the in-memory residue; merge_files does the k-way merge).
            if let Some(spill) = &spill {
                if !spill.runs[reducer].is_empty() {
                    let mut parts = vec![Arc::new(MapOutputFile {
                        records,
                        raw_count: 0,
                    })];
                    for path in &spill.runs[reducer] {
                        parts.push(Arc::new((spill.read)(path)?));
                        std::fs::remove_file(path).ok();
                    }
                    records = merge_files(&parts)
                        .into_iter()
                        .flat_map(|(k, vs)| vs.into_iter().map(move |v| (k.clone(), v)))
                        .collect();
                }
            }
            if records.is_empty() {
                continue;
            }
            if let Some(c) = combiner {
                records = combine_sorted(records, c);
            }
            Counters::add(&counters.combined_records, records.len() as u64);
            out.push((
                reducer,
                MapOutputFile {
                    records,
                    raw_count: raw,
                },
            ));
        }
        Ok(out)
    }
}

/// Applies a combiner to a key-sorted run.
fn combine_sorted<K: MrKey, V: MrValue>(
    records: Vec<(K, V)>,
    combiner: &dyn crate::task::Combiner<Key = K, Value = V>,
) -> Vec<(K, V)> {
    let mut out = Vec::with_capacity(records.len());
    let mut iter = records.into_iter();
    let Some((mut key, first)) = iter.next() else {
        return out;
    };
    let mut group = vec![first];
    for (k, v) in iter {
        if k == key {
            group.push(v);
        } else {
            let combined = combiner.combine(&key, std::mem::take(&mut group));
            out.extend(combined.into_iter().map(|v| (key.clone(), v)));
            key = k;
            group.push(v);
        }
    }
    let combined = combiner.combine(&key, group);
    out.extend(combined.into_iter().map(|v| (key.clone(), v)));
    out
}

/// K-way merge of key-sorted files into key groups, delivering every
/// value of a key together — MapReduce guarantee 2 (§2.3).
pub fn merge_files<K: MrKey, V: MrValue>(files: &[Arc<MapOutputFile<K, V>>]) -> Vec<(K, Vec<V>)> {
    // Files are individually sorted; a flatten+sort is O(n log n) like
    // a heap-based merge and considerably simpler. Stability keeps
    // values grouped deterministically by (file order, record order).
    let mut all: Vec<(K, V)> = files
        .iter()
        .flat_map(|f| f.records.iter().cloned())
        .collect();
    all.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out: Vec<(K, Vec<V>)> = Vec::new();
    for (k, v) in all {
        match out.last_mut() {
            Some((lk, vs)) if *lk == k => vs.push(v),
            _ => out.push((k, vec![v])),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Combiner;

    struct SumCombiner;
    impl Combiner for SumCombiner {
        type Key = u64;
        type Value = u64;
        fn combine(&self, _key: &u64, values: Vec<u64>) -> Vec<u64> {
            vec![values.iter().sum()]
        }
    }

    #[test]
    fn builder_partitions_and_sorts() {
        let counters = Counters::default();
        let mut b = MapOutputBuilder::<u64, u64>::new(2);
        b.push(0, 5, 50).unwrap();
        b.push(0, 1, 10).unwrap();
        b.push(1, 2, 20).unwrap();
        let files = b.finish(None, &counters).unwrap();
        assert_eq!(files.len(), 2);
        let f0 = &files.iter().find(|(r, _)| *r == 0).unwrap().1;
        assert_eq!(f0.records, vec![(1, 10), (5, 50)]);
        assert_eq!(f0.raw_count, 2);
    }

    #[test]
    fn combiner_folds_but_annotation_keeps_raw_count() {
        let counters = Counters::default();
        let mut b = MapOutputBuilder::<u64, u64>::new(1);
        b.push(0, 7, 1).unwrap();
        b.push(0, 7, 2).unwrap();
        b.push(0, 7, 3).unwrap();
        b.push(0, 9, 4).unwrap();
        let files = b.finish(Some(&SumCombiner), &counters).unwrap();
        let f = &files[0].1;
        assert_eq!(f.records, vec![(7, 6), (9, 4)]);
        assert_eq!(f.raw_count, 4, "annotation counts raw pairs, not combined");
    }

    #[test]
    fn empty_partitions_produce_no_file() {
        let counters = Counters::default();
        let mut b = MapOutputBuilder::<u64, u64>::new(3);
        b.push(1, 1, 1).unwrap();
        let files = b.finish(None, &counters).unwrap();
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].0, 1);
    }

    #[test]
    fn fetch_counts_connections_even_when_empty() {
        let counters = Counters::default();
        let store = ShuffleStore::<u64, u64>::new(false);
        store
            .put(
                0,
                0,
                MapOutputFile {
                    records: vec![(1, 1)],
                    raw_count: 1,
                },
            )
            .unwrap();
        assert!(store.fetch(0, 0, &counters).unwrap().is_some());
        assert!(store.fetch(5, 0, &counters).unwrap().is_none()); // empty fetch
        assert_eq!(counters.snapshot().shuffle_connections, 2);
        assert_eq!(counters.snapshot().shuffled_records, 1);
    }

    #[test]
    fn consume_on_fetch_removes_files() {
        let counters = Counters::default();
        let store = ShuffleStore::<u64, u64>::new(true);
        store
            .put(
                0,
                0,
                MapOutputFile {
                    records: vec![(1, 1)],
                    raw_count: 1,
                },
            )
            .unwrap();
        assert!(store.fetch(0, 0, &counters).unwrap().is_some());
        assert!(!store.contains(0, 0));
        assert!(store.fetch(0, 0, &counters).unwrap().is_none());
    }

    #[test]
    fn merge_groups_values_across_files() {
        let f1 = Arc::new(MapOutputFile {
            records: vec![(1u64, 10u64), (3, 30)],
            raw_count: 2,
        });
        let f2 = Arc::new(MapOutputFile {
            records: vec![(1, 11), (2, 20)],
            raw_count: 2,
        });
        let merged = merge_files(&[f1, f2]);
        assert_eq!(
            merged,
            vec![(1, vec![10, 11]), (2, vec![20]), (3, vec![30])]
        );
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        let merged: Vec<(u64, Vec<u64>)> = merge_files(&[]);
        assert!(merged.is_empty());
    }
}
