//! The SIDR routing plan: partition+, dependency barriers, inverted
//! scheduling and keyblock prioritization, packaged behind the
//! engine's [`RoutingPlan`] trait.

use sidr_coords::{Coord, Slab};
use sidr_mapreduce::{InputSplit, MapTaskId, Partitioner, RoutingPlan};

use crate::deps::Dependencies;
use crate::partition_plus::PartitionPlus;
use crate::query::StructuralQuery;
use crate::{Result, SidrError};

/// A fully derived SIDR plan for one job.
///
/// Built by [`SidrPlanner`]; immutable afterwards. Implements
/// [`RoutingPlan`] so the engine executes with:
/// * `partition+` as the partition function (§3.1),
/// * `I_ℓ` dependency barriers and dependency-only fetches (§3.2, §4.6),
/// * inverted reduce-first scheduling (§3.3),
/// * optional keyblock priority order (§3.4),
/// * expected raw-pair counts for annotation validation (§3.2.1).
pub struct SidrPlan {
    partition: PartitionPlus,
    deps: Dependencies,
    reduce_order: Vec<usize>,
    invert: bool,
    expected_raw: Vec<u64>,
}

impl SidrPlan {
    /// The keyblock geometry.
    pub fn partition(&self) -> &PartitionPlus {
        &self.partition
    }

    /// The dependency structure.
    pub fn dependencies(&self) -> &Dependencies {
        &self.deps
    }

    /// Total (map, reducer) contacts this plan will incur — the SIDR
    /// column of Table 3.
    pub fn total_connections(&self) -> u64 {
        self.deps.total_connections()
    }
}

impl RoutingPlan<Coord> for SidrPlan {
    fn num_reducers(&self) -> usize {
        self.partition.num_reducers()
    }

    fn partition(&self, key: &Coord) -> usize {
        Partitioner::partition(&self.partition, key, self.partition.num_reducers())
    }

    fn reduce_deps(&self, reducer: usize) -> Option<Vec<MapTaskId>> {
        Some(self.deps.reduce_deps(reducer).to_vec())
    }

    fn invert_scheduling(&self) -> bool {
        self.invert
    }

    fn reduce_order(&self) -> Vec<usize> {
        self.reduce_order.clone()
    }

    fn expected_raw_count(&self, reducer: usize) -> Option<u64> {
        Some(self.expected_raw[reducer])
    }
}

/// Builder for [`SidrPlan`].
pub struct SidrPlanner<'q> {
    query: &'q StructuralQuery,
    num_reducers: usize,
    skew_bound: Option<u64>,
    priority_region: Option<Slab>,
    invert: bool,
    preflight: bool,
}

impl<'q> SidrPlanner<'q> {
    pub fn new(query: &'q StructuralQuery, num_reducers: usize) -> Self {
        SidrPlanner {
            query,
            num_reducers,
            skew_bound: None,
            priority_region: None,
            invert: true,
            preflight: true,
        }
    }

    /// Overrides the system-chosen permissible skew (§3.1).
    pub fn skew_bound(mut self, bound: u64) -> Self {
        self.skew_bound = Some(bound);
        self
    }

    /// Prioritizes the keyblocks covering a region of the output
    /// space: they are scheduled first (§3.4 — computational steering,
    /// burst-buffer windows). The region is a slab of `K′`.
    pub fn prioritize_region(mut self, region: Slab) -> Self {
        self.priority_region = Some(region);
        self
    }

    /// Disables inverted scheduling (ablation: dependency barriers
    /// without reduce-first scheduling).
    pub fn classic_scheduling(mut self) -> Self {
        self.invert = false;
        self
    }

    /// Disables the structural pre-flight check that [`build`]
    /// otherwise runs on the finished plan (see [`crate::verify`]).
    /// The check is cheap — O(reducers + dependency edges) — so opt
    /// out only when building millions of throwaway plans.
    ///
    /// [`build`]: SidrPlanner::build
    pub fn skip_preflight(mut self) -> Self {
        self.preflight = false;
        self
    }

    /// Derives the complete plan for a concrete split set.
    ///
    /// Dependency information is computed here, "when a query begins,
    /// by calculating which keyblocks each `Iᵢ` will generate data
    /// for and then inverting those relationships" (§3.2.1 — the
    /// store side of the store-vs-recompute decision).
    pub fn build(self, splits: &[InputSplit]) -> Result<SidrPlan> {
        if self.num_reducers == 0 {
            return Err(SidrError::Plan("need at least one reducer".into()));
        }
        let partition = match self.skew_bound {
            Some(b) => PartitionPlus::with_skew_bound(
                self.query.intermediate_space(),
                self.num_reducers,
                b,
            )?,
            None => PartitionPlus::for_query(self.query, self.num_reducers)?,
        };
        let deps = Dependencies::derive(self.query, &partition, splits)?;

        let reduce_order = match &self.priority_region {
            None => (0..self.num_reducers).collect(),
            Some(region) => priority_order(&partition, region)?,
        };

        // Expected raw ⟨k,v⟩ per keyblock: every input key folding into
        // the block's K' keys produces exactly one intermediate pair
        // under the structural-mapper contract, so the expected tally
        // is |keys in block| × |extraction shape|. Requires splits to
        // cover the query's input space (all our generators do).
        let fold = self.query.fold_in_count();
        let expected_raw = (0..self.num_reducers)
            .map(|r| Ok(partition.keyblock_key_count(r)? * fold))
            .collect::<Result<Vec<u64>>>()?;

        let plan = SidrPlan {
            partition,
            deps,
            reduce_order,
            invert: self.invert,
            expected_raw,
        };

        // Pre-flight: prove the structural invariants before anything
        // runs (coverage balance, schedule permutation, dependency
        // feasibility, annotation conservation). A planner bug
        // surfaces here as a diagnostic report instead of a hung
        // barrier or a silently wrong answer downstream.
        if self.preflight {
            let view = crate::verify::PlanView::of_plan(&plan, self.query, splits);
            let report = crate::verify::structural_check(&view);
            if report.has_errors() {
                return Err(SidrError::Plan(format!(
                    "pre-flight verification failed:\n{report}"
                )));
            }
        }

        Ok(plan)
    }
}

/// Keyblocks intersecting `region` first (in id order), the rest after
/// (in id order).
fn priority_order(partition: &PartitionPlus, region: &Slab) -> Result<Vec<usize>> {
    let r = partition.num_reducers();
    let mut hot = Vec::new();
    let mut cold = Vec::new();
    for block in 0..r {
        let intersects = partition
            .keyblock_cover(block)?
            .iter()
            .any(|s| s.intersects(region));
        if intersects {
            hot.push(block);
        } else {
            cold.push(block);
        }
    }
    hot.extend(cold);
    Ok(hot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::Operator;
    use sidr_coords::Shape;
    use sidr_mapreduce::SplitGenerator;

    fn shape(v: &[u64]) -> Shape {
        Shape::new(v.to_vec()).unwrap()
    }

    fn query() -> StructuralQuery {
        StructuralQuery::new("t", shape(&[64, 10, 10]), shape(&[4, 5, 1]), Operator::Mean).unwrap()
    }

    fn splits(q: &StructuralQuery, n: u64) -> Vec<InputSplit> {
        SplitGenerator::new(q.input_space().clone(), 8)
            .exact_count(n)
            .unwrap()
    }

    #[test]
    fn plan_exposes_sidr_policies() {
        let q = query();
        let s = splits(&q, 8);
        let plan = SidrPlanner::new(&q, 4).build(&s).unwrap();
        assert_eq!(plan.num_reducers(), 4);
        assert!(plan.invert_scheduling());
        assert!(plan.reduce_deps(0).is_some());
        // Fetch sources default to deps.
        assert_eq!(plan.fetch_sources(0), plan.reduce_deps(0));
        // Expected raw counts sum to the mapped portion of the input.
        let total: u64 = (0..4).map(|r| plan.expected_raw_count(r).unwrap()).sum();
        assert_eq!(total, q.intermediate_space().count() * q.fold_in_count());
    }

    #[test]
    fn priority_region_schedules_hot_blocks_first() {
        let q = query();
        let s = splits(&q, 8);
        let kspace = q.intermediate_space();
        // Hot region: the *last* rows of K' — blocks owning them run
        // first.
        let region = Slab::new(
            sidr_coords::Coord::from([kspace[0] - 1, 0, 0]),
            shape(&[1, kspace[1], kspace[2]]),
        )
        .unwrap();
        let plan = SidrPlanner::new(&q, 4)
            .prioritize_region(region.clone())
            .build(&s)
            .unwrap();
        let order = plan.reduce_order();
        let first = order[0];
        assert!(plan
            .partition()
            .keyblock_cover(first)
            .unwrap()
            .iter()
            .any(|c| c.intersects(&region)));
        // Order is a permutation.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn classic_scheduling_flag() {
        let q = query();
        let s = splits(&q, 4);
        let plan = SidrPlanner::new(&q, 2)
            .classic_scheduling()
            .build(&s)
            .unwrap();
        assert!(!plan.invert_scheduling());
    }

    #[test]
    fn zero_reducers_rejected() {
        let q = query();
        let s = splits(&q, 4);
        assert!(SidrPlanner::new(&q, 0).build(&s).is_err());
    }
}
