//! `sidr-serve`: the structural-query daemon.
//!
//! ```text
//! sidr-serve --listen 127.0.0.1:7733 --map-slots 8 --reduce-slots 4
//! ```
//!
//! Accepts `JobSpec` submissions over the length-prefixed JSON
//! protocol, pre-flights each with the static plan verifier, runs
//! admitted jobs concurrently on one shared slot pool and streams
//! every keyblock back the moment its reduce commits. Submit with
//! `sidr-submit`.

use std::process::ExitCode;
use std::time::Duration;

use sidr_serve::{Server, ServerConfig};

struct Args {
    listen: String,
    map_slots: usize,
    reduce_slots: usize,
    workers: Vec<String>,
    heartbeat_every_ms: u64,
    heartbeat_timeout_ms: u64,
}

fn usage() -> &'static str {
    "usage: sidr-serve [options]\n\
     \n\
     Runs the structural-query service: admits serialized JobSpecs,\n\
     executes them concurrently on one shared slot pool and streams\n\
     each keyblock back the moment its reduce commits.\n\
     \n\
     options:\n\
     \x20 --listen ADDR      bind address (default 127.0.0.1:7733)\n\
     \x20 --map-slots N      cluster-wide map slots (default 4)\n\
     \x20 --reduce-slots N   cluster-wide reduce slots (default 2)\n\
     \x20 --worker ADDR      dispatch task attempts to the sidr-worker\n\
     \x20                    at ADDR (repeatable; with no --worker the\n\
     \x20                    server executes jobs in-process)\n\
     \x20 --heartbeat-every-ms N\n\
     \x20                    fleet heartbeat probe interval (default 200;\n\
     \x20                    probes are staggered per worker with jitter)\n\
     \x20 --heartbeat-timeout-ms N\n\
     \x20                    probe timeout before a worker is declared\n\
     \x20                    dead (default 500)\n"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:7733".into(),
        map_slots: 4,
        reduce_slots: 2,
        workers: Vec::new(),
        heartbeat_every_ms: 0,
        heartbeat_timeout_ms: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => args.listen = it.next().ok_or("--listen needs an address")?,
            "--map-slots" => {
                let n = it.next().ok_or("--map-slots needs a count")?;
                args.map_slots = n.parse().map_err(|_| format!("bad slot count {n:?}"))?;
            }
            "--reduce-slots" => {
                let n = it.next().ok_or("--reduce-slots needs a count")?;
                args.reduce_slots = n.parse().map_err(|_| format!("bad slot count {n:?}"))?;
            }
            "--worker" => args
                .workers
                .push(it.next().ok_or("--worker needs an address")?),
            "--heartbeat-every-ms" => {
                let n = it.next().ok_or("--heartbeat-every-ms needs a count")?;
                args.heartbeat_every_ms = n.parse().map_err(|_| format!("bad interval {n:?}"))?;
            }
            "--heartbeat-timeout-ms" => {
                let n = it.next().ok_or("--heartbeat-timeout-ms needs a count")?;
                args.heartbeat_timeout_ms = n.parse().map_err(|_| format!("bad timeout {n:?}"))?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("sidr-serve: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let fleet_size = args.workers.len();
    let config = ServerConfig {
        map_slots: args.map_slots,
        reduce_slots: args.reduce_slots,
        workers: args.workers,
        heartbeat_every: Duration::from_millis(args.heartbeat_every_ms),
        heartbeat_timeout: Duration::from_millis(args.heartbeat_timeout_ms),
        ..ServerConfig::default()
    };
    let server = match Server::bind(&args.listen, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sidr-serve: cannot bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            let mode = if fleet_size > 0 {
                format!("coordinating {fleet_size} worker(s)")
            } else {
                "in-process execution".to_string()
            };
            println!(
                "sidr-serve: listening on {addr} ({} map + {} reduce slots, {mode})",
                args.map_slots, args.reduce_slots
            );
        }
        Err(e) => {
            eprintln!("sidr-serve: cannot resolve bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = server.run() {
        eprintln!("sidr-serve: accept loop failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("sidr-serve: shut down");
    ExitCode::SUCCESS
}
