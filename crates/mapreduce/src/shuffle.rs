//! Shuffle: map-output files, fetch accounting, and sort-merge.
//!
//! Each Map task leaves one output file per reducer it produced data
//! for. A file's header carries the §3.2.1 *annotation*: "how many
//! ⟨k,v⟩ are represented by the set of all ⟨k′,v′⟩ in that file",
//! which lets a Reduce task tally raw input coverage without parsing
//! the file — the cross-check SIDR uses to validate that starting
//! early never consumes insufficient input.
//!
//! Fetches are counted: every (map, reducer) contact is one network
//! connection, the quantity Table 3 reports.

use crate::sync::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;

use crate::counters::Counters;
use crate::split::MapTaskId;
use crate::task::{MrKey, MrValue};

/// One map-output file: the intermediate pairs a single Map task
/// produced for a single reducer, sorted by key.
#[derive(Clone, Debug)]
pub struct MapOutputFile<K, V> {
    /// Records sorted by key (Hadoop sorts map output per partition).
    pub records: Vec<(K, V)>,
    /// Annotation: raw ⟨k,v⟩ pairs represented (≥ `records.len()` when
    /// a combiner folded pairs together).
    pub raw_count: u64,
}

impl<K, V> Default for MapOutputFile<K, V> {
    fn default() -> Self {
        MapOutputFile {
            records: Vec::new(),
            raw_count: 0,
        }
    }
}

/// One stored map-output file: resident or spilled to disk.
enum Stored<K, V> {
    Memory(Arc<MapOutputFile<K, V>>),
    Spilled {
        path: std::path::PathBuf,
        /// Header fields cached so annotation tallies never re-read.
        raw_count: u64,
        records: u64,
    },
    /// A resident replica whose integrity check fails (fault
    /// injection for the in-memory store: the moral equivalent of a
    /// spilled file with a bad CRC). Fetching it errors with
    /// [`crate::error::MrError::CorruptShuffle`].
    Corrupt {
        raw_count: u64,
        records: u64,
    },
}

/// How [`ShuffleStore::corrupt_map`] damages a map's committed
/// output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptionMode {
    /// Flip payload bytes (spilled files) or poison the resident
    /// replica's checksum (memory files).
    BitFlip,
    /// Cut the file short mid-payload. Indistinguishable from
    /// `BitFlip` for resident replicas.
    Truncate,
}

/// What a [`ShuffleStore::fetch`] found. Distinguishing `Empty` from
/// `Stale` is what makes consume-on-fetch recovery sound: an absent
/// file whose epoch matched really is "this map produced nothing for
/// this reducer", while data from a *different* map attempt must never
/// be consumed by a reducer that only waited for an older commit.
#[derive(Debug)]
pub enum Fetched<K, V> {
    /// The file, at the requested epoch (consumed if the store is
    /// volatile).
    File(Arc<MapOutputFile<K, V>>),
    /// The map committed the requested epoch but produced nothing for
    /// this reducer.
    Empty,
    /// The store holds a different attempt's output. Nothing was
    /// consumed; the caller must re-wait for the commit of
    /// `store_epoch` (or newer) and fetch again.
    Stale { store_epoch: u32 },
}

/// The TaskTracker-served map-output files: held in memory by default,
/// or written to a spill directory in the on-disk format of
/// [`crate::shuffle_file`] (the header-annotated files of §3.2.1).
///
/// `fetch` optionally *consumes* the file, modeling the §6 future-work
/// regime where intermediate data is not persisted and a failed
/// Reduce task forces re-execution of the Map tasks it depended on.
///
/// Every entry is stamped with the *epoch* (map attempt id) that
/// produced it, and `fetch` only consumes an epoch the caller
/// explicitly observed committed. Without the stamp, a doomed reduce
/// attempt that raced a map re-execution could eat the fresh attempt's
/// partition between its `put` and its `Done` transition — and since
/// recovery treats an in-flight re-execution as "already being
/// rebuilt", nobody would ever restore the consumed data.
/// Store key → (producing epoch, file): epoch first so a fetch can
/// reject another attempt's data before touching the payload.
type StoredFiles<K, V> = HashMap<(MapTaskId, usize), (u32, Stored<K, V>)>;

pub struct ShuffleStore<K, V> {
    files: Mutex<StoredFiles<K, V>>,
    /// Signalled when new files arrive (fetchers waiting on slow maps).
    arrival: Condvar,
    /// Whether fetches remove files from the store.
    consume_on_fetch: bool,
    /// Spill codec, present when the store is disk-backed.
    spill: Option<SpillCodec<K, V>>,
}

/// Monomorphized writers/readers for the spill path, so the store (and
/// the runtime above it) needs no `WireFormat` bounds of its own.
pub struct SpillCodec<K, V> {
    pub dir: std::path::PathBuf,
    pub write: fn(&std::path::Path, &MapOutputFile<K, V>) -> crate::Result<()>,
    pub read: fn(&std::path::Path) -> crate::Result<MapOutputFile<K, V>>,
}

impl<K, V> SpillCodec<K, V>
where
    K: MrKey + crate::wire::WireFormat,
    V: MrValue + crate::wire::WireFormat,
{
    /// The standard codec: `shuffle_file`'s SMOF format under `dir`.
    pub fn smof(dir: impl Into<std::path::PathBuf>) -> Self {
        SpillCodec {
            dir: dir.into(),
            write: |path, file| crate::shuffle_file::write_map_output(path, file),
            read: |path| crate::shuffle_file::read_map_output(path),
        }
    }
}

impl<K: MrKey, V: MrValue> ShuffleStore<K, V> {
    pub fn new(consume_on_fetch: bool) -> Self {
        ShuffleStore {
            files: Mutex::new(HashMap::new()),
            arrival: Condvar::new(),
            consume_on_fetch,
            spill: None,
        }
    }

    /// A disk-backed store spilling through `codec`.
    pub fn with_spill(consume_on_fetch: bool, codec: SpillCodec<K, V>) -> Self {
        ShuffleStore {
            files: Mutex::new(HashMap::new()),
            arrival: Condvar::new(),
            consume_on_fetch,
            spill: Some(codec),
        }
    }

    /// Stores (or replaces, on re-execution) one map-output file,
    /// stamped with the attempt that produced it.
    pub fn put(
        &self,
        map: MapTaskId,
        reducer: usize,
        epoch: u32,
        file: MapOutputFile<K, V>,
    ) -> crate::Result<()> {
        let stored = match &self.spill {
            None => Stored::Memory(Arc::new(file)),
            Some(codec) => {
                let path = codec.dir.join(format!("map{map:06}-r{reducer:05}.smof"));
                (codec.write)(&path, &file)?;
                Stored::Spilled {
                    path,
                    raw_count: file.raw_count,
                    records: file.records.len() as u64,
                }
            }
        };
        let mut files = self.files.lock();
        files.insert((map, reducer), (epoch, stored));
        self.arrival.notify_all();
        Ok(())
    }

    /// Fetches the file `map`'s attempt `epoch` produced for `reducer`,
    /// counting one connection (contacts happen even when the map
    /// produced nothing for this reducer — Hadoop "requires that every
    /// Reduce task contact every completed Map task", §4.6).
    ///
    /// An absent entry — or one left over from an *older* attempt,
    /// which the committed epoch's `put` never replaced because it had
    /// nothing to write — is [`Fetched::Empty`]. An entry from a
    /// *newer* attempt is [`Fetched::Stale`] and is left untouched:
    /// consuming output the caller never waited for is exactly the
    /// lost-partition race this stamp exists to prevent.
    pub fn fetch(
        &self,
        map: MapTaskId,
        reducer: usize,
        epoch: u32,
        counters: &Counters,
    ) -> crate::Result<Fetched<K, V>> {
        Counters::add(&counters.shuffle_connections, 1);
        let entry = {
            let mut files = self.files.lock();
            match files.get(&(map, reducer)) {
                None => None,
                Some((stored_epoch, _)) if *stored_epoch > epoch => {
                    return Ok(Fetched::Stale {
                        store_epoch: *stored_epoch,
                    });
                }
                Some((stored_epoch, _)) if *stored_epoch < epoch => {
                    return Ok(Fetched::Empty);
                }
                Some(_) if self.consume_on_fetch => {
                    files.remove(&(map, reducer)).map(|(_, stored)| stored)
                }
                Some((_, Stored::Memory(f))) => Some(Stored::Memory(Arc::clone(f))),
                Some((
                    _,
                    Stored::Spilled {
                        path,
                        raw_count,
                        records,
                    },
                )) => Some(Stored::Spilled {
                    path: path.clone(),
                    raw_count: *raw_count,
                    records: *records,
                }),
                Some((_, Stored::Corrupt { raw_count, records })) => Some(Stored::Corrupt {
                    raw_count: *raw_count,
                    records: *records,
                }),
            }
        };
        let got = match entry {
            None => return Ok(Fetched::Empty),
            Some(Stored::Memory(f)) => f,
            Some(Stored::Corrupt { .. }) => {
                return Err(crate::error::MrError::CorruptShuffle {
                    detail: format!("map {map} output for reducer {reducer}: checksum mismatch"),
                });
            }
            Some(Stored::Spilled { path, .. }) => {
                let codec = self
                    .spill
                    .as_ref()
                    .expect("spilled entries only exist in spilling stores");
                let file = (codec.read)(&path)?;
                if self.consume_on_fetch {
                    // Not persisted: the bytes are gone once consumed.
                    std::fs::remove_file(&path).ok();
                }
                Arc::new(file)
            }
        };
        Counters::add(&counters.shuffled_records, got.records.len() as u64);
        Ok(Fetched::File(got))
    }

    /// The annotation of a stored file without reading its records —
    /// `(raw ⟨k,v⟩ represented, ⟨k′,v′⟩ records)` (§3.2.1).
    pub fn annotation(&self, map: MapTaskId, reducer: usize) -> Option<(u64, u64)> {
        match self.files.lock().get(&(map, reducer)) {
            None => None,
            Some((_, Stored::Memory(f))) => Some((f.raw_count, f.records.len() as u64)),
            Some((
                _,
                Stored::Spilled {
                    raw_count, records, ..
                },
            ))
            | Some((_, Stored::Corrupt { raw_count, records })) => Some((*raw_count, *records)),
        }
    }

    /// Damages every committed output file of `map` (fault
    /// injection). Spilled files are tampered with on disk so the
    /// CRC frame genuinely fails at read time; resident replicas are
    /// marked corrupt, which `fetch` reports the same way.
    pub fn corrupt_map(&self, map: MapTaskId, mode: CorruptionMode) -> crate::Result<()> {
        let mut files = self.files.lock();
        for ((m, _), (_, stored)) in files.iter_mut() {
            if *m != map {
                continue;
            }
            match stored {
                Stored::Memory(f) => {
                    *stored = Stored::Corrupt {
                        raw_count: f.raw_count,
                        records: f.records.len() as u64,
                    };
                }
                Stored::Spilled { path, .. } => match mode {
                    CorruptionMode::BitFlip => crate::shuffle_file::corrupt_payload(path)?,
                    CorruptionMode::Truncate => crate::shuffle_file::truncate_payload(path)?,
                },
                Stored::Corrupt { .. } => {}
            }
        }
        Ok(())
    }

    /// Drops every stored output of `map` (spilled bytes included):
    /// the copy phase calls this when a fetch detects corruption, so
    /// the re-executed attempt's files are the only replicas left.
    pub fn evict(&self, map: MapTaskId) {
        let mut files = self.files.lock();
        files.retain(|(m, _), (_, stored)| {
            if *m != map {
                return true;
            }
            if let Stored::Spilled { path, .. } = stored {
                std::fs::remove_file(path).ok();
            }
            false
        });
    }

    /// Whether a file is currently present (recovery logic checks
    /// before deciding to re-execute a map).
    pub fn contains(&self, map: MapTaskId, reducer: usize) -> bool {
        self.files.lock().contains_key(&(map, reducer))
    }

    /// Number of files currently stored.
    pub fn len(&self) -> usize {
        self.files.lock().len()
    }

    /// True when the store holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.lock().is_empty()
    }
}

/// Builds the per-reducer output files of one Map task: partitions,
/// optionally combines, sorts, annotates.
pub struct MapOutputBuilder<K, V> {
    per_reducer: Vec<Vec<(K, V)>>,
    buffered: usize,
    spill: Option<BuilderSpill<K, V>>,
}

/// Map-side sort-buffer spill configuration (Hadoop's `io.sort.mb`
/// pipeline, with the buffer limit expressed in records).
struct BuilderSpill<K, V> {
    /// Spill once this many records are buffered.
    threshold: usize,
    dir: std::path::PathBuf,
    /// Unique prefix (the map task id) for run-file names.
    task: MapTaskId,
    /// Sorted run files written so far, per reducer.
    runs: Vec<Vec<std::path::PathBuf>>,
    seq: usize,
    write: fn(&std::path::Path, &MapOutputFile<K, V>) -> crate::Result<()>,
    read: fn(&std::path::Path) -> crate::Result<MapOutputFile<K, V>>,
}

impl<K, V> Drop for BuilderSpill<K, V> {
    /// Removes any run files still on disk. `finish` deletes runs as
    /// it merges them, so this only fires for abandoned builders — a
    /// failed map attempt must not leave stale runs for its retry to
    /// trip over.
    fn drop(&mut self) {
        for path in self.runs.iter().flatten() {
            std::fs::remove_file(path).ok();
        }
    }
}

impl<K: MrKey, V: MrValue> MapOutputBuilder<K, V> {
    pub fn new(num_reducers: usize) -> Self {
        MapOutputBuilder {
            per_reducer: (0..num_reducers).map(|_| Vec::new()).collect(),
            buffered: 0,
            spill: None,
        }
    }

    /// Enables map-side spilling: when more than `threshold` records
    /// are buffered, each partition is sorted and written out as a
    /// run; `finish` merges the runs — Hadoop's sort/spill/merge
    /// pipeline.
    pub fn with_spill(mut self, threshold: usize, dir: std::path::PathBuf, task: MapTaskId) -> Self
    where
        K: crate::wire::WireFormat,
        V: crate::wire::WireFormat,
    {
        let n = self.per_reducer.len();
        self.spill = Some(BuilderSpill {
            threshold: threshold.max(1),
            dir,
            task,
            runs: (0..n).map(|_| Vec::new()).collect(),
            seq: 0,
            write: |path, file| crate::shuffle_file::write_map_output(path, file),
            read: |path| crate::shuffle_file::read_map_output(path),
        });
        self
    }

    /// Adds one intermediate pair destined for `reducer`.
    #[inline]
    pub fn push(&mut self, reducer: usize, key: K, value: V) -> crate::Result<()> {
        self.per_reducer[reducer].push((key, value));
        self.buffered += 1;
        if let Some(spill) = &self.spill {
            if self.buffered >= spill.threshold {
                self.spill_runs()?;
            }
        }
        Ok(())
    }

    /// Writes every non-empty buffer out as a sorted run.
    fn spill_runs(&mut self) -> crate::Result<()> {
        let spill = self.spill.as_mut().expect("called only when spilling");
        for (reducer, records) in self.per_reducer.iter_mut().enumerate() {
            if records.is_empty() {
                continue;
            }
            records.sort_by(|a, b| a.0.cmp(&b.0));
            let path = spill.dir.join(format!(
                "map{:06}-r{reducer:05}-run{:04}.smof",
                spill.task, spill.seq
            ));
            // Runs are written pre-combiner, so each run's annotation
            // is its own record count; finish sums the run headers.
            let run_records = std::mem::take(records);
            let run = MapOutputFile {
                raw_count: run_records.len() as u64,
                records: run_records,
            };
            (spill.write)(&path, &run)?;
            spill.runs[reducer].push(path);
            crate::metrics::runtime().map_spills.inc();
        }
        spill.seq += 1;
        self.buffered = 0;
        Ok(())
    }

    /// Finalizes into per-reducer files: sorts by key (merging any
    /// spilled runs), applies the combiner per key group, and stamps
    /// the raw-count annotation. Returns `(reducer, file)` for every
    /// non-empty partition; empty ones produce nothing (Hadoop serves
    /// an empty response for those; the store models that as absence).
    pub fn finish(
        mut self,
        combiner: Option<&dyn crate::task::Combiner<Key = K, Value = V>>,
        counters: &Counters,
    ) -> crate::Result<Vec<(usize, MapOutputFile<K, V>)>> {
        let spill = self.spill.take();
        let mut out = Vec::new();
        for (reducer, mut records) in self.per_reducer.into_iter().enumerate() {
            records.sort_by(|a, b| a.0.cmp(&b.0));
            // The annotation: raw pairs pushed for this reducer — the
            // in-memory residue plus the sum of the run headers (runs
            // are written pre-combiner, so the headers are exact).
            let mut raw = records.len() as u64;
            // Merge spilled runs back in: each run is sorted, as is
            // the in-memory residue, so MergeIter streams the records
            // straight into the final file — one clone per record,
            // no regroup-then-flatten round trip.
            if let Some(spill) = &spill {
                if !spill.runs[reducer].is_empty() {
                    let mut merge = MergeIter::new();
                    merge.push_file(Arc::new(MapOutputFile {
                        raw_count: raw,
                        records,
                    }));
                    for path in &spill.runs[reducer] {
                        let run = (spill.read)(path)?;
                        raw += run.raw_count;
                        merge.push_file(Arc::new(run));
                        std::fs::remove_file(path).ok();
                    }
                    let mut merged = Vec::with_capacity(merge.remaining());
                    while let Some((k, v)) = merge.next_record() {
                        merged.push((k.clone(), v.clone()));
                    }
                    let m = crate::metrics::runtime();
                    m.merge_records.add(merge.records_consumed());
                    m.merge_bytes.add(
                        merge
                            .records_consumed()
                            .saturating_mul(std::mem::size_of::<(K, V)>() as u64),
                    );
                    debug_assert_eq!(raw as usize, merged.len(), "run headers sum to the merge");
                    records = merged;
                }
            }
            if records.is_empty() {
                continue;
            }
            if let Some(c) = combiner {
                records = combine_sorted(records, c);
            }
            Counters::add(&counters.combined_records, records.len() as u64);
            out.push((
                reducer,
                MapOutputFile {
                    records,
                    raw_count: raw,
                },
            ));
        }
        Ok(out)
    }
}

/// Applies a combiner to a key-sorted run. One group buffer is reused
/// across every key (the combiner rewrites it in place), and the key
/// is moved — not cloned — unless the combiner emits more than one
/// value for it.
fn combine_sorted<K: MrKey, V: MrValue>(
    records: Vec<(K, V)>,
    combiner: &dyn crate::task::Combiner<Key = K, Value = V>,
) -> Vec<(K, V)> {
    let mut out = Vec::with_capacity(records.len());
    let mut iter = records.into_iter();
    let Some((mut key, first)) = iter.next() else {
        return out;
    };
    let mut group: Vec<V> = Vec::new();
    group.push(first);
    let flush = |key: K, group: &mut Vec<V>, out: &mut Vec<(K, V)>| {
        combiner.combine(&key, group);
        match group.len() {
            0 => {}
            1 => out.push((key, group.pop().expect("one value"))),
            _ => {
                let last = group.pop().expect("at least two values");
                out.extend(group.drain(..).map(|v| (key.clone(), v)));
                out.push((key, last));
            }
        }
    };
    for (k, v) in iter {
        if k == key {
            group.push(v);
        } else {
            flush(std::mem::replace(&mut key, k), &mut group, &mut out);
            group.push(v);
        }
    }
    flush(key, &mut group, &mut out);
    out
}

/// Streaming k-way merge over key-sorted map-output files.
///
/// Holds one cursor per file and a binary min-heap of file indices
/// ordered by `(current key, file index)`, so records come out in
/// global key order with equal keys delivered in (file order, record
/// order) — exactly the order the old flatten-and-stable-sort merge
/// produced, but without cloning every record into a scratch vector,
/// without re-sorting already-sorted runs, and without materializing
/// the whole `Vec<(K, Vec<V>)>` keyspace before the first key group
/// is available.
///
/// Files are shared (`Arc`), so the merge borrows records in place;
/// the only copies made are the values of the *current* group, cloned
/// into one reusable buffer ([`next_group`]). Cursors can be opened
/// incrementally with [`push_file`] as map outputs arrive during the
/// copy phase — the reducer holds its slot through the copy anyway
/// (§3.2), so by the time its barrier is met the merge is ready to
/// yield its first group immediately.
///
/// [`next_group`]: MergeIter::next_group
/// [`push_file`]: MergeIter::push_file
pub struct MergeIter<K, V> {
    files: Vec<Arc<MapOutputFile<K, V>>>,
    /// Per-file position of the next unconsumed record.
    cursors: Vec<usize>,
    /// Min-heap of file indices with records remaining, ordered by
    /// `(key at cursor, file index)`. Kept by hand (not
    /// `BinaryHeap`) because the ordering lives in `files`/`cursors`.
    heap: Vec<usize>,
    /// Reusable buffer holding the current group's values.
    group: Vec<V>,
    /// Records consumed so far (for the merge throughput metrics).
    consumed: u64,
}

impl<K: MrKey, V: MrValue> Default for MergeIter<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: MrKey, V: MrValue> MergeIter<K, V> {
    /// An empty merge; add inputs with [`MergeIter::push_file`].
    pub fn new() -> Self {
        MergeIter {
            files: Vec::new(),
            cursors: Vec::new(),
            heap: Vec::new(),
            group: Vec::new(),
            consumed: 0,
        }
    }

    /// A merge over `files`, in order. The file order is significant:
    /// it breaks ties between equal keys.
    pub fn with_files(files: impl IntoIterator<Item = Arc<MapOutputFile<K, V>>>) -> Self {
        let mut m = Self::new();
        for f in files {
            m.push_file(f);
        }
        m
    }

    /// Opens a cursor on one more file. Files must be pushed in the
    /// deterministic file order (the plan's fetch order) *before*
    /// consumption begins; equal keys yield values in push order.
    pub fn push_file(&mut self, file: Arc<MapOutputFile<K, V>>) {
        debug_assert!(
            file.records.windows(2).all(|w| w[0].0 <= w[1].0),
            "map-output files are key-sorted"
        );
        let idx = self.files.len();
        let empty = file.records.is_empty();
        self.files.push(file);
        self.cursors.push(0);
        if !empty {
            self.heap.push(idx);
            self.sift_up(self.heap.len() - 1);
        }
    }

    /// Number of records not yet consumed.
    pub fn remaining(&self) -> usize {
        self.heap
            .iter()
            .map(|&f| self.files[f].records.len() - self.cursors[f])
            .sum()
    }

    /// The smallest unconsumed key, without consuming it.
    pub fn peek_key(&self) -> Option<&K> {
        self.heap
            .first()
            .map(|&f| &self.files[f].records[self.cursors[f]].0)
    }

    /// `files[a]`'s cursor sorts before `files[b]`'s.
    fn less(&self, a: usize, b: usize) -> bool {
        let ka = &self.files[a].records[self.cursors[a]].0;
        let kb = &self.files[b].records[self.cursors[b]].0;
        match ka.cmp(kb) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => a < b,
        }
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.less(self.heap[pos], self.heap[parent]) {
                self.heap.swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let mut best = pos;
            for child in [2 * pos + 1, 2 * pos + 2] {
                if child < self.heap.len() && self.less(self.heap[child], self.heap[best]) {
                    best = child;
                }
            }
            if best == pos {
                return;
            }
            self.heap.swap(pos, best);
            pos = best;
        }
    }

    /// Advances the root file's cursor past the record just consumed
    /// and restores the heap.
    fn advance_root(&mut self) {
        let f = self.heap[0];
        if self.cursors[f] < self.files[f].records.len() {
            self.sift_down(0);
        } else {
            let last = self.heap.pop().expect("root exists");
            if !self.heap.is_empty() {
                self.heap[0] = last;
                self.sift_down(0);
            }
        }
    }

    /// Records consumed through this iterator so far.
    pub fn records_consumed(&self) -> u64 {
        self.consumed
    }

    /// The next record in merged order, borrowed from its file.
    pub fn next_record(&mut self) -> Option<(&K, &V)> {
        let &f = self.heap.first()?;
        let idx = self.cursors[f];
        self.cursors[f] = idx + 1;
        self.consumed += 1;
        self.advance_root();
        let (k, v) = &self.files[f].records[idx];
        Some((k, v))
    }

    /// The next key group: the smallest unconsumed key together with
    /// *every* value of that key across all files, in (file order,
    /// record order) — MapReduce guarantee 2 (§2.3). The values
    /// borrow the iterator's reusable buffer and are valid until the
    /// next call; only the group's values are cloned, never the whole
    /// keyspace.
    pub fn next_group(&mut self) -> Option<(&K, &[V])> {
        self.group.clear();
        let f0 = *self.heap.first()?;
        let i0 = self.cursors[f0];
        while let Some(&f) = self.heap.first() {
            let idx = self.cursors[f];
            // Split borrows: `files` read-only, `group` appended.
            let records = &self.files[f].records;
            let key = &self.files[f0].records[i0].0;
            if records[idx].0 != *key {
                break;
            }
            // Consume the whole run of `key` in this file without
            // touching the heap (runs are contiguous in a sorted file).
            let mut end = idx;
            while end < records.len() && records[end].0 == *key {
                self.group.push(records[end].1.clone());
                end += 1;
            }
            self.consumed += (end - idx) as u64;
            self.cursors[f] = end;
            self.advance_root();
        }
        Some((&self.files[f0].records[i0].0, &self.group))
    }
}

/// K-way merge of key-sorted files into key groups, delivering every
/// value of a key together — MapReduce guarantee 2 (§2.3).
///
/// Compatibility wrapper over [`MergeIter`] that materializes the
/// whole keyspace. The engine itself streams groups out of
/// `MergeIter` directly; prefer that unless you genuinely need every
/// group at once.
pub fn merge_files<K: MrKey, V: MrValue>(files: &[Arc<MapOutputFile<K, V>>]) -> Vec<(K, Vec<V>)> {
    let mut merge = MergeIter::with_files(files.iter().map(Arc::clone));
    let mut out: Vec<(K, Vec<V>)> = Vec::new();
    while let Some((k, vs)) = merge.next_group() {
        out.push((k.clone(), vs.to_vec()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Combiner;

    struct SumCombiner;
    impl Combiner for SumCombiner {
        type Key = u64;
        type Value = u64;
        fn combine(&self, _key: &u64, values: &mut Vec<u64>) {
            let sum = values.iter().sum();
            values.clear();
            values.push(sum);
        }
    }

    #[test]
    fn builder_partitions_and_sorts() {
        let counters = Counters::default();
        let mut b = MapOutputBuilder::<u64, u64>::new(2);
        b.push(0, 5, 50).unwrap();
        b.push(0, 1, 10).unwrap();
        b.push(1, 2, 20).unwrap();
        let files = b.finish(None, &counters).unwrap();
        assert_eq!(files.len(), 2);
        let f0 = &files.iter().find(|(r, _)| *r == 0).unwrap().1;
        assert_eq!(f0.records, vec![(1, 10), (5, 50)]);
        assert_eq!(f0.raw_count, 2);
    }

    #[test]
    fn combiner_folds_but_annotation_keeps_raw_count() {
        let counters = Counters::default();
        let mut b = MapOutputBuilder::<u64, u64>::new(1);
        b.push(0, 7, 1).unwrap();
        b.push(0, 7, 2).unwrap();
        b.push(0, 7, 3).unwrap();
        b.push(0, 9, 4).unwrap();
        let files = b.finish(Some(&SumCombiner), &counters).unwrap();
        let f = &files[0].1;
        assert_eq!(f.records, vec![(7, 6), (9, 4)]);
        assert_eq!(f.raw_count, 4, "annotation counts raw pairs, not combined");
    }

    #[test]
    fn empty_partitions_produce_no_file() {
        let counters = Counters::default();
        let mut b = MapOutputBuilder::<u64, u64>::new(3);
        b.push(1, 1, 1).unwrap();
        let files = b.finish(None, &counters).unwrap();
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].0, 1);
    }

    #[test]
    fn fetch_counts_connections_even_when_empty() {
        let counters = Counters::default();
        let store = ShuffleStore::<u64, u64>::new(false);
        store
            .put(
                0,
                0,
                0,
                MapOutputFile {
                    records: vec![(1, 1)],
                    raw_count: 1,
                },
            )
            .unwrap();
        assert!(matches!(
            store.fetch(0, 0, 0, &counters).unwrap(),
            Fetched::File(_)
        ));
        assert!(matches!(
            store.fetch(5, 0, 0, &counters).unwrap(), // empty fetch
            Fetched::Empty
        ));
        assert_eq!(counters.snapshot().shuffle_connections, 2);
        assert_eq!(counters.snapshot().shuffled_records, 1);
    }

    #[test]
    fn consume_on_fetch_removes_files() {
        let counters = Counters::default();
        let store = ShuffleStore::<u64, u64>::new(true);
        store
            .put(
                0,
                0,
                0,
                MapOutputFile {
                    records: vec![(1, 1)],
                    raw_count: 1,
                },
            )
            .unwrap();
        assert!(matches!(
            store.fetch(0, 0, 0, &counters).unwrap(),
            Fetched::File(_)
        ));
        assert!(!store.contains(0, 0));
        assert!(matches!(
            store.fetch(0, 0, 0, &counters).unwrap(),
            Fetched::Empty
        ));
    }

    #[test]
    fn stale_epoch_is_reported_and_never_consumed() {
        let counters = Counters::default();
        let store = ShuffleStore::<u64, u64>::new(true);
        // A re-executed attempt replaced the entry with epoch 1...
        store
            .put(
                0,
                0,
                1,
                MapOutputFile {
                    records: vec![(1, 1)],
                    raw_count: 1,
                },
            )
            .unwrap();
        // ...so a reducer still holding attempt 0's commit observation
        // must be told to re-wait, and the fresh data must stay put.
        assert!(matches!(
            store.fetch(0, 0, 0, &counters).unwrap(),
            Fetched::Stale { store_epoch: 1 }
        ));
        assert!(store.contains(0, 0));
        // An *older* leftover reads as empty (the requested commit
        // simply wrote nothing for this reducer) and is not consumed.
        assert!(matches!(
            store.fetch(0, 0, 2, &counters).unwrap(),
            Fetched::Empty
        ));
        assert!(store.contains(0, 0));
        assert!(matches!(
            store.fetch(0, 0, 1, &counters).unwrap(),
            Fetched::File(_)
        ));
        assert!(!store.contains(0, 0));
    }

    #[test]
    fn merge_groups_values_across_files() {
        let f1 = Arc::new(MapOutputFile {
            records: vec![(1u64, 10u64), (3, 30)],
            raw_count: 2,
        });
        let f2 = Arc::new(MapOutputFile {
            records: vec![(1, 11), (2, 20)],
            raw_count: 2,
        });
        let merged = merge_files(&[f1, f2]);
        assert_eq!(
            merged,
            vec![(1, vec![10, 11]), (2, vec![20]), (3, vec![30])]
        );
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        let merged: Vec<(u64, Vec<u64>)> = merge_files(&[]);
        assert!(merged.is_empty());
    }

    #[test]
    fn merge_iter_streams_records_in_file_then_record_order() {
        let f1 = Arc::new(MapOutputFile {
            records: vec![(1u64, 10u64), (1, 11), (3, 30)],
            raw_count: 3,
        });
        let f2 = Arc::new(MapOutputFile {
            records: vec![(1, 12), (2, 20)],
            raw_count: 2,
        });
        let mut m = MergeIter::with_files([f1, f2]);
        assert_eq!(m.remaining(), 5);
        assert_eq!(m.peek_key(), Some(&1));
        let mut flat = Vec::new();
        while let Some((k, v)) = m.next_record() {
            flat.push((*k, *v));
        }
        // Equal keys deliver in (file order, record order).
        assert_eq!(flat, vec![(1, 10), (1, 11), (1, 12), (2, 20), (3, 30)]);
        assert_eq!(m.remaining(), 0);
    }

    #[test]
    fn merge_iter_groups_reuse_one_buffer() {
        let f1 = Arc::new(MapOutputFile {
            records: vec![(1u64, 10u64), (3, 30)],
            raw_count: 2,
        });
        let f2 = Arc::new(MapOutputFile {
            records: vec![(1, 11), (2, 20)],
            raw_count: 2,
        });
        let mut m = MergeIter::with_files([f1, f2]);
        let mut groups = Vec::new();
        while let Some((k, vs)) = m.next_group() {
            groups.push((*k, vs.to_vec()));
        }
        assert_eq!(
            groups,
            vec![(1, vec![10, 11]), (2, vec![20]), (3, vec![30])]
        );
        assert!(m.next_group().is_none());
    }

    #[test]
    fn merge_iter_incremental_push_matches_batch_construction() {
        let files: Vec<Arc<MapOutputFile<u64, u64>>> = vec![
            Arc::new(MapOutputFile {
                records: vec![(2, 1), (4, 2)],
                raw_count: 2,
            }),
            Arc::new(MapOutputFile {
                records: Vec::new(), // empty file: cursor never opens
                raw_count: 0,
            }),
            Arc::new(MapOutputFile {
                records: vec![(1, 3), (2, 4)],
                raw_count: 2,
            }),
        ];
        let mut batch = MergeIter::with_files(files.iter().map(Arc::clone));
        let mut incremental = MergeIter::new();
        for f in &files {
            incremental.push_file(Arc::clone(f));
        }
        loop {
            let a = batch.next_record().map(|(k, v)| (*k, *v));
            let b = incremental.next_record().map(|(k, v)| (*k, *v));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
