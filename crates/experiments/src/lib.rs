//! Shared harness for the per-figure/per-table experiment binaries.
//!
//! Each binary regenerates one table or figure of the paper's
//! evaluation (§4), printing the series the paper plots and writing a
//! CSV under `results/`. Absolute times come from the simulator's
//! calibrated cost model; the claims checked are the *shape* claims
//! the paper makes (orderings, ratios, crossovers).

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use sidr_simcluster::SimTrace;

/// Directory experiment CSVs are written to (`results/` under the
/// workspace root, or `$SIDR_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("SIDR_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| workspace_root().join("results"));
    fs::create_dir_all(&dir).expect("results dir is creatable");
    dir
}

fn workspace_root() -> PathBuf {
    // experiments crate lives at <root>/crates/experiments.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate is two levels below the workspace root")
        .to_path_buf()
}

/// Writes a CSV of `(header, rows)` under `results/<name>.csv` and
/// returns its path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = results_dir().join(format!("{name}.csv"));
    let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
    body.push_str(header);
    body.push('\n');
    for row in rows {
        body.push_str(row);
        body.push('\n');
    }
    fs::write(&path, body).expect("results dir is writable");
    path
}

/// A labelled completion curve: sorted completion times of one task
/// population.
pub struct Curve {
    pub label: String,
    pub times_s: Vec<f64>,
}

impl Curve {
    pub fn new(label: impl Into<String>, mut times_s: Vec<f64>) -> Self {
        times_s.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        Curve {
            label: label.into(),
            times_s,
        }
    }

    /// Map-completion curve of a simulation trace.
    pub fn maps(label: impl Into<String>, trace: &SimTrace) -> Self {
        Curve::new(label, trace.map_completions())
    }

    /// Reduce-completion curve of a simulation trace.
    pub fn reduces(label: impl Into<String>, trace: &SimTrace) -> Self {
        Curve::new(label, trace.reduce_completions())
    }

    /// Time at which `fraction` (0..=1) of the population completed.
    pub fn time_at_fraction(&self, fraction: f64) -> f64 {
        if self.times_s.is_empty() {
            return 0.0;
        }
        let idx =
            ((self.times_s.len() as f64 * fraction).ceil() as usize).clamp(1, self.times_s.len());
        self.times_s[idx - 1]
    }

    /// First completion.
    pub fn first(&self) -> f64 {
        self.times_s.first().copied().unwrap_or(0.0)
    }

    /// Last completion (the curve's makespan).
    pub fn last(&self) -> f64 {
        self.times_s.last().copied().unwrap_or(0.0)
    }
}

/// Prints a set of curves as a fraction-vs-time table (the textual
/// form of the paper's completion-over-time figures) and writes the
/// long-form CSV.
pub fn report_curves(name: &str, title: &str, curves: &[Curve]) {
    println!("== {title} ==");
    print!("{:>10}", "fraction");
    for c in curves {
        print!("  {:>18}", truncate(&c.label, 18));
    }
    println!();
    for pct in [1, 10, 25, 50, 75, 90, 100] {
        let f = pct as f64 / 100.0;
        print!("{:>9}%", pct);
        for c in curves {
            print!("  {:>17.1}s", c.time_at_fraction(f));
        }
        println!();
    }

    let mut rows = Vec::new();
    for c in curves {
        let n = c.times_s.len();
        for (i, t) in c.times_s.iter().enumerate() {
            let mut row = String::new();
            write!(row, "{},{},{:.3}", c.label, (i + 1) as f64 / n as f64, t)
                .expect("string write");
            rows.push(row);
        }
    }
    let path = write_csv(name, "series,fraction,time_s", &rows);
    println!("[csv] {}", path.display());
}

fn truncate(s: &str, n: usize) -> &str {
    &s[..s.len().min(n)]
}

/// Mean and (population) standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

/// Pretty seconds.
pub fn fmt_s(t: f64) -> String {
    format!("{t:.0} s")
}

/// A paper-vs-measured comparison line.
pub fn compare(metric: &str, paper: &str, measured: &str, holds: bool) {
    let mark = if holds { "OK " } else { "!! " };
    println!("  [{mark}] {metric:<46} paper: {paper:<18} measured: {measured}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_fraction_lookup() {
        let c = Curve::new("x", vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.first(), 1.0);
        assert_eq!(c.last(), 4.0);
        assert_eq!(c.time_at_fraction(0.5), 2.0);
        assert_eq!(c.time_at_fraction(1.0), 4.0);
        assert_eq!(c.time_at_fraction(0.01), 1.0);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-9);
        assert!((s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn csv_written_to_results() {
        let p = write_csv("selftest", "a,b", &["1,2".into()]);
        let body = std::fs::read_to_string(&p).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
        std::fs::remove_file(p).unwrap();
    }
}
