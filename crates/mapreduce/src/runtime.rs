//! The threaded job runtime: slot-limited Map/Reduce worker pools,
//! barrier policies, inverted scheduling, fault injection and
//! dependency-based recovery.
//!
//! The runtime executes one job at a time over `map_slots` map workers
//! and `reduce_slots` reduce workers (Hadoop's per-TaskTracker slots,
//! §4: 4 map + 3 reduce per node). Reduce tasks occupy a slot from the
//! start of their copy phase, fetching map outputs as the maps finish
//! — the overlap stock Hadoop already has — and begin their merge +
//! reduce only when their barrier is met: *all* maps under the global
//! barrier, or exactly their dependency set `I_ℓ` under a SIDR plan
//! (§3.2, Fig. 4).

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

use crate::counters::{Counters, CountersSnapshot};
use crate::error::MrError;
use crate::output::OutputCollector;
use crate::plan::RoutingPlan;
use crate::shuffle::{merge_files, MapOutputBuilder, MapOutputFile, ShuffleStore};
use crate::split::{InputSplit, MapTaskId};
use crate::task::{Combiner, Mapper, MrKey, MrValue, RecordSource, Reducer};
use crate::timeline::{TaskEvent, TaskKind, Timeline};
use crate::Result;

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct JobConfig {
    /// Concurrent Map tasks (cluster-wide map slots).
    pub map_slots: usize,
    /// Concurrent Reduce tasks (cluster-wide reduce slots).
    pub reduce_slots: usize,
    /// Cross-check the shuffle's count annotations against the plan's
    /// expected raw counts before each reduce starts (§3.2.1
    /// approach 2).
    pub validate_annotations: bool,
    /// Reducers whose first attempt fails after the barrier (fault
    /// injection for the §6 recovery experiments).
    pub fail_reducers: Vec<usize>,
    /// Intermediate data is consumed on fetch instead of persisted; a
    /// failed reduce must then re-execute the Map tasks it fetched
    /// from (§6 future work).
    pub volatile_intermediate: bool,
    /// Artificial per-Map-task cost (examples/teaching only).
    pub map_think: Duration,
    /// Artificial per-Reduce-task cost (examples/teaching only).
    pub reduce_think: Duration,
    /// When set, map output is spilled to annotated on-disk files
    /// (the SMOF format of [`crate::shuffle_file`]) in this directory
    /// instead of staying resident — Hadoop's actual shuffle path.
    pub spill_dir: Option<std::path::PathBuf>,
    /// Map-side sort-buffer limit in records: buffers exceeding it
    /// are sorted and spilled as runs, merged at task end (Hadoop's
    /// `io.sort.mb` pipeline). `None` keeps everything in memory.
    pub map_spill_records: Option<usize>,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            map_slots: 4,
            reduce_slots: 3,
            validate_annotations: false,
            fail_reducers: Vec::new(),
            volatile_intermediate: false,
            map_think: Duration::ZERO,
            reduce_think: Duration::ZERO,
            spill_dir: None,
            map_spill_records: None,
        }
    }
}

/// Outcome of a completed job.
#[derive(Clone, Debug)]
pub struct JobResult {
    pub counters: CountersSnapshot,
    pub events: Vec<TaskEvent>,
    pub elapsed: Duration,
}

impl JobResult {
    /// Time of the first committed reduce output.
    pub fn first_result(&self) -> Option<Duration> {
        self.completions(TaskKind::ReduceEnd).first().copied()
    }

    /// Sorted completion times of one event kind.
    pub fn completions(&self, kind: TaskKind) -> Vec<Duration> {
        let mut t: Vec<Duration> = self
            .events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.at)
            .collect();
        t.sort();
        t
    }

    /// Fraction of Map tasks complete when the first result committed.
    pub fn maps_done_at_first_result(&self) -> Option<f64> {
        let first = self.first_result()?;
        let maps = self.completions(TaskKind::MapEnd);
        if maps.is_empty() {
            return None;
        }
        Some(maps.iter().filter(|&&t| t <= first).count() as f64 / maps.len() as f64)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MapStatus {
    /// Not yet eligible (SIDR inverted scheduling: no running reduce
    /// depends on it yet, §3.3).
    Ineligible,
    /// Ready to be claimed by a map worker.
    Eligible,
    Running,
    Done,
    /// No reduce depends on this map; it never runs.
    Skipped,
}

struct State {
    maps: Vec<MapStatus>,
    /// Next position in the plan's reduce launch order.
    reduce_cursor: usize,
    reduces_done: usize,
    failed: bool,
}

struct Shared<'j, K2: MrKey, V2: MrValue> {
    state: Mutex<State>,
    cv: Condvar,
    shuffle: ShuffleStore<K2, V2>,
    counters: Counters,
    timeline: Timeline,
    error: Mutex<Option<MrError>>,
    plan: &'j dyn RoutingPlan<K2>,
    config: &'j JobConfig,
    num_maps: usize,
}

impl<K2: MrKey, V2: MrValue> Shared<'_, K2, V2> {
    fn fail(&self, err: MrError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
        self.state.lock().failed = true;
        self.cv.notify_all();
    }
}

/// Runs one MapReduce job to completion.
///
/// * `splits` — the input splits (one Map task each),
/// * `source_factory` — opens the RecordReader for a split,
/// * `mapper` / `combiner` / `reducer` — the user functions,
/// * `plan` — partitioning, barrier, fetch and scheduling policy,
/// * `output` — where committed reduce output goes.
#[allow(clippy::too_many_arguments)]
pub fn run_job<K1, V1, K2, V2, V3, SF, S>(
    splits: &[InputSplit],
    source_factory: &SF,
    mapper: &dyn Mapper<InKey = K1, InValue = V1, OutKey = K2, OutValue = V2>,
    combiner: Option<&dyn Combiner<Key = K2, Value = V2>>,
    reducer: &dyn Reducer<Key = K2, InValue = V2, OutValue = V3>,
    plan: &dyn RoutingPlan<K2>,
    output: &dyn OutputCollector<K2, V3>,
    config: &JobConfig,
) -> Result<JobResult>
where
    K1: MrKey,
    V1: MrValue,
    K2: MrKey + crate::wire::WireFormat,
    V2: MrValue + crate::wire::WireFormat,
    V3: MrValue,
    SF: Fn(MapTaskId, &InputSplit) -> Result<S> + Sync,
    S: RecordSource<Key = K1, Value = V1>,
{
    if config.map_slots == 0 || config.reduce_slots == 0 {
        return Err(MrError::BadConfig(
            "map_slots and reduce_slots must be > 0".into(),
        ));
    }
    if splits.is_empty() {
        return Err(MrError::BadConfig("no input splits".into()));
    }
    let num_maps = splits.len();
    let num_reducers = plan.num_reducers();
    let reduce_order = plan.reduce_order();
    if reduce_order.len() != num_reducers {
        return Err(MrError::BadConfig(format!(
            "reduce_order has {} entries for {} reducers",
            reduce_order.len(),
            num_reducers
        )));
    }

    // Initial map eligibility: everything eligible under classic
    // scheduling; nothing eligible under inverted scheduling except
    // that maps no reduce depends on are skipped outright.
    let mut maps = vec![
        if plan.invert_scheduling() {
            MapStatus::Ineligible
        } else {
            MapStatus::Eligible
        };
        num_maps
    ];
    if plan.invert_scheduling() {
        let mut needed = vec![false; num_maps];
        let mut any_global = false;
        for r in 0..num_reducers {
            match plan.reduce_deps(r) {
                None => {
                    any_global = true;
                    break;
                }
                Some(deps) => {
                    for m in deps {
                        if m >= num_maps {
                            return Err(MrError::BadConfig(format!(
                                "reduce {r} depends on nonexistent map {m}"
                            )));
                        }
                        needed[m] = true;
                    }
                }
            }
        }
        if any_global {
            maps.fill(MapStatus::Ineligible);
        } else {
            for (m, &need) in needed.iter().enumerate() {
                if !need {
                    maps[m] = MapStatus::Skipped;
                }
            }
        }
    }

    let shared = Shared {
        state: Mutex::new(State {
            maps,
            reduce_cursor: 0,
            reduces_done: 0,
            failed: false,
        }),
        cv: Condvar::new(),
        shuffle: match &config.spill_dir {
            None => ShuffleStore::new(config.volatile_intermediate),
            Some(dir) => {
                std::fs::create_dir_all(dir)
                    .map_err(|e| MrError::BadConfig(format!("spill dir {}: {e}", dir.display())))?;
                ShuffleStore::with_spill(
                    config.volatile_intermediate,
                    crate::shuffle::SpillCodec::smof(dir.clone()),
                )
            }
        },
        counters: Counters::default(),
        timeline: Timeline::new(),
        error: Mutex::new(None),
        plan,
        config,
        num_maps,
    };
    {
        let skipped = shared
            .state
            .lock()
            .maps
            .iter()
            .filter(|&&s| s == MapStatus::Skipped)
            .count();
        Counters::add(&shared.counters.maps_skipped, skipped as u64);
    }

    std::thread::scope(|scope| {
        for _ in 0..config.map_slots {
            scope.spawn(|| map_worker(&shared, splits, source_factory, mapper, combiner));
        }
        for _ in 0..config.reduce_slots {
            scope.spawn(|| reduce_worker(&shared, &reduce_order, reducer, output));
        }
    });

    if let Some(err) = shared.error.lock().take() {
        return Err(err);
    }
    let counters = shared.counters.snapshot();
    // §3.2.1 approach 2, whole-job form: in debug builds, balance the
    // runtime map-output tally against the plan's static prediction.
    // Only meaningful when annotation validation is on (filter
    // pushdown voids the geometric tallies) and every map ran exactly
    // once (skips and recovery re-executions change the totals).
    #[cfg(debug_assertions)]
    if shared.config.validate_annotations
        && counters.maps_skipped == 0
        && counters.maps_reexecuted == 0
    {
        let expected: Option<u64> = (0..num_reducers)
            .map(|r| shared.plan.expected_raw_count(r))
            .sum();
        if let Some(expected) = expected {
            debug_assert_eq!(
                counters.map_records_out, expected,
                "static plan prediction disagrees with the runtime map-output tally"
            );
        }
    }
    let elapsed = shared.timeline.job_end().unwrap_or_default();
    Ok(JobResult {
        counters,
        events: shared.timeline.events(),
        elapsed,
    })
}

fn map_worker<K1, V1, K2, V2, SF, S>(
    shared: &Shared<'_, K2, V2>,
    splits: &[InputSplit],
    source_factory: &SF,
    mapper: &dyn Mapper<InKey = K1, InValue = V1, OutKey = K2, OutValue = V2>,
    combiner: Option<&dyn Combiner<Key = K2, Value = V2>>,
) where
    K1: MrKey,
    V1: MrValue,
    K2: MrKey + crate::wire::WireFormat,
    V2: MrValue + crate::wire::WireFormat,
    SF: Fn(MapTaskId, &InputSplit) -> Result<S> + Sync,
    S: RecordSource<Key = K1, Value = V1>,
{
    loop {
        let task = {
            let mut st = shared.state.lock();
            loop {
                if st.failed || st.reduces_done == shared.plan.num_reducers() {
                    return;
                }
                if let Some(i) = st.maps.iter().position(|&s| s == MapStatus::Eligible) {
                    st.maps[i] = MapStatus::Running;
                    break i;
                }
                // Nothing eligible: either all maps are done/skipped
                // (reduces still draining) or eligibility will arrive
                // when a reduce starts / recovery re-enqueues.
                shared.cv.wait(&mut st);
            }
        };

        shared.timeline.record(TaskKind::MapStart, task);
        match run_map_task(
            shared,
            task,
            &splits[task],
            source_factory,
            mapper,
            combiner,
        ) {
            Ok(()) => {
                if !shared.config.map_think.is_zero() {
                    std::thread::sleep(shared.config.map_think);
                }
                shared.timeline.record(TaskKind::MapEnd, task);
                let mut st = shared.state.lock();
                st.maps[task] = MapStatus::Done;
                drop(st);
                shared.cv.notify_all();
            }
            Err(e) => {
                shared.fail(MrError::TaskFailed {
                    task: format!("map {task}"),
                    cause: e.to_string(),
                });
                return;
            }
        }
    }
}

fn run_map_task<K1, V1, K2, V2, SF, S>(
    shared: &Shared<'_, K2, V2>,
    task: MapTaskId,
    split: &InputSplit,
    source_factory: &SF,
    mapper: &dyn Mapper<InKey = K1, InValue = V1, OutKey = K2, OutValue = V2>,
    combiner: Option<&dyn Combiner<Key = K2, Value = V2>>,
) -> Result<()>
where
    K1: MrKey,
    V1: MrValue,
    K2: MrKey + crate::wire::WireFormat,
    V2: MrValue + crate::wire::WireFormat,
    SF: Fn(MapTaskId, &InputSplit) -> Result<S> + Sync,
    S: RecordSource<Key = K1, Value = V1>,
{
    let mut source = source_factory(task, split)?;
    let mut builder = MapOutputBuilder::new(shared.plan.num_reducers());
    if let Some(limit) = shared.config.map_spill_records {
        let dir = shared
            .config
            .spill_dir
            .clone()
            .unwrap_or_else(|| std::env::temp_dir().join("sidr-map-spill"));
        std::fs::create_dir_all(&dir)
            .map_err(|e| MrError::BadConfig(format!("map spill dir {}: {e}", dir.display())))?;
        builder = builder.with_spill(limit, dir, task);
    }
    let mut records_in = 0u64;
    let mut records_out = 0u64;
    // The emit callback cannot return errors; park the first one.
    let mut push_err: Option<MrError> = None;
    while let Some((k, v)) = source.next_record()? {
        records_in += 1;
        mapper.map(&k, &v, &mut |k2, v2| {
            if push_err.is_some() {
                return;
            }
            let reducer = shared.plan.partition(&k2);
            if let Err(e) = builder.push(reducer, k2, v2) {
                push_err = Some(e);
            }
            records_out += 1;
        });
        if let Some(e) = push_err {
            return Err(e);
        }
    }
    Counters::add(&shared.counters.map_records_in, records_in);
    Counters::add(&shared.counters.map_records_out, records_out);
    for (reducer, file) in builder.finish(combiner, &shared.counters)? {
        shared.shuffle.put(task, reducer, file)?;
    }
    Ok(())
}

fn reduce_worker<K2, V2, V3>(
    shared: &Shared<'_, K2, V2>,
    reduce_order: &[usize],
    reducer_fn: &dyn Reducer<Key = K2, InValue = V2, OutValue = V3>,
    output: &dyn OutputCollector<K2, V3>,
) where
    K2: MrKey,
    V2: MrValue,
    V3: MrValue,
{
    loop {
        let r = {
            let mut st = shared.state.lock();
            if st.failed || st.reduce_cursor >= reduce_order.len() {
                return;
            }
            let r = reduce_order[st.reduce_cursor];
            st.reduce_cursor += 1;
            // SIDR inverted scheduling: starting this reduce makes the
            // maps it depends on eligible ("whenever a Reduce task is
            // scheduled … all Map tasks that contribute to the Reduce
            // task are marked as schedulable", §3.3).
            if shared.plan.invert_scheduling() {
                match shared.plan.reduce_deps(r) {
                    Some(deps) => {
                        for m in deps {
                            if st.maps[m] == MapStatus::Ineligible {
                                st.maps[m] = MapStatus::Eligible;
                            }
                        }
                    }
                    None => {
                        // Global-barrier reduce under inverted
                        // scheduling: everything becomes eligible.
                        for s in st.maps.iter_mut() {
                            if *s == MapStatus::Ineligible {
                                *s = MapStatus::Eligible;
                            }
                        }
                    }
                }
            }
            drop(st);
            shared.cv.notify_all();
            r
        };

        shared.timeline.record(TaskKind::ReduceStart, r);
        if let Err(e) = run_reduce_task(shared, r, reducer_fn, output) {
            shared.fail(e);
            return;
        }
        let mut st = shared.state.lock();
        st.reduces_done += 1;
        drop(st);
        shared.cv.notify_all();
    }
}

fn run_reduce_task<K2, V2, V3>(
    shared: &Shared<'_, K2, V2>,
    r: usize,
    reducer_fn: &dyn Reducer<Key = K2, InValue = V2, OutValue = V3>,
    output: &dyn OutputCollector<K2, V3>,
) -> Result<()>
where
    K2: MrKey,
    V2: MrValue,
    V3: MrValue,
{
    let sources: Vec<MapTaskId> = match shared.plan.fetch_sources(r) {
        Some(deps) => deps,
        None => (0..shared.num_maps).collect(),
    };
    let mut attempt = 0;
    loop {
        // Copy phase: fetch from each source as soon as it completes.
        let mut files: Vec<(MapTaskId, std::sync::Arc<MapOutputFile<K2, V2>>)> = Vec::new();
        for &m in &sources {
            {
                let mut st = shared.state.lock();
                loop {
                    if st.failed {
                        return Ok(()); // another task already reported
                    }
                    match st.maps[m] {
                        MapStatus::Done => break,
                        MapStatus::Skipped => {
                            return Err(MrError::BadConfig(format!(
                                "reduce {r} depends on skipped map {m}"
                            )));
                        }
                        _ => shared.cv.wait(&mut st),
                    }
                }
            }
            if let Some(f) = shared.shuffle.fetch(m, r, &shared.counters)? {
                files.push((m, f));
            }
        }
        shared.timeline.record(TaskKind::ReduceBarrierMet, r);

        // §3.2.1 approach 2: tally the raw ⟨k,v⟩ annotation before
        // processing; starting with less input than the geometry
        // promises would produce "an answer based on insufficient
        // input".
        if shared.config.validate_annotations {
            if let Some(expected) = shared.plan.expected_raw_count(r) {
                let actual: u64 = files.iter().map(|(_, f)| f.raw_count).sum();
                if actual != expected {
                    return Err(MrError::AnnotationMismatch {
                        reducer: r,
                        expected,
                        actual,
                    });
                }
            }
        }

        // Fault injection: first attempt dies after the barrier.
        if attempt == 0 && shared.config.fail_reducers.contains(&r) {
            attempt += 1;
            Counters::add(&shared.counters.reduce_failures, 1);
            shared.timeline.record(TaskKind::ReduceFailed, r);
            if shared.config.volatile_intermediate {
                // The fetched files were consumed; re-execute exactly
                // the maps whose data this reduce lost (§6: "re-execute
                // subsets of Map tasks in the event of a Reduce task
                // failure in place of persisting all intermediate
                // data").
                let lost: Vec<MapTaskId> = files.iter().map(|(m, _)| *m).collect();
                let mut st = shared.state.lock();
                for m in &lost {
                    if st.maps[*m] == MapStatus::Done {
                        st.maps[*m] = MapStatus::Eligible;
                        Counters::add(&shared.counters.maps_reexecuted, 1);
                    }
                }
                drop(st);
                shared.cv.notify_all();
            }
            continue;
        }

        // Sort/merge + reduce.
        let merged = merge_files(&files.iter().map(|(_, f)| Arc::clone(f)).collect::<Vec<_>>());
        let mut out: Vec<(K2, V3)> = Vec::new();
        let mut emitted = 0u64;
        for (key, values) in merged {
            reducer_fn.reduce(&key, &values, &mut |v3| {
                out.push((key.clone(), v3));
                emitted += 1;
            });
        }
        Counters::add(&shared.counters.reduce_records_out, emitted);
        if !shared.config.reduce_think.is_zero() {
            std::thread::sleep(shared.config.reduce_think);
        }
        output
            .commit(r, out)
            .map_err(|e| MrError::Output(e.to_string()))?;
        shared.timeline.record(TaskKind::ReduceEnd, r);
        return Ok(());
    }
}
