//! `shuffle-bench`: macro-benchmark of the reduce-side shuffle merge.
//!
//! Compares the legacy flatten-clone-stable-sort merge (the seed's
//! `merge_files`, kept here verbatim as the baseline) against the
//! streaming k-way [`MergeIter`] pipeline the engine now runs, on
//! inputs shaped like the paper workloads:
//!
//! * `fig08-scale` — one reducer's merge under the Figure 8 weekly-
//!   averages config: 52 map-output files, ~832k combined records,
//!   each key present in 4 files;
//! * `query1-tiny-scale` — the CI-scale Query 1 analog: 12 files,
//!   24k records, 3-file key overlap.
//!
//! Both paths consume every key group (fold the values), so the
//! numbers measure delivered groups, not construction alone. A
//! counting global allocator reports bytes allocated and the peak
//! live-byte high-water mark per run — the "peak RSS" proxy that
//! shows the streaming path never materializes the keyspace.
//!
//! ```text
//! cargo run --release -p sidr-bench --bin shuffle-bench
//! cargo run --release -p sidr-bench --bin shuffle-bench -- --tiny   # CI smoke
//! ```
//!
//! Emits `results/BENCH_shuffle.json` (override with `--out`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use sidr_mapreduce::{MapOutputFile, MergeIter};

// ---------------------------------------------------------------
// Counting allocator: total bytes allocated + live-byte high water.
// ---------------------------------------------------------------

static ALLOCATED: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

struct CountingAlloc;

impl CountingAlloc {
    fn on_alloc(size: usize) {
        ALLOCATED.fetch_add(size as u64, Ordering::Relaxed);
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    fn on_dealloc(size: usize) {
        LIVE.fetch_sub(size, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: caller upholds GlobalAlloc::alloc's contract; we
        // forward the layout to the system allocator unchanged.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller guarantees `ptr` came from this allocator
        // with this layout; `alloc` delegates to System, so System
        // owns the block.
        unsafe { System.dealloc(ptr, layout) };
        Self::on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: same delegation as alloc/dealloc — the caller's
        // realloc contract transfers directly to System.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            Self::on_dealloc(layout.size());
            Self::on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation counters over one measured region.
struct AllocScope {
    allocated_before: u64,
    live_before: usize,
}

impl AllocScope {
    fn start() -> Self {
        // Reset the high-water mark to the current live level so the
        // reported peak is the region's own contribution.
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
        AllocScope {
            allocated_before: ALLOCATED.load(Ordering::Relaxed),
            live_before: LIVE.load(Ordering::Relaxed),
        }
    }

    /// `(bytes allocated, peak live bytes above the region's start)`.
    fn finish(self) -> (u64, u64) {
        let allocated = ALLOCATED.load(Ordering::Relaxed) - self.allocated_before;
        let peak = PEAK
            .load(Ordering::Relaxed)
            .saturating_sub(self.live_before) as u64;
        (allocated, peak)
    }
}

// ---------------------------------------------------------------
// Baseline: the seed's merge, verbatim.
// ---------------------------------------------------------------

/// The flatten-clone-stable-sort merge `MergeIter` replaced: clones
/// every record, re-sorts the concatenation, materializes the whole
/// `Vec<(K, Vec<V>)>` keyspace before the first group is usable.
fn legacy_merge(files: &[Arc<MapOutputFile<u64, f64>>]) -> Vec<(u64, Vec<f64>)> {
    let mut all: Vec<(u64, f64)> = files
        .iter()
        .flat_map(|f| f.records.iter().cloned())
        .collect();
    all.sort_by_key(|a| a.0);
    let mut out: Vec<(u64, Vec<f64>)> = Vec::new();
    for (k, v) in all {
        match out.last_mut() {
            Some((lk, vs)) if *lk == k => vs.push(v),
            _ => out.push((k, vec![v])),
        }
    }
    out
}

// ---------------------------------------------------------------
// Workload
// ---------------------------------------------------------------

struct Scale {
    name: &'static str,
    about: &'static str,
    files: usize,
    /// Distinct keys; each appears in `overlap` files.
    keys: usize,
    overlap: usize,
}

/// Builds `files` key-sorted map-output files where key `k` appears
/// in files `k % files .. k % files + overlap` (mod `files`) — every
/// group spans several files, the shuffle's steady state.
fn make_files(s: &Scale) -> Vec<Arc<MapOutputFile<u64, f64>>> {
    let mut per_file: Vec<Vec<(u64, f64)>> = vec![Vec::new(); s.files];
    for k in 0..s.keys {
        for j in 0..s.overlap {
            let f = (k + j) % s.files;
            per_file[f].push((k as u64, (k * 31 + j) as f64));
        }
    }
    per_file
        .into_iter()
        .map(|mut records| {
            records.sort_by_key(|(k, _)| *k);
            Arc::new(MapOutputFile {
                raw_count: records.len() as u64,
                records,
            })
        })
        .collect()
}

/// Consumption checksum: (groups, records, folded value sum).
#[derive(PartialEq, Debug)]
struct Digest {
    groups: u64,
    records: u64,
    sum: f64,
}

fn consume_legacy(files: &[Arc<MapOutputFile<u64, f64>>]) -> Digest {
    let merged = legacy_merge(files);
    let mut d = Digest {
        groups: 0,
        records: 0,
        sum: 0.0,
    };
    for (_, vs) in &merged {
        d.groups += 1;
        d.records += vs.len() as u64;
        d.sum += vs.iter().sum::<f64>();
    }
    d
}

fn consume_streaming(files: &[Arc<MapOutputFile<u64, f64>>]) -> Digest {
    let mut merge = MergeIter::with_files(files.iter().map(Arc::clone));
    let mut d = Digest {
        groups: 0,
        records: 0,
        sum: 0.0,
    };
    while let Some((_, vs)) = merge.next_group() {
        d.groups += 1;
        d.records += vs.len() as u64;
        d.sum += vs.iter().sum::<f64>();
    }
    d
}

// ---------------------------------------------------------------
// Measurement + report
// ---------------------------------------------------------------

#[derive(Serialize)]
struct PathReport {
    elapsed_ms: f64,
    records_per_sec: f64,
    bytes_allocated: u64,
    peak_live_bytes: u64,
}

#[derive(Serialize)]
struct ScaleReport {
    name: &'static str,
    about: &'static str,
    files: usize,
    distinct_keys: usize,
    key_overlap: usize,
    total_records: u64,
    reps: usize,
    legacy: PathReport,
    streaming: PathReport,
    /// streaming records/sec over legacy records/sec.
    throughput_speedup: f64,
    /// legacy peak live bytes over streaming peak live bytes.
    peak_memory_ratio: f64,
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    tiny: bool,
    scales: Vec<ScaleReport>,
}

/// Best-of-`reps` wall time plus one instrumented run's counters.
fn measure<F: Fn() -> Digest>(run: F, reps: usize, total_records: u64) -> (PathReport, Digest) {
    let digest = run(); // warm-up, and the digest for equivalence
    let scope = AllocScope::start();
    let check = run();
    let (bytes_allocated, peak_live_bytes) = scope.finish();
    assert_eq!(digest, check, "merge is deterministic");
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let d = run();
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(d.records, total_records);
        best = best.min(dt);
    }
    (
        PathReport {
            elapsed_ms: best * 1e3,
            records_per_sec: total_records as f64 / best,
            bytes_allocated,
            peak_live_bytes,
        },
        digest,
    )
}

fn main() -> ExitCode {
    let mut tiny = false;
    let mut out = String::from("results/BENCH_shuffle.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tiny" => tiny = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => {
                    eprintln!("shuffle-bench: --out needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("shuffle-bench: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    // ~832k records ≈ one reducer's share of fig08's 18.2M-pair
    // shuffle across 22 keyblocks; 24k ≈ query1-tiny's per-reducer
    // combined load. --tiny shrinks both for the CI smoke run.
    let scales = [
        Scale {
            name: "fig08-scale",
            about: "one reducer of the Fig. 8 weekly-averages shuffle",
            files: 52,
            keys: if tiny { 4_160 } else { 208_000 },
            overlap: 4,
        },
        Scale {
            name: "query1-tiny-scale",
            about: "one reducer of the CI-scale Query 1 analog",
            files: 12,
            keys: if tiny { 800 } else { 8_000 },
            overlap: 3,
        },
    ];
    let reps = if tiny { 3 } else { 7 };

    let mut reports = Vec::new();
    for scale in &scales {
        let files = make_files(scale);
        let total: u64 = files.iter().map(|f| f.records.len() as u64).sum();
        let (legacy, legacy_digest) = measure(|| consume_legacy(&files), reps, total);
        let (streaming, streaming_digest) = measure(|| consume_streaming(&files), reps, total);
        assert_eq!(
            legacy_digest, streaming_digest,
            "streaming merge must consume identical groups"
        );
        let speedup = streaming.records_per_sec / legacy.records_per_sec;
        let mem_ratio = legacy.peak_live_bytes as f64 / streaming.peak_live_bytes.max(1) as f64;
        println!(
            "{:>18}: {} files, {} records | legacy {:>10.0} rec/s, {:>6.1} MiB peak | \
             streaming {:>10.0} rec/s, {:>6.3} MiB peak | {:.2}x throughput, {:.0}x less memory",
            scale.name,
            scale.files,
            total,
            legacy.records_per_sec,
            legacy.peak_live_bytes as f64 / (1 << 20) as f64,
            streaming.records_per_sec,
            streaming.peak_live_bytes as f64 / (1 << 20) as f64,
            speedup,
            mem_ratio,
        );
        reports.push(ScaleReport {
            name: scale.name,
            about: scale.about,
            files: scale.files,
            distinct_keys: scale.keys,
            key_overlap: scale.overlap,
            total_records: total,
            reps,
            legacy,
            streaming,
            throughput_speedup: speedup,
            peak_memory_ratio: mem_ratio,
        });
    }

    let report = BenchReport {
        bench: "shuffle merge: legacy flatten-sort vs streaming k-way".into(),
        tiny,
        scales: reports,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    if let Some(parent) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("shuffle-bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{json}");
    ExitCode::SUCCESS
}
