//! Ablation (§3.1, footnote 1): the skew-bound trade-off.
//!
//! "Accepting a small amount of skew to create keyblocks of simpler
//! shapes can result in more efficient communications and reduced
//! data dependencies between tasks." A tiny skew bound makes blocks
//! near-perfectly balanced but geometrically ragged (more cover slabs
//! → more routing work, more split↔block boundary crossings); a large
//! bound makes blocks simple contiguous bricks at the cost of up to
//! one dealing-unit of imbalance.

use sidr_coords::Shape;
use sidr_core::deps::Dependencies;
use sidr_core::{Operator, PartitionPlus, StructuralQuery};
use sidr_experiments::{compare, write_csv};
use sidr_mapreduce::SplitGenerator;

fn main() {
    // A laptop-sized Query-1-like workload.
    let query = StructuralQuery::new(
        "windspeed",
        Shape::new(vec![720, 36, 72, 50]).expect("valid"),
        Shape::new(vec![2, 36, 36, 10]).expect("valid"),
        Operator::Median,
    )
    .expect("query is valid");
    let reducers = 22;
    let splits = SplitGenerator::new(query.input_space().clone(), 4)
        .aligned(36 * 72 * 50 * 4 * 4, 2)
        .expect("splits generate");

    println!("== Ablation: skew bound vs keyblock shape complexity ({reducers} reducers) ==\n");
    println!(
        "{:>12} {:>12} {:>14} {:>14} {:>14}",
        "skew bound", "max skew", "cover slabs", "connections", "deps/reduce"
    );

    let kspace = query.intermediate_space();
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for bound in [1u64, 10, 100, 1_000, 10_000] {
        let pp = PartitionPlus::with_skew_bound(kspace.clone(), reducers, bound)
            .expect("partition builds");
        let skew = pp.max_skew().expect("geometry is valid");
        let slabs: usize = (0..reducers)
            .map(|r| pp.keyblock_cover(r).expect("cover exists").len())
            .sum();
        let deps = Dependencies::derive(&query, &pp, &splits).expect("deps derive");
        let conns = deps.total_connections();
        println!(
            "{bound:>12} {skew:>12} {slabs:>14} {conns:>14} {:>14.1}",
            conns as f64 / reducers as f64
        );
        rows.push(format!("{bound},{skew},{slabs},{conns}"));
        results.push((bound, skew, slabs, conns));
    }
    let path = write_csv(
        "ablation_skew",
        "skew_bound,max_skew,cover_slabs,connections",
        &rows,
    );
    println!("[csv] {}", path.display());

    println!("\nChecks:");
    let tightest = results.first().expect("non-empty");
    let loosest = results.last().expect("non-empty");
    compare(
        "larger bound -> simpler keyblock shapes (fewer cover slabs)",
        "footnote 1 trade-off",
        &format!(
            "{} slabs at bound 1 vs {} at bound 10k",
            tightest.2, loosest.2
        ),
        loosest.2 <= tightest.2,
    );
    compare(
        "larger bound -> fewer dependencies / connections",
        "reduced data dependencies",
        &format!(
            "{} conns at bound 1 vs {} at bound 10k",
            tightest.3, loosest.3
        ),
        loosest.3 <= tightest.3,
    );
    compare(
        "skew never exceeds one dealing unit",
        "differ, at most, by one instance",
        "checked for every bound",
        results.iter().all(|&(bound, skew, _, _)| skew <= bound),
    );
}
