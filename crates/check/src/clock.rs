//! Vector clocks for happens-before tracking.
//!
//! One component per virtual thread; components are allocated lazily as
//! threads are registered, so clocks created early in an execution grow
//! on demand when compared against later threads.

/// A vector clock: `v[i]` is the number of causally-ordered steps of
/// virtual thread `i` known to the clock's owner.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock {
    v: Vec<u32>,
}

impl VClock {
    /// The zero clock (happens before everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Component for thread `tid` (0 if never observed).
    pub fn get(&self, tid: usize) -> u32 {
        self.v.get(tid).copied().unwrap_or(0)
    }

    /// Increment the owner thread's own component.
    pub fn bump(&mut self, tid: usize) {
        if self.v.len() <= tid {
            self.v.resize(tid + 1, 0);
        }
        self.v[tid] += 1;
    }

    /// Pointwise maximum: absorb everything `other` has observed.
    pub fn join(&mut self, other: &VClock) {
        if self.v.len() < other.v.len() {
            self.v.resize(other.v.len(), 0);
        }
        for (i, &o) in other.v.iter().enumerate() {
            if self.v[i] < o {
                self.v[i] = o;
            }
        }
    }

    /// True iff `self` happens-before-or-equals `other` (pointwise `<=`).
    pub fn le(&self, other: &VClock) -> bool {
        self.v.iter().enumerate().all(|(i, &s)| s <= other.get(i))
    }

    /// True iff the two clocks are causally unordered (a race window).
    pub fn concurrent_with(&self, other: &VClock) -> bool {
        !self.le(other) && !other.le(self)
    }
}

#[cfg(test)]
mod tests {
    use super::VClock;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.bump(0);
        a.bump(0);
        let mut b = VClock::new();
        b.bump(2);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 0);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn ordering_and_concurrency() {
        let mut a = VClock::new();
        a.bump(0);
        let mut b = a.clone();
        b.bump(1);
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(!a.concurrent_with(&b));

        let mut c = VClock::new();
        c.bump(2);
        assert!(a.concurrent_with(&c));
        // The zero clock precedes everything.
        assert!(VClock::new().le(&c));
    }
}
