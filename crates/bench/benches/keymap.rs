//! The `K → K′` extraction-shape key translation (§3 Area 2) — the
//! per-record cost added to every Map invocation under SIDR.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use sidr_bench::bench_query;
use sidr_coords::Coord;

fn bench_keymap(c: &mut Criterion) {
    let query = bench_query();
    // Input keys spread through K^T.
    let space = query.input_space().clone();
    let keys: Vec<Coord> = (0..100_000u64)
        .map(|i| {
            space
                .delinearize((i * 7919) % space.count())
                .expect("in bounds")
        })
        .collect();

    let mut group = c.benchmark_group("keymap");
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function("map_key", |b| {
        b.iter(|| {
            let mut alive = 0usize;
            for k in &keys {
                if query.map_key(black_box(k)).is_some() {
                    alive += 1;
                }
            }
            black_box(alive)
        })
    });
    group.bench_function("map_key_linear", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in &keys {
                if let Some(i) = query
                    .extraction
                    .map_key_linear(black_box(k))
                    .expect("in bounds")
                {
                    acc = acc.wrapping_add(i);
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_keymap);
criterion_main!(benches);
