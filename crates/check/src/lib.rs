//! # sidr-check — deterministic concurrency checking for the SIDR runtime
//!
//! A loom-style checker that works in this offline workspace. It has
//! three layers:
//!
//! 1. **[`sync`]** — drop-in Mutex/Condvar/atomic/thread primitives.
//!    Outside an exploration they behave exactly like the std-backed
//!    parking_lot shim; inside one, every operation is a yield point of
//!    a cooperative virtual scheduler. `sidr-mapreduce::sync` re-exports
//!    these under `--cfg check`, so the *production* runtime code runs
//!    unmodified under the checker.
//! 2. **[`Explorer`]** — drives a scenario body through many schedules:
//!    bounded-exhaustive DFS for small scenarios, seeded-random
//!    otherwise. Every failure prints a [`ScheduleRef`] (seed or
//!    decision trace) that replays the exact interleaving.
//! 3. **Findings** — what the scheduler detects along the way:
//!    * [`Finding::Deadlock`]: every vthread blocked, no timed wait to
//!      fire.
//!    * [`Finding::LostWakeup`]: progress happened *only* because a
//!      timed wait's safety net fired — under the real clock that is
//!      the 25 ms `WAIT_TICK` silently pumping a stalled job, so it is
//!      a finding, not a pass.
//!    * [`Finding::Race`]: two [`sync::RaceCell`] accesses with no
//!      happens-before edge (vector clocks over lock/unlock,
//!      notify/wait, acquire/release atomics, spawn/join).
//!    * [`Finding::SelfDeadlock`], [`Finding::Panic`],
//!      [`Finding::StepLimit`].
//!
//! ## Quickstart
//!
//! ```
//! use sidr_check::{Explorer, Strategy};
//! use sidr_check::sync::{Mutex, RaceCell};
//! use sidr_check::sync::thread;
//! use std::sync::Arc;
//!
//! let report = Explorer::new("counter").run(
//!     Strategy::Exhaustive { max_schedules: 1_000 },
//!     || {
//!         let n = Arc::new(Mutex::new(0u32));
//!         thread::scope(|s| {
//!             for _ in 0..2 {
//!                 let n = Arc::clone(&n);
//!                 s.spawn(move || *n.lock() += 1);
//!             }
//!         });
//!         assert_eq!(*n.lock(), 2);
//!     },
//! );
//! report.assert_clean();
//! assert!(report.complete);
//! ```
//!
//! The runtime scenarios live in this crate's `tests/` directory and
//! are gated on `--cfg check`:
//!
//! ```text
//! RUSTFLAGS='--cfg check' cargo test -p sidr-check --release
//! ```

pub mod clock;
mod explore;
mod report;
mod sched;
pub mod sync;

pub use explore::{check, Explorer, Strategy};
pub use report::{BlockInfo, FailedSchedule, Finding, FindingKind, Report, ScheduleRef};
