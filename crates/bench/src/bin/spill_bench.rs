//! `spill-bench`: graceful degradation of the worker fleet under
//! memory pressure, at the fig08-scale geometry. Emits
//! `results/BENCH_spill.json`:
//!
//! ```text
//! cargo run --release -p sidr-bench --bin spill-bench
//! cargo run --release -p sidr-bench --bin spill-bench -- --budget 65536
//! ```
//!
//! Four phases, all holding the full intermediate footprint open (the
//! copy phase is gated until every map commits, the worst case a slow
//! reducer fleet creates):
//!
//! 1. **Unbounded** — the pre-budget behavior: peak resident bytes
//!    equal the whole footprint.
//! 2. **Budgeted** — the same job under a per-worker byte budget: cold
//!    partitions degrade to the disk spill tier, peak resident never
//!    exceeds the budget (admission makes room *before* tallying, so
//!    the watermark is a hard bound), and the output is
//!    byte-identical with zero re-executions.
//! 3. **ENOSPC** — every spill write fails: partitions stay pinned
//!    resident (over budget, with pressure advisories), and the job
//!    still completes byte-identical with zero re-executions.
//! 4. **Corrupt read-back** — two spilled partitions rot on disk: the
//!    CRC check rejects them and recovery re-executes exactly the
//!    damaged partitions' maps, output again byte-identical.

use std::path::PathBuf;
use std::process::ExitCode;
use std::thread;
use std::time::{Duration, Instant};

use serde::Serialize;

use sidr_coords::{Coord, Shape};
use sidr_core::exec::ExecOptions;
use sidr_core::framework::{run_spec_on_pool, run_spec_with_executor, SpecRunOptions};
use sidr_core::spec::JobSpec;
use sidr_core::{Operator, SidrPlanner, StructuralQuery};
use sidr_mapreduce::{
    reexecuted_maps, FaultKind, FaultPlan, FaultTarget, InMemoryOutput, SlotPool, SplitGenerator,
};
use sidr_scifile::gen::{DatasetSpec, ValueModel};
use sidr_scifile::ScincFile;
use sidr_serve::{Fleet, FleetConfig};
use sidr_worker::{Worker, WorkerOptions};

struct Args {
    workers: usize,
    budget: u64,
    out: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            workers: 3,
            budget: 64 * 1024,
            out: "results/BENCH_spill.json".into(),
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            let v = it.next().ok_or(format!("{name} needs a value"))?;
            v.parse().map_err(|_| format!("bad value {v:?} for {name}"))
        };
        match arg.as_str() {
            "--workers" => args.workers = num("--workers")? as usize,
            "--budget" => args.budget = num("--budget")?,
            "--out" => args.out = it.next().ok_or("--out needs a path")?,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.workers == 0 || args.budget == 0 {
        return Err("--workers and --budget must be nonzero".into());
    }
    Ok(args)
}

/// Figure-8's weekly-average geometry scaled to a CI artifact — the
/// same fixture the distributed tests stress: {112,25,20} f32 rows
/// averaged over {7,5,1} windows, 8 extraction-aligned splits, 11
/// keyblocks whose dependency sets overlap across splits.
fn fixture() -> (JobSpec, String) {
    let query = StructuralQuery::new(
        "temperature",
        Shape::new(vec![112, 25, 20]).expect("valid"),
        Shape::new(vec![7, 5, 1]).expect("valid"),
        Operator::Mean,
    )
    .expect("query is structural");
    let splits = SplitGenerator::new(query.input_space().clone(), 4)
        .aligned(25 * 20 * 4 * 14, 7)
        .expect("splits generate");
    let plan = SidrPlanner::new(&query, 11).build(&splits).expect("plans");
    let spec = JobSpec::from_plan(&query, &splits, &plan).expect("spec builds");

    let dir = std::env::temp_dir().join("sidr-spill-bench");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let input = dir.join(format!("fig08-{}.scinc", std::process::id()));
    let space = query.input_space().clone();
    DatasetSpec {
        variable: query.variable.clone(),
        dim_names: (0..space.rank()).map(|d| format!("d{d}")).collect(),
        space,
        model: ValueModel::LinearIndex,
        seed: 0,
    }
    .generate::<f32>(&input)
    .expect("dataset generates");
    (spec, input.to_string_lossy().into_owned())
}

fn run_opts() -> SpecRunOptions {
    SpecRunOptions {
        validate_annotations: true,
        ..SpecRunOptions::default()
    }
}

type Keyblocks = Vec<(usize, Vec<(Coord, f64)>)>;

fn keyblock_commits(out: &InMemoryOutput<Coord, f64>) -> Keyblocks {
    let mut commits: Vec<_> = out
        .commits()
        .into_iter()
        .map(|c| (c.reducer, c.records))
        .collect();
    commits.sort_by_key(|(reducer, _)| *reducer);
    commits
}

fn run_local(spec: &JobSpec, input: &str) -> Keyblocks {
    let file = ScincFile::open(input).expect("dataset opens");
    let pool = SlotPool::new(4, 2).expect("pool");
    let out = InMemoryOutput::<Coord, f64>::new();
    run_spec_on_pool(&file, spec, &run_opts(), &out, &pool, None).expect("local run");
    keyblock_commits(&out)
}

fn spawn_fleet(n: usize, tag: &str, budget: u64, fail_spills: bool) -> (Vec<Worker>, Fleet) {
    let workers: Vec<Worker> = (0..n)
        .map(|i| {
            let dir: PathBuf = std::env::temp_dir()
                .join(format!("sidr-spill-bench-{}-{tag}-{i}", std::process::id()));
            Worker::spawn_with(
                "127.0.0.1:0",
                WorkerOptions {
                    budget_bytes: budget,
                    spill_dir: Some(dir),
                    fail_spills,
                },
            )
            .expect("bind loopback")
        })
        .collect();
    let addrs = workers.iter().map(|w| w.addr().to_string()).collect();
    let fleet = Fleet::connect(FleetConfig::new(addrs)).expect("fleet connects");
    (workers, fleet)
}

fn teardown(workers: Vec<Worker>, fleet: Fleet) {
    fleet.shutdown();
    for w in &workers {
        w.kill();
    }
    for w in &workers {
        w.wait();
    }
}

/// Fleet-wide stat maxima/sums sampled while the whole footprint is
/// still held (every map committed, copy phase gated shut).
#[derive(Default)]
struct PeakSample {
    spilled_bytes: u64,
    spill_failures: u64,
}

/// One gated distributed run: shuffle fetches are held shut until
/// every map has committed (the full-footprint worst case), the peak
/// is sampled, then the gates reopen and the job drains.
fn run_gated(
    workers: &[Worker],
    fleet: &Fleet,
    spec: &JobSpec,
    input: &str,
    fault_plan: FaultPlan,
) -> (
    Duration,
    Vec<sidr_mapreduce::TaskEvent>,
    Keyblocks,
    PeakSample,
) {
    let num_maps = spec.splits.len();
    for w in workers {
        w.set_fetch_delay(Duration::from_secs(600));
    }
    let file = ScincFile::open(input).expect("dataset opens");
    let opts = ExecOptions {
        validate_annotations: true,
        filter_pushdown: false,
        fault_plan,
    };
    let remote = fleet.prepare_job(spec, input, &opts).expect("prepare");
    let pool = SlotPool::new(4, spec.num_reducers).expect("pool");
    let out = InMemoryOutput::<Coord, f64>::new();
    let started = Instant::now();
    let mut peak = PeakSample::default();
    let result = thread::scope(|s| {
        let runner = s
            .spawn(|| run_spec_with_executor(&file, spec, &run_opts(), &out, &pool, None, &remote));
        let job = remote.job_id();
        let mid = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let committed =
                |ws: &[Worker]| -> usize { ws.iter().map(|w| w.committed_maps(job).len()).sum() };
            let deadline = Instant::now() + Duration::from_secs(60);
            while committed(workers) < num_maps {
                assert!(Instant::now() < deadline, "maps did not commit in 60s");
                thread::sleep(Duration::from_millis(2));
            }
            let mut sample = PeakSample::default();
            for w in workers {
                let s = w.stat();
                sample.spilled_bytes += s.spilled_bytes;
                sample.spill_failures += s.spill_failures;
            }
            sample
        }));
        for w in workers {
            w.set_fetch_delay(Duration::ZERO);
        }
        let result = runner.join().expect("runner thread");
        match mid {
            Ok(sample) => peak = sample,
            Err(panic) => std::panic::resume_unwind(panic),
        }
        result
    })
    .expect("distributed run succeeds");
    let wall = started.elapsed();
    let events = result.events;
    remote.finish();
    (wall, events, keyblock_commits(&out), peak)
}

#[derive(Serialize)]
struct UnboundedSide {
    wall_ms: u64,
    /// Max per-worker resident high-water mark: the whole footprint of
    /// that worker's share, since nothing ever spills.
    peak_resident_bytes: u64,
    byte_identical: bool,
}

#[derive(Serialize)]
struct BudgetedSide {
    wall_ms: u64,
    /// Max per-worker resident high-water mark under the budget.
    peak_resident_bytes: u64,
    /// Bytes degraded to the disk tier at the full-footprint peak.
    spilled_bytes_at_peak: u64,
    /// `peak_resident <= budget`: admission spills coldest partitions
    /// to make room *before* tallying the incoming bytes resident, so
    /// the watermark is a hard bound (only ENOSPC pinning can breach
    /// it, and this phase injects no spill failures).
    peak_within_bound: bool,
    byte_identical: bool,
    reexecuted_maps: usize,
}

#[derive(Serialize)]
struct EnospcSide {
    wall_ms: u64,
    /// Failed spill writes observed at the peak — every one a
    /// partition that stayed pinned resident instead of being lost.
    spill_failures: u64,
    byte_identical: bool,
    reexecuted_maps: usize,
}

#[derive(Serialize)]
struct CorruptSide {
    wall_ms: u64,
    damaged_maps: Vec<usize>,
    /// Must equal `damaged_maps`: recovery is scoped to the dependency
    /// sets of exactly the partitions whose replicas rotted.
    reexecuted_maps: Vec<usize>,
    byte_identical: bool,
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    scale: String,
    workers: usize,
    budget_bytes: u64,
    unbounded: UnboundedSide,
    budgeted: BudgetedSide,
    enospc: EnospcSide,
    corrupt_readback: CorruptSide,
}

fn max_peak(workers: &[Worker]) -> u64 {
    workers
        .iter()
        .map(|w| w.stat().peak_resident_bytes)
        .max()
        .unwrap_or(0)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("spill-bench: {msg}");
            return ExitCode::from(2);
        }
    };

    let (spec, input) = fixture();
    let expected = run_local(&spec, &input);

    // ---- Phase 1: unbounded (budget 0 disables the tier). ----
    let (workers, fleet) = spawn_fleet(args.workers, "unbounded", 0, false);
    let (wall, events, got, _) = run_gated(&workers, &fleet, &spec, &input, FaultPlan::none());
    assert!(reexecuted_maps(&events).is_empty());
    let unbounded = UnboundedSide {
        wall_ms: wall.as_millis() as u64,
        peak_resident_bytes: max_peak(&workers),
        byte_identical: got == expected,
    };
    teardown(workers, fleet);

    // ---- Phase 2: budgeted. ----
    let (workers, fleet) = spawn_fleet(args.workers, "budgeted", args.budget, false);
    let (wall, events, got, peak) = run_gated(&workers, &fleet, &spec, &input, FaultPlan::none());
    let peak_resident = max_peak(&workers);
    let budgeted = BudgetedSide {
        wall_ms: wall.as_millis() as u64,
        peak_resident_bytes: peak_resident,
        spilled_bytes_at_peak: peak.spilled_bytes,
        peak_within_bound: peak_resident <= args.budget,
        byte_identical: got == expected,
        reexecuted_maps: reexecuted_maps(&events).len(),
    };
    teardown(workers, fleet);

    // ---- Phase 3: ENOSPC on every spill write. ----
    let (workers, fleet) = spawn_fleet(args.workers, "enospc", args.budget, true);
    let (wall, events, got, peak) = run_gated(&workers, &fleet, &spec, &input, FaultPlan::none());
    let enospc = EnospcSide {
        wall_ms: wall.as_millis() as u64,
        spill_failures: peak.spill_failures,
        byte_identical: got == expected,
        reexecuted_maps: reexecuted_maps(&events).len(),
    };
    teardown(workers, fleet);

    // ---- Phase 4: corrupt + truncated read-backs. ----
    let damaged = vec![1usize, 6usize];
    let plan = FaultPlan::none()
        .with(FaultTarget::Map(damaged[0]), 0, FaultKind::SpillReadCorrupt)
        .with(
            FaultTarget::Map(damaged[1]),
            0,
            FaultKind::SpillReadTruncate,
        );
    let (workers, fleet) = spawn_fleet(args.workers, "corrupt", args.budget, false);
    let (wall, events, got, _) = run_gated(&workers, &fleet, &spec, &input, plan);
    let mut re = reexecuted_maps(&events);
    re.sort_unstable();
    re.dedup();
    let corrupt_readback = CorruptSide {
        wall_ms: wall.as_millis() as u64,
        damaged_maps: damaged,
        reexecuted_maps: re,
        byte_identical: got == expected,
    };
    teardown(workers, fleet);
    std::fs::remove_file(&input).ok();

    let report = BenchReport {
        bench: "sidr spill tier".into(),
        scale: "fig08-scale".into(),
        workers: args.workers,
        budget_bytes: args.budget,
        unbounded,
        budgeted,
        enospc,
        corrupt_readback,
    };

    let ok = report.unbounded.byte_identical
        && report.budgeted.byte_identical
        && report.budgeted.peak_within_bound
        && report.budgeted.reexecuted_maps == 0
        && report.budgeted.spilled_bytes_at_peak > 0
        && report.enospc.byte_identical
        && report.enospc.reexecuted_maps == 0
        && report.enospc.spill_failures > 0
        && report.corrupt_readback.byte_identical
        && report.corrupt_readback.reexecuted_maps == report.corrupt_readback.damaged_maps;

    let json = serde_json::to_string(&report).expect("report serializes");
    if let Some(parent) = std::path::Path::new(&args.out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("spill-bench: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("{json}");
    if !ok {
        eprintln!("spill-bench: acceptance check failed (see JSON above)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
