//! `dist-bench`: macro-benchmark of the distributed execution path.
//!
//! Runs the CI-scale preset against a loopback `sidr-worker` fleet and
//! against the single-process engine, then kills one worker mid-job to
//! measure dependency-scoped recovery (§6) at the fleet level. Emits
//! `results/BENCH_dist.json`:
//!
//! ```text
//! cargo run --release -p sidr-bench --bin dist-bench
//! cargo run --release -p sidr-bench --bin dist-bench -- --workers 5 --runs 8
//! ```
//!
//! Reported: per-worker attempt throughput, coordinator-observed
//! dispatch latency p50/p99 (from the `sidr_fleet_dispatch_seconds`
//! histogram), distributed vs single-process wall time, and the wall
//! time of a run that loses a worker after every map has committed —
//! recovery cost is re-executing exactly the dead worker's share of
//! the dependency sets, not the whole map phase.

use std::process::ExitCode;
use std::thread;
use std::time::{Duration, Instant};

use serde::Serialize;

use sidr_analyze::presets;
use sidr_core::exec::ExecOptions;
use sidr_core::framework::{run_spec_on_pool, run_spec_with_executor, SpecRunOptions};
use sidr_core::spec::JobSpec;
use sidr_core::SidrPlanner;
use sidr_mapreduce::{reexecuted_maps, FaultPlan, InMemoryOutput, SlotPool};
use sidr_obs::metrics::Histogram;
use sidr_scifile::gen::{DatasetSpec, ValueModel};
use sidr_scifile::ScincFile;
use sidr_serve::{fleet_metrics, Fleet, FleetConfig};
use sidr_worker::Worker;

struct Args {
    workers: usize,
    runs: usize,
    out: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            workers: 3,
            runs: 5,
            out: "results/BENCH_dist.json".into(),
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> Result<usize, String> {
            let v = it.next().ok_or(format!("{name} needs a value"))?;
            v.parse().map_err(|_| format!("bad value {v:?} for {name}"))
        };
        match arg.as_str() {
            "--workers" => args.workers = num("--workers")?,
            "--runs" => args.runs = num("--runs")?,
            "--out" => args.out = it.next().ok_or("--out needs a path")?,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.workers == 0 || args.runs == 0 {
        return Err("--workers and --runs must be nonzero".into());
    }
    Ok(args)
}

#[derive(Serialize)]
struct Percentiles {
    p50_ms: u64,
    p99_ms: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx]
}

fn percentiles(mut samples: Vec<u64>) -> Percentiles {
    samples.sort_unstable();
    Percentiles {
        p50_ms: percentile(&samples, 50.0),
        p99_ms: percentile(&samples, 99.0),
    }
}

/// Upper-bound percentile estimate from a histogram's cumulative
/// buckets, Prometheus-style: the smallest bucket bound covering the
/// requested quantile. `delta` subtracts a pre-run snapshot so the
/// estimate covers only the observations this phase added.
fn histogram_quantile_ms(after: &[(f64, u64)], before: &[(f64, u64)], q: f64) -> f64 {
    let total = after.last().map_or(0, |(_, c)| *c) - before.last().map_or(0, |(_, c)| *c);
    if total == 0 {
        return 0.0;
    }
    let rank = (q * total as f64).ceil() as u64;
    let mut last_finite = 0.0;
    for (i, (bound, after_c)) in after.iter().enumerate() {
        let before_c = before.get(i).map_or(0, |(_, c)| *c);
        if after_c - before_c >= rank {
            return if bound.is_finite() {
                bound * 1e3
            } else {
                last_finite * 1e3
            };
        }
        if bound.is_finite() {
            last_finite = *bound;
        }
    }
    last_finite * 1e3
}

fn snapshot(h: &Histogram) -> Vec<(f64, u64)> {
    h.cumulative_buckets()
}

#[derive(Serialize)]
struct WorkerSide {
    addr: String,
    map_attempts: u64,
    reduce_attempts: u64,
    /// Lifetime attempts over the distributed phase's total wall time.
    tasks_per_sec: f64,
}

#[derive(Serialize)]
struct DispatchLatency {
    p50_ms: f64,
    p99_ms: f64,
    observations: u64,
}

#[derive(Serialize)]
struct RecoverySide {
    /// Wall time of the run that loses a worker after all maps commit.
    wall_ms: u64,
    /// Maps the dead worker held (the union of the pending attempts'
    /// dependency sets `I_ℓ`).
    lost_maps: usize,
    /// Maps the engine actually re-executed — must equal `lost_maps`.
    reexecuted_maps: usize,
    /// Recovery run over the clean distributed p50: the fleet-level
    /// cost of losing one worker's map output.
    vs_distributed_p50: f64,
    /// Recovery run over the single-process p50.
    vs_single_process_p50: f64,
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    preset: String,
    workers: usize,
    runs: usize,
    per_worker: Vec<WorkerSide>,
    dispatch: DispatchLatency,
    distributed_wall: Percentiles,
    single_process_wall: Percentiles,
    /// Distributed p50 over single-process p50: the loopback framing +
    /// shuffle-over-TCP overhead on a CI-scale job.
    dist_over_local_p50: f64,
    recovery: RecoverySide,
}

fn fixture() -> (JobSpec, String, usize) {
    let job = presets::preset("query1-tiny").expect("preset exists");
    let plan = SidrPlanner::new(&job.query, job.reducer_counts[0])
        .build(&job.splits)
        .expect("preset plans");
    let spec = JobSpec::from_plan(&job.query, &job.splits, &plan).expect("spec builds");
    let dir = std::env::temp_dir().join("sidr-dist-bench");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let input = dir.join(format!("tiny-{}.scinc", std::process::id()));
    let space = job.query.input_space().clone();
    DatasetSpec {
        variable: job.query.variable.clone(),
        dim_names: (0..space.rank()).map(|d| format!("d{d}")).collect(),
        space,
        model: ValueModel::LinearIndex,
        seed: 0,
    }
    .generate::<f32>(&input)
    .expect("dataset generates");
    let reducers = job.reducer_counts[0];
    (spec, input.to_string_lossy().into_owned(), reducers)
}

fn run_opts() -> SpecRunOptions {
    SpecRunOptions {
        validate_annotations: true,
        ..SpecRunOptions::default()
    }
}

fn spawn_fleet(n: usize) -> (Vec<Worker>, Fleet) {
    let workers: Vec<Worker> = (0..n)
        .map(|_| Worker::spawn("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let addrs = workers.iter().map(|w| w.addr().to_string()).collect();
    let fleet = Fleet::connect(FleetConfig::new(addrs)).expect("fleet connects");
    (workers, fleet)
}

fn teardown(workers: Vec<Worker>, fleet: Fleet) {
    fleet.shutdown();
    for w in &workers {
        w.kill();
    }
    for w in &workers {
        w.wait();
    }
}

/// One distributed run; `mid_job` runs on the choreographing thread
/// once the job is in flight (see `crates/worker/tests/dist.rs` for
/// the gate-reopen rationale).
fn run_distributed(
    workers: &[Worker],
    fleet: &Fleet,
    spec: &JobSpec,
    input: &str,
    mid_job: impl FnOnce(u64) + Send,
) -> (Duration, Vec<sidr_mapreduce::TaskEvent>) {
    let file = ScincFile::open(input).expect("dataset opens");
    let opts = ExecOptions {
        validate_annotations: true,
        filter_pushdown: false,
        fault_plan: FaultPlan::none(),
    };
    let remote = fleet.prepare_job(spec, input, &opts).expect("prepare");
    let pool = SlotPool::new(4, spec.num_reducers).expect("pool");
    let out = InMemoryOutput::<sidr_coords::Coord, f64>::new();
    let started = Instant::now();
    let result = thread::scope(|s| {
        let runner = s
            .spawn(|| run_spec_with_executor(&file, spec, &run_opts(), &out, &pool, None, &remote));
        let mid =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| mid_job(remote.job_id())));
        if mid.is_err() {
            for w in workers {
                w.set_fetch_delay(Duration::ZERO);
                w.set_reduce_delay(Duration::ZERO);
            }
        }
        let result = runner.join().expect("runner thread");
        if let Err(panic) = mid {
            std::panic::resume_unwind(panic);
        }
        result
    })
    .expect("distributed run succeeds");
    let wall = started.elapsed();
    remote.finish();
    (wall, result.events)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("dist-bench: {msg}");
            return ExitCode::from(2);
        }
    };

    let (spec, input, reducers) = fixture();
    let num_maps = spec.splits.len();

    // ---- Single-process reference. ----
    let mut local_walls = Vec::new();
    {
        let file = ScincFile::open(&input).expect("dataset opens");
        for _ in 0..args.runs {
            let pool = SlotPool::new(4, reducers).expect("pool");
            let out = InMemoryOutput::<sidr_coords::Coord, f64>::new();
            let started = Instant::now();
            run_spec_on_pool(&file, &spec, &run_opts(), &out, &pool, None)
                .expect("local run succeeds");
            local_walls.push(started.elapsed().as_millis() as u64);
        }
    }

    // ---- Clean distributed runs. ----
    let dispatch_before = snapshot(&fleet_metrics().dispatch_seconds);
    let (workers, fleet) = spawn_fleet(args.workers);
    let mut dist_walls = Vec::new();
    let dist_started = Instant::now();
    for _ in 0..args.runs {
        let (wall, events) = run_distributed(&workers, &fleet, &spec, &input, |_| {});
        assert!(
            reexecuted_maps(&events).is_empty(),
            "clean run must not re-execute maps"
        );
        dist_walls.push(wall.as_millis() as u64);
    }
    let dist_total = dist_started.elapsed().as_secs_f64();
    let dispatch_after = snapshot(&fleet_metrics().dispatch_seconds);

    let per_worker: Vec<WorkerSide> = workers
        .iter()
        .map(|w| {
            let s = w.stat();
            WorkerSide {
                addr: s.addr,
                map_attempts: s.map_attempts,
                reduce_attempts: s.reduce_attempts,
                tasks_per_sec: (s.map_attempts + s.reduce_attempts) as f64 / dist_total,
            }
        })
        .collect();
    teardown(workers, fleet);

    let dispatch = DispatchLatency {
        p50_ms: histogram_quantile_ms(&dispatch_after, &dispatch_before, 0.50),
        p99_ms: histogram_quantile_ms(&dispatch_after, &dispatch_before, 0.99),
        observations: dispatch_after.last().map_or(0, |(_, c)| *c)
            - dispatch_before.last().map_or(0, |(_, c)| *c),
    };

    // ---- Recovery: lose one worker after every map has committed. ----
    // Shuffle fetches are gated so nothing is consumed before the
    // kill; the dead worker's entire committed share must re-execute.
    let (workers, fleet) = spawn_fleet(args.workers);
    for w in &workers {
        w.set_fetch_delay(Duration::from_secs(600));
    }
    let mut lost = 0usize;
    let (recovery_wall, events) = {
        let workers = &workers;
        let lost = &mut lost;
        run_distributed(workers, &fleet, &spec, &input, move |job| {
            let committed =
                |ws: &[Worker]| -> usize { ws.iter().map(|w| w.committed_maps(job).len()).sum() };
            let deadline = Instant::now() + Duration::from_secs(30);
            while committed(workers) < num_maps {
                assert!(Instant::now() < deadline, "maps did not commit in 30s");
                thread::sleep(Duration::from_millis(2));
            }
            thread::sleep(Duration::from_millis(50));
            let (victim, _) = workers
                .iter()
                .enumerate()
                .max_by_key(|(_, w)| w.committed_maps(job).len())
                .expect("non-empty fleet");
            let mut held: Vec<usize> = workers[victim]
                .committed_maps(job)
                .into_iter()
                .map(|(task, _)| task)
                .collect();
            held.sort_unstable();
            held.dedup();
            *lost = held.len();
            workers[victim].kill();
            for w in workers.iter() {
                w.set_fetch_delay(Duration::ZERO);
            }
        })
    };
    teardown(workers, fleet);
    std::fs::remove_file(&input).ok();

    let reexecuted = reexecuted_maps(&events).len();
    let distributed_wall = percentiles(dist_walls);
    let single_process_wall = percentiles(local_walls);
    let ratio = |num: u64, den: u64| -> f64 {
        if den > 0 {
            num as f64 / den as f64
        } else {
            f64::INFINITY
        }
    };
    let report = BenchReport {
        bench: "sidr distributed execution".into(),
        preset: "query1-tiny".into(),
        workers: args.workers,
        runs: args.runs,
        per_worker,
        dispatch,
        dist_over_local_p50: ratio(distributed_wall.p50_ms, single_process_wall.p50_ms),
        recovery: RecoverySide {
            wall_ms: recovery_wall.as_millis() as u64,
            lost_maps: lost,
            reexecuted_maps: reexecuted,
            vs_distributed_p50: ratio(recovery_wall.as_millis() as u64, distributed_wall.p50_ms),
            vs_single_process_p50: ratio(
                recovery_wall.as_millis() as u64,
                single_process_wall.p50_ms,
            ),
        },
        distributed_wall,
        single_process_wall,
    };

    let json = serde_json::to_string(&report).expect("report serializes");
    if let Some(parent) = std::path::Path::new(&args.out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("dist-bench: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("{json}");
    ExitCode::SUCCESS
}
