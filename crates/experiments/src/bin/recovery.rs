//! §6 (future work, implemented): dependency-based failure recovery.
//!
//! "We plan to investigate altering the MapReduce failure recovery
//! model to use the data dependency information to re-execute subsets
//! of Map tasks in the event of a Reduce task failure in place of
//! persisting all intermediate data to disk. Our hypothesis is that
//! the performance savings in the non-failure case will offset said
//! re-execution cost."
//!
//! This experiment quantifies both sides on the *real* engine:
//! * the non-failure saving — intermediate records that never need to
//!   be persisted (everything the shuffle carries), and
//! * the failure cost — Map tasks re-executed per injected Reduce
//!   failure, which dependency information bounds at `|I_ℓ|` instead
//!   of "all maps".

use sidr_coords::Shape;
use sidr_core::framework::RunOptions;
use sidr_core::{run_query, FrameworkMode, Operator, StructuralQuery};
use sidr_experiments::{compare, write_csv};
use sidr_scifile::gen::{DatasetSpec, ValueModel};

fn main() {
    let space = Shape::new(vec![480, 16, 16]).expect("valid");
    let spec = DatasetSpec {
        variable: "v".into(),
        dim_names: vec!["t".into(), "y".into(), "x".into()],
        space: space.clone(),
        model: ValueModel::Uniform { lo: 0.0, hi: 1.0 },
        seed: 3,
    };
    let dir = std::env::temp_dir().join(format!("sidr-recovery-exp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir creatable");
    let path = dir.join("data.scinc");
    let file = spec.generate::<f64>(&path).expect("dataset generates");
    let query = StructuralQuery::new(
        "v",
        space,
        Shape::new(vec![8, 4, 4]).expect("valid"),
        Operator::Mean,
    )
    .expect("query is structural");
    let reducers = 8;

    println!("== §6: recovery by re-execution vs persisting intermediate data ==\n");
    println!(
        "{:>12} {:>14} {:>16} {:>18} {:>14}",
        "failures", "maps total", "maps re-run", "records shuffled", "output ok"
    );

    let mut rows = Vec::new();
    let mut results = Vec::new();
    let mut baseline: Option<Vec<(sidr_coords::Coord, f64)>> = None;
    for n_failures in [0usize, 1, 2, 4] {
        let mut opts = RunOptions::new(FrameworkMode::Sidr, reducers);
        opts.split_bytes = 16 * 16 * 8 * 16; // 16 leading rows per split -> 30 maps
        opts.volatile_intermediate = true; // nothing persisted
        opts.fault_plan =
            sidr_mapreduce::FaultPlan::fail_reducers_first_attempt((0..n_failures).map(|i| i * 2));
        let outcome = run_query(&file, &query, &opts).expect("query survives failures");
        let ok = match &baseline {
            None => {
                baseline = Some(outcome.records.clone());
                true
            }
            Some(expect) => &outcome.records == expect,
        };
        println!(
            "{n_failures:>12} {:>14} {:>16} {:>18} {:>14}",
            outcome.num_maps,
            outcome.result.counters.maps_reexecuted,
            outcome.result.counters.shuffled_records,
            ok
        );
        rows.push(format!(
            "{n_failures},{},{},{}",
            outcome.num_maps,
            outcome.result.counters.maps_reexecuted,
            outcome.result.counters.shuffled_records
        ));
        results.push((
            n_failures,
            outcome.num_maps,
            outcome.result.counters.maps_reexecuted,
            ok,
        ));
    }
    let csv = write_csv(
        "recovery",
        "failures,maps,maps_reexecuted,shuffled_records",
        &rows,
    );
    println!("[csv] {}", csv.display());

    println!("\nChecks:");
    compare(
        "no failures -> nothing persisted, nothing re-run",
        "savings in the non-failure case",
        &format!("{} maps re-run", results[0].2),
        results[0].2 == 0,
    );
    let (_, maps, rerun_1, _) = results[1];
    compare(
        "one failure re-runs only the dependency subset",
        "re-execute subsets of Map tasks",
        &format!("{rerun_1} of {maps} maps"),
        rerun_1 > 0 && (rerun_1 as usize) < maps / 2,
    );
    compare(
        "recovery cost grows with failures, output always correct",
        "hypothesis holds",
        &format!(
            "{:?} re-runs, all correct: {}",
            results.iter().map(|r| r.2).collect::<Vec<_>>(),
            results.iter().all(|r| r.3)
        ),
        results.windows(2).all(|w| w[1].2 >= w[0].2) && results.iter().all(|r| r.3),
    );

    std::fs::remove_dir_all(&dir).expect("temp dir removable");
}
