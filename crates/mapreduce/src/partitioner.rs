//! Partition functions: intermediate key → keyblock.
//!
//! "Hadoop's default partition function assigns intermediate key/value
//! pairs to keyblocks by taking the modulo value of the key's binary
//! representation by the number of Reduce tasks" (§3.1). For
//! coordinate keys the binary representation is Java-style
//! `31·h + component` hashing — which is exactly what makes patterned
//! keys (e.g. all-even coordinates) collapse onto a subset of
//! reducers, the pathology §4.3 measures. `partition+`, the
//! structure-aware alternative, lives in `sidr-core` and implements
//! the same [`Partitioner`] trait.

use sidr_coords::Coord;

/// Maps an intermediate key to one of `num_reducers` keyblocks.
pub trait Partitioner<K>: Send + Sync {
    fn partition(&self, key: &K, num_reducers: usize) -> usize;
}

/// Hadoop's default for coordinate keys: Java-style polynomial hash of
/// the components, modulo the reducer count. Deliberately *not* a
/// mixing hash — Hadoop's `hashCode % r` preserves arithmetic patterns
/// in the key, which is the source of the intermediate-key skew the
/// paper demonstrates ("we've seen cases where every intermediate key
/// was even, resulting in all odd-numbered Reduce tasks being assigned
/// no data", §4.3).
#[derive(Clone, Copy, Debug, Default)]
pub struct CoordHashPartitioner;

impl CoordHashPartitioner {
    /// Java-style `h = 31·h + c` over the components.
    pub fn hash_code(key: &Coord) -> u64 {
        key.components()
            .iter()
            .fold(1u64, |h, &c| h.wrapping_mul(31).wrapping_add(c))
    }
}

impl Partitioner<Coord> for CoordHashPartitioner {
    fn partition(&self, key: &Coord, num_reducers: usize) -> usize {
        debug_assert!(num_reducers > 0);
        (Self::hash_code(key) % num_reducers as u64) as usize
    }
}

/// Modulo over an integer key's value — Hadoop's default for numeric
/// keys.
#[derive(Clone, Copy, Debug, Default)]
pub struct ModuloPartitioner;

impl Partitioner<u64> for ModuloPartitioner {
    fn partition(&self, key: &u64, num_reducers: usize) -> usize {
        debug_assert!(num_reducers > 0);
        (key % num_reducers as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidr_coords::Shape;

    #[test]
    fn coord_hash_is_deterministic() {
        let p = CoordHashPartitioner;
        let k = Coord::from([3, 7, 9]);
        assert_eq!(p.partition(&k, 22), p.partition(&k, 22));
    }

    #[test]
    fn typical_keys_spread_roughly_evenly() {
        // Un-patterned keys: every reducer gets a sensible share.
        let p = CoordHashPartitioner;
        let space = Shape::new(vec![13, 17, 11]).unwrap();
        let r = 22;
        let mut counts = vec![0u64; r];
        for k in space.iter_coords() {
            counts[p.partition(&k, r)] += 1;
        }
        let total: u64 = counts.iter().sum();
        assert_eq!(total, space.count());
        let expect = total as f64 / r as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > 0.5 * expect && (c as f64) < 1.5 * expect,
                "reducer {i} got {c}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn patterned_keys_skew_as_in_section_4_3() {
        // All-even coordinates with an even reducer count: the hash
        // h = 31·(31·1 + even) + even ≡ parity of 31+even... walk the
        // actual distribution and require the pathology: at least
        // half of the reducers receive nothing.
        let p = CoordHashPartitioner;
        let r = 22;
        let mut counts = vec![0u64; r];
        for a in (0..60u64).step_by(2) {
            for b in (0..60u64).step_by(2) {
                counts[p.partition(&Coord::from([a, b]), r)] += 1;
            }
        }
        let empty = counts.iter().filter(|&&c| c == 0).count();
        assert!(
            empty >= r / 2,
            "expected >= half the reducers empty, got {empty} of {r}: {counts:?}"
        );
    }

    #[test]
    fn modulo_partitioner_is_identity_mod_r() {
        let p = ModuloPartitioner;
        assert_eq!(p.partition(&45u64, 22), 1);
        assert_eq!(p.partition(&44u64, 22), 0);
    }
}
