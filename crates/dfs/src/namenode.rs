//! NameNode: file → block maps, replica placement and locality
//! queries.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A datanode in the modeled cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A registered file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FileId(pub u64);

/// One block of a file and the replicas that host it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockInfo {
    /// Index of the block within its file.
    pub index: u64,
    /// Byte offset of the block within the file.
    pub offset: u64,
    /// Block length (the final block may be short).
    pub len: u64,
    /// Datanodes hosting a replica, primary first.
    pub replicas: Vec<NodeId>,
}

/// Cluster-level configuration, defaulting to the paper's setup:
/// 24 datanodes on one switch (a single rack), 128 MB blocks, 3×
/// replication (§4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DfsConfig {
    pub num_datanodes: usize,
    pub block_size: u64,
    pub replication: usize,
    /// Racks the datanodes are spread over (contiguous groups). With
    /// more than one rack, placement follows HDFS's default policy:
    /// first replica anywhere, second on a *different* rack, third on
    /// the second's rack but a different node. Hadoop's locality tree
    /// (§3.3) then has three levels: node-local, rack-local, off-rack.
    pub racks: usize,
    /// Seed for the deterministic placement policy.
    pub placement_seed: u64,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig {
            num_datanodes: 24,
            block_size: 128 << 20,
            replication: 3,
            racks: 1,
            placement_seed: 0x51D8,
        }
    }
}

/// How close a node is to a block replica — the levels of the
/// scheduler's locality tree (§3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LocalityLevel {
    NodeLocal,
    RackLocal,
    OffRack,
}

/// Errors from the DFS model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// Zero datanodes, zero block size or zero replication.
    BadConfig(String),
    /// Unknown file.
    NoSuchFile(FileId),
    /// A file with this name already exists.
    DuplicatePath(String),
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::BadConfig(msg) => write!(f, "bad DFS config: {msg}"),
            DfsError::NoSuchFile(id) => write!(f, "no such file: {:?}", id),
            DfsError::DuplicatePath(p) => write!(f, "path already registered: {p}"),
        }
    }
}

impl std::error::Error for DfsError {}

struct FileEntry {
    path: String,
    len: u64,
    blocks: Vec<BlockInfo>,
}

/// The placement authority of the modeled cluster.
///
/// Thread-safe: split generation and schedulers query it concurrently.
pub struct NameNode {
    config: DfsConfig,
    inner: RwLock<Inner>,
}

#[derive(Default)]
struct Inner {
    files: Vec<FileEntry>,
    by_path: HashMap<String, FileId>,
}

impl NameNode {
    /// Creates a namenode; validates the configuration.
    pub fn new(config: DfsConfig) -> Result<Self, DfsError> {
        if config.num_datanodes == 0 {
            return Err(DfsError::BadConfig("num_datanodes must be > 0".into()));
        }
        if config.block_size == 0 {
            return Err(DfsError::BadConfig("block_size must be > 0".into()));
        }
        if config.replication == 0 {
            return Err(DfsError::BadConfig("replication must be > 0".into()));
        }
        if config.racks == 0 || config.racks > config.num_datanodes {
            return Err(DfsError::BadConfig(format!(
                "racks must be in 1..={}",
                config.num_datanodes
            )));
        }
        Ok(NameNode {
            config,
            inner: RwLock::new(Inner::default()),
        })
    }

    /// The cluster configuration.
    pub fn config(&self) -> &DfsConfig {
        &self.config
    }

    /// All datanodes.
    pub fn nodes(&self) -> Vec<NodeId> {
        (0..self.config.num_datanodes).map(NodeId).collect()
    }

    /// Registers a file of `len` bytes, placing its blocks. Placement
    /// is deterministic in `(placement_seed, path, block index)` —
    /// HDFS-shaped: replicas of one block land on distinct nodes,
    /// blocks spread pseudo-randomly across the cluster.
    pub fn register_file(&self, path: &str, len: u64) -> Result<FileId, DfsError> {
        let mut inner = self.inner.write();
        if inner.by_path.contains_key(path) {
            return Err(DfsError::DuplicatePath(path.to_string()));
        }
        let id = FileId(inner.files.len() as u64);
        let blocks = self.place_blocks(path, len);
        inner.files.push(FileEntry {
            path: path.to_string(),
            len,
            blocks,
        });
        inner.by_path.insert(path.to_string(), id);
        Ok(id)
    }

    /// The rack a node sits in (contiguous node groups).
    pub fn rack_of(&self, node: NodeId) -> usize {
        node.0 * self.config.racks / self.config.num_datanodes
    }

    /// The locality level of `node` with respect to a block.
    pub fn locality_level(&self, node: NodeId, block: &BlockInfo) -> LocalityLevel {
        if block.replicas.contains(&node) {
            return LocalityLevel::NodeLocal;
        }
        let rack = self.rack_of(node);
        if block.replicas.iter().any(|&r| self.rack_of(r) == rack) {
            LocalityLevel::RackLocal
        } else {
            LocalityLevel::OffRack
        }
    }

    fn place_blocks(&self, path: &str, len: u64) -> Vec<BlockInfo> {
        let bs = self.config.block_size;
        let n_nodes = self.config.num_datanodes;
        let repl = self.config.replication.min(n_nodes);
        let path_hash = path.bytes().fold(self.config.placement_seed, |h, b| {
            splitmix64(h ^ u64::from(b))
        });
        let n_blocks = len.div_ceil(bs).max(1);
        (0..n_blocks)
            .map(|index| {
                let offset = index * bs;
                let blen = bs.min(len.saturating_sub(offset));
                let replicas = self.place_replicas(splitmix64(path_hash ^ index), repl);
                BlockInfo {
                    index,
                    offset,
                    len: blen,
                    replicas,
                }
            })
            .collect()
    }

    /// HDFS's default policy shape: first replica anywhere; when the
    /// cluster has multiple racks, the second replica goes to a
    /// *different* rack and the third to the second's rack on another
    /// node; further replicas land anywhere distinct.
    fn place_replicas(&self, mut h: u64, repl: usize) -> Vec<NodeId> {
        let n_nodes = self.config.num_datanodes;
        let multi_rack = self.config.racks > 1;
        let mut replicas: Vec<NodeId> = Vec::with_capacity(repl);
        let mut draw = |accept: &dyn Fn(NodeId) -> bool, replicas: &Vec<NodeId>| -> NodeId {
            loop {
                let node = NodeId((h % n_nodes as u64) as usize);
                h = splitmix64(h);
                if !replicas.contains(&node) && accept(node) {
                    return node;
                }
            }
        };
        for i in 0..repl {
            let node = if !multi_rack || i == 0 || i >= 3 {
                draw(&|_| true, &replicas)
            } else if i == 1 {
                let first_rack = self.rack_of(replicas[0]);
                draw(&|n| self.rack_of(n) != first_rack, &replicas)
            } else {
                // i == 2: same rack as the second replica when that
                // rack has room, else anywhere.
                let second_rack = self.rack_of(replicas[1]);
                let nodes_in_rack = (0..n_nodes)
                    .filter(|&n| self.rack_of(NodeId(n)) == second_rack)
                    .count();
                if nodes_in_rack >= 2 {
                    draw(&|n| self.rack_of(n) == second_rack, &replicas)
                } else {
                    draw(&|_| true, &replicas)
                }
            };
            replicas.push(node);
        }
        replicas
    }

    /// Looks up a file by path.
    pub fn lookup(&self, path: &str) -> Option<FileId> {
        self.inner.read().by_path.get(path).copied()
    }

    /// The registered length of a file.
    pub fn file_len(&self, id: FileId) -> Result<u64, DfsError> {
        let inner = self.inner.read();
        inner
            .files
            .get(id.0 as usize)
            .map(|f| f.len)
            .ok_or(DfsError::NoSuchFile(id))
    }

    /// The path a file was registered under.
    pub fn file_path(&self, id: FileId) -> Result<String, DfsError> {
        let inner = self.inner.read();
        inner
            .files
            .get(id.0 as usize)
            .map(|f| f.path.clone())
            .ok_or(DfsError::NoSuchFile(id))
    }

    /// All blocks of a file.
    pub fn blocks(&self, id: FileId) -> Result<Vec<BlockInfo>, DfsError> {
        let inner = self.inner.read();
        inner
            .files
            .get(id.0 as usize)
            .map(|f| f.blocks.clone())
            .ok_or(DfsError::NoSuchFile(id))
    }

    /// Blocks overlapping the byte range `[start, end)`.
    pub fn blocks_in_range(
        &self,
        id: FileId,
        start: u64,
        end: u64,
    ) -> Result<Vec<BlockInfo>, DfsError> {
        Ok(self
            .blocks(id)?
            .into_iter()
            .filter(|b| b.offset < end && b.offset + b.len > start)
            .collect())
    }

    /// Bytes of `[start, end)` hosted on `node` (over any replica).
    pub fn local_bytes(
        &self,
        id: FileId,
        start: u64,
        end: u64,
        node: NodeId,
    ) -> Result<u64, DfsError> {
        Ok(self
            .blocks_in_range(id, start, end)?
            .iter()
            .filter(|b| b.replicas.contains(&node))
            .map(|b| b.offset.max(start).abs_diff((b.offset + b.len).min(end)))
            .sum())
    }

    /// Nodes hosting any part of `[start, end)`, ranked by local byte
    /// count (descending). The scheduler's locality tree is derived
    /// from this ranking.
    pub fn nodes_for_range(
        &self,
        id: FileId,
        start: u64,
        end: u64,
    ) -> Result<Vec<(NodeId, u64)>, DfsError> {
        let mut per_node: HashMap<NodeId, u64> = HashMap::new();
        for b in self.blocks_in_range(id, start, end)? {
            let overlap = b.offset.max(start).abs_diff((b.offset + b.len).min(end));
            for r in &b.replicas {
                *per_node.entry(*r).or_default() += overlap;
            }
        }
        let mut ranked: Vec<(NodeId, u64)> = per_node.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Ok(ranked)
    }
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nn() -> NameNode {
        NameNode::new(DfsConfig::default()).unwrap()
    }

    #[test]
    fn default_config_matches_paper() {
        let c = DfsConfig::default();
        assert_eq!(c.num_datanodes, 24);
        assert_eq!(c.block_size, 128 << 20);
        assert_eq!(c.replication, 3);
    }

    #[test]
    fn bad_config_rejected() {
        for cfg in [
            DfsConfig {
                num_datanodes: 0,
                ..Default::default()
            },
            DfsConfig {
                block_size: 0,
                ..Default::default()
            },
            DfsConfig {
                replication: 0,
                ..Default::default()
            },
        ] {
            assert!(NameNode::new(cfg).is_err());
        }
    }

    #[test]
    fn block_layout_covers_file() {
        let nn = nn();
        let len = 348u64 << 30; // the paper's 348 GB dataset
        let id = nn.register_file("/data/windspeed.scinc", len).unwrap();
        let blocks = nn.blocks(id).unwrap();
        assert_eq!(blocks.len() as u64, len.div_ceil(128 << 20));
        let mut expected_offset = 0;
        for b in &blocks {
            assert_eq!(b.offset, expected_offset);
            expected_offset += b.len;
        }
        assert_eq!(expected_offset, len);
    }

    #[test]
    fn replicas_distinct_and_correct_count() {
        let nn = nn();
        let id = nn.register_file("/f", 10 * (128 << 20)).unwrap();
        for b in nn.blocks(id).unwrap() {
            assert_eq!(b.replicas.len(), 3);
            let mut uniq = b.replicas.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), 3, "replicas not distinct: {:?}", b.replicas);
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let a = nn();
        let b = nn();
        let ia = a.register_file("/f", 5 * (128 << 20)).unwrap();
        let ib = b.register_file("/f", 5 * (128 << 20)).unwrap();
        assert_eq!(a.blocks(ia).unwrap(), b.blocks(ib).unwrap());
    }

    #[test]
    fn placement_spreads_across_cluster() {
        let nn = nn();
        let id = nn.register_file("/big", 200 * (128u64 << 20)).unwrap();
        let mut used: std::collections::HashSet<NodeId> = Default::default();
        for b in nn.blocks(id).unwrap() {
            used.extend(b.replicas.iter().copied());
        }
        // 200 blocks x 3 replicas over 24 nodes: every node should
        // host something.
        assert_eq!(used.len(), 24);
    }

    #[test]
    fn range_queries_respect_block_boundaries() {
        let nn = nn();
        let bs = 128u64 << 20;
        let id = nn.register_file("/f", 4 * bs).unwrap();
        let in_second = nn.blocks_in_range(id, bs, bs + 1).unwrap();
        assert_eq!(in_second.len(), 1);
        assert_eq!(in_second[0].index, 1);
        let spanning = nn.blocks_in_range(id, bs - 1, bs + 1).unwrap();
        assert_eq!(spanning.len(), 2);
    }

    #[test]
    fn local_bytes_counts_overlap_only() {
        let nn = nn();
        let bs = 128u64 << 20;
        let id = nn.register_file("/f", 2 * bs).unwrap();
        let blocks = nn.blocks(id).unwrap();
        let node = blocks[0].replicas[0];
        // Range = last half of block 0.
        let local = nn.local_bytes(id, bs / 2, bs, node).unwrap();
        assert_eq!(local, bs / 2);
    }

    #[test]
    fn nodes_for_range_ranked_by_locality() {
        let nn = nn();
        let bs = 128u64 << 20;
        let id = nn.register_file("/f", 8 * bs).unwrap();
        let ranked = nn.nodes_for_range(id, 0, 8 * bs).unwrap();
        assert!(!ranked.is_empty());
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let total: u64 = ranked.iter().map(|(_, b)| b).sum();
        assert_eq!(total, 8 * bs * 3); // 3 replicas per byte
    }

    #[test]
    fn rack_aware_placement_spans_two_racks() {
        let nn = NameNode::new(DfsConfig {
            racks: 4,
            ..Default::default()
        })
        .unwrap();
        let id = nn.register_file("/racked", 50 * (128u64 << 20)).unwrap();
        for b in nn.blocks(id).unwrap() {
            let racks: std::collections::HashSet<usize> =
                b.replicas.iter().map(|&r| nn.rack_of(r)).collect();
            assert_eq!(
                racks.len(),
                2,
                "HDFS default: exactly two racks: {:?}",
                b.replicas
            );
            // Second and third replica share a rack distinct from the
            // first's.
            assert_ne!(nn.rack_of(b.replicas[0]), nn.rack_of(b.replicas[1]));
            assert_eq!(nn.rack_of(b.replicas[1]), nn.rack_of(b.replicas[2]));
        }
    }

    #[test]
    fn locality_levels_are_ordered() {
        let nn = NameNode::new(DfsConfig {
            racks: 4,
            ..Default::default()
        })
        .unwrap();
        let id = nn.register_file("/levels", 128 << 20).unwrap();
        let block = &nn.blocks(id).unwrap()[0];
        // The replica itself: node-local.
        assert_eq!(
            nn.locality_level(block.replicas[0], block),
            LocalityLevel::NodeLocal
        );
        // Some node shares a rack with a replica; some doesn't.
        let mut seen = std::collections::HashSet::new();
        for n in nn.nodes() {
            seen.insert(nn.locality_level(n, block));
        }
        assert!(seen.contains(&LocalityLevel::RackLocal));
        assert!(seen.contains(&LocalityLevel::OffRack));
        assert!(LocalityLevel::NodeLocal < LocalityLevel::RackLocal);
        assert!(LocalityLevel::RackLocal < LocalityLevel::OffRack);
    }

    #[test]
    fn single_rack_cluster_has_no_off_rack() {
        let nn = nn(); // default: one rack (the paper's single switch)
        let id = nn.register_file("/flat", 128 << 20).unwrap();
        let block = &nn.blocks(id).unwrap()[0];
        for n in nn.nodes() {
            assert_ne!(nn.locality_level(n, block), LocalityLevel::OffRack);
        }
    }

    #[test]
    fn bad_rack_count_rejected() {
        for racks in [0usize, 25] {
            assert!(NameNode::new(DfsConfig {
                racks,
                ..Default::default()
            })
            .is_err());
        }
    }

    #[test]
    fn duplicate_path_rejected() {
        let nn = nn();
        nn.register_file("/f", 1).unwrap();
        assert!(matches!(
            nn.register_file("/f", 1),
            Err(DfsError::DuplicatePath(_))
        ));
    }

    #[test]
    fn lookup_and_len() {
        let nn = nn();
        let id = nn.register_file("/f", 123).unwrap();
        assert_eq!(nn.lookup("/f"), Some(id));
        assert_eq!(nn.lookup("/g"), None);
        assert_eq!(nn.file_len(id).unwrap(), 123);
        assert_eq!(nn.file_path(id).unwrap(), "/f");
    }

    #[test]
    fn empty_file_gets_one_block() {
        let nn = nn();
        let id = nn.register_file("/empty", 0).unwrap();
        let blocks = nn.blocks(id).unwrap();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].len, 0);
    }
}
