//! Minimal offline stand-in for `rand`.
//!
//! The workspace declares `rand` in several manifests but does not
//! currently call into it (all randomness in the repo is hand-rolled
//! deterministic hashing). This shim keeps those manifests valid
//! offline and offers a small seedable generator should a crate start
//! using one.

/// A tiny splitmix64 generator: deterministic, seedable, good enough
/// for test-data jitter. Not cryptographic.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounded_draws_in_range() {
        let mut g = SplitMix64::seed_from_u64(7);
        for _ in 0..100 {
            assert!(g.next_below(13) < 13);
        }
    }
}
