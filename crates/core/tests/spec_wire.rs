//! The JobSpec wire contract shared by `sidr plan --spec`,
//! `sidr-lint --spec` and the `sidr-serve` daemon: a spec serialized
//! to JSON must parse back and re-plan to the *identical* plan, so the
//! three tools can never drift apart.

use sidr_coords::Shape;
use sidr_core::framework::{
    run_query, run_spec_on_pool, FrameworkMode, RunOptions, SpecRunOptions,
};
use sidr_core::spec::JobSpec;
use sidr_core::verify::PlanView;
use sidr_core::{Operator, SidrPlanner, StructuralQuery};
use sidr_mapreduce::{InMemoryOutput, InputSplit, SlotPool, SplitGenerator};
use sidr_scifile::gen::{DatasetSpec, ValueModel};
use sidr_scifile::ScincFile;

fn shape(v: &[u64]) -> Shape {
    Shape::new(v.to_vec()).unwrap()
}

fn setup() -> (StructuralQuery, Vec<InputSplit>) {
    let q = StructuralQuery::new(
        "v",
        shape(&[64, 10, 10]),
        shape(&[4, 5, 1]),
        Operator::Median,
    )
    .unwrap();
    let splits = SplitGenerator::new(q.input_space().clone(), 8)
        .exact_count(8)
        .unwrap();
    (q, splits)
}

/// §3.2.1's submission document round-trips through JSON and re-plans
/// to an identical `PlanView` — the exact artifact `sidr-analyze`
/// verifies and the server executes.
#[test]
fn spec_json_replans_to_an_identical_plan_view() {
    let (q, splits) = setup();
    let plan = SidrPlanner::new(&q, 4).build(&splits).unwrap();
    let spec = JobSpec::from_plan(&q, &splits, &plan).unwrap();
    let original_view = PlanView::of_plan(&plan, &q, &splits);

    // The wire hop: what `sidr plan --spec` writes, parsed back.
    let wire = spec.to_json();
    let back = JobSpec::from_json(&wire).unwrap();

    // Re-plan from nothing but the deserialized spec.
    let re_query = back.query().unwrap();
    let re_plan = SidrPlanner::new(&re_query, back.num_reducers)
        .build(&back.splits)
        .unwrap();
    let re_view = PlanView::of_plan(&re_plan, &re_query, &back.splits);

    assert_eq!(
        original_view, re_view,
        "re-planned view differs from the original: the wire contract drifted"
    );
    // And the stored tables agree with the re-derived plan.
    back.verify().unwrap();
}

/// A second hop (serialize the re-parsed spec again) is byte-stable:
/// serialization is deterministic, so specs can be diffed and cached.
#[test]
fn spec_json_is_byte_stable_across_round_trips() {
    let (q, splits) = setup();
    let plan = SidrPlanner::new(&q, 4).build(&splits).unwrap();
    let spec = JobSpec::from_plan(&q, &splits, &plan).unwrap();
    let once = spec.to_json();
    let twice = JobSpec::from_json(&once).unwrap().to_json();
    assert_eq!(once, twice);
}

/// Executing a deserialized spec on a shared slot pool produces the
/// same records as the batch `run_query` path — the guarantee the
/// serve integration test asserts over the network.
#[test]
fn spec_execution_matches_batch_run_query() {
    let space = shape(&[48, 6, 4]);
    let ds = DatasetSpec {
        variable: "t".into(),
        dim_names: vec!["d0".into(), "d1".into(), "d2".into()],
        space: space.clone(),
        model: ValueModel::LinearIndex,
        seed: 7,
    };
    let dir = std::env::temp_dir().join("sidr-spec-wire-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("specrun-{}.scinc", std::process::id()));
    let file: ScincFile = ds.generate::<f64>(&path).unwrap();

    let q = StructuralQuery::new("t", space, shape(&[4, 3, 2]), Operator::Mean).unwrap();
    let mut batch_opts = RunOptions::new(FrameworkMode::Sidr, 3);
    batch_opts.split_bytes = 6 * 4 * 8 * 4;
    let batch = run_query(&file, &q, &batch_opts).unwrap();

    // Build the submission document over the same splits the batch
    // run used, ship it through JSON, and execute it from the wire.
    let splits = sidr_core::framework::generate_splits(
        &file,
        &q,
        FrameworkMode::Sidr,
        batch_opts.split_bytes,
    )
    .unwrap();
    let plan = SidrPlanner::new(&q, 3).build(&splits).unwrap();
    let spec_json = JobSpec::from_plan(&q, &splits, &plan).unwrap().to_json();
    let spec = JobSpec::from_json(&spec_json).unwrap();

    let pool = SlotPool::new(4, 3).unwrap();
    let output = InMemoryOutput::new();
    run_spec_on_pool(
        &file,
        &spec,
        &SpecRunOptions::default(),
        &output,
        &pool,
        None,
    )
    .unwrap();
    assert_eq!(output.sorted_records(), batch.records);
    std::fs::remove_file(&path).ok();
}
