//! Builds simulated jobs from *real* planning artifacts: the actual
//! split generators, the actual `partition+` geometry, the actual
//! dependency derivation and the actual hash partitioner — only task
//! *durations* are modeled.

use sidr_coords::{Coord, Slab};
use sidr_core::{FrameworkMode, SidrPlanner, StructuralQuery};
use sidr_dfs::{DfsConfig, NameNode};
use sidr_mapreduce::{CoordHashPartitioner, Partitioner, RoutingPlan, SplitGenerator};

use crate::sim::{SimJob, SimMapTask, SimReduceTask};

/// How intermediate keys look to the hash partitioner under the
/// stock-Hadoop modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HashKeyModel {
    /// Dense, unpatterned keys: hash-modulo spreads them evenly (the
    /// Query 1 / Query 2 behavior of Figs. 9–11).
    Uniform,
    /// Keys are the *corner coordinates* of extraction instances —
    /// "coordinates at fixed intervals" (§4.3). With an even-sided
    /// extraction shape every key component is even, the binary
    /// representation is patterned, and modulo assignment starves a
    /// subset of the reducers (Fig. 13).
    CornerCoords,
}

/// Everything needed to synthesize one simulated job.
#[derive(Clone, Debug)]
pub struct SimWorkload {
    pub query: StructuralQuery,
    /// Bytes per input element in the backing file.
    pub element_size: u64,
    /// Intermediate bytes as a fraction of input bytes. Structural
    /// queries shuffle the raw values (1.0, compressed keys); the
    /// fetch itself overlaps the map phase, so the reduce-side cost
    /// model charges only the post-barrier merge+operate+write pass.
    pub shuffle_ratio: f64,
    /// Fraction of shuffled pairs that survive map-side selection —
    /// Query 2's 3σ filter passes 0.1 % of the data (§4.1).
    pub selectivity: f64,
    pub mode: FrameworkMode,
    pub num_reducers: usize,
    /// Split byte budget (one HDFS block in the paper).
    pub split_bytes: u64,
    /// Key pattern under the hash partitioner (ignored for SIDR).
    pub hash_keys: HashKeyModel,
    /// SIDR keyblock prioritization (§3.4).
    pub priority_region: Option<Slab>,
}

impl SimWorkload {
    /// A workload with the paper's defaults: f32 elements, 128 MB
    /// splits, uniform hash keys, full shuffle.
    pub fn new(query: StructuralQuery, mode: FrameworkMode, num_reducers: usize) -> Self {
        SimWorkload {
            query,
            element_size: 4,
            shuffle_ratio: 1.0,
            selectivity: 1.0,
            mode,
            num_reducers,
            split_bytes: 128 << 20,
            hash_keys: HashKeyModel::Uniform,
            priority_region: None,
        }
    }

    /// Total input bytes of the dataset.
    pub fn input_bytes(&self) -> u64 {
        self.query.input_space().count() * self.element_size
    }

    /// Total intermediate bytes crossing the shuffle.
    pub fn intermediate_bytes(&self) -> u64 {
        (self.input_bytes() as f64 * self.shuffle_ratio * self.selectivity) as u64
    }
}

/// Derives the [`SimJob`] for a workload: real splits with real DFS
/// placement, real keyblock sizes, real dependency sets.
pub fn build_sim_job(w: &SimWorkload) -> sidr_core::Result<SimJob> {
    let dfs = NameNode::new(DfsConfig::default()).expect("default DFS config is valid");
    let file = dfs
        .register_file("/sim/input.scinc", w.input_bytes())
        .expect("fresh namenode has no duplicates");

    let generator =
        SplitGenerator::new(w.query.input_space().clone(), w.element_size).with_dfs(&dfs, file, 0);
    let splits = match w.mode {
        FrameworkMode::Hadoop => generator.naive_linear(w.split_bytes)?,
        FrameworkMode::SciHadoop | FrameworkMode::Sidr => {
            generator.aligned(w.split_bytes, w.query.extraction.shape()[0])?
        }
    };

    let oblivious = w.mode == FrameworkMode::Hadoop;
    let maps: Vec<SimMapTask> = splits
        .iter()
        .map(|s| SimMapTask {
            input_bytes: s.byte_range.1 - s.byte_range.0,
            // HDFS replication factor: the top replicas host the bulk
            // of the split.
            preferred_nodes: s.preferred_nodes.iter().take(3).map(|n| n.0).collect(),
            oblivious,
        })
        .collect();

    let total_intermediate = w.intermediate_bytes();

    let (reduces, reduce_order, invert) = match w.mode {
        FrameworkMode::Hadoop | FrameworkMode::SciHadoop => {
            let weights = hash_key_weights(&w.query, w.num_reducers, w.hash_keys);
            let total_w: u64 = weights.iter().sum();
            let reduces = weights
                .iter()
                .map(|&kw| SimReduceTask {
                    input_bytes: if total_w == 0 {
                        0
                    } else {
                        (total_intermediate as u128 * kw as u128 / total_w as u128) as u64
                    },
                    deps: None, // global barrier (§2.3.1)
                })
                .collect();
            (reduces, (0..w.num_reducers).collect(), false)
        }
        FrameworkMode::Sidr => {
            let mut planner = SidrPlanner::new(&w.query, w.num_reducers);
            if let Some(region) = &w.priority_region {
                planner = planner.prioritize_region(region.clone());
            }
            let plan = planner.build(&splits)?;
            let total_keys = w.query.intermediate_space().count();
            let reduces = (0..w.num_reducers)
                .map(|r| {
                    let kw = plan.partition().keyblock_key_count(r)?;
                    Ok(SimReduceTask {
                        input_bytes: (total_intermediate as u128 * kw as u128 / total_keys as u128)
                            as u64,
                        deps: Some(plan.dependencies().reduce_deps(r).to_vec()),
                    })
                })
                .collect::<sidr_core::Result<Vec<_>>>()?;
            (reduces, plan.reduce_order(), true)
        }
    };

    Ok(SimJob {
        maps,
        reduces,
        reduce_order,
        invert_scheduling: invert,
    })
}

/// Exact per-reducer key counts under the hash-modulo partitioner:
/// walks `K′ᵀ`, encoding keys per the [`HashKeyModel`], and applies
/// the real `CoordHashPartitioner`.
pub fn hash_key_weights(
    query: &StructuralQuery,
    num_reducers: usize,
    model: HashKeyModel,
) -> Vec<u64> {
    let p = CoordHashPartitioner;
    let mut weights = vec![0u64; num_reducers];
    let kspace = query.intermediate_space();
    let ext = query.extraction.shape().extents().to_vec();
    for kp in kspace.iter_coords() {
        let key = match model {
            HashKeyModel::Uniform => kp,
            HashKeyModel::CornerCoords => Coord::new(
                kp.components()
                    .iter()
                    .zip(&ext)
                    .map(|(&c, &e)| c * e)
                    .collect::<Vec<u64>>(),
            ),
        };
        weights[p.partition(&key, num_reducers)] += 1;
    }
    weights
}

/// Total shuffle connections a workload incurs: Hadoop contacts every
/// map from every reducer; SIDR contacts only dependencies (Table 3).
pub fn connection_count(w: &SimWorkload) -> sidr_core::Result<u64> {
    let job = build_sim_job(w)?;
    let n_maps = job.maps.len() as u64;
    Ok(job
        .reduces
        .iter()
        .map(|r| match &r.deps {
            Some(d) => d.len() as u64,
            None => n_maps,
        })
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidr_coords::Shape;
    use sidr_core::Operator;

    fn shape(v: &[u64]) -> Shape {
        Shape::new(v.to_vec()).unwrap()
    }

    fn small_query() -> StructuralQuery {
        StructuralQuery::new(
            "v",
            shape(&[240, 12, 12]),
            shape(&[2, 4, 4]),
            Operator::Median,
        )
        .unwrap()
    }

    #[test]
    fn sidr_job_has_deps_and_inversion() {
        let w = SimWorkload {
            split_bytes: 12 * 12 * 4 * 8, // 8 leading rows per split
            ..SimWorkload::new(small_query(), FrameworkMode::Sidr, 6)
        };
        let job = build_sim_job(&w).unwrap();
        assert!(job.invert_scheduling);
        for r in &job.reduces {
            let deps = r.deps.as_ref().unwrap();
            assert!(!deps.is_empty());
            assert!(
                deps.len() < job.maps.len(),
                "deps should be a strict subset"
            );
        }
        // Reduce input bytes sum to ~total intermediate bytes.
        let total: u64 = job.reduces.iter().map(|r| r.input_bytes).sum();
        let expect = w.intermediate_bytes();
        assert!(
            (total as i64 - expect as i64).unsigned_abs() <= w.num_reducers as u64 * 64,
            "{total} vs {expect}"
        );
    }

    #[test]
    fn hadoop_job_is_global_barrier() {
        let w = SimWorkload {
            split_bytes: 12 * 12 * 4 * 8,
            ..SimWorkload::new(small_query(), FrameworkMode::Hadoop, 4)
        };
        let job = build_sim_job(&w).unwrap();
        assert!(!job.invert_scheduling);
        assert!(job.reduces.iter().all(|r| r.deps.is_none()));
        assert!(job.maps.iter().all(|m| m.oblivious));
    }

    #[test]
    fn uniform_hash_weights_are_balanced() {
        let weights = hash_key_weights(&small_query(), 7, HashKeyModel::Uniform);
        let total: u64 = weights.iter().sum();
        assert_eq!(total, small_query().intermediate_space().count());
        let expect = total as f64 / 7.0;
        for &w in &weights {
            assert!((w as f64) > 0.5 * expect && (w as f64) < 1.5 * expect);
        }
    }

    #[test]
    fn corner_coord_weights_starve_reducers() {
        // Extraction {2,4,4}: every corner coordinate is even → the
        // §4.3 pathology with an even reducer count.
        let weights = hash_key_weights(&small_query(), 22, HashKeyModel::CornerCoords);
        let starved = weights.iter().filter(|&&w| w == 0).count();
        assert!(
            starved >= 11,
            "expected >= half the reducers starved, weights {weights:?}"
        );
    }

    #[test]
    fn connection_counts_match_table3_shape() {
        let q = small_query();
        for r in [4usize, 8, 16] {
            let hadoop = connection_count(&SimWorkload {
                split_bytes: 12 * 12 * 4 * 8,
                ..SimWorkload::new(q.clone(), FrameworkMode::Hadoop, r)
            })
            .unwrap();
            let sidr = connection_count(&SimWorkload {
                split_bytes: 12 * 12 * 4 * 8,
                ..SimWorkload::new(q.clone(), FrameworkMode::Sidr, r)
            })
            .unwrap();
            assert!(sidr < hadoop / 2, "r={r}: sidr {sidr} vs hadoop {hadoop}");
        }
    }
}
