//! The three Reduce-output strategies compared in §4.4 / Table 2.
//!
//! * [`write_dense_output`] — SIDR's approach: `partition+` gives each
//!   Reduce task a dense, contiguous keyblock, so the task writes a
//!   small file holding just its slab, with the slab's global origin
//!   recorded in an attribute ("coordinates of individual points are
//!   relative to the origin of that dense array and their global
//!   position … is inferred from that origin point").
//! * [`write_sentinel_output`] — stock Hadoop's common workaround for
//!   scattered keys: each Reduce task writes a file representing the
//!   *entire* output space, filled with a sentinel, with its own keys
//!   poked in. File size = total output size per task; write time
//!   grows with the reducer count.
//! * [`CoordValueWriter`] — the other workaround: explicit
//!   coordinate/value pairs, constant overhead per useful element.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use sidr_coords::{Coord, Shape, Slab};

use crate::error::ScifileError;
use crate::file::ScincFile;
use crate::metadata::{DataType, Dimension, Metadata, Variable};
use crate::value::Element;
use crate::Result;

/// Dimension-name prefix used for generated output dimensions.
fn output_metadata(variable: &str, dtype: DataType, shape: &Shape, origin: &Coord) -> Metadata {
    let dims: Vec<Dimension> = shape
        .extents()
        .iter()
        .enumerate()
        .map(|(i, &e)| Dimension::new(format!("d{i}"), e))
        .collect();
    let dim_names = dims.iter().map(|d| d.name.clone()).collect();
    let mut md = Metadata::new(dims, vec![Variable::new(variable, dtype, dim_names)])
        .expect("generated names are unique");
    md.set_attribute(
        "origin",
        origin
            .components()
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(","),
    );
    md
}

/// Parses the `origin` attribute written by [`write_dense_output`].
pub fn read_origin(md: &Metadata) -> Option<Coord> {
    let raw = md.attributes().get("origin")?;
    let comps: Option<Vec<u64>> = raw.split(',').map(|p| p.parse().ok()).collect();
    Some(Coord::new(comps?))
}

/// SIDR's dense, contiguous output: a file exactly the size of the
/// task's keyblock slab, origin recorded in metadata. Write time and
/// size are independent of the total output size (Table 2, bottom
/// row).
pub fn write_dense_output<E: Element>(
    path: impl AsRef<Path>,
    variable: &str,
    slab: &Slab,
    data: &[E],
) -> Result<ScincFile> {
    let md = output_metadata(variable, E::DATA_TYPE, slab.shape(), slab.corner());
    let f = ScincFile::create(path, md)?;
    let local = Slab::whole(slab.shape());
    f.write_slab(variable, &local, data)?;
    f.sync()?;
    Ok(f)
}

/// Stock Hadoop's sentinel strategy: the file spans the whole output
/// space, absent keys hold `sentinel`, and this task's elements are
/// written at their global coordinates. Write time and size grow with
/// the total output (Table 2, top rows).
pub fn write_sentinel_output<E: Element>(
    path: impl AsRef<Path>,
    variable: &str,
    total_space: &Shape,
    sentinel: E,
    points: &[(Coord, E)],
) -> Result<ScincFile> {
    let md = output_metadata(
        variable,
        E::DATA_TYPE,
        total_space,
        &Coord::origin(total_space.rank()),
    );
    let f = ScincFile::create(path, md)?;
    f.fill(variable, sentinel)?;
    let one = Shape::new(vec![1; total_space.rank()])?;
    for (coord, value) in points {
        let cell = Slab::new(coord.clone(), one.clone())?;
        f.write_slab(variable, &cell, std::slice::from_ref(value))?;
    }
    f.sync()?;
    Ok(f)
}

/// Streaming writer of explicit coordinate/value pairs — "both the
/// data and coordinate are explicitly stored, rather than the
/// coordinate being implicit", a constant-factor overhead independent
/// of the reducer count (§4.4).
pub struct CoordValueWriter<E: Element> {
    out: BufWriter<File>,
    rank: usize,
    written: u64,
    _marker: std::marker::PhantomData<E>,
}

impl<E: Element> CoordValueWriter<E> {
    /// Creates a pair file for `rank`-dimensional coordinates.
    pub fn create(path: impl AsRef<Path>, rank: usize) -> Result<Self> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(b"SCCV")?;
        out.write_all(&(rank as u32).to_le_bytes())?;
        out.write_all(&[E::DATA_TYPE.tag()])?;
        Ok(CoordValueWriter {
            out,
            rank,
            written: 0,
            _marker: std::marker::PhantomData,
        })
    }

    /// Appends one pair.
    pub fn push(&mut self, coord: &Coord, value: E) -> Result<()> {
        if coord.rank() != self.rank {
            return Err(ScifileError::Coord(sidr_coords::CoordError::RankMismatch {
                expected: self.rank,
                actual: coord.rank(),
            }));
        }
        for &c in coord.components() {
            self.out.write_all(&c.to_le_bytes())?;
        }
        let mut buf = Vec::with_capacity(E::SIZE);
        value.write_le(&mut buf);
        self.out.write_all(&buf)?;
        self.written += 1;
        Ok(())
    }

    /// Pairs written so far.
    pub fn len(&self) -> u64 {
        self.written
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.written == 0
    }

    /// Flushes and closes the file.
    pub fn finish(mut self) -> Result<()> {
        self.out.flush()?;
        Ok(())
    }
}

/// Reads back a coordinate/value pair file in write order.
pub fn read_coord_value_pairs<E: Element>(path: impl AsRef<Path>) -> Result<Vec<(Coord, E)>> {
    let mut input = BufReader::new(File::open(path)?);
    let mut fixed = [0u8; 9];
    input.read_exact(&mut fixed)?;
    if &fixed[..4] != b"SCCV" {
        return Err(ScifileError::BadMagic {
            found: fixed[..4].try_into().expect("len 4"),
        });
    }
    let rank = u32::from_le_bytes(fixed[4..8].try_into().expect("len 4")) as usize;
    let tag = fixed[8];
    if Some(E::DATA_TYPE) != DataType::from_tag(tag) {
        return Err(ScifileError::CorruptHeader(format!(
            "pair file holds dtype tag {tag}, requested {:?}",
            E::DATA_TYPE
        )));
    }
    let mut pairs = Vec::new();
    let mut rec = vec![0u8; rank * 8 + E::SIZE];
    loop {
        match input.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let comps: Vec<u64> = rec[..rank * 8]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("len 8")))
            .collect();
        let value = E::read_le(&rec[rank * 8..]);
        pairs.push((Coord::new(comps), value));
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sidr-sparse-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn shape(v: &[u64]) -> Shape {
        Shape::new(v.to_vec()).unwrap()
    }

    #[test]
    fn dense_output_roundtrip_with_origin() {
        let path = temp_path("dense");
        let slab = Slab::new(Coord::from([10, 20]), shape(&[2, 3])).unwrap();
        let data: Vec<f64> = (0..6).map(f64::from).collect();
        write_dense_output(&path, "out", &slab, &data).unwrap();

        let f = ScincFile::open(&path).unwrap();
        assert_eq!(read_origin(f.metadata()), Some(Coord::from([10, 20])));
        assert_eq!(
            f.read_slab::<f64>("out", &Slab::whole(&shape(&[2, 3])))
                .unwrap(),
            data
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dense_output_size_is_slab_size() {
        let path = temp_path("dense-size");
        let slab = Slab::new(Coord::from([0, 0]), shape(&[4, 4])).unwrap();
        write_dense_output(&path, "out", &slab, &[0.0f64; 16]).unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        // Header is small; data is 16 doubles.
        assert!((16 * 8..16 * 8 + 512).contains(&len), "len {len}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sentinel_output_spans_total_space() {
        let path = temp_path("sentinel");
        let total = shape(&[8, 8]);
        let points = vec![(Coord::from([1, 1]), 5i32), (Coord::from([7, 0]), 9i32)];
        write_sentinel_output(&path, "out", &total, -1i32, &points).unwrap();
        let f = ScincFile::open(&path).unwrap();
        let all = f.read_slab::<i32>("out", &Slab::whole(&total)).unwrap();
        let lin = |c: &Coord| total.linearize(c).unwrap() as usize;
        assert_eq!(all[lin(&Coord::from([1, 1]))], 5);
        assert_eq!(all[lin(&Coord::from([7, 0]))], 9);
        let sentinels = all.iter().filter(|&&v| v == -1).count();
        assert_eq!(sentinels, 64 - 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn coord_value_pairs_roundtrip() {
        let path = temp_path("pairs");
        let mut w = CoordValueWriter::<f32>::create(&path, 3).unwrap();
        let pairs = vec![
            (Coord::from([0, 0, 0]), 1.5f32),
            (Coord::from([9, 2, 4]), -3.25f32),
        ];
        for (c, v) in &pairs {
            w.push(c, *v).unwrap();
        }
        assert_eq!(w.len(), 2);
        w.finish().unwrap();
        assert_eq!(read_coord_value_pairs::<f32>(&path).unwrap(), pairs);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn coord_value_rank_mismatch_rejected() {
        let path = temp_path("pairs-rank");
        let mut w = CoordValueWriter::<f32>::create(&path, 2).unwrap();
        assert!(w.push(&Coord::from([1, 2, 3]), 0.0).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
