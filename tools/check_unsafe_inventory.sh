#!/usr/bin/env bash
# Enforces docs/UNSAFE.md: every file using `unsafe` must be listed
# there, and every `unsafe { .. }` block must carry a SAFETY: comment
# within the three lines above it.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# Files allowed to contain the `unsafe` keyword: the inventory table's
# first column (backtick-quoted paths).
mapfile -t allowed < <(grep -oP '^\| `\K[^`]+' docs/UNSAFE.md)

# Files actually containing `unsafe` as code (comment lines skipped —
# docs may discuss the keyword freely).
while IFS= read -r file; do
    ok=0
    for a in "${allowed[@]}"; do
        [ "$file" = "$a" ] && ok=1 && break
    done
    if [ "$ok" = 0 ]; then
        echo "ERROR: $file uses 'unsafe' but is not in docs/UNSAFE.md" >&2
        fail=1
    fi
done < <(grep -rnE '(^|[^_a-zA-Z"])unsafe([^_a-zA-Z]|$)' \
    --include='*.rs' crates/ shims/ src/ 2>/dev/null \
    | grep -vE '^[^:]+:[0-9]+:\s*//' | cut -d: -f1 | sort -u)

# Every `unsafe {` block needs a SAFETY: comment within 3 lines above.
while IFS=: read -r file line _; do
    start=$((line > 3 ? line - 3 : 1))
    if ! sed -n "${start},${line}p" "$file" | grep -q 'SAFETY:'; then
        echo "ERROR: $file:$line: unsafe block without a SAFETY: comment" >&2
        fail=1
    fi
done < <(grep -rnE 'unsafe \{' --include='*.rs' crates/ shims/ src/ 2>/dev/null)

if [ "$fail" = 0 ]; then
    echo "unsafe inventory clean: ${#allowed[@]} file(s) allowlisted"
fi
exit "$fail"
