//! Cross-validation between the two execution stacks: for the same
//! query, mode and split layout, the discrete-event simulator's
//! structural quantities (map counts, shuffle connections, skipped
//! maps) must equal what the real threaded engine actually measures.
//! This pins the simulator — which regenerates the paper-scale
//! figures — to ground truth.

use sidr_repro::coords::Shape;
use sidr_repro::core::framework::RunOptions;
use sidr_repro::core::{run_query, FrameworkMode, Operator, StructuralQuery};
use sidr_repro::scifile::gen::{DatasetSpec, ValueModel};
use sidr_repro::simcluster::{build_sim_job, SimWorkload};

fn shape(v: &[u64]) -> Shape {
    Shape::new(v.to_vec()).unwrap()
}

fn dataset(name: &str, space: &Shape) -> sidr_repro::scifile::ScincFile {
    let spec = DatasetSpec {
        variable: "v".into(),
        dim_names: (0..space.rank()).map(|i| format!("d{i}")).collect(),
        space: space.clone(),
        model: ValueModel::LinearIndex,
        seed: 0,
    };
    let dir = std::env::temp_dir().join("sidr-crossval");
    std::fs::create_dir_all(&dir).unwrap();
    spec.generate::<f64>(dir.join(format!("{name}-{}.scinc", std::process::id())))
        .unwrap()
}

#[test]
fn simulator_structure_matches_real_engine() {
    let space = shape(&[96, 10, 10]);
    let file = dataset("struct", &space);
    let query =
        StructuralQuery::new("v", space.clone(), shape(&[4, 5, 5]), Operator::Mean).unwrap();
    // 8 leading rows per split.
    let split_bytes = 10 * 10 * 8 * 8;

    for mode in [FrameworkMode::SciHadoop, FrameworkMode::Sidr] {
        for reducers in [3usize, 7] {
            // Real engine.
            let mut opts = RunOptions::new(mode, reducers);
            opts.split_bytes = split_bytes;
            let real = run_query(&file, &query, &opts).unwrap();

            // Simulator job from the same planning inputs.
            let mut w = SimWorkload::new(query.clone(), mode, reducers);
            w.element_size = 8; // f64 file
            w.split_bytes = split_bytes;
            let sim = build_sim_job(&w).unwrap();

            assert_eq!(
                sim.maps.len(),
                real.num_maps,
                "{mode}/{reducers}: map counts diverge"
            );
            let sim_connections: u64 = sim
                .reduces
                .iter()
                .map(|r| match &r.deps {
                    Some(d) => d.len() as u64,
                    None => sim.maps.len() as u64,
                })
                .sum();
            assert_eq!(
                sim_connections, real.result.counters.shuffle_connections,
                "{mode}/{reducers}: connection counts diverge"
            );
        }
    }
}

#[test]
fn simulator_and_engine_agree_on_skipped_maps() {
    // Trailing discarded region: space {52, 8} with extraction {8, 8}
    // discards rows 48..52; with 4-row splits the last split is
    // entirely discarded.
    let space = shape(&[52, 8]);
    let file = dataset("skip", &space);
    let query = StructuralQuery::new("v", space.clone(), shape(&[8, 8]), Operator::Mean).unwrap();
    // One extraction instance (8 rows x 8 cols of f64) per split: the
    // final 4-row split lies entirely in the discarded region.
    let split_bytes = 8 * 8 * 8;

    let mut opts = RunOptions::new(FrameworkMode::Sidr, 3);
    opts.split_bytes = split_bytes;
    let real = run_query(&file, &query, &opts).unwrap();

    let mut w = SimWorkload::new(query, FrameworkMode::Sidr, 3);
    w.element_size = 8;
    w.split_bytes = split_bytes;
    let sim = build_sim_job(&w).unwrap();
    let sim_skipped = {
        let mut needed = vec![false; sim.maps.len()];
        for r in &sim.reduces {
            for &m in r.deps.as_ref().unwrap() {
                needed[m] = true;
            }
        }
        needed.iter().filter(|&&n| !n).count() as u64
    };
    assert_eq!(real.result.counters.maps_skipped, sim_skipped);
    assert!(
        sim_skipped >= 1,
        "the all-discarded split should be skipped"
    );
}
