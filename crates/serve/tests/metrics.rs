//! End-to-end agreement between the two observability surfaces: after
//! a known workload, the `Metrics` frame's Prometheus exposition must
//! tell the same story as the `Stats` frame's [`ServerStats`]
//! snapshot, and the engine's histograms must have seen the work.
//!
//! This test lives alone in its own integration-test binary on
//! purpose: the metric registry is process-global, so any other test
//! running jobs in the same process would perturb the counters.

use std::path::PathBuf;
use std::thread;

use sidr_analyze::presets;
use sidr_core::spec::JobSpec;
use sidr_core::SidrPlanner;
use sidr_obs::text::{self, Exposition};
use sidr_scifile::gen::{DatasetSpec, ValueModel};
use sidr_serve::{Client, Server, ServerConfig, SubmitOptions};

/// Builds the CI-scale preset's spec and (once per path) its dataset.
fn tiny_fixture(tag: &str) -> (JobSpec, String) {
    let job = presets::preset("query1-tiny").expect("preset exists");
    let plan = SidrPlanner::new(&job.query, job.reducer_counts[0])
        .build(&job.splits)
        .unwrap();
    let spec = JobSpec::from_plan(&job.query, &job.splits, &plan).unwrap();

    let dir = std::env::temp_dir().join("sidr-serve-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path: PathBuf = dir.join(format!("tiny-{}-{tag}.scinc", std::process::id()));
    if !path.exists() {
        let space = job.query.input_space().clone();
        DatasetSpec {
            variable: job.query.variable.clone(),
            dim_names: (0..space.rank()).map(|d| format!("d{d}")).collect(),
            space,
            model: ValueModel::LinearIndex,
            seed: 0,
        }
        .generate::<f32>(&path)
        .unwrap();
    }
    (spec, path.to_string_lossy().into_owned())
}

/// The sole sample of a label-free series, as a count.
fn value(exp: &Exposition, name: &str) -> u64 {
    let s = exp
        .sample(name, &[])
        .unwrap_or_else(|| panic!("metric {name} missing from exposition"));
    s.value as u64
}

fn gauge(exp: &Exposition, name: &str, label: (&str, &str)) -> i64 {
    let s = exp
        .sample(name, &[label])
        .unwrap_or_else(|| panic!("metric {name}{{{}={:?}}} missing", label.0, label.1));
    s.value as i64
}

#[test]
fn metrics_frame_agrees_with_stats_after_known_workload() {
    let (spec, input) = tiny_fixture("metrics");
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            map_slots: 2,
            reduce_slots: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    thread::spawn(move || server.run());

    let mut client = Client::connect(addr).unwrap();

    // An idle daemon already exposes the full inventory, all zero.
    let idle = text::parse(&client.metrics().unwrap()).expect("idle exposition parses");
    assert_eq!(value(&idle, "sidr_serve_jobs_done_total"), 0);
    assert_eq!(value(&idle, "sidr_serve_keyblocks_total"), 0);
    assert_eq!(gauge(&idle, "sidr_slots_busy", ("class", "map")), 0);

    // Known workload: two jobs to completion, plus one rejected
    // submission (a spec whose plan the pre-flight refuses).
    let mut keyblock_frames = 0u64;
    for _ in 0..2 {
        let ticket = client
            .submit(&spec, &input, SubmitOptions::default())
            .unwrap();
        let outcome = client
            .stream_job(ticket.job, |_reducer, _at_ms, _records| {
                keyblock_frames += 1;
            })
            .unwrap();
        assert!(outcome.completed);
    }
    let mut bad = spec.clone();
    bad.reduce_deps[0].pop();
    assert!(client
        .submit(&bad, &input, SubmitOptions::default())
        .is_err());

    let stats = client.stats().unwrap();
    let scraped = client.metrics().unwrap();
    let exp = text::parse(&scraped).expect("exposition parses");

    // The scrape and the stats snapshot agree on the lifetime story.
    assert_eq!(stats.jobs_done, 2);
    assert_eq!(value(&exp, "sidr_serve_jobs_done_total"), stats.jobs_done);
    assert_eq!(
        value(&exp, "sidr_serve_jobs_failed_total"),
        stats.jobs_failed
    );
    assert_eq!(
        value(&exp, "sidr_serve_jobs_cancelled_total"),
        stats.jobs_cancelled
    );
    assert_eq!(value(&exp, "sidr_serve_rejections_total"), 1);
    assert_eq!(
        value(&exp, "sidr_serve_keyblocks_total"),
        stats.keyblocks_committed
    );
    assert_eq!(keyblock_frames, stats.keyblocks_committed);

    // Both jobs terminal: the occupancy gauges are back to zero, and
    // slot totals mirror the pool.
    assert_eq!(gauge(&exp, "sidr_serve_jobs", ("state", "queued")), 0);
    assert_eq!(gauge(&exp, "sidr_serve_jobs", ("state", "running")), 0);
    assert_eq!(
        gauge(&exp, "sidr_slots_total", ("class", "map")),
        stats.map_total as i64
    );
    assert_eq!(
        gauge(&exp, "sidr_slots_total", ("class", "reduce")),
        stats.reduce_total as i64
    );
    assert_eq!(gauge(&exp, "sidr_slots_busy", ("class", "map")), 0);
    assert_eq!(gauge(&exp, "sidr_slots_busy", ("class", "reduce")), 0);

    // Streamed-byte accounting matches (all keyblock frames were
    // written to this, the only, client).
    assert_eq!(
        value(&exp, "sidr_serve_streamed_bytes_total"),
        stats.bytes_streamed
    );
    assert!(stats.bytes_streamed > 0);

    // The engine's histograms saw the work: every map and reduce task
    // of both jobs, and a TTFB observation per job.
    let num_maps = spec.splits.len() as u64;
    let num_reducers = spec.num_reducers as u64;
    assert_eq!(
        value(&exp, "sidr_map_task_seconds_count"),
        2 * num_maps,
        "map-task histogram count"
    );
    assert_eq!(
        value(&exp, "sidr_reduce_task_seconds_count"),
        2 * num_reducers,
        "reduce-task histogram count"
    );
    assert_eq!(value(&exp, "sidr_serve_ttfb_seconds_count"), 2);

    // The scrape went over the wire, so frame counters are live; this
    // scrape's own request is included, its response not yet.
    let frames_in = gauge(&exp, "sidr_serve_frames_total", ("dir", "in"));
    let frames_out = gauge(&exp, "sidr_serve_frames_total", ("dir", "out"));
    assert!(frames_in >= 5, "at least 5 requests sent, saw {frames_in}");
    assert!(
        frames_out >= 5,
        "at least 5 responses written, saw {frames_out}"
    );

    handle.shutdown();
}
