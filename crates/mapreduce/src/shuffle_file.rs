//! On-disk map-output files with the §3.2.1 count annotation in the
//! header.
//!
//! "Approach 2 requires the addition of a field to the header for each
//! Map output file that indicates how many ⟨k,v⟩ are represented by
//! the set of all ⟨k′,v′⟩ in that file. With this addition, a Reduce
//! task can track the count of how many ⟨k,v⟩ are represented by the
//! contents of the files containing its intermediate data **without
//! having to read and parse those files**."
//!
//! Layout (little-endian):
//!
//! ```text
//! magic    b"SMOF"
//! version  u32
//! raw      u64   <- the annotation: raw ⟨k,v⟩ pairs represented
//! records  u64   <- ⟨k′,v′⟩ records that follow
//! payload  records × (key, value) in WireFormat encoding
//! ```

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

use crate::error::MrError;
use crate::shuffle::MapOutputFile;
use crate::task::{MrKey, MrValue};
use crate::wire::WireFormat;
use crate::Result;

const MAGIC: [u8; 4] = *b"SMOF";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// Writes one map-output file to `path`.
pub fn write_map_output<K, V>(path: impl AsRef<Path>, file: &MapOutputFile<K, V>) -> Result<()>
where
    K: MrKey + WireFormat,
    V: MrValue + WireFormat,
{
    let mut out = BufWriter::new(File::create(path).map_err(io_err)?);
    out.write_all(&MAGIC).map_err(io_err)?;
    out.write_all(&VERSION.to_le_bytes()).map_err(io_err)?;
    out.write_all(&file.raw_count.to_le_bytes())
        .map_err(io_err)?;
    out.write_all(&(file.records.len() as u64).to_le_bytes())
        .map_err(io_err)?;
    let mut buf = Vec::new();
    for (k, v) in &file.records {
        buf.clear();
        k.encode(&mut buf);
        v.encode(&mut buf);
        out.write_all(&buf).map_err(io_err)?;
    }
    out.flush().map_err(io_err)?;
    Ok(())
}

/// Reads *only* the header: `(raw_count, record_count)` — the
/// annotation tally path that lets a Reduce task understand its data
/// "at the logical level" without parsing it (§3.2.1).
pub fn read_annotation(path: impl AsRef<Path>) -> Result<(u64, u64)> {
    let mut file = File::open(path).map_err(io_err)?;
    let mut header = [0u8; HEADER_LEN];
    file.read_exact(&mut header).map_err(io_err)?;
    parse_header(&header)
}

fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u64, u64)> {
    if header[..4] != MAGIC {
        return Err(MrError::Source(format!(
            "not a map-output file (magic {:?})",
            &header[..4]
        )));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("len 4"));
    if version != VERSION {
        return Err(MrError::Source(format!(
            "unknown map-output version {version}"
        )));
    }
    let raw = u64::from_le_bytes(header[8..16].try_into().expect("len 8"));
    let records = u64::from_le_bytes(header[16..24].try_into().expect("len 8"));
    Ok((raw, records))
}

/// Reads a complete map-output file back.
pub fn read_map_output<K, V>(path: impl AsRef<Path>) -> Result<MapOutputFile<K, V>>
where
    K: MrKey + WireFormat,
    V: MrValue + WireFormat,
{
    let mut file = File::open(path).map_err(io_err)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(io_err)?;
    if bytes.len() < HEADER_LEN {
        return Err(MrError::Source(
            "map-output file shorter than header".into(),
        ));
    }
    let header: &[u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().expect("len checked");
    let (raw_count, n_records) = parse_header(header)?;
    let mut buf = &bytes[HEADER_LEN..];
    // Cap the pre-allocation: a corrupt count field must not trigger a
    // huge allocation before decoding fails.
    let mut records = Vec::with_capacity((n_records as usize).min(1 << 20));
    for _ in 0..n_records {
        let k = K::decode(&mut buf)?;
        let v = V::decode(&mut buf)?;
        records.push((k, v));
    }
    if !buf.is_empty() {
        return Err(MrError::Source(format!(
            "{} trailing bytes after {} records",
            buf.len(),
            n_records
        )));
    }
    Ok(MapOutputFile { records, raw_count })
}

fn io_err(e: std::io::Error) -> MrError {
    MrError::Source(format!("shuffle spill I/O: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidr_coords::Coord;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sidr-smof-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn sample() -> MapOutputFile<Coord, f64> {
        MapOutputFile {
            records: vec![
                (Coord::from([0, 1]), 1.5),
                (Coord::from([0, 2]), -2.25),
                (Coord::from([1, 0]), 0.0),
            ],
            raw_count: 12, // combiner folded 12 raw pairs into 3
        }
    }

    #[test]
    fn full_roundtrip() {
        let path = temp_path("roundtrip");
        let f = sample();
        write_map_output(&path, &f).unwrap();
        let back: MapOutputFile<Coord, f64> = read_map_output(&path).unwrap();
        assert_eq!(back.records, f.records);
        assert_eq!(back.raw_count, 12);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn annotation_read_is_header_only() {
        let path = temp_path("annotation");
        write_map_output(&path, &sample()).unwrap();
        // Truncate the payload: the annotation must still be readable
        // (it never touches the records).
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..HEADER_LEN]).unwrap();
        let (raw, records) = read_annotation(&path).unwrap();
        assert_eq!((raw, records), (12, 3));
        // But a full read of the truncated file fails loudly.
        assert!(read_map_output::<Coord, f64>(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let path = temp_path("magic");
        write_map_output(&path, &sample()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_annotation(&path).is_err());
        bytes[0] = b'S';
        bytes[4] = 9;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_annotation(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn trailing_garbage_detected() {
        let path = temp_path("trailing");
        write_map_output(&path, &sample()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0xAB);
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_map_output::<Coord, f64>(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
