//! Geometry primitives underneath split generation, routing and
//! output: linearization, slab intersection, run covers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use sidr_coords::{ContiguousPartition, Coord, Shape, Slab};

fn bench_coords(c: &mut Criterion) {
    let space = Shape::new(vec![3600, 10, 20, 5]).expect("valid"); // Query 1 K'^T
    let coords: Vec<Coord> = (0..100_000u64)
        .map(|i| {
            space
                .delinearize((i * 104_729) % space.count())
                .expect("in bounds")
        })
        .collect();

    let mut group = c.benchmark_group("coords");
    group.throughput(Throughput::Elements(coords.len() as u64));
    group.bench_function("linearize", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in &coords {
                acc = acc.wrapping_add(space.linearize(black_box(k)).expect("in bounds"));
            }
            black_box(acc)
        })
    });
    group.bench_function("delinearize", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                let c = space
                    .delinearize((i * 31) % space.count())
                    .expect("in bounds");
                acc = acc.wrapping_add(c[0]);
            }
            black_box(acc)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("slabs");
    let a = Slab::new(
        Coord::from([100, 0, 0, 0]),
        Shape::new(vec![500, 10, 20, 5]).unwrap(),
    )
    .expect("valid");
    let b_slab = Slab::new(
        Coord::from([300, 2, 5, 1]),
        Shape::new(vec![900, 8, 10, 4]).unwrap(),
    )
    .expect("valid");
    group.bench_function("intersect", |bch| {
        bch.iter(|| {
            black_box(&a)
                .intersect(black_box(&b_slab))
                .expect("same rank")
        })
    });
    group.finish();

    // Keyblock cover computation: the routing-table build cost per
    // reduce task at plan time.
    let mut group = c.benchmark_group("partition_geometry");
    let partition = ContiguousPartition::with_skew_bound(space, 528, 1000).expect("valid");
    group.bench_function("block_cover_all_528", |bch| {
        bch.iter(|| {
            let mut n = 0usize;
            for r in 0..528 {
                n += partition.block_cover(r).expect("valid").len();
            }
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_coords);
criterion_main!(benches);
