//! Wire encoding for intermediate keys and values.
//!
//! Map-output files live on TaskTracker disks and cross the network
//! during the shuffle (§2.3), so intermediate keys and values need a
//! byte encoding. Little-endian, length-prefixed where variable.
//!
//! Types whose encoding is *fixed-width within one file* (numerics,
//! and `Coord` within a fixed-arity keyspace) additionally expose a
//! [`FixedCodec`]: a bundle of fn pointers that lets the SMOF v3
//! layout pack records back-to-back with no per-record framing, and
//! lets merge cursors compare keys directly on the encoded bytes.

use std::cmp::Ordering;

use bytes::{Buf, BufMut};

use crate::error::MrError;
use crate::Result;

/// A type that can cross the shuffle on disk / the wire.
pub trait WireFormat: Sized {
    /// Appends the encoding of `self` to `out`. Fails with
    /// [`MrError::EncodeOverflow`] when a value is too large for its
    /// length prefix, instead of silently truncating it.
    fn encode(&self, out: &mut Vec<u8>) -> Result<()>;
    /// Decodes one value from the front of `buf`, advancing it.
    fn decode(buf: &mut &[u8]) -> Result<Self>;
    /// Fixed-width fast path, when the type has one (see
    /// [`FixedCodec`]). `None` means every record must go through
    /// `encode`/`decode`; SMOF then stays on the v2 layout.
    fn fixed_codec() -> Option<FixedCodec<Self>> {
        None
    }
}

/// Fixed-width binary codec for a [`WireFormat`] type: width, raw
/// read/write, and order comparisons that work directly on encoded
/// bytes. Plain fn pointers (not a trait object) so views and merge
/// cursors can capture it by value with no allocation or vtable.
///
/// Contract: for values of equal `width`, `cmp` on encoded bytes must
/// agree with the type's `Ord` (or total order, for floats), and byte
/// equality must coincide with value equality.
pub struct FixedCodec<T> {
    /// Encoded width of this value in bytes. Constant per value; a
    /// file is eligible for the fixed layout only when all its
    /// records agree.
    pub width: fn(&T) -> usize,
    /// Appends exactly `width(v)` bytes.
    pub write: fn(&T, &mut Vec<u8>),
    /// Decodes from exactly one encoded value's bytes.
    pub read: fn(&[u8]) -> T,
    /// Total order on encoded bytes.
    pub cmp: fn(&[u8], &[u8]) -> Ordering,
    /// Total order between a decoded value and encoded bytes.
    pub cmp_decoded: fn(&T, &[u8]) -> Ordering,
}

// fn pointers are Copy no matter what `T` is; derive would demand
// `T: Clone`/`T: Copy` bounds the codec doesn't need.
impl<T> Clone for FixedCodec<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for FixedCodec<T> {}

fn need(buf: &&[u8], n: usize) -> Result<()> {
    if buf.remaining() < n {
        return Err(MrError::Source(format!(
            "truncated shuffle record: need {n} bytes, have {}",
            buf.remaining()
        )));
    }
    Ok(())
}

fn len_prefix(what: &'static str, len: usize) -> Result<u32> {
    u32::try_from(len).map_err(|_| MrError::EncodeOverflow { what, len })
}

macro_rules! impl_wire_num {
    ($t:ty, $get:ident, $put:ident, $cmp:expr) => {
        impl WireFormat for $t {
            fn encode(&self, out: &mut Vec<u8>) -> Result<()> {
                out.$put(*self);
                Ok(())
            }
            fn decode(buf: &mut &[u8]) -> Result<Self> {
                need(buf, std::mem::size_of::<$t>())?;
                Ok(buf.$get())
            }
            fn fixed_codec() -> Option<FixedCodec<Self>> {
                fn read_one(b: &[u8]) -> $t {
                    <$t>::from_le_bytes(
                        b[..std::mem::size_of::<$t>()]
                            .try_into()
                            .expect("fixed width"),
                    )
                }
                Some(FixedCodec {
                    width: |_| std::mem::size_of::<$t>(),
                    write: |v, out| out.extend_from_slice(&v.to_le_bytes()),
                    read: read_one,
                    cmp: |a, b| $cmp(&read_one(a), &read_one(b)),
                    cmp_decoded: |v, b| $cmp(v, &read_one(b)),
                })
            }
        }
    };
}

impl_wire_num!(u32, get_u32_le, put_u32_le, Ord::cmp);
impl_wire_num!(u64, get_u64_le, put_u64_le, Ord::cmp);
impl_wire_num!(i32, get_i32_le, put_i32_le, Ord::cmp);
impl_wire_num!(i64, get_i64_le, put_i64_le, Ord::cmp);
impl_wire_num!(f32, get_f32_le, put_f32_le, f32::total_cmp);
impl_wire_num!(f64, get_f64_le, put_f64_le, f64::total_cmp);

impl WireFormat for String {
    fn encode(&self, out: &mut Vec<u8>) -> Result<()> {
        out.put_u32_le(len_prefix("string", self.len())?);
        out.extend_from_slice(self.as_bytes());
        Ok(())
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        need(buf, 4)?;
        let len = buf.get_u32_le() as usize;
        need(buf, len)?;
        let s = std::str::from_utf8(&buf[..len])
            .map_err(|e| MrError::Source(format!("invalid UTF-8 in shuffle record: {e}")))?
            .to_string();
        buf.advance(len);
        Ok(s)
    }
}

impl WireFormat for sidr_coords::Coord {
    fn encode(&self, out: &mut Vec<u8>) -> Result<()> {
        out.put_u32_le(len_prefix("coord rank", self.rank())?);
        for &c in self.components() {
            out.put_u64_le(c);
        }
        Ok(())
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        need(buf, 4)?;
        let rank = buf.get_u32_le() as usize;
        need(buf, rank * 8)?;
        let comps: Vec<u64> = (0..rank).map(|_| buf.get_u64_le()).collect();
        Ok(sidr_coords::Coord::new(comps))
    }
    fn fixed_codec() -> Option<FixedCodec<Self>> {
        use sidr_coords::Coord;
        Some(FixedCodec {
            width: Coord::packed_width,
            write: Coord::write_packed,
            read: Coord::from_packed,
            cmp: Coord::cmp_packed,
            cmp_decoded: Coord::cmp_decoded_packed,
        })
    }
}

impl<A: WireFormat, B: WireFormat> WireFormat for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) -> Result<()> {
        self.0.encode(out)?;
        self.1.encode(out)
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<T: WireFormat> WireFormat for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) -> Result<()> {
        out.put_u32_le(len_prefix("sequence", self.len())?);
        for item in self {
            item.encode(out)?;
        }
        Ok(())
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        need(buf, 4)?;
        let n = buf.get_u32_le() as usize;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidr_coords::Coord;

    fn roundtrip<T: WireFormat + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf).unwrap();
        let mut slice = buf.as_slice();
        assert_eq!(T::decode(&mut slice).unwrap(), v);
        assert!(slice.is_empty(), "trailing bytes after decode");
    }

    #[test]
    fn numeric_roundtrips() {
        roundtrip(42u32);
        roundtrip(u64::MAX);
        roundtrip(-7i32);
        roundtrip(i64::MIN);
        roundtrip(3.25f32);
        roundtrip(-1.5e300f64);
    }

    #[test]
    fn string_and_coord_roundtrips() {
        roundtrip(String::from("weekly averages"));
        roundtrip(String::new());
        roundtrip(Coord::from([157, 34, 82]));
        roundtrip((Coord::from([1, 2]), 9.5f64));
        roundtrip(vec![1u64, 2, 3]);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        Coord::from([1, 2, 3]).encode(&mut buf).unwrap();
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            assert!(Coord::decode(&mut slice).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let mut slice = buf.as_slice();
        assert!(String::decode(&mut slice).is_err());
    }

    #[test]
    fn fixed_codec_agrees_with_wire_format() {
        fn check<T: WireFormat + Clone + PartialEq + std::fmt::Debug>(values: &[T]) {
            let codec = T::fixed_codec().expect("fixed codec");
            for v in values {
                let mut packed = Vec::new();
                (codec.write)(v, &mut packed);
                assert_eq!(packed.len(), (codec.width)(v));
                assert_eq!(&(codec.read)(&packed), v);
                assert_eq!((codec.cmp_decoded)(v, &packed), Ordering::Equal);
            }
            for a in values {
                for b in values {
                    let (mut pa, mut pb) = (Vec::new(), Vec::new());
                    (codec.write)(a, &mut pa);
                    (codec.write)(b, &mut pb);
                    assert_eq!((codec.cmp)(&pa, &pb).reverse(), (codec.cmp)(&pb, &pa));
                    assert_eq!((codec.cmp_decoded)(a, &pb), (codec.cmp)(&pa, &pb));
                }
            }
        }
        check(&[0u64, 1, 256, u64::MAX]);
        check(&[-5i64, 0, 7, i64::MAX]);
        check(&[-1.5f64, 0.0, 2.25, f64::INFINITY]);
        check(&[
            Coord::from([0, 9]),
            Coord::from([1, 0]),
            Coord::from([256, 256]),
        ]);
    }

    #[test]
    fn fixed_codec_orders_numerics_numerically() {
        // LE bytes of 256 are [0,1,...]; memcmp would call that less
        // than 1's [1,0,...]. The codec must compare by value.
        let codec = u64::fixed_codec().unwrap();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        (codec.write)(&256u64, &mut a);
        (codec.write)(&1u64, &mut b);
        assert_eq!((codec.cmp)(&a, &b), Ordering::Greater);
    }

    #[test]
    fn oversize_length_prefix_is_typed_error() {
        // A fake >4 GiB length can't be constructed cheaply, so
        // exercise the checked path through the helper directly.
        let err = super::len_prefix("string", u32::MAX as usize + 1).unwrap_err();
        assert!(matches!(
            err,
            MrError::EncodeOverflow {
                what: "string",
                len
            } if len == u32::MAX as usize + 1
        ));
    }

    #[test]
    fn string_without_codec_stays_variable_width() {
        assert!(String::fixed_codec().is_none());
    }
}
