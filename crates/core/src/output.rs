//! File-backed output collectors: dense contiguous slabs (SIDR, §4.4)
//! and coordinate/value pair files (the sparse fallback).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;

use sidr_coords::{Coord, Slab};
use sidr_mapreduce::{MrError, OutputCollector};
use sidr_scifile::sparse::{write_dense_output, CoordValueWriter};

use crate::partition_plus::PartitionPlus;

/// Writes each reducer's output as dense, contiguous SciNC slabs —
/// possible because `partition+` keyblocks are contiguous in `K′`:
/// "contiguous blocks of keys in K′ often translate in contiguous keys
/// in `O_T` that should result in efficient writes" (§3.1, §4.4).
///
/// One file per cover slab of the keyblock, named
/// `part-r{reducer:05}-s{slab_index}.scinc`, with the slab's global
/// origin in the metadata.
pub struct DenseSlabOutput {
    dir: PathBuf,
    variable: String,
    /// Keyblock geometry: which slabs each reducer owns.
    covers: Vec<Vec<Slab>>,
    written: Mutex<Vec<PathBuf>>,
}

impl DenseSlabOutput {
    /// Creates the collector; `dir` must exist.
    pub fn new(
        dir: impl Into<PathBuf>,
        variable: impl Into<String>,
        partition: &PartitionPlus,
    ) -> crate::Result<Self> {
        let covers = (0..partition.num_reducers())
            .map(|r| partition.keyblock_cover(r))
            .collect::<crate::Result<Vec<_>>>()?;
        Ok(DenseSlabOutput {
            dir: dir.into(),
            variable: variable.into(),
            covers,
            written: Mutex::new(Vec::new()),
        })
    }

    /// Paths of all files written so far.
    pub fn files(&self) -> Vec<PathBuf> {
        self.written.lock().clone()
    }
}

impl OutputCollector<Coord, f64> for DenseSlabOutput {
    fn commit(&self, reducer: usize, records: Vec<(Coord, f64)>) -> sidr_mapreduce::Result<()> {
        // Single-valued operators emit exactly one value per key; a
        // duplicate means the operator is list-valued and belongs in a
        // PairFileOutput instead.
        let by_key: HashMap<&Coord, f64> = records.iter().map(|(k, v)| (k, *v)).collect();
        if by_key.len() != records.len() {
            return Err(MrError::Output(format!(
                "reducer {reducer} emitted multiple values per key; \
                 dense slab output requires a single-valued operator"
            )));
        }
        for (i, slab) in self.covers[reducer].iter().enumerate() {
            let mut data = Vec::with_capacity(slab.count() as usize);
            for c in slab.iter_coords() {
                match by_key.get(&c) {
                    Some(&v) => data.push(v),
                    None => {
                        return Err(MrError::Output(format!(
                            "reducer {reducer} output missing key {c}; dense output \
                             requires a value for every key of its keyblock"
                        )))
                    }
                }
            }
            let path = self.dir.join(format!("part-r{reducer:05}-s{i}.scinc"));
            write_dense_output(&path, &self.variable, slab, &data)
                .map_err(|e| MrError::Output(e.to_string()))?;
            self.written.lock().push(path);
        }
        Ok(())
    }
}

/// Writes each reducer's output as explicit coordinate/value pairs —
/// the sparse strategy whose constant per-element overhead §4.4
/// contrasts with the sentinel approach. Handles list-valued
/// operators (filter, sort) where a key may repeat.
pub struct PairFileOutput {
    dir: PathBuf,
    rank: usize,
    written: Mutex<Vec<(PathBuf, u64)>>,
}

impl PairFileOutput {
    pub fn new(dir: impl Into<PathBuf>, rank: usize) -> Self {
        PairFileOutput {
            dir: dir.into(),
            rank,
            written: Mutex::new(Vec::new()),
        }
    }

    /// `(path, pair count)` of all files written so far.
    pub fn files(&self) -> Vec<(PathBuf, u64)> {
        self.written.lock().clone()
    }
}

impl OutputCollector<Coord, f64> for PairFileOutput {
    fn commit(&self, reducer: usize, records: Vec<(Coord, f64)>) -> sidr_mapreduce::Result<()> {
        let path = self.dir.join(format!("part-r{reducer:05}.sccv"));
        let mut w = CoordValueWriter::<f64>::create(&path, self.rank)
            .map_err(|e| MrError::Output(e.to_string()))?;
        let n = records.len() as u64;
        for (c, v) in &records {
            w.push(c, *v).map_err(|e| MrError::Output(e.to_string()))?;
        }
        w.finish().map_err(|e| MrError::Output(e.to_string()))?;
        self.written.lock().push((path, n));
        Ok(())
    }
}

/// Reassembles a set of dense part files into one SciNC file covering
/// the full output space `K′ᵀ`.
///
/// §4.4 notes that stock Hadoop's sentinel part files "are not very
/// useful individually and will likely need to be merged later,
/// requiring extra data movement" — for SIDR's dense parts the merge
/// is a pure re-layout: every part carries its origin, the parts
/// tile the output space exactly, and no sentinel filtering is needed.
pub fn reassemble_dense_output(
    parts: &[PathBuf],
    variable: &str,
    output_space: &sidr_coords::Shape,
    destination: impl Into<PathBuf>,
) -> crate::Result<sidr_scifile::ScincFile> {
    use sidr_scifile::{Dimension, Metadata, ScincFile, Variable};

    let dims: Vec<Dimension> = output_space
        .extents()
        .iter()
        .enumerate()
        .map(|(i, &e)| Dimension::new(format!("d{i}"), e))
        .collect();
    let names = dims.iter().map(|d| d.name.clone()).collect();
    let md = Metadata::new(
        dims,
        vec![Variable::new(variable, sidr_scifile::DataType::F64, names)],
    )?;
    let out = ScincFile::create(destination.into(), md)?;

    let mut covered = 0u64;
    for path in parts {
        let part = ScincFile::open(path)?;
        let origin = sidr_scifile::sparse::read_origin(part.metadata()).ok_or_else(|| {
            crate::SidrError::Plan(format!(
                "{} is not a dense part file (missing origin attribute)",
                path.display()
            ))
        })?;
        let local_shape = part.metadata().variable_shape(variable)?;
        let data = part.read_slab::<f64>(variable, &Slab::whole(&local_shape))?;
        let global = Slab::new(origin, local_shape)?;
        if !Slab::whole(output_space).contains_slab(&global) {
            return Err(crate::SidrError::Plan(format!(
                "part {} ({global}) exceeds the output space",
                path.display()
            )));
        }
        out.write_slab(variable, &global, &data)?;
        covered += global.count();
    }
    if covered != output_space.count() {
        return Err(crate::SidrError::Plan(format!(
            "parts cover {covered} of {} output keys",
            output_space.count()
        )));
    }
    out.sync()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::Operator;
    use crate::query::StructuralQuery;
    use sidr_coords::Shape;
    use sidr_scifile::sparse::read_coord_value_pairs;
    use sidr_scifile::ScincFile;

    fn shape(v: &[u64]) -> Shape {
        Shape::new(v.to_vec()).unwrap()
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sidr-output-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn dense_output_writes_cover_slabs() {
        let dir = temp_dir("dense");
        let q = StructuralQuery::new("t", shape(&[8, 4]), shape(&[2, 2]), Operator::Mean).unwrap();
        let pp = PartitionPlus::for_query(&q, 2).unwrap();
        let out = DenseSlabOutput::new(&dir, "t", &pp).unwrap();

        for r in 0..2usize {
            let mut records = Vec::new();
            for slab in pp.keyblock_cover(r).unwrap() {
                for c in slab.iter_coords() {
                    let v = c[0] as f64 * 10.0 + c[1] as f64;
                    records.push((c, v));
                }
            }
            out.commit(r, records).unwrap();
        }
        let files = out.files();
        assert!(!files.is_empty());
        // Re-read one file and check the origin-relative values.
        let f = ScincFile::open(&files[0]).unwrap();
        let origin = sidr_scifile::sparse::read_origin(f.metadata()).unwrap();
        let local_shape = f.metadata().variable_shape("t").unwrap();
        let data = f.read_slab::<f64>("t", &Slab::whole(&local_shape)).unwrap();
        for (i, rel) in local_shape.iter_coords().enumerate() {
            let abs = rel.checked_add(&origin).unwrap();
            assert_eq!(data[i], abs[0] as f64 * 10.0 + abs[1] as f64);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dense_output_rejects_missing_or_duplicate_keys() {
        let dir = temp_dir("dense-bad");
        let q = StructuralQuery::new("t", shape(&[4, 4]), shape(&[2, 2]), Operator::Mean).unwrap();
        let pp = PartitionPlus::for_query(&q, 1).unwrap();
        let out = DenseSlabOutput::new(&dir, "t", &pp).unwrap();
        // Missing keys.
        assert!(out.commit(0, vec![(Coord::from([0, 0]), 1.0)]).is_err());
        // Duplicate keys.
        let mut records: Vec<(Coord, f64)> = pp
            .keyblock_cover(0)
            .unwrap()
            .iter()
            .flat_map(|s| s.iter_coords())
            .map(|c| (c, 0.0))
            .collect();
        records.push(records[0].clone());
        assert!(out.commit(0, records).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reassembled_output_matches_committed_values() {
        let dir = temp_dir("reassemble");
        let q = StructuralQuery::new("t", shape(&[12, 6]), shape(&[2, 3]), Operator::Mean).unwrap();
        let pp = PartitionPlus::for_query(&q, 3).unwrap();
        let out = DenseSlabOutput::new(&dir, "t", &pp).unwrap();
        let kspace = q.intermediate_space();
        for r in 0..3usize {
            let records: Vec<(Coord, f64)> = pp
                .keyblock_cover(r)
                .unwrap()
                .iter()
                .flat_map(|s| s.iter_coords())
                .map(|c| {
                    let v = kspace.linearize(&c).unwrap() as f64;
                    (c, v)
                })
                .collect();
            out.commit(r, records).unwrap();
        }
        let dest = dir.join("combined.scinc");
        let combined = reassemble_dense_output(&out.files(), "t", &kspace, &dest).unwrap();
        for c in kspace.iter_coords() {
            let got: f64 = combined.read_point("t", &c).unwrap();
            assert_eq!(got, kspace.linearize(&c).unwrap() as f64);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reassembly_rejects_incomplete_parts() {
        let dir = temp_dir("reassemble-bad");
        let q = StructuralQuery::new("t", shape(&[8, 4]), shape(&[2, 2]), Operator::Mean).unwrap();
        let pp = PartitionPlus::for_query(&q, 2).unwrap();
        let out = DenseSlabOutput::new(&dir, "t", &pp).unwrap();
        let records: Vec<(Coord, f64)> = pp
            .keyblock_cover(0)
            .unwrap()
            .iter()
            .flat_map(|s| s.iter_coords())
            .map(|c| (c, 0.0))
            .collect();
        out.commit(0, records).unwrap(); // only keyblock 0
        let dest = dir.join("combined.scinc");
        let err = reassemble_dense_output(&out.files(), "t", &q.intermediate_space(), &dest);
        assert!(err.is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pair_output_roundtrips_with_duplicates() {
        let dir = temp_dir("pairs");
        let out = PairFileOutput::new(&dir, 2);
        let records = vec![
            (Coord::from([1, 2]), 3.5),
            (Coord::from([1, 2]), 4.5), // duplicate key: list-valued op
            (Coord::from([2, 0]), -1.0),
        ];
        out.commit(7, records.clone()).unwrap();
        let files = out.files();
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].1, 3);
        let read = read_coord_value_pairs::<f64>(&files[0].0).unwrap();
        assert_eq!(read, records);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
