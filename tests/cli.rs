//! Integration tests for the `sidr` CLI binary: the full
//! generate → info → plan → query → reassemble flow through the
//! public command-line surface.

use std::process::Command;

fn sidr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sidr"))
}

fn run(cmd: &mut Command) -> (bool, String) {
    let out = cmd.output().expect("binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

fn temp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sidr-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_cli_flow() {
    let dir = temp_dir();
    let data = dir.join("t.scinc");

    // generate
    let (ok, text) = run(sidr().args([
        "generate",
        "--kind",
        "temperature",
        "--shape",
        "28,10,10",
        "--seed",
        "5",
        "--out",
        data.to_str().unwrap(),
    ]));
    assert!(ok, "{text}");
    assert!(text.contains("temperature"), "{text}");

    // info
    let (ok, text) = run(sidr().args(["info", data.to_str().unwrap()]));
    assert!(ok, "{text}");
    assert!(text.contains("time = 28;"), "{text}");

    // plan
    let (ok, text) = run(sidr().args([
        "plan",
        "mean(temperature) over {7,5,1}",
        "--input",
        data.to_str().unwrap(),
        "--reducers",
        "2",
    ]));
    assert!(ok, "{text}");
    assert!(text.contains("keyblock 0"), "{text}");
    assert!(text.contains("submission document"), "{text}");

    // query with dense output + reassembly
    let parts = dir.join("parts");
    let combined = dir.join("combined.scinc");
    let (ok, text) = run(sidr().args([
        "query",
        "mean(temperature) over {7,5,1}",
        "--input",
        data.to_str().unwrap(),
        "--reducers",
        "2",
        "--validate",
        "--output",
        parts.to_str().unwrap(),
        "--combined",
        combined.to_str().unwrap(),
    ]));
    assert!(ok, "{text}");
    assert!(text.contains("SIDR produced 80 records"), "{text}");
    assert!(combined.exists());

    // The combined file holds the full intermediate space.
    let (ok, text) = run(sidr().args(["info", combined.to_str().unwrap()]));
    assert!(ok, "{text}");
    assert!(text.contains("d0 = 4;"), "{text}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn simulate_prints_paper_scale_summary() {
    let (ok, text) = run(sidr().args([
        "simulate",
        "median(windspeed) over {2,36,36,10}",
        "--space",
        "7200,360,720,50",
        "--reducers",
        "66",
    ]));
    assert!(ok, "{text}");
    assert!(text.contains("3600 maps"), "{text}");
    assert!(text.contains("first result"), "{text}");
}

#[test]
fn bad_inputs_fail_cleanly() {
    let dir = temp_dir();
    // Unknown command.
    let (ok, text) = run(sidr().args(["frobnicate"]));
    assert!(!ok);
    assert!(text.contains("unknown command"), "{text}");
    // Missing required flag.
    let (ok, text) = run(sidr().args(["generate", "--kind", "temperature"]));
    assert!(!ok);
    assert!(text.contains("--shape"), "{text}");
    // Unparseable query.
    let data = dir.join("q.scinc");
    run(sidr().args([
        "generate",
        "--kind",
        "windspeed",
        "--shape",
        "8,8",
        "--out",
        data.to_str().unwrap(),
    ]));
    let (ok, text) = run(sidr().args([
        "query",
        "frobnicate(windspeed) over {2,2}",
        "--input",
        data.to_str().unwrap(),
    ]));
    assert!(!ok);
    assert!(text.contains("unknown operator"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn help_prints_usage() {
    let (ok, text) = run(sidr().args(["help"]));
    assert!(ok);
    assert!(text.contains("USAGE"), "{text}");
}
