//! Sub-region queries: the query's input set `T` as a corner+shape
//! slab within the variable (§2.1), end-to-end across all three
//! frameworks.

use sidr_repro::coords::{Coord, Shape, Slab};
use sidr_repro::core::framework::{generate_splits, RunOptions};
use sidr_repro::core::{run_query, FrameworkMode, Operator, StructuralQuery};
use sidr_repro::scifile::gen::{DatasetSpec, ValueModel};

fn shape(v: &[u64]) -> Shape {
    Shape::new(v.to_vec()).unwrap()
}

fn slab(corner: &[u64], sh: &[u64]) -> Slab {
    Slab::new(Coord::from(corner), shape(sh)).unwrap()
}

fn dataset(name: &str, space: &Shape) -> (sidr_repro::scifile::ScincFile, DatasetSpec) {
    let spec = DatasetSpec {
        variable: "v".into(),
        dim_names: (0..space.rank()).map(|i| format!("d{i}")).collect(),
        space: space.clone(),
        model: ValueModel::LinearIndex,
        seed: 0,
    };
    let dir = std::env::temp_dir().join("sidr-region-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let file = spec
        .generate::<f64>(dir.join(format!("{name}-{}.scinc", std::process::id())))
        .unwrap();
    (file, spec)
}

#[test]
fn region_query_reads_only_the_region_and_is_correct() {
    let space = shape(&[40, 12]);
    let (file, spec) = dataset("correct", &space);
    // T = corner {8, 2}, shape {24, 8}; weekly-ish 4x4 units.
    let region = slab(&[8, 2], &[24, 8]);
    let q =
        StructuralQuery::over_region("v", &space, region.clone(), shape(&[4, 4]), Operator::Sum)
            .unwrap();
    assert_eq!(q.intermediate_space(), shape(&[6, 2]));

    // Ground truth from absolute preimages.
    let mut expect = Vec::new();
    for kp in q.intermediate_space().iter_coords() {
        let pre = q.preimage_of_key(&kp).unwrap();
        assert!(region.contains_slab(&pre), "preimage {pre} outside region");
        let sum: f64 = pre.iter_coords().map(|k| spec.value_at(&k)).sum();
        expect.push((kp, sum));
    }

    for mode in [
        FrameworkMode::Hadoop,
        FrameworkMode::SciHadoop,
        FrameworkMode::Sidr,
    ] {
        let mut opts = RunOptions::new(mode, 3);
        opts.split_bytes = 8 * 8 * 8; // 8 region rows x 8 cols of f64
        opts.validate_annotations = mode == FrameworkMode::Sidr;
        let got = run_query(&file, &q, &opts).unwrap();
        assert_eq!(got.records.len(), expect.len(), "{mode}");
        for ((gk, gv), (ek, ev)) in got.records.iter().zip(&expect) {
            assert_eq!(gk, ek, "{mode}");
            assert!((gv - ev).abs() < 1e-9, "{mode}: {gk}");
        }
        // Only the region's records were read.
        assert_eq!(got.result.counters.map_records_in, region.count(), "{mode}");
    }
}

#[test]
fn region_splits_stay_inside_the_region() {
    let space = shape(&[64, 10]);
    let (file, _) = dataset("splits", &space);
    let region = slab(&[16, 0], &[32, 10]);
    let q =
        StructuralQuery::over_region("v", &space, region.clone(), shape(&[8, 5]), Operator::Mean)
            .unwrap();
    for mode in [FrameworkMode::Hadoop, FrameworkMode::Sidr] {
        let splits = generate_splits(&file, &q, mode, 10 * 8 * 8).unwrap();
        assert!(splits.len() > 1);
        let total: u64 = splits.iter().map(|s| s.slab.count()).sum();
        assert_eq!(total, region.count(), "{mode}");
        for s in &splits {
            assert!(region.contains_slab(&s.slab), "{mode}: {}", s.slab);
        }
    }
}

#[test]
fn region_exceeding_variable_is_rejected() {
    let space = shape(&[20, 10]);
    let (file, _) = dataset("reject", &space);
    let q = StructuralQuery::over_region(
        "v",
        &shape(&[30, 10]), // claims a larger variable space
        slab(&[16, 0], &[14, 10]),
        shape(&[2, 2]),
        Operator::Mean,
    )
    .unwrap();
    assert!(run_query(&file, &q, &RunOptions::new(FrameworkMode::Sidr, 2)).is_err());
    // And constructing a region outside the claimed space fails early.
    assert!(StructuralQuery::over_region(
        "v",
        &shape(&[20, 10]),
        slab(&[16, 0], &[14, 10]),
        shape(&[2, 2]),
        Operator::Mean,
    )
    .is_err());
}

#[test]
fn whole_space_region_is_equivalent_to_plain_query() {
    let space = shape(&[24, 8]);
    let (file, _) = dataset("whole", &space);
    let plain = StructuralQuery::new("v", space.clone(), shape(&[4, 4]), Operator::Mean).unwrap();
    let region_q = StructuralQuery::over_region(
        "v",
        &space,
        Slab::whole(&space),
        shape(&[4, 4]),
        Operator::Mean,
    )
    .unwrap();
    let opts = RunOptions::new(FrameworkMode::Sidr, 2);
    let a = run_query(&file, &plain, &opts).unwrap();
    let b = run_query(&file, &region_q, &opts).unwrap();
    assert_eq!(a.records, b.records);
}
