//! Shuffle: map-output files, fetch accounting, and sort-merge.
//!
//! Each Map task leaves one output file per reducer it produced data
//! for. A file's header carries the §3.2.1 *annotation*: "how many
//! ⟨k,v⟩ are represented by the set of all ⟨k′,v′⟩ in that file",
//! which lets a Reduce task tally raw input coverage without parsing
//! the file — the cross-check SIDR uses to validate that starting
//! early never consumes insufficient input.
//!
//! Fetches are counted: every (map, reducer) contact is one network
//! connection, the quantity Table 3 reports.

use crate::sync::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;

use crate::counters::Counters;
use crate::smof3::Smof3View;
use crate::split::MapTaskId;
use crate::task::{MrKey, MrValue};

/// One map-output file: the intermediate pairs a single Map task
/// produced for a single reducer, sorted by key.
#[derive(Clone, Debug)]
pub struct MapOutputFile<K, V> {
    /// Records sorted by key (Hadoop sorts map output per partition).
    pub records: Vec<(K, V)>,
    /// Annotation: raw ⟨k,v⟩ pairs represented (≥ `records.len()` when
    /// a combiner folded pairs together).
    pub raw_count: u64,
}

impl<K, V> Default for MapOutputFile<K, V> {
    fn default() -> Self {
        MapOutputFile {
            records: Vec::new(),
            raw_count: 0,
        }
    }
}

/// One stored map-output file: resident or spilled to disk.
enum Stored<K, V> {
    Memory(Arc<MapOutputFile<K, V>>),
    Spilled {
        path: std::path::PathBuf,
        /// Header fields cached so annotation tallies never re-read.
        raw_count: u64,
        records: u64,
    },
    /// A resident replica whose integrity check fails (fault
    /// injection for the in-memory store: the moral equivalent of a
    /// spilled file with a bad CRC). Fetching it errors with
    /// [`crate::error::MrError::CorruptShuffle`].
    Corrupt {
        raw_count: u64,
        records: u64,
    },
}

/// How [`ShuffleStore::corrupt_map`] damages a map's committed
/// output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptionMode {
    /// Flip payload bytes (spilled files) or poison the resident
    /// replica's checksum (memory files).
    BitFlip,
    /// Cut the file short mid-payload. Indistinguishable from
    /// `BitFlip` for resident replicas.
    Truncate,
}

/// What a [`ShuffleStore::fetch`] found. Distinguishing `Empty` from
/// `Stale` is what makes consume-on-fetch recovery sound: an absent
/// file whose epoch matched really is "this map produced nothing for
/// this reducer", while data from a *different* map attempt must never
/// be consumed by a reducer that only waited for an older commit.
#[derive(Debug)]
pub enum Fetched<K, V> {
    /// The file, at the requested epoch (consumed if the store is
    /// volatile).
    File(Arc<MapOutputFile<K, V>>),
    /// A spilled v3 file, at the requested epoch, as a zero-copy
    /// view: the bytes were read into one shared buffer and validated
    /// once; no record was decoded. Merge cursors borrow straight out
    /// of it.
    Frame(Smof3View<K, V>),
    /// The map committed the requested epoch but produced nothing for
    /// this reducer.
    Empty,
    /// The store holds a different attempt's output. Nothing was
    /// consumed; the caller must re-wait for the commit of
    /// `store_epoch` (or newer) and fetch again.
    Stale { store_epoch: u32 },
}

/// The TaskTracker-served map-output files: held in memory by default,
/// or written to a spill directory in the on-disk format of
/// [`crate::shuffle_file`] (the header-annotated files of §3.2.1).
///
/// `fetch` optionally *consumes* the file, modeling the §6 future-work
/// regime where intermediate data is not persisted and a failed
/// Reduce task forces re-execution of the Map tasks it depended on.
///
/// Every entry is stamped with the *epoch* (map attempt id) that
/// produced it, and `fetch` only consumes an epoch the caller
/// explicitly observed committed. Without the stamp, a doomed reduce
/// attempt that raced a map re-execution could eat the fresh attempt's
/// partition between its `put` and its `Done` transition — and since
/// recovery treats an in-flight re-execution as "already being
/// rebuilt", nobody would ever restore the consumed data.
/// Store key → (producing epoch, file): epoch first so a fetch can
/// reject another attempt's data before touching the payload.
type StoredFiles<K, V> = HashMap<(MapTaskId, usize), (u32, Stored<K, V>)>;

/// The store's mutable state: the files plus the resident-byte tally
/// the budgeted mode ranks demotions by.
struct Table<K, V> {
    files: StoredFiles<K, V>,
    /// Approximate bytes held by `Stored::Memory` entries.
    resident: u64,
    /// High-water mark of `resident`.
    peak_resident: u64,
    /// Memory entries in arrival order — the demotion queue. May
    /// hold stale keys (consumed or already demoted); they are
    /// skipped when popped.
    fifo: std::collections::VecDeque<(MapTaskId, usize)>,
}

/// How a store with a codec uses its disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SpillMode {
    /// Every put goes straight to disk (the pre-budget behavior).
    Always,
    /// Puts stay in memory; once resident bytes exceed the budget,
    /// the oldest memory entries are demoted to disk.
    Budget(u64),
}

pub struct ShuffleStore<K, V> {
    table: Mutex<Table<K, V>>,
    /// Signalled when new files arrive (fetchers waiting on slow maps).
    arrival: Condvar,
    /// Whether fetches remove files from the store.
    consume_on_fetch: bool,
    /// Spill codec, present when the store is disk-backed.
    spill: Option<SpillCodec<K, V>>,
    mode: SpillMode,
}

/// Zero-copy spill loader: `Ok(Some(view))` when the file uses the v3
/// fixed-width layout, `Ok(None)` to fall back to the owning reader.
pub type ReadViewFn<K, V> = fn(&std::path::Path) -> crate::Result<Option<Smof3View<K, V>>>;

/// Monomorphized writers/readers for the spill path, so the store (and
/// the runtime above it) needs no `WireFormat` bounds of its own.
pub struct SpillCodec<K, V> {
    pub dir: std::path::PathBuf,
    pub write: fn(&std::path::Path, &MapOutputFile<K, V>) -> crate::Result<()>,
    pub read: fn(&std::path::Path) -> crate::Result<MapOutputFile<K, V>>,
    pub read_view: ReadViewFn<K, V>,
}

impl<K, V> SpillCodec<K, V>
where
    K: MrKey + crate::wire::WireFormat,
    V: MrValue + crate::wire::WireFormat,
{
    /// The standard codec: `shuffle_file`'s SMOF format under `dir`.
    pub fn smof(dir: impl Into<std::path::PathBuf>) -> Self {
        SpillCodec {
            dir: dir.into(),
            write: |path, file| crate::shuffle_file::write_map_output(path, file),
            read: |path| crate::shuffle_file::read_map_output(path),
            read_view: |path| {
                let bytes = std::fs::read(path).map_err(|e| {
                    crate::error::MrError::Source(format!("shuffle spill I/O: {e}"))
                })?;
                Smof3View::parse(Arc::new(bytes))
            },
        }
    }
}

impl<K: MrKey, V: MrValue> ShuffleStore<K, V> {
    fn build(consume_on_fetch: bool, spill: Option<SpillCodec<K, V>>, mode: SpillMode) -> Self {
        ShuffleStore {
            table: Mutex::new(Table {
                files: HashMap::new(),
                resident: 0,
                peak_resident: 0,
                fifo: std::collections::VecDeque::new(),
            }),
            arrival: Condvar::new(),
            consume_on_fetch,
            spill,
            mode,
        }
    }

    pub fn new(consume_on_fetch: bool) -> Self {
        ShuffleStore::build(consume_on_fetch, None, SpillMode::Always)
    }

    /// A disk-backed store spilling through `codec`.
    pub fn with_spill(consume_on_fetch: bool, codec: SpillCodec<K, V>) -> Self {
        ShuffleStore::build(consume_on_fetch, Some(codec), SpillMode::Always)
    }

    /// A budgeted store: puts stay resident until approximate memory
    /// bytes exceed `budget_bytes`, then the oldest entries are
    /// demoted through `codec` — fetch semantics (epoch stamping,
    /// `Stale`/`Empty`, consume-on-fetch) are identical either tier.
    /// A budget of 0 demotes every put, degenerating to
    /// [`with_spill`](Self::with_spill).
    pub fn with_spill_budget(
        consume_on_fetch: bool,
        codec: SpillCodec<K, V>,
        budget_bytes: u64,
    ) -> Self {
        ShuffleStore::build(
            consume_on_fetch,
            Some(codec),
            SpillMode::Budget(budget_bytes),
        )
    }

    /// Approximate resident bytes of one memory file (fixed-width
    /// record assumption, which holds for the engine's coordinate
    /// keys and scalar values).
    fn approx_bytes(file: &MapOutputFile<K, V>) -> u64 {
        (file.records.len() * std::mem::size_of::<(K, V)>()) as u64
    }

    /// Current approximate resident bytes (memory-tier entries).
    pub fn resident_bytes(&self) -> u64 {
        self.table.lock().resident
    }

    /// High-water mark of [`resident_bytes`](Self::resident_bytes).
    pub fn peak_resident_bytes(&self) -> u64 {
        self.table.lock().peak_resident
    }

    /// Stores (or replaces, on re-execution) one map-output file,
    /// stamped with the attempt that produced it.
    pub fn put(
        &self,
        map: MapTaskId,
        reducer: usize,
        epoch: u32,
        file: MapOutputFile<K, V>,
    ) -> crate::Result<()> {
        let to_memory = self.spill.is_none() || matches!(self.mode, SpillMode::Budget(b) if b > 0);
        let stored = if to_memory {
            Stored::Memory(Arc::new(file))
        } else {
            let codec = self.spill.as_ref().expect("checked above");
            let path = codec.dir.join(format!("map{map:06}-r{reducer:05}.smof"));
            (codec.write)(&path, &file)?;
            Stored::Spilled {
                path,
                raw_count: file.raw_count,
                records: file.records.len() as u64,
            }
        };
        let mut table = self.table.lock();
        if let Some((_, old)) = table.files.remove(&(map, reducer)) {
            Self::retire(&mut table, &old, self.consume_on_fetch);
        }
        if let Stored::Memory(f) = &stored {
            table.resident += Self::approx_bytes(f);
            table.peak_resident = table.peak_resident.max(table.resident);
            if self.spill.is_some() {
                table.fifo.push_back((map, reducer));
            }
        }
        table.files.insert((map, reducer), (epoch, stored));
        if let SpillMode::Budget(budget) = self.mode {
            self.demote_until_under(&mut table, budget)?;
        }
        self.arrival.notify_all();
        Ok(())
    }

    /// Fixes the resident tally for an entry leaving the table; a
    /// volatile store also deletes a spilled entry's file.
    fn retire(table: &mut Table<K, V>, stored: &Stored<K, V>, delete_spill: bool) {
        match stored {
            Stored::Memory(f) => {
                table.resident = table.resident.saturating_sub(Self::approx_bytes(f));
            }
            Stored::Spilled { path, .. } if delete_spill => {
                std::fs::remove_file(path).ok();
            }
            _ => {}
        }
    }

    /// Demotes oldest memory entries through the codec until the
    /// resident tally is back under `budget`. Runs on the putting
    /// thread, under the table lock.
    fn demote_until_under(&self, table: &mut Table<K, V>, budget: u64) -> crate::Result<()> {
        let codec = self.spill.as_ref().expect("budget mode implies a codec");
        while table.resident > budget {
            let Some(key) = table.fifo.pop_front() else {
                break;
            };
            let Some((_, stored)) = table.files.get(&key) else {
                continue; // consumed since it was queued
            };
            let Stored::Memory(file) = stored else {
                continue; // already on disk (corrupt counts as gone)
            };
            let file = Arc::clone(file);
            let (map, reducer) = key;
            let path = codec.dir.join(format!("map{map:06}-r{reducer:05}.smof"));
            (codec.write)(&path, &file)?;
            let demoted = Stored::Spilled {
                path,
                raw_count: file.raw_count,
                records: file.records.len() as u64,
            };
            if let Some((_, slot)) = table.files.get_mut(&key) {
                *slot = demoted;
                table.resident = table.resident.saturating_sub(Self::approx_bytes(&file));
            }
        }
        Ok(())
    }

    /// Fetches the file `map`'s attempt `epoch` produced for `reducer`,
    /// counting one connection (contacts happen even when the map
    /// produced nothing for this reducer — Hadoop "requires that every
    /// Reduce task contact every completed Map task", §4.6).
    ///
    /// An absent entry — or one left over from an *older* attempt,
    /// which the committed epoch's `put` never replaced because it had
    /// nothing to write — is [`Fetched::Empty`]. An entry from a
    /// *newer* attempt is [`Fetched::Stale`] and is left untouched:
    /// consuming output the caller never waited for is exactly the
    /// lost-partition race this stamp exists to prevent.
    pub fn fetch(
        &self,
        map: MapTaskId,
        reducer: usize,
        epoch: u32,
        counters: &Counters,
    ) -> crate::Result<Fetched<K, V>> {
        Counters::add(&counters.shuffle_connections, 1);
        let entry = {
            let mut table = self.table.lock();
            match table.files.get(&(map, reducer)) {
                None => None,
                Some((stored_epoch, _)) if *stored_epoch > epoch => {
                    return Ok(Fetched::Stale {
                        store_epoch: *stored_epoch,
                    });
                }
                Some((stored_epoch, _)) if *stored_epoch < epoch => {
                    return Ok(Fetched::Empty);
                }
                Some(_) if self.consume_on_fetch => {
                    let removed = table
                        .files
                        .remove(&(map, reducer))
                        .map(|(_, stored)| stored);
                    if let Some(Stored::Memory(f)) = &removed {
                        // Tally only — a consumed spilled file is
                        // deleted below, *after* it has been read.
                        table.resident = table.resident.saturating_sub(Self::approx_bytes(f));
                    }
                    removed
                }
                Some((_, Stored::Memory(f))) => Some(Stored::Memory(Arc::clone(f))),
                Some((
                    _,
                    Stored::Spilled {
                        path,
                        raw_count,
                        records,
                    },
                )) => Some(Stored::Spilled {
                    path: path.clone(),
                    raw_count: *raw_count,
                    records: *records,
                }),
                Some((_, Stored::Corrupt { raw_count, records })) => Some(Stored::Corrupt {
                    raw_count: *raw_count,
                    records: *records,
                }),
            }
        };
        let got = match entry {
            None => return Ok(Fetched::Empty),
            Some(Stored::Memory(f)) => f,
            Some(Stored::Corrupt { .. }) => {
                return Err(crate::error::MrError::CorruptShuffle {
                    detail: format!("map {map} output for reducer {reducer}: checksum mismatch"),
                });
            }
            Some(Stored::Spilled { path, .. }) => {
                let codec = self
                    .spill
                    .as_ref()
                    .expect("spilled entries only exist in spilling stores");
                // v3 spills come back as a validated view over the
                // raw file bytes — no record decode; v2 spills fall
                // back to the materializing reader.
                let fetched = match (codec.read_view)(&path)? {
                    Some(view) => {
                        Counters::add(&counters.shuffled_records, view.records() as u64);
                        Fetched::Frame(view)
                    }
                    None => {
                        let file = (codec.read)(&path)?;
                        Counters::add(&counters.shuffled_records, file.records.len() as u64);
                        Fetched::File(Arc::new(file))
                    }
                };
                if self.consume_on_fetch {
                    // Not persisted: the bytes are gone once consumed.
                    std::fs::remove_file(&path).ok();
                }
                return Ok(fetched);
            }
        };
        Counters::add(&counters.shuffled_records, got.records.len() as u64);
        Ok(Fetched::File(got))
    }

    /// The annotation of a stored file without reading its records —
    /// `(raw ⟨k,v⟩ represented, ⟨k′,v′⟩ records)` (§3.2.1).
    pub fn annotation(&self, map: MapTaskId, reducer: usize) -> Option<(u64, u64)> {
        match self.table.lock().files.get(&(map, reducer)) {
            None => None,
            Some((_, Stored::Memory(f))) => Some((f.raw_count, f.records.len() as u64)),
            Some((
                _,
                Stored::Spilled {
                    raw_count, records, ..
                },
            ))
            | Some((_, Stored::Corrupt { raw_count, records })) => Some((*raw_count, *records)),
        }
    }

    /// Damages every committed output file of `map` (fault
    /// injection). Spilled files are tampered with on disk so the
    /// CRC frame genuinely fails at read time; resident replicas are
    /// marked corrupt, which `fetch` reports the same way.
    pub fn corrupt_map(&self, map: MapTaskId, mode: CorruptionMode) -> crate::Result<()> {
        let table = &mut *self.table.lock();
        for ((m, _), (_, stored)) in table.files.iter_mut() {
            if *m != map {
                continue;
            }
            match stored {
                Stored::Memory(f) => {
                    table.resident = table.resident.saturating_sub(Self::approx_bytes(f));
                    *stored = Stored::Corrupt {
                        raw_count: f.raw_count,
                        records: f.records.len() as u64,
                    };
                }
                Stored::Spilled { path, .. } => match mode {
                    CorruptionMode::BitFlip => crate::shuffle_file::corrupt_payload(path)?,
                    CorruptionMode::Truncate => crate::shuffle_file::truncate_payload(path)?,
                },
                Stored::Corrupt { .. } => {}
            }
        }
        Ok(())
    }

    /// Drops every stored output of `map` (spilled bytes included):
    /// the copy phase calls this when a fetch detects corruption, so
    /// the re-executed attempt's files are the only replicas left.
    pub fn evict(&self, map: MapTaskId) {
        let table = &mut *self.table.lock();
        let mut freed = 0u64;
        table.files.retain(|(m, _), (_, stored)| {
            if *m != map {
                return true;
            }
            match stored {
                Stored::Spilled { path, .. } => {
                    std::fs::remove_file(path).ok();
                }
                Stored::Memory(f) => freed += Self::approx_bytes(f),
                Stored::Corrupt { .. } => {}
            }
            false
        });
        table.resident = table.resident.saturating_sub(freed);
    }

    /// Whether a file is currently present (recovery logic checks
    /// before deciding to re-execute a map).
    pub fn contains(&self, map: MapTaskId, reducer: usize) -> bool {
        self.table.lock().files.contains_key(&(map, reducer))
    }

    /// Number of files currently stored.
    pub fn len(&self) -> usize {
        self.table.lock().files.len()
    }

    /// True when the store holds no files.
    pub fn is_empty(&self) -> bool {
        self.table.lock().files.is_empty()
    }
}

/// Builds the per-reducer output files of one Map task: partitions,
/// optionally combines, sorts, annotates.
pub struct MapOutputBuilder<K, V> {
    per_reducer: Vec<Vec<(K, V)>>,
    buffered: usize,
    spill: Option<BuilderSpill<K, V>>,
}

/// Map-side sort-buffer spill configuration (Hadoop's `io.sort.mb`
/// pipeline, with the buffer limit expressed in records).
struct BuilderSpill<K, V> {
    /// Spill once this many records are buffered.
    threshold: usize,
    dir: std::path::PathBuf,
    /// Unique prefix (the map task id) for run-file names.
    task: MapTaskId,
    /// Sorted run files written so far, per reducer.
    runs: Vec<Vec<std::path::PathBuf>>,
    seq: usize,
    write: fn(&std::path::Path, &MapOutputFile<K, V>) -> crate::Result<()>,
    read: fn(&std::path::Path) -> crate::Result<MapOutputFile<K, V>>,
}

impl<K, V> Drop for BuilderSpill<K, V> {
    /// Removes any run files still on disk. `finish` deletes runs as
    /// it merges them, so this only fires for abandoned builders — a
    /// failed map attempt must not leave stale runs for its retry to
    /// trip over.
    fn drop(&mut self) {
        for path in self.runs.iter().flatten() {
            std::fs::remove_file(path).ok();
        }
    }
}

impl<K: MrKey, V: MrValue> MapOutputBuilder<K, V> {
    pub fn new(num_reducers: usize) -> Self {
        MapOutputBuilder {
            per_reducer: (0..num_reducers).map(|_| Vec::new()).collect(),
            buffered: 0,
            spill: None,
        }
    }

    /// Enables map-side spilling: when more than `threshold` records
    /// are buffered, each partition is sorted and written out as a
    /// run; `finish` merges the runs — Hadoop's sort/spill/merge
    /// pipeline.
    pub fn with_spill(mut self, threshold: usize, dir: std::path::PathBuf, task: MapTaskId) -> Self
    where
        K: crate::wire::WireFormat,
        V: crate::wire::WireFormat,
    {
        let n = self.per_reducer.len();
        self.spill = Some(BuilderSpill {
            threshold: threshold.max(1),
            dir,
            task,
            runs: (0..n).map(|_| Vec::new()).collect(),
            seq: 0,
            write: |path, file| crate::shuffle_file::write_map_output(path, file),
            read: |path| crate::shuffle_file::read_map_output(path),
        });
        self
    }

    /// Adds one intermediate pair destined for `reducer`.
    #[inline]
    pub fn push(&mut self, reducer: usize, key: K, value: V) -> crate::Result<()> {
        self.per_reducer[reducer].push((key, value));
        self.buffered += 1;
        if let Some(spill) = &self.spill {
            if self.buffered >= spill.threshold {
                self.spill_runs()?;
            }
        }
        Ok(())
    }

    /// Writes every non-empty buffer out as a sorted run.
    fn spill_runs(&mut self) -> crate::Result<()> {
        let spill = self.spill.as_mut().expect("called only when spilling");
        for (reducer, records) in self.per_reducer.iter_mut().enumerate() {
            if records.is_empty() {
                continue;
            }
            records.sort_by(|a, b| a.0.cmp(&b.0));
            let path = spill.dir.join(format!(
                "map{:06}-r{reducer:05}-run{:04}.smof",
                spill.task, spill.seq
            ));
            // Runs are written pre-combiner, so each run's annotation
            // is its own record count; finish sums the run headers.
            let run_records = std::mem::take(records);
            let run = MapOutputFile {
                raw_count: run_records.len() as u64,
                records: run_records,
            };
            (spill.write)(&path, &run)?;
            spill.runs[reducer].push(path);
            crate::metrics::runtime().map_spills.inc();
        }
        spill.seq += 1;
        self.buffered = 0;
        Ok(())
    }

    /// Finalizes into per-reducer files: sorts by key (merging any
    /// spilled runs), applies the combiner per key group, and stamps
    /// the raw-count annotation. Returns `(reducer, file)` for every
    /// non-empty partition; empty ones produce nothing (Hadoop serves
    /// an empty response for those; the store models that as absence).
    pub fn finish(
        mut self,
        combiner: Option<&dyn crate::task::Combiner<Key = K, Value = V>>,
        counters: &Counters,
    ) -> crate::Result<Vec<(usize, MapOutputFile<K, V>)>> {
        let spill = self.spill.take();
        let mut out = Vec::new();
        for (reducer, mut records) in self.per_reducer.into_iter().enumerate() {
            records.sort_by(|a, b| a.0.cmp(&b.0));
            // The annotation: raw pairs pushed for this reducer — the
            // in-memory residue plus the sum of the run headers (runs
            // are written pre-combiner, so the headers are exact).
            let mut raw = records.len() as u64;
            // Merge spilled runs back in: each run is sorted, as is
            // the in-memory residue, so MergeIter streams the records
            // straight into the final file — one clone per record,
            // no regroup-then-flatten round trip.
            if let Some(spill) = &spill {
                if !spill.runs[reducer].is_empty() {
                    let mut merge = MergeIter::new();
                    merge.push_file(Arc::new(MapOutputFile {
                        raw_count: raw,
                        records,
                    }));
                    for path in &spill.runs[reducer] {
                        let run = (spill.read)(path)?;
                        raw += run.raw_count;
                        merge.push_file(Arc::new(run));
                        std::fs::remove_file(path).ok();
                    }
                    let mut merged = Vec::with_capacity(merge.remaining());
                    while let Some((k, v)) = merge.next_record() {
                        merged.push((k.clone(), v.clone()));
                    }
                    let m = crate::metrics::runtime();
                    m.merge_records.add(merge.records_consumed());
                    m.merge_bytes.add(
                        merge
                            .records_consumed()
                            .saturating_mul(std::mem::size_of::<(K, V)>() as u64),
                    );
                    debug_assert_eq!(raw as usize, merged.len(), "run headers sum to the merge");
                    records = merged;
                }
            }
            if records.is_empty() {
                continue;
            }
            if let Some(c) = combiner {
                records = combine_sorted(records, c);
            }
            Counters::add(&counters.combined_records, records.len() as u64);
            out.push((
                reducer,
                MapOutputFile {
                    records,
                    raw_count: raw,
                },
            ));
        }
        Ok(out)
    }
}

/// Applies a combiner to a key-sorted run. One group buffer is reused
/// across every key (the combiner rewrites it in place), and the key
/// is moved — not cloned — unless the combiner emits more than one
/// value for it.
fn combine_sorted<K: MrKey, V: MrValue>(
    records: Vec<(K, V)>,
    combiner: &dyn crate::task::Combiner<Key = K, Value = V>,
) -> Vec<(K, V)> {
    let mut out = Vec::with_capacity(records.len());
    let mut iter = records.into_iter();
    let Some((mut key, first)) = iter.next() else {
        return out;
    };
    let mut group: Vec<V> = Vec::new();
    group.push(first);
    let flush = |key: K, group: &mut Vec<V>, out: &mut Vec<(K, V)>| {
        combiner.combine(&key, group);
        match group.len() {
            0 => {}
            1 => out.push((key, group.pop().expect("one value"))),
            _ => {
                let last = group.pop().expect("at least two values");
                out.extend(group.drain(..).map(|v| (key.clone(), v)));
                out.push((key, last));
            }
        }
    };
    for (k, v) in iter {
        if k == key {
            group.push(v);
        } else {
            flush(std::mem::replace(&mut key, k), &mut group, &mut out);
            group.push(v);
        }
    }
    flush(key, &mut group, &mut out);
    out
}

/// Streaming k-way merge over key-sorted map-output files.
///
/// Holds one cursor per file and a binary min-heap of file indices
/// ordered by `(current key, file index)`, so records come out in
/// global key order with equal keys delivered in (file order, record
/// order) — exactly the order the old flatten-and-stable-sort merge
/// produced, but without cloning every record into a scratch vector,
/// without re-sorting already-sorted runs, and without materializing
/// the whole `Vec<(K, Vec<V>)>` keyspace before the first key group
/// is available.
///
/// Sources are shared (`Arc`), so the merge borrows records in place;
/// the only copies made are the values of the *current* group, cloned
/// (or, for binary frames, decoded) into one reusable buffer
/// ([`next_group`]). Cursors can be opened incrementally with
/// [`push_file`] / [`push_frame`] as map outputs arrive during the
/// copy phase — the reducer holds its slot through the copy anyway
/// (§3.2), so by the time its barrier is met the merge is ready to
/// yield its first group immediately.
///
/// A cursor reads either a decoded [`MapOutputFile`] or a SMOF v3
/// [`Smof3View`] frame. Frame cursors never materialize records:
/// ordering decisions compare packed key bytes in place (via the
/// captured [`FixedCodec`](crate::wire::FixedCodec)), and a value is
/// decoded exactly once, when its group leaves the merge.
///
/// [`next_group`]: MergeIter::next_group
/// [`push_file`]: MergeIter::push_file
/// [`push_frame`]: MergeIter::push_frame
pub struct MergeIter<K, V> {
    sources: Vec<MergeSource<K, V>>,
    /// Per-source position of the next unconsumed record.
    cursors: Vec<usize>,
    /// Min-heap of source indices with records remaining, ordered by
    /// `(key at cursor, source index)`. Kept by hand (not
    /// `BinaryHeap`) because the ordering lives in `sources`/`cursors`.
    heap: Vec<usize>,
    /// Reusable buffer holding the current group's values.
    group: Vec<V>,
    /// The current group's key (owned: for frame sources there is no
    /// decoded record to borrow it from).
    group_key: Option<K>,
    /// Scratch slot for the decoded record `next_record` hands out
    /// when the root cursor is a frame.
    scratch: Option<(K, V)>,
    /// Records consumed so far (for the merge throughput metrics).
    consumed: u64,
}

/// One merge input: a decoded in-memory file, or a zero-copy v3 frame.
enum MergeSource<K, V> {
    File(Arc<MapOutputFile<K, V>>),
    Frame(Smof3View<K, V>),
}

impl<K, V> MergeSource<K, V> {
    #[inline]
    fn len(&self) -> usize {
        match self {
            MergeSource::File(f) => f.records.len(),
            MergeSource::Frame(v) => v.records(),
        }
    }
}

impl<K: MrKey, V: MrValue> Default for MergeIter<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: MrKey, V: MrValue> MergeIter<K, V> {
    /// An empty merge; add inputs with [`MergeIter::push_file`].
    pub fn new() -> Self {
        MergeIter {
            sources: Vec::new(),
            cursors: Vec::new(),
            heap: Vec::new(),
            group: Vec::new(),
            group_key: None,
            scratch: None,
            consumed: 0,
        }
    }

    /// A merge over `files`, in order. The file order is significant:
    /// it breaks ties between equal keys.
    pub fn with_files(files: impl IntoIterator<Item = Arc<MapOutputFile<K, V>>>) -> Self {
        let mut m = Self::new();
        for f in files {
            m.push_file(f);
        }
        m
    }

    /// Opens a cursor on one more file. Sources must be pushed in the
    /// deterministic file order (the plan's fetch order) *before*
    /// consumption begins; equal keys yield values in push order.
    pub fn push_file(&mut self, file: Arc<MapOutputFile<K, V>>) {
        debug_assert!(
            file.records.windows(2).all(|w| w[0].0 <= w[1].0),
            "map-output files are key-sorted"
        );
        let empty = file.records.is_empty();
        self.push_source(MergeSource::File(file), empty);
    }

    /// Opens a cursor on a zero-copy v3 frame. Same ordering contract
    /// as [`MergeIter::push_file`]; the frame's records are merged
    /// straight out of the underlying buffer.
    pub fn push_frame(&mut self, view: Smof3View<K, V>) {
        debug_assert!(
            (1..view.records()).all(|i| {
                (view.key_codec().cmp)(view.key_bytes(i - 1), view.key_bytes(i)).is_le()
            }),
            "map-output frames are key-sorted"
        );
        let empty = view.is_empty();
        self.push_source(MergeSource::Frame(view), empty);
    }

    fn push_source(&mut self, source: MergeSource<K, V>, empty: bool) {
        let idx = self.sources.len();
        self.sources.push(source);
        self.cursors.push(0);
        if !empty {
            self.heap.push(idx);
            self.sift_up(self.heap.len() - 1);
        }
    }

    /// Number of records not yet consumed.
    pub fn remaining(&self) -> usize {
        self.heap
            .iter()
            .map(|&f| self.sources[f].len() - self.cursors[f])
            .sum()
    }

    /// The smallest unconsumed key, without consuming it (decoded or
    /// cloned out of its source).
    pub fn peek_key(&self) -> Option<K> {
        self.heap.first().map(|&f| match &self.sources[f] {
            MergeSource::File(file) => file.records[self.cursors[f]].0.clone(),
            MergeSource::Frame(view) => view.key_at(self.cursors[f]),
        })
    }

    /// `sources[a]`'s cursor sorts before `sources[b]`'s. Frame keys
    /// compare as packed bytes; mixed pairs compare through the
    /// frame codec's `cmp_decoded`, which shares the same total order.
    fn less(&self, a: usize, b: usize) -> bool {
        use std::cmp::Ordering;
        let ord = match (&self.sources[a], &self.sources[b]) {
            (MergeSource::File(fa), MergeSource::File(fb)) => fa.records[self.cursors[a]]
                .0
                .cmp(&fb.records[self.cursors[b]].0),
            (MergeSource::Frame(va), MergeSource::Frame(vb)) => {
                (va.key_codec().cmp)(va.key_bytes(self.cursors[a]), vb.key_bytes(self.cursors[b]))
            }
            (MergeSource::File(fa), MergeSource::Frame(vb)) => (vb.key_codec().cmp_decoded)(
                &fa.records[self.cursors[a]].0,
                vb.key_bytes(self.cursors[b]),
            ),
            (MergeSource::Frame(va), MergeSource::File(fb)) => (va.key_codec().cmp_decoded)(
                &fb.records[self.cursors[b]].0,
                va.key_bytes(self.cursors[a]),
            )
            .reverse(),
        };
        match ord {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => a < b,
        }
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.less(self.heap[pos], self.heap[parent]) {
                self.heap.swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let mut best = pos;
            for child in [2 * pos + 1, 2 * pos + 2] {
                if child < self.heap.len() && self.less(self.heap[child], self.heap[best]) {
                    best = child;
                }
            }
            if best == pos {
                return;
            }
            self.heap.swap(pos, best);
            pos = best;
        }
    }

    /// Advances the root source's cursor past the record just consumed
    /// and restores the heap.
    fn advance_root(&mut self) {
        let f = self.heap[0];
        if self.cursors[f] < self.sources[f].len() {
            self.sift_down(0);
        } else {
            let last = self.heap.pop().expect("root exists");
            if !self.heap.is_empty() {
                self.heap[0] = last;
                self.sift_down(0);
            }
        }
    }

    /// Records consumed through this iterator so far.
    pub fn records_consumed(&self) -> u64 {
        self.consumed
    }

    /// The next record in merged order — borrowed from its file, or
    /// decoded into a scratch slot when it comes from a frame.
    pub fn next_record(&mut self) -> Option<(&K, &V)> {
        let &f = self.heap.first()?;
        let idx = self.cursors[f];
        self.cursors[f] = idx + 1;
        self.consumed += 1;
        self.advance_root();
        let decoded = match &self.sources[f] {
            MergeSource::File(_) => None,
            MergeSource::Frame(view) => Some((view.key_at(idx), view.value_at(idx))),
        };
        if let Some(rec) = decoded {
            self.scratch = Some(rec);
            let (k, v) = self.scratch.as_ref().expect("just set");
            return Some((k, v));
        }
        match &self.sources[f] {
            MergeSource::File(file) => {
                let (k, v) = &file.records[idx];
                Some((k, v))
            }
            MergeSource::Frame(_) => unreachable!("frame records return above"),
        }
    }

    /// Consumes the smallest unconsumed key's whole group: sets
    /// `key_out` and appends every value (in source order, record
    /// order) to `values`. Returns false when the merge is exhausted.
    /// Shared engine of [`MergeIter::next_group`] and
    /// [`MergeIter::fill_batch`].
    fn gather_group(&mut self, key_out: &mut Option<K>, values: &mut Vec<V>) -> bool {
        let Some(&f0) = self.heap.first() else {
            return false;
        };
        let i0 = self.cursors[f0];
        // The group key, decoded/cloned exactly once per group.
        let gkey: K = match &self.sources[f0] {
            MergeSource::File(file) => file.records[i0].0.clone(),
            MergeSource::Frame(view) => view.key_at(i0),
        };
        while let Some(&f) = self.heap.first() {
            let idx = self.cursors[f];
            // Consume the whole run of `gkey` in this source without
            // touching the heap (runs are contiguous in a sorted
            // source). Frame runs compare packed bytes; nothing but
            // the matched values is decoded.
            let end = match &self.sources[f] {
                MergeSource::File(file) => {
                    if file.records[idx].0 != gkey {
                        break;
                    }
                    let mut end = idx;
                    while end < file.records.len() && file.records[end].0 == gkey {
                        values.push(file.records[end].1.clone());
                        end += 1;
                    }
                    end
                }
                MergeSource::Frame(view) => {
                    let kc = view.key_codec();
                    if !(kc.cmp_decoded)(&gkey, view.key_bytes(idx)).is_eq() {
                        break;
                    }
                    let mut end = idx;
                    while end < view.records()
                        && (kc.cmp_decoded)(&gkey, view.key_bytes(end)).is_eq()
                    {
                        values.push(view.value_at(end));
                        end += 1;
                    }
                    end
                }
            };
            self.consumed += (end - idx) as u64;
            self.cursors[f] = end;
            self.advance_root();
        }
        *key_out = Some(gkey);
        true
    }

    /// The next key group: the smallest unconsumed key together with
    /// *every* value of that key across all sources, in (source
    /// order, record order) — MapReduce guarantee 2 (§2.3). The
    /// values borrow the iterator's reusable buffer and are valid
    /// until the next call; only the group's values are cloned (or
    /// decoded), never the whole keyspace.
    pub fn next_group(&mut self) -> Option<(&K, &[V])> {
        // Detach the buffer so `gather_group` can borrow self mutably.
        let mut group = std::mem::take(&mut self.group);
        group.clear();
        let mut key = None;
        let found = self.gather_group(&mut key, &mut group);
        self.group = group;
        if !found {
            return None;
        }
        self.group_key = key;
        Some((self.group_key.as_ref().expect("gathered"), &self.group))
    }

    /// Fills `batch` with consecutive key groups until at least
    /// `min_records` records are batched (always completing the group
    /// in progress) or the merge is exhausted. Returns the number of
    /// groups added; 0 means the merge is done. Batching amortizes
    /// per-group heap restoration and cursor bookkeeping over a
    /// cache-sized chunk of records instead of paying it per call.
    pub fn fill_batch(&mut self, batch: &mut GroupBatch<K, V>, min_records: usize) -> usize {
        batch.clear();
        loop {
            let mut key = None;
            if !self.gather_group(&mut key, &mut batch.values) {
                break;
            }
            batch.keys.push(key.expect("gathered"));
            batch.ends.push(batch.values.len());
            if batch.values.len() >= min_records {
                break;
            }
        }
        batch.keys.len()
    }
}

/// A reusable batch of key groups drained from a [`MergeIter`]: flat
/// value storage plus per-group end offsets, so refilling it does at
/// most three buffer writes and zero per-group allocations once the
/// buffers have grown to steady state.
pub struct GroupBatch<K, V> {
    keys: Vec<K>,
    values: Vec<V>,
    /// `values` offset one past each group's last value; group `i`
    /// spans `ends[i-1]..ends[i]` (from 0 for the first).
    ends: Vec<usize>,
}

impl<K, V> Default for GroupBatch<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> GroupBatch<K, V> {
    pub fn new() -> Self {
        GroupBatch {
            keys: Vec::new(),
            values: Vec::new(),
            ends: Vec::new(),
        }
    }

    pub fn clear(&mut self) {
        self.keys.clear();
        self.values.clear();
        self.ends.clear();
    }

    /// Number of key groups in the batch.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Total records across all groups in the batch.
    pub fn records(&self) -> usize {
        self.values.len()
    }

    /// The batched groups, in merge order.
    pub fn groups(&self) -> impl Iterator<Item = (&K, &[V])> {
        self.keys.iter().enumerate().map(|(i, k)| {
            let start = if i == 0 { 0 } else { self.ends[i - 1] };
            (k, &self.values[start..self.ends[i]])
        })
    }
}

/// K-way merge of key-sorted files into key groups, delivering every
/// value of a key together — MapReduce guarantee 2 (§2.3).
///
/// Compatibility wrapper over [`MergeIter`] that materializes the
/// whole keyspace. The engine itself streams groups out of
/// `MergeIter` directly; prefer that unless you genuinely need every
/// group at once.
pub fn merge_files<K: MrKey, V: MrValue>(files: &[Arc<MapOutputFile<K, V>>]) -> Vec<(K, Vec<V>)> {
    let mut merge = MergeIter::with_files(files.iter().map(Arc::clone));
    let mut out: Vec<(K, Vec<V>)> = Vec::new();
    while let Some((k, vs)) = merge.next_group() {
        out.push((k.clone(), vs.to_vec()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Combiner;

    struct SumCombiner;
    impl Combiner for SumCombiner {
        type Key = u64;
        type Value = u64;
        fn combine(&self, _key: &u64, values: &mut Vec<u64>) {
            let sum = values.iter().sum();
            values.clear();
            values.push(sum);
        }
    }

    #[test]
    fn builder_partitions_and_sorts() {
        let counters = Counters::default();
        let mut b = MapOutputBuilder::<u64, u64>::new(2);
        b.push(0, 5, 50).unwrap();
        b.push(0, 1, 10).unwrap();
        b.push(1, 2, 20).unwrap();
        let files = b.finish(None, &counters).unwrap();
        assert_eq!(files.len(), 2);
        let f0 = &files.iter().find(|(r, _)| *r == 0).unwrap().1;
        assert_eq!(f0.records, vec![(1, 10), (5, 50)]);
        assert_eq!(f0.raw_count, 2);
    }

    #[test]
    fn combiner_folds_but_annotation_keeps_raw_count() {
        let counters = Counters::default();
        let mut b = MapOutputBuilder::<u64, u64>::new(1);
        b.push(0, 7, 1).unwrap();
        b.push(0, 7, 2).unwrap();
        b.push(0, 7, 3).unwrap();
        b.push(0, 9, 4).unwrap();
        let files = b.finish(Some(&SumCombiner), &counters).unwrap();
        let f = &files[0].1;
        assert_eq!(f.records, vec![(7, 6), (9, 4)]);
        assert_eq!(f.raw_count, 4, "annotation counts raw pairs, not combined");
    }

    #[test]
    fn empty_partitions_produce_no_file() {
        let counters = Counters::default();
        let mut b = MapOutputBuilder::<u64, u64>::new(3);
        b.push(1, 1, 1).unwrap();
        let files = b.finish(None, &counters).unwrap();
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].0, 1);
    }

    #[test]
    fn fetch_counts_connections_even_when_empty() {
        let counters = Counters::default();
        let store = ShuffleStore::<u64, u64>::new(false);
        store
            .put(
                0,
                0,
                0,
                MapOutputFile {
                    records: vec![(1, 1)],
                    raw_count: 1,
                },
            )
            .unwrap();
        assert!(matches!(
            store.fetch(0, 0, 0, &counters).unwrap(),
            Fetched::File(_)
        ));
        assert!(matches!(
            store.fetch(5, 0, 0, &counters).unwrap(), // empty fetch
            Fetched::Empty
        ));
        assert_eq!(counters.snapshot().shuffle_connections, 2);
        assert_eq!(counters.snapshot().shuffled_records, 1);
    }

    #[test]
    fn budgeted_store_demotes_oldest_and_fetch_is_tier_transparent() {
        let counters = Counters::default();
        let dir = std::env::temp_dir().join(format!(
            "sidr-shuffle-budget-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        // Two (u64, u64) records ≈ 32 approximate bytes per file: a
        // 40-byte budget holds one file resident but not two.
        let store =
            ShuffleStore::<u64, u64>::with_spill_budget(false, SpillCodec::smof(dir.clone()), 40);
        let file = |k: u64| MapOutputFile {
            records: vec![(k, k), (k + 1, k)],
            raw_count: 2,
        };
        store.put(0, 0, 0, file(1)).unwrap();
        let one = store.resident_bytes();
        assert!(one > 0, "under budget, the put stays resident");
        store.put(1, 0, 0, file(10)).unwrap();
        assert_eq!(
            store.resident_bytes(),
            one,
            "over budget, the oldest file demotes to disk"
        );
        assert_eq!(store.peak_resident_bytes(), 2 * one);

        // Fetch is tier-transparent: the demoted file reads back the
        // records that went in, the resident one is served as-is.
        match store.fetch(0, 0, 0, &counters).unwrap() {
            Fetched::Frame(view) => {
                assert_eq!(view.records(), 2);
                assert_eq!(view.key_at(0), 1);
                assert_eq!(view.key_at(1), 2);
            }
            Fetched::File(f) => assert_eq!(f.records, vec![(1, 1), (2, 1)]),
            _ => panic!("demoted file must fetch as File or Frame"),
        }
        match store.fetch(1, 0, 0, &counters).unwrap() {
            Fetched::File(f) => assert_eq!(f.records, vec![(10, 10), (11, 10)]),
            _ => panic!("resident file must fetch as File"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_budget_degenerates_to_always_spill() {
        let dir = std::env::temp_dir().join(format!(
            "sidr-shuffle-budget0-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let store =
            ShuffleStore::<u64, u64>::with_spill_budget(false, SpillCodec::smof(dir.clone()), 0);
        store
            .put(
                0,
                0,
                0,
                MapOutputFile {
                    records: vec![(3, 4)],
                    raw_count: 1,
                },
            )
            .unwrap();
        assert_eq!(
            store.resident_bytes(),
            0,
            "budget 0 writes straight to disk"
        );
        assert!(store.contains(0, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn consume_on_fetch_removes_files() {
        let counters = Counters::default();
        let store = ShuffleStore::<u64, u64>::new(true);
        store
            .put(
                0,
                0,
                0,
                MapOutputFile {
                    records: vec![(1, 1)],
                    raw_count: 1,
                },
            )
            .unwrap();
        assert!(matches!(
            store.fetch(0, 0, 0, &counters).unwrap(),
            Fetched::File(_)
        ));
        assert!(!store.contains(0, 0));
        assert!(matches!(
            store.fetch(0, 0, 0, &counters).unwrap(),
            Fetched::Empty
        ));
    }

    #[test]
    fn stale_epoch_is_reported_and_never_consumed() {
        let counters = Counters::default();
        let store = ShuffleStore::<u64, u64>::new(true);
        // A re-executed attempt replaced the entry with epoch 1...
        store
            .put(
                0,
                0,
                1,
                MapOutputFile {
                    records: vec![(1, 1)],
                    raw_count: 1,
                },
            )
            .unwrap();
        // ...so a reducer still holding attempt 0's commit observation
        // must be told to re-wait, and the fresh data must stay put.
        assert!(matches!(
            store.fetch(0, 0, 0, &counters).unwrap(),
            Fetched::Stale { store_epoch: 1 }
        ));
        assert!(store.contains(0, 0));
        // An *older* leftover reads as empty (the requested commit
        // simply wrote nothing for this reducer) and is not consumed.
        assert!(matches!(
            store.fetch(0, 0, 2, &counters).unwrap(),
            Fetched::Empty
        ));
        assert!(store.contains(0, 0));
        assert!(matches!(
            store.fetch(0, 0, 1, &counters).unwrap(),
            Fetched::File(_)
        ));
        assert!(!store.contains(0, 0));
    }

    #[test]
    fn merge_groups_values_across_files() {
        let f1 = Arc::new(MapOutputFile {
            records: vec![(1u64, 10u64), (3, 30)],
            raw_count: 2,
        });
        let f2 = Arc::new(MapOutputFile {
            records: vec![(1, 11), (2, 20)],
            raw_count: 2,
        });
        let merged = merge_files(&[f1, f2]);
        assert_eq!(
            merged,
            vec![(1, vec![10, 11]), (2, vec![20]), (3, vec![30])]
        );
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        let merged: Vec<(u64, Vec<u64>)> = merge_files(&[]);
        assert!(merged.is_empty());
    }

    #[test]
    fn merge_iter_streams_records_in_file_then_record_order() {
        let f1 = Arc::new(MapOutputFile {
            records: vec![(1u64, 10u64), (1, 11), (3, 30)],
            raw_count: 3,
        });
        let f2 = Arc::new(MapOutputFile {
            records: vec![(1, 12), (2, 20)],
            raw_count: 2,
        });
        let mut m = MergeIter::with_files([f1, f2]);
        assert_eq!(m.remaining(), 5);
        assert_eq!(m.peek_key(), Some(1));
        let mut flat = Vec::new();
        while let Some((k, v)) = m.next_record() {
            flat.push((*k, *v));
        }
        // Equal keys deliver in (file order, record order).
        assert_eq!(flat, vec![(1, 10), (1, 11), (1, 12), (2, 20), (3, 30)]);
        assert_eq!(m.remaining(), 0);
    }

    #[test]
    fn merge_iter_groups_reuse_one_buffer() {
        let f1 = Arc::new(MapOutputFile {
            records: vec![(1u64, 10u64), (3, 30)],
            raw_count: 2,
        });
        let f2 = Arc::new(MapOutputFile {
            records: vec![(1, 11), (2, 20)],
            raw_count: 2,
        });
        let mut m = MergeIter::with_files([f1, f2]);
        let mut groups = Vec::new();
        while let Some((k, vs)) = m.next_group() {
            groups.push((*k, vs.to_vec()));
        }
        assert_eq!(
            groups,
            vec![(1, vec![10, 11]), (2, vec![20]), (3, vec![30])]
        );
        assert!(m.next_group().is_none());
    }

    /// Encodes a file and reopens it as a zero-copy v3 frame.
    fn as_frame(f: &MapOutputFile<u64, u64>) -> Smof3View<u64, u64> {
        let bytes = crate::shuffle_file::encode_map_output(f).unwrap();
        Smof3View::parse(Arc::new(bytes))
            .unwrap()
            .expect("u64 keys use v3")
    }

    #[test]
    fn frame_cursors_merge_identically_to_file_cursors() {
        let files = vec![
            MapOutputFile {
                records: vec![(1u64, 10u64), (1, 11), (3, 30)],
                raw_count: 3,
            },
            MapOutputFile {
                records: vec![(1, 12), (2, 20)],
                raw_count: 2,
            },
            MapOutputFile {
                records: Vec::new(),
                raw_count: 0,
            },
        ];
        let mut by_file = MergeIter::with_files(files.iter().cloned().map(Arc::new));
        let mut by_frame = MergeIter::new();
        for f in &files {
            by_frame.push_frame(as_frame(f));
        }
        assert_eq!(by_frame.remaining(), by_file.remaining());
        assert_eq!(by_frame.peek_key(), by_file.peek_key());
        loop {
            let a = by_file.next_group().map(|(k, vs)| (*k, vs.to_vec()));
            let b = by_frame.next_group().map(|(k, vs)| (*k, vs.to_vec()));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn mixed_file_and_frame_sources_keep_push_order_ties() {
        let f1 = MapOutputFile {
            records: vec![(1u64, 10u64), (2, 20)],
            raw_count: 2,
        };
        let f2 = MapOutputFile {
            records: vec![(1, 11), (2, 21)],
            raw_count: 2,
        };
        // File first, frame second: ties must resolve in push order.
        let mut m = MergeIter::new();
        m.push_file(Arc::new(f1.clone()));
        m.push_frame(as_frame(&f2));
        let mut flat = Vec::new();
        while let Some((k, v)) = m.next_record() {
            flat.push((*k, *v));
        }
        assert_eq!(flat, vec![(1, 10), (1, 11), (2, 20), (2, 21)]);
        // And in the opposite push order, the frame's values lead.
        let mut m = MergeIter::new();
        m.push_frame(as_frame(&f2));
        m.push_file(Arc::new(f1));
        let mut flat = Vec::new();
        while let Some((k, v)) = m.next_record() {
            flat.push((*k, *v));
        }
        assert_eq!(flat, vec![(1, 11), (1, 10), (2, 21), (2, 20)]);
    }

    #[test]
    fn fill_batch_drains_same_groups_as_next_group() {
        let files: Vec<MapOutputFile<u64, u64>> = (0..4)
            .map(|f| MapOutputFile {
                records: (0..50u64).map(|i| (i * 2 + f % 2, i + f)).collect(),
                raw_count: 50,
            })
            .collect();
        let mut one_by_one = MergeIter::with_files(files.iter().cloned().map(Arc::new));
        let mut expected = Vec::new();
        while let Some((k, vs)) = one_by_one.next_group() {
            expected.push((*k, vs.to_vec()));
        }
        for min_records in [1, 7, 64, 100_000] {
            let mut merge = MergeIter::new();
            for f in &files {
                merge.push_frame(as_frame(f));
            }
            let mut batch = GroupBatch::new();
            let mut got = Vec::new();
            while merge.fill_batch(&mut batch, min_records) > 0 {
                assert!(batch.records() >= min_records || merge.remaining() == 0);
                for (k, vs) in batch.groups() {
                    got.push((*k, vs.to_vec()));
                }
            }
            assert_eq!(got, expected, "min_records {min_records}");
            assert_eq!(merge.fill_batch(&mut batch, 1), 0, "exhausted");
        }
    }

    #[test]
    fn merge_iter_incremental_push_matches_batch_construction() {
        let files: Vec<Arc<MapOutputFile<u64, u64>>> = vec![
            Arc::new(MapOutputFile {
                records: vec![(2, 1), (4, 2)],
                raw_count: 2,
            }),
            Arc::new(MapOutputFile {
                records: Vec::new(), // empty file: cursor never opens
                raw_count: 0,
            }),
            Arc::new(MapOutputFile {
                records: vec![(1, 3), (2, 4)],
                raw_count: 2,
            }),
        ];
        let mut batch = MergeIter::with_files(files.iter().map(Arc::clone));
        let mut incremental = MergeIter::new();
        for f in &files {
            incremental.push_file(Arc::clone(f));
        }
        loop {
            let a = batch.next_record().map(|(k, v)| (*k, *v));
            let b = incremental.next_record().map(|(k, v)| (*k, *v));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
