//! §3.4's burst-buffer / computational-steering scenario.
//!
//! "The recently proposed burst buffer architecture presents an
//! opportunity for in-situ processing on SSD-based data staging nodes
//! … compute resources are not guaranteed and data may be evicted at
//! any point. Given this tenuous access to data on a fast medium, the
//! ability to prioritize the processing of certain portions of the
//! data allows the scientist to better capitalize on their window of
//! opportunity."
//!
//! We give the scientist a window of opportunity (a deadline at 40 %
//! of the SciHadoop makespan) and a hot region (the last tenth of the
//! output space), and measure how much of the hot region each policy
//! delivers before eviction.

use sidr_coords::{Coord, Shape, Slab};
use sidr_core::{FrameworkMode, SidrPlanner, StructuralQuery};
use sidr_experiments::{compare, write_csv};
use sidr_mapreduce::{RoutingPlan, SplitGenerator};
use sidr_simcluster::{build_sim_job, simulate, CostModel, SimClusterConfig, SimWorkload};

fn main() {
    let query = StructuralQuery::query1().expect("paper query is valid");
    let reducers = 66;
    let cluster = SimClusterConfig::default();
    let model = CostModel::default();
    let kspace = query.intermediate_space();

    // Hot region: the final tenth of the output's leading dimension.
    let hot = Slab::new(
        Coord::from([kspace[0] - kspace[0] / 10, 0, 0, 0]),
        Shape::new(vec![kspace[0] / 10, kspace[1], kspace[2], kspace[3]]).expect("valid"),
    )
    .expect("valid region");

    // Per-keyblock hot-key counts, from the real partition geometry.
    let splits = SplitGenerator::new(query.input_space().clone(), 4)
        .aligned(128 << 20, query.extraction.shape()[0])
        .expect("splits generate");
    let plan = SidrPlanner::new(&query, reducers)
        .build(&splits)
        .expect("plan builds");
    let hot_keys_of = |r: usize| -> u64 {
        plan.partition()
            .keyblock_cover(r)
            .expect("cover exists")
            .iter()
            .filter_map(|s| s.intersect(&hot).expect("same rank"))
            .map(|s| s.count())
            .sum()
    };
    let total_hot: u64 = (0..reducers).map(hot_keys_of).sum();

    // Deadline: 40 % of the SciHadoop makespan.
    let sh = simulate(
        &build_sim_job(&SimWorkload::new(
            query.clone(),
            FrameworkMode::SciHadoop,
            22,
        ))
        .expect("plans"),
        &cluster,
        &model,
    );
    let deadline = 0.4 * sh.makespan_s();

    println!("== §3.4: hot-region output available before eviction at {deadline:.0} s ==\n");
    let mut rows = Vec::new();
    let mut fractions = Vec::new();
    for (label, region) in [
        ("SciHadoop", None),
        ("SIDR default order", None),
        ("SIDR hot-first", Some(hot.clone())),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, (l, r))| ((i, l), r))
    {
        let (i, label) = label;
        let trace = if i == 0 {
            sh.clone()
        } else {
            let mut w = SimWorkload::new(query.clone(), FrameworkMode::Sidr, reducers);
            w.priority_region = region;
            simulate(&build_sim_job(&w).expect("plans"), &cluster, &model)
        };
        // Which keyblocks committed before the deadline?
        let hot_done: u64 = (0..trace.reduce_end_s.len())
            .filter(|&r| trace.reduce_end_s[r] <= deadline)
            .map(|r| if i == 0 { 0 } else { hot_keys_of(r) })
            .sum();
        let fraction = if total_hot == 0 {
            0.0
        } else {
            hot_done as f64 / total_hot as f64
        };
        println!(
            "{label:>20}: {:>5.1} % of the hot region delivered before eviction \
             (first result {:.0} s)",
            100.0 * fraction,
            trace.first_result_s()
        );
        rows.push(format!(
            "{label},{fraction:.4},{:.1}",
            trace.first_result_s()
        ));
        fractions.push(fraction);
    }
    let path = write_csv(
        "burst_buffer",
        "policy,hot_fraction_by_deadline,first_result_s",
        &rows,
    );
    println!("[csv] {}", path.display());

    println!("\nChecks:");
    compare(
        "SciHadoop delivers nothing before its global barrier",
        "window missed",
        &format!("{:.0} %", 100.0 * fractions[0]),
        fractions[0] == 0.0,
    );
    compare(
        "prioritization delivers the hot region within the window",
        "capitalize on the window",
        &format!(
            "{:.0} % vs {:.0} % unprioritized",
            100.0 * fractions[2],
            100.0 * fractions[1]
        ),
        fractions[2] > fractions[1] && fractions[2] > 0.9,
    );
    // Priority order actually front-loads the hot keyblocks.
    let order = plan.reduce_order();
    let _ = order;
}
