//! Contiguous, skew-bounded partition geometry — the heart of
//! `partition+` (§3.1, Fig. 7).
//!
//! Given the exact intermediate keyspace `K′ᵀ` of a structural query,
//! `partition+`:
//!
//! 1. picks an n-dimensional *skew shape* whose element count is below
//!    the permissible skew bound,
//! 2. tiles `K′ᵀ` with it, counting the instances (`IntShapes`),
//! 3. deals contiguous row-major runs of `⌈IntShapes / r⌉` instances to
//!    each of the `r` keyblocks — the final partition is allowed to be
//!    smaller "so that the other partitions consist of simpler shapes
//!    (making routing logic simpler) while also reducing the load on
//!    the last Reduce task".
//!
//! Keyblocks therefore differ by at most one skew-shape instance, and
//! every keyblock is a contiguous row-major range of `K′` — which is
//! what makes Reduce output dense and contiguous (§4.4).

use serde::{Deserialize, Serialize};

use crate::coord::Coord;
use crate::error::CoordError;
use crate::shape::Shape;
use crate::slab::Slab;
use crate::tiling::{PartialPolicy, Tiling};
use crate::Result;

/// Identifier of a keyblock (and of the Reduce task that owns it).
pub type KeyblockId = usize;

/// A contiguous partition of an intermediate keyspace into `r`
/// keyblocks.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContiguousPartition {
    space: Shape,
    tiling: Tiling,
    num_blocks: usize,
    /// `⌊IntShapes / r⌋` — every block gets at least this many
    /// instances.
    base_instances: u64,
    /// `IntShapes mod r` — the first `remainder` blocks get one extra
    /// instance, so blocks differ by at most one instance and later
    /// blocks (including the final one) are never larger (§3.1).
    remainder: u64,
}

/// Exported description of a single keyblock: its instance run, the
/// slabs of `K′` it covers, and its exact key count.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyblockSpec {
    pub id: KeyblockId,
    /// Row-major skew-shape instance run `[start, end)`.
    pub instance_range: (u64, u64),
    /// Minimal slab cover of the block in `K′`.
    pub cover: Vec<Slab>,
    /// Exact number of `K′` keys assigned to the block.
    pub key_count: u64,
}

impl ContiguousPartition {
    /// Partitions `space` (= `K′ᵀ`) into `num_blocks` keyblocks using
    /// `skew_shape` as the dealing unit. The skew shape is clipped at
    /// the space boundary so every key belongs to exactly one block.
    pub fn new(space: Shape, skew_shape: Shape, num_blocks: usize) -> Result<Self> {
        if num_blocks == 0 {
            return Err(CoordError::ZeroPartitions);
        }
        let tiling = Tiling::new(space.clone(), skew_shape, PartialPolicy::Clip)?;
        let instances = tiling.instance_count();
        let base_instances = instances / num_blocks as u64;
        let remainder = instances % num_blocks as u64;
        Ok(ContiguousPartition {
            space,
            tiling,
            num_blocks,
            base_instances,
            remainder,
        })
    }

    /// Builds a partition with a skew shape chosen automatically for a
    /// permissible skew of at most `skew_bound` keys (§3.1: the system
    /// "creates an n-dimensional shape whose total size is smaller
    /// than that upper bound").
    pub fn with_skew_bound(space: Shape, num_blocks: usize, skew_bound: u64) -> Result<Self> {
        let skew_shape = choose_skew_shape(&space, skew_bound)?;
        Self::new(space, skew_shape, num_blocks)
    }

    /// The partitioned space `K′ᵀ`.
    pub fn space(&self) -> &Shape {
        &self.space
    }

    /// The skew shape used as the dealing unit.
    pub fn skew_shape(&self) -> &Shape {
        self.tiling.tile()
    }

    /// The skew-shape tiling of `K′ᵀ` (dealing-unit geometry).
    pub fn tiling(&self) -> &Tiling {
        &self.tiling
    }

    /// Number of keyblocks (`r`, the Reduce task count).
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Total skew-shape instances (`IntShapes` in Fig. 7).
    pub fn instance_count(&self) -> u64 {
        self.tiling.instance_count()
    }

    /// Maximum instances dealt to any keyblock (blocks differ by at
    /// most one instance).
    pub fn max_instances_per_block(&self) -> u64 {
        self.base_instances + u64::from(self.remainder > 0)
    }

    /// `⌊IntShapes / r⌋`: instances every block receives.
    pub fn base_instances(&self) -> u64 {
        self.base_instances
    }

    /// `IntShapes mod r`: blocks receiving one extra instance.
    pub fn remainder_blocks(&self) -> u64 {
        self.remainder
    }

    /// The keyblock owning intermediate key `k′`.
    pub fn keyblock_of_key(&self, k_prime: &Coord) -> Result<KeyblockId> {
        let idx = self
            .tiling
            .instance_index_of(k_prime)?
            .expect("Clip policy covers every key");
        Ok(self.keyblock_of_instance(idx))
    }

    /// Allocation-free hot path of [`ContiguousPartition::keyblock_of_key`]
    /// for validated keys — the per-pair cost §4.5 benchmarks.
    #[inline]
    pub fn keyblock_of_key_fast(&self, k_prime: &Coord) -> KeyblockId {
        let idx = self
            .tiling
            .instance_index_fast(k_prime)
            .expect("Clip policy covers every in-bounds key");
        self.keyblock_of_instance(idx)
    }

    /// The keyblock owning skew-shape instance `idx`.
    pub fn keyblock_of_instance(&self, idx: u64) -> KeyblockId {
        // First `remainder` blocks hold base+1 instances each, the
        // rest hold base.
        let threshold = self.remainder * (self.base_instances + 1);
        if idx < threshold {
            (idx / (self.base_instances + 1)) as usize
        } else {
            debug_assert!(self.base_instances > 0, "index beyond dealt instances");
            (self.remainder + (idx - threshold) / self.base_instances) as usize
        }
    }

    /// The row-major instance run `[start, end)` of keyblock `id`.
    /// When there are more blocks than instances, trailing blocks get
    /// an empty run.
    pub fn block_run(&self, id: KeyblockId) -> (u64, u64) {
        let id = id as u64;
        let (start, end) = if id < self.remainder {
            let s = id * (self.base_instances + 1);
            (s, s + self.base_instances + 1)
        } else {
            let s = self.remainder * (self.base_instances + 1)
                + (id - self.remainder) * self.base_instances;
            (s, s + self.base_instances)
        };
        (start, end)
    }

    /// Minimal slab cover of keyblock `id` in `K′`.
    pub fn block_cover(&self, id: KeyblockId) -> Result<Vec<Slab>> {
        let (start, end) = self.block_run(id);
        self.tiling.run_cover(start, end)
    }

    /// Exact number of `K′` keys in keyblock `id`.
    pub fn block_key_count(&self, id: KeyblockId) -> Result<u64> {
        Ok(self.block_cover(id)?.iter().map(Slab::count).sum())
    }

    /// Full specs for all keyblocks.
    pub fn block_specs(&self) -> Result<Vec<KeyblockSpec>> {
        (0..self.num_blocks)
            .map(|id| {
                let instance_range = self.block_run(id);
                let cover = self.block_cover(id)?;
                let key_count = cover.iter().map(Slab::count).sum();
                Ok(KeyblockSpec {
                    id,
                    instance_range,
                    cover,
                    key_count,
                })
            })
            .collect()
    }

    /// Observed skew: `max - min` key count across *non-empty*
    /// keyblocks. The partition guarantees this is at most one
    /// skew-shape instance (§3.1).
    pub fn max_skew(&self) -> Result<u64> {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for id in 0..self.num_blocks {
            let c = self.block_key_count(id)?;
            if c == 0 {
                continue;
            }
            lo = lo.min(c);
            hi = hi.max(c);
        }
        if hi == 0 {
            return Ok(0);
        }
        Ok(hi - lo)
    }
}

/// Chooses a row-major-contiguous skew shape of at most `bound`
/// elements: full extents are taken from the innermost (fastest-
/// varying) dimensions while they fit, then the next dimension is
/// truncated to use the remaining budget. The result tiles `K′` in
/// simple contiguous runs, which is exactly the "simpler shapes"
/// trade-off footnote 1 of §3.1 describes.
pub fn choose_skew_shape(space: &Shape, bound: u64) -> Result<Shape> {
    if bound == 0 {
        return Err(CoordError::SkewBoundTooSmall { bound });
    }
    let rank = space.rank();
    let mut extents = vec![1u64; rank];
    let mut budget = bound;
    for dim in (0..rank).rev() {
        let e = space[dim];
        if budget == 1 {
            break;
        }
        let take = e.min(budget);
        extents[dim] = take;
        if take < e {
            // Partial dimension: outer dims stay at 1.
            break;
        }
        budget /= e;
    }
    Shape::new(extents)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(v: &[u64]) -> Shape {
        Shape::new(v.to_vec()).unwrap()
    }

    #[test]
    fn choose_skew_shape_row_major_greedy() {
        let s = choose_skew_shape(&shape(&[52, 50, 200]), 1000).unwrap();
        assert_eq!(s, shape(&[1, 5, 200]));
        assert!(s.count() <= 1000);
    }

    #[test]
    fn choose_skew_shape_tiny_bound() {
        let s = choose_skew_shape(&shape(&[10, 10]), 1).unwrap();
        assert_eq!(s, shape(&[1, 1]));
    }

    #[test]
    fn choose_skew_shape_huge_bound_is_whole_space() {
        let s = choose_skew_shape(&shape(&[4, 5]), 1_000_000).unwrap();
        assert_eq!(s, shape(&[4, 5]));
    }

    #[test]
    fn zero_bound_rejected() {
        assert!(matches!(
            choose_skew_shape(&shape(&[4]), 0),
            Err(CoordError::SkewBoundTooSmall { .. })
        ));
    }

    #[test]
    fn every_key_in_exactly_one_block() {
        let p = ContiguousPartition::with_skew_bound(shape(&[13, 7]), 4, 5).unwrap();
        let mut counts = [0u64; 4];
        for k in shape(&[13, 7]).iter_coords() {
            counts[p.keyblock_of_key(&k).unwrap()] += 1;
        }
        for (id, &c) in counts.iter().enumerate() {
            assert_eq!(c, p.block_key_count(id).unwrap(), "block {id}");
        }
        assert_eq!(counts.iter().sum::<u64>(), 13 * 7);
    }

    #[test]
    fn blocks_are_contiguous_in_row_major_order() {
        // Keys in block order must be non-decreasing in linear index:
        // walking K' row-major, the block id never decreases.
        let space = shape(&[6, 8]);
        let p = ContiguousPartition::with_skew_bound(space.clone(), 3, 8).unwrap();
        let mut last_block = 0;
        for k in space.iter_coords() {
            let b = p.keyblock_of_key(&k).unwrap();
            assert!(b >= last_block, "block id decreased at {k}");
            last_block = b;
        }
    }

    #[test]
    fn skew_bounded_by_one_instance() {
        let p = ContiguousPartition::with_skew_bound(shape(&[52, 50, 200]), 22, 1000).unwrap();
        let skew = p.max_skew().unwrap();
        assert!(
            skew <= p.skew_shape().count(),
            "skew {skew} exceeds one instance ({})",
            p.skew_shape().count()
        );
    }

    #[test]
    fn final_block_is_smaller_not_larger() {
        // 10 instances over 4 blocks: 3,3,2,2 — blocks differ by at
        // most one instance and the final block is never the largest.
        let p = ContiguousPartition::new(shape(&[10]), shape(&[1]), 4).unwrap();
        let runs: Vec<(u64, u64)> = (0..4).map(|i| p.block_run(i)).collect();
        assert_eq!(runs, vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
        let sizes: Vec<u64> = runs.iter().map(|(s, e)| e - s).collect();
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn keyblock_of_instance_matches_block_run() {
        for (instances, blocks) in [(10u64, 4usize), (520, 22), (7, 7), (3, 5), (100, 1)] {
            let p = ContiguousPartition::new(shape(&[instances]), shape(&[1]), blocks).unwrap();
            for idx in 0..instances {
                let b = p.keyblock_of_instance(idx);
                let (s, e) = p.block_run(b);
                assert!(
                    idx >= s && idx < e,
                    "instance {idx} not in run of block {b}"
                );
            }
        }
    }

    #[test]
    fn more_blocks_than_instances_leaves_empties() {
        let p = ContiguousPartition::new(shape(&[3]), shape(&[1]), 5).unwrap();
        let counts: Vec<u64> = (0..5).map(|i| p.block_key_count(i).unwrap()).collect();
        assert_eq!(counts, vec![1, 1, 1, 0, 0]);
    }

    #[test]
    fn block_cover_partitions_space() {
        let space = shape(&[9, 4]);
        let p = ContiguousPartition::with_skew_bound(space.clone(), 3, 4).unwrap();
        let mut total = 0u64;
        for id in 0..3 {
            for s in p.block_cover(id).unwrap() {
                total += s.count();
                // Cover slabs of different blocks must not overlap.
                for other in 0..3 {
                    if other == id {
                        continue;
                    }
                    for os in p.block_cover(other).unwrap() {
                        assert!(!s.intersects(&os));
                    }
                }
            }
        }
        assert_eq!(total, space.count());
    }

    #[test]
    fn paper_scale_partition_query1() {
        // Query 1 intermediate space {3600,10,20,5} with 22, 528 blocks.
        let space = shape(&[3600, 10, 20, 5]);
        for r in [22usize, 66, 176, 528] {
            let p = ContiguousPartition::with_skew_bound(space.clone(), r, 1000).unwrap();
            assert!(p.max_skew().unwrap() <= p.skew_shape().count());
            let total: u64 = (0..r).map(|i| p.block_key_count(i).unwrap()).sum();
            assert_eq!(total, space.count());
        }
    }
}
