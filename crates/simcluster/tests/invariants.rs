//! Simulator invariants, property-tested over randomized jobs: causal
//! ordering (barriers respected), conservation (everything needed
//! runs), and policy dominance (dependency barriers never finish
//! later than the global barrier, all else equal).

use proptest::prelude::*;

use sidr_simcluster::{simulate, CostModel, SimClusterConfig, SimJob, SimMapTask, SimReduceTask};

/// Random job: 4-60 maps, 1-12 reduces, contiguous dep slices.
fn jobs() -> impl Strategy<Value = SimJob> {
    (4usize..60, 1usize..12, any::<bool>(), 0u64..3).prop_map(
        |(n_maps, n_reduces, invert, node_salt)| {
            let maps = (0..n_maps)
                .map(|i| SimMapTask {
                    input_bytes: 1 << 20,
                    preferred_nodes: vec![
                        (i + node_salt as usize) % 24,
                        (i * 7 + 3) % 24,
                        (i * 13 + 11) % 24,
                    ],
                    oblivious: false,
                })
                .collect();
            let per = n_maps / n_reduces;
            let reduces = (0..n_reduces)
                .map(|r| {
                    let end = if r + 1 == n_reduces {
                        n_maps
                    } else {
                        (r + 1) * per
                    };
                    SimReduceTask {
                        input_bytes: 1 << 19,
                        deps: Some((r * per..end).collect()),
                    }
                })
                .collect();
            SimJob {
                maps,
                reduces,
                reduce_order: (0..n_reduces).collect(),
                invert_scheduling: invert,
            }
        },
    )
}

fn model() -> CostModel {
    CostModel {
        jitter_frac: 0.03,
        hadoop_remote_penalty: 0.0,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn barriers_are_causal(job in jobs()) {
        let trace = simulate(&job, &SimClusterConfig::default(), &model());
        for (r, task) in job.reduces.iter().enumerate() {
            let deps = task.deps.as_ref().expect("generated jobs have deps");
            // A reduce never becomes ready before its last dependency.
            for &m in deps {
                let map_end = trace.map_end_s[m].expect("dep maps must run");
                prop_assert!(
                    trace.reduce_ready_s[r] >= map_end - 1e-9,
                    "reduce {r} ready {} before dep map {m} at {map_end}",
                    trace.reduce_ready_s[r]
                );
            }
            // End >= ready >= slot start.
            prop_assert!(trace.reduce_end_s[r] >= trace.reduce_ready_s[r]);
            prop_assert!(trace.reduce_ready_s[r] >= trace.reduce_start_s[r] - 1e-9);
        }
    }

    #[test]
    fn all_needed_maps_run_exactly_when_needed(job in jobs()) {
        let trace = simulate(&job, &SimClusterConfig::default(), &model());
        let mut needed = vec![false; job.maps.len()];
        for task in &job.reduces {
            for &m in task.deps.as_ref().expect("deps") {
                needed[m] = true;
            }
        }
        for (m, &need) in needed.iter().enumerate() {
            if need {
                prop_assert!(trace.map_end_s[m].is_some(), "needed map {m} never ran");
            } else if job.invert_scheduling {
                prop_assert!(
                    trace.map_end_s[m].is_none(),
                    "unneeded map {m} ran under inverted scheduling"
                );
            }
        }
    }

    #[test]
    fn dependency_barrier_never_slower_than_global(job in jobs()) {
        let dep_trace = simulate(&job, &SimClusterConfig::default(), &model());
        let mut global = job.clone();
        for r in global.reduces.iter_mut() {
            r.deps = None;
        }
        global.invert_scheduling = false;
        let global_trace = simulate(&global, &SimClusterConfig::default(), &model());
        // First results strictly ordered, makespan no worse (ties
        // allowed: the final reduce waits for the last map either way).
        prop_assert!(
            dep_trace.first_result_s() <= global_trace.first_result_s() + 1e-6,
            "deps {} vs global {}",
            dep_trace.first_result_s(),
            global_trace.first_result_s()
        );
        prop_assert!(
            dep_trace.makespan_s() <= global_trace.makespan_s() * 1.05 + 1e-6,
            "deps {} vs global {}",
            dep_trace.makespan_s(),
            global_trace.makespan_s()
        );
    }

    #[test]
    fn traces_are_reproducible(job in jobs()) {
        let a = simulate(&job, &SimClusterConfig::default(), &model());
        let b = simulate(&job, &SimClusterConfig::default(), &model());
        prop_assert_eq!(a.map_end_s, b.map_end_s);
        prop_assert_eq!(a.reduce_end_s, b.reduce_end_s);
        prop_assert_eq!(a.reduce_ready_s, b.reduce_ready_s);
    }
}
