//! Chaos tests for the serving layer: per-job deadlines degrade to a
//! typed terminal state, injected mid-stream task failures are
//! absorbed by the engine's retry machinery without the client ever
//! noticing, and robustness-hostile specs (zero retry budget, zero
//! deadline) are rejected at admission with stable diagnostic codes.

use std::path::PathBuf;
use std::thread;
use std::time::Duration;

use sidr_analyze::presets;
use sidr_coords::Coord;
use sidr_core::framework::{run_query, FrameworkMode, RunOptions};
use sidr_core::spec::JobSpec;
use sidr_core::SidrPlanner;
use sidr_mapreduce::{FaultKind, FaultPlan, FaultTarget, RetryPolicy, TaskKind};
use sidr_scifile::gen::{DatasetSpec, ValueModel};
use sidr_serve::{Client, ServeError, Server, ServerConfig, SubmitOptions};

/// Builds the CI-scale preset's spec and (once per path) its dataset.
fn tiny_fixture(tag: &str) -> (JobSpec, String) {
    let job = presets::preset("query1-tiny").expect("preset exists");
    let plan = SidrPlanner::new(&job.query, job.reducer_counts[0])
        .build(&job.splits)
        .unwrap();
    let spec = JobSpec::from_plan(&job.query, &job.splits, &plan).unwrap();

    let dir = std::env::temp_dir().join("sidr-serve-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path: PathBuf = dir.join(format!("chaos-{}-{tag}.scinc", std::process::id()));
    if !path.exists() {
        let space = job.query.input_space().clone();
        DatasetSpec {
            variable: job.query.variable.clone(),
            dim_names: (0..space.rank()).map(|d| format!("d{d}")).collect(),
            space,
            model: ValueModel::LinearIndex,
            seed: 0,
        }
        .generate::<f32>(&path)
        .unwrap();
    }
    (spec, path.to_string_lossy().into_owned())
}

fn spawn_server(config: ServerConfig) -> (std::net::SocketAddr, sidr_serve::ServerHandle) {
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    thread::spawn(move || server.run());
    (addr, handle)
}

/// A job that blows its deadline is cancelled by the watchdog and the
/// submitter receives the typed `DeadlineExceeded` terminal frame —
/// distinguishable from a user cancellation.
#[test]
fn blown_deadline_degrades_to_typed_terminal_state() {
    let (spec, input) = tiny_fixture("deadline");
    let (addr, handle) = spawn_server(ServerConfig {
        map_slots: 1,
        reduce_slots: 1,
        ..ServerConfig::default()
    });

    // 12 maps at 50 ms each on one slot can never meet 40 ms.
    let spec = spec.with_deadline_ms(40);
    let mut client = Client::connect(addr).unwrap();
    let ticket = client
        .submit(
            &spec,
            &input,
            SubmitOptions {
                map_think_ms: 50,
                ..SubmitOptions::default()
            },
        )
        .unwrap();

    match client.stream_job(ticket.job, |_, _, _| {}) {
        Err(ServeError::DeadlineExceeded { job, deadline_ms }) => {
            assert_eq!(job, ticket.job);
            assert_eq!(deadline_ms, 40);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = handle.stats();
        if stats.jobs_deadline_exceeded == 1 {
            assert_eq!(stats.jobs_cancelled, 0, "deadline miscounted as cancel");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "deadline state never recorded: {stats:?}"
        );
        thread::sleep(Duration::from_millis(10));
    }
    handle.shutdown();
}

/// A map task that dies mid-stream is retried inside the engine; the
/// client's stream completes with results byte-identical to a
/// fault-free batch run, and the retry is visible on the timeline.
#[test]
fn mid_stream_map_failure_is_invisible_to_the_client() {
    let (spec, input) = tiny_fixture("mapfail");
    let (addr, handle) = spawn_server(ServerConfig {
        map_slots: 2,
        reduce_slots: 2,
        ..ServerConfig::default()
    });

    let file = sidr_scifile::ScincFile::open(&input).unwrap();
    let query = spec.query().unwrap();
    let batch = run_query(&file, &query, &RunOptions::new(FrameworkMode::Sidr, 4)).unwrap();

    let mut client = Client::connect(addr).unwrap();
    let ticket = client
        .submit(
            &spec,
            &input,
            SubmitOptions {
                map_think_ms: 5,
                fault_plan: FaultPlan::none().with(FaultTarget::Map(3), 0, FaultKind::Fail),
                ..SubmitOptions::default()
            },
        )
        .unwrap();

    let mut streamed: Vec<(Coord, f64)> = Vec::new();
    let outcome = client
        .stream_job(ticket.job, |_, _, records| {
            streamed.extend(records.iter().cloned())
        })
        .unwrap();
    assert!(outcome.completed, "job did not survive the injected fault");
    streamed.sort_by(|a, b| a.0.cmp(&b.0));
    assert_eq!(streamed, batch.records);
    assert!(
        outcome
            .events
            .iter()
            .any(|e| e.kind == TaskKind::MapRetry && e.task == 3 && e.attempt == 1),
        "retry not visible on the streamed timeline"
    );
    assert_eq!(handle.stats().jobs_failed, 0);
    handle.shutdown();
}

/// Admission rejects robustness-hostile specs with the stable codes:
/// a zero retry budget (SIDR-E011) and a zero deadline (SIDR-E012).
#[test]
fn hostile_retry_and_deadline_specs_are_rejected_at_admission() {
    let (spec, input) = tiny_fixture("hostile");
    let (addr, handle) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();

    let no_retries = spec.clone().with_retry(RetryPolicy {
        max_task_attempts: 0,
        backoff_ms: 1,
        ..RetryPolicy::default()
    });
    match client.submit(&no_retries, &input, SubmitOptions::default()) {
        Err(ServeError::Rejected { diagnostics, .. }) => {
            assert!(
                diagnostics.iter().any(|d| d.contains("SIDR-E011")),
                "missing SIDR-E011: {diagnostics:?}"
            );
        }
        other => panic!("zero retry budget was admitted: {other:?}"),
    }

    let mut client = Client::connect(addr).unwrap();
    let zero_deadline = spec.with_deadline_ms(0);
    match client.submit(&zero_deadline, &input, SubmitOptions::default()) {
        Err(ServeError::Rejected { diagnostics, .. }) => {
            assert!(
                diagnostics.iter().any(|d| d.contains("SIDR-E012")),
                "missing SIDR-E012: {diagnostics:?}"
            );
        }
        other => panic!("zero deadline was admitted: {other:?}"),
    }

    assert_eq!(handle.stats().jobs_done + handle.stats().jobs_failed, 0);
    handle.shutdown();
}
