//! `partition+` — SIDR's structure-aware partition function (§3.1).
//!
//! Hadoop's default partitioner takes the key's binary representation
//! modulo the reducer count, so keyblock sizes depend on which keys
//! happen to exist and how the key type hashes — the source of the
//! skew pathology of §4.3. `partition+` instead computes the exact
//! intermediate keyspace `K′ᵀ` from the query and deals *contiguous*
//! row-major runs of a skew-bounded shape to the keyblocks (Fig. 7):
//! balanced by construction, and contiguous so Reduce output is a
//! dense slab (§4.4).

use sidr_coords::{choose_skew_shape, ContiguousPartition, Coord, Shape, Slab};
use sidr_mapreduce::Partitioner;

use crate::query::StructuralQuery;
use crate::Result;

/// The `partition+` function for one query: an immutable, cheap-to-
/// share assignment of `K′` to keyblocks.
///
/// Partitioning runs once per intermediate pair, in-line with Map
/// execution (§4.5), so the per-key path is allocation-free and uses
/// strength-reduced division (invariant multiplication) instead of
/// hardware divides.
///
/// ```
/// use sidr_core::{Operator, PartitionPlus, StructuralQuery};
/// use sidr_coords::{Coord, Shape};
/// use sidr_mapreduce::Partitioner;
///
/// let q = StructuralQuery::new(
///     "temperature",
///     Shape::new(vec![364, 250, 200]).unwrap(),
///     Shape::new(vec![7, 5, 1]).unwrap(),
///     Operator::Mean,
/// ).unwrap();
/// let pp = PartitionPlus::for_query(&q, 22).unwrap();
/// // Keyblocks are balanced to within one dealing unit...
/// assert!(pp.max_skew().unwrap() <= pp.partition().skew_shape().count());
/// // ...and contiguous: the first key of K' belongs to keyblock 0.
/// let first = Coord::from([0, 0, 0]);
/// assert_eq!(Partitioner::partition(&pp, &first, 22), 0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionPlus {
    partition: ContiguousPartition,
    /// Per-dimension divisor by the skew-shape stride.
    dim_div: Vec<MagicDiv>,
    /// Grid extents, colocated for the hot loop.
    grid: Vec<u64>,
    /// Instance → block: first `remainder` blocks hold `base+1`
    /// instances each, so instances below `threshold` divide by
    /// `base+1` and the rest by `base`.
    threshold: u64,
    remainder: u64,
    div_base_plus_1: MagicDiv,
    div_base: MagicDiv,
}

/// Division by a fixed divisor via the Granlund–Montgomery round-up
/// method: `m = ⌊2⁶⁴/d⌋ + 1`, `n/d = (n·m) >> 64`, exact for all
/// `n·d < 2⁶⁴` — always true here because `n` is a coordinate and `d`
/// a stride of the same space, whose element count fits `u64` by
/// `Shape`'s construction invariant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct MagicDiv {
    d: u64,
    m: u64,
}

impl MagicDiv {
    /// Builds a divisor valid for all dividends up to `max_n`. When
    /// the exactness precondition (`max_n · d < 2⁶⁴`) cannot be
    /// guaranteed, falls back to hardware division (`m == 0`).
    fn new(d: u64, max_n: u64) -> Self {
        debug_assert!(d > 0);
        let m = if d == 1 || (max_n as u128) * (d as u128) >= (1u128 << 64) {
            0
        } else {
            ((1u128 << 64) / d as u128 + 1) as u64
        };
        MagicDiv { d, m }
    }

    #[inline(always)]
    fn div(&self, n: u64) -> u64 {
        if self.m == 0 {
            n / self.d
        } else {
            ((n as u128 * self.m as u128) >> 64) as u64
        }
    }
}

impl PartitionPlus {
    /// Builds `partition+` for a query and reducer count, with a skew
    /// bound "chosen by the system based on the query" (§3.1): one
    /// row-major row of `K′ᵀ`, capped so at least `4·r` dealing units
    /// exist — small enough that blocks differ by a sliver, large
    /// enough that keyblock shapes stay simple.
    pub fn for_query(query: &StructuralQuery, num_reducers: usize) -> Result<Self> {
        let kspace = query.intermediate_space();
        let bound = default_skew_bound(&kspace, num_reducers);
        Self::with_skew_bound(kspace, num_reducers, bound)
    }

    /// Builds `partition+` with a user-supplied skew bound (§3.1:
    /// "either user-defined as part of the query or chosen by the
    /// system").
    pub fn with_skew_bound(kspace: Shape, num_reducers: usize, skew_bound: u64) -> Result<Self> {
        let skew_shape = choose_skew_shape(&kspace, skew_bound)?;
        let partition = ContiguousPartition::new(kspace, skew_shape, num_reducers)?;

        // Strength-reduce the per-key arithmetic.
        let tiling = partition.tiling();
        let dim_div = tiling
            .stride()
            .iter()
            .zip(partition.space().extents())
            .map(|(&s, &extent)| MagicDiv::new(s, extent.saturating_sub(1)))
            .collect();
        let grid = tiling.grid().to_vec();
        let base = partition.base_instances();
        let remainder = partition.remainder_blocks();
        let max_idx = partition.instance_count().saturating_sub(1);
        Ok(PartitionPlus {
            dim_div,
            grid,
            threshold: remainder * (base + 1),
            remainder,
            div_base_plus_1: MagicDiv::new(base + 1, max_idx),
            div_base: MagicDiv::new(base.max(1), max_idx),
            partition,
        })
    }

    /// The underlying contiguous partition (keyblock geometry).
    pub fn partition(&self) -> &ContiguousPartition {
        &self.partition
    }

    /// Number of keyblocks (= Reduce tasks).
    pub fn num_reducers(&self) -> usize {
        self.partition.num_blocks()
    }

    /// The dense slab cover of one keyblock in `K′` — what its Reduce
    /// task writes as contiguous output (§4.4).
    pub fn keyblock_cover(&self, reducer: usize) -> Result<Vec<Slab>> {
        Ok(self.partition.block_cover(reducer)?)
    }

    /// Exact number of `K′` keys owned by one keyblock.
    pub fn keyblock_key_count(&self, reducer: usize) -> Result<u64> {
        Ok(self.partition.block_key_count(reducer)?)
    }

    /// Observed skew across non-empty keyblocks (≤ one skew-shape
    /// instance by construction when instances are unclipped).
    pub fn max_skew(&self) -> Result<u64> {
        Ok(self.partition.max_skew()?)
    }
}

impl PartitionPlus {
    /// The allocation- and division-free per-key path (§4.5): compute
    /// the skew-shape instance index, then map index → keyblock.
    #[inline]
    fn keyblock_fast(&self, key: &Coord) -> usize {
        debug_assert_eq!(key.rank(), self.grid.len());
        let mut idx = 0u64;
        for (dim, &g) in self.grid.iter().enumerate() {
            let j = self.dim_div[dim].div(key[dim]);
            debug_assert!(j < g, "key outside K'^T");
            idx = idx * g + j;
        }
        if idx < self.threshold {
            self.div_base_plus_1.div(idx) as usize
        } else {
            (self.remainder + self.div_base.div(idx - self.threshold)) as usize
        }
    }
}

impl Partitioner<Coord> for PartitionPlus {
    fn partition(&self, key: &Coord, num_reducers: usize) -> usize {
        debug_assert_eq!(num_reducers, self.partition.num_blocks());
        self.keyblock_fast(key)
    }
}

/// One row of `K′ᵀ`, shrunk until at least `4·r` dealing units exist.
fn default_skew_bound(kspace: &Shape, num_reducers: usize) -> u64 {
    let total = kspace.count();
    let row: u64 = kspace.extents()[1..].iter().product::<u64>().max(1);
    let target_units = (num_reducers as u64) * 4;
    let mut bound = row;
    while bound > 1 && total / bound < target_units {
        bound /= 2;
    }
    bound.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::Operator;

    fn shape(v: &[u64]) -> Shape {
        Shape::new(v.to_vec()).unwrap()
    }

    fn weekly_query() -> StructuralQuery {
        StructuralQuery::new(
            "temperature",
            shape(&[364, 250, 200]),
            shape(&[7, 5, 1]),
            Operator::Mean,
        )
        .unwrap()
    }

    #[test]
    fn covers_every_key_exactly_once() {
        let q = weekly_query();
        let pp = PartitionPlus::for_query(&q, 22).unwrap();
        let kspace = q.intermediate_space();
        let mut counts = [0u64; 22];
        for k in kspace.iter_coords() {
            counts[Partitioner::partition(&pp, &k, 22)] += 1;
        }
        for (r, &c) in counts.iter().enumerate() {
            assert_eq!(c, pp.keyblock_key_count(r).unwrap(), "reducer {r}");
        }
        assert_eq!(counts.iter().sum::<u64>(), kspace.count());
    }

    #[test]
    fn balanced_within_one_dealing_unit() {
        let q = weekly_query();
        let pp = PartitionPlus::for_query(&q, 22).unwrap();
        let skew = pp.max_skew().unwrap();
        let unit = pp.partition().skew_shape().count();
        assert!(skew <= unit, "skew {skew} > unit {unit}");
    }

    #[test]
    fn keyblocks_are_contiguous_runs() {
        let q = weekly_query();
        let pp = PartitionPlus::for_query(&q, 8).unwrap();
        let kspace = q.intermediate_space();
        let mut last = 0usize;
        for k in kspace.iter_coords() {
            let b = Partitioner::partition(&pp, &k, 8);
            assert!(b >= last, "block decreased at {k}");
            last = b;
        }
    }

    #[test]
    fn default_bound_gives_enough_units() {
        let kspace = shape(&[3600, 10, 20, 5]); // Query 1 K'^T
        for r in [22usize, 66, 176, 528, 1024] {
            let pp =
                PartitionPlus::with_skew_bound(kspace.clone(), r, default_skew_bound(&kspace, r))
                    .unwrap();
            // Dealing units comfortably exceed reducers → every
            // reducer gets work.
            for block in 0..r {
                assert!(
                    pp.keyblock_key_count(block).unwrap() > 0,
                    "reducer {block} of {r} starved"
                );
            }
        }
    }

    #[test]
    fn fast_path_matches_reference_partition() {
        // The strength-reduced hot path must agree with the reference
        // geometric computation for every key, across shapes that
        // exercise remainders, clipped instances and rank variety.
        for (space, r, bound) in [
            (shape(&[52, 50, 20]), 22usize, 1000u64),
            (shape(&[13, 7]), 4, 5),
            (shape(&[100]), 7, 3),
            (shape(&[9, 9, 9, 9]), 5, 81),
        ] {
            let pp = PartitionPlus::with_skew_bound(space.clone(), r, bound).unwrap();
            for k in space.iter_coords() {
                assert_eq!(
                    pp.keyblock_fast(&k),
                    pp.partition().keyblock_of_key(&k).unwrap(),
                    "key {k} in space {space}"
                );
            }
        }
    }

    #[test]
    fn patterned_keys_do_not_skew() {
        // The §4.3 pathology: all-even intermediate keys. partition+
        // is oblivious to the binary representation.
        let pp = PartitionPlus::with_skew_bound(shape(&[60, 60]), 22, 60).unwrap();
        let mut counts = [0u64; 22];
        for k in shape(&[60, 60]).iter_coords() {
            // Only consider the patterned (all-even) subset.
            if k[0] % 2 == 0 && k[1] % 2 == 0 {
                counts[Partitioner::partition(&pp, &k, 22)] += 1;
            }
        }
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        assert!(
            nonzero >= 20,
            "patterned keys starve reducers under partition+: {counts:?}"
        );
    }
}
