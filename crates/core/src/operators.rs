//! Query operators applied to each extraction instance.
//!
//! The paper's example queries (§2.2, §4.1): weekly averages, medians
//! over multi-day regions, threshold filters, per-unit sorts. Each
//! operator consumes the complete value list of one intermediate key
//! — MapReduce guarantee 2 (§2.3) makes that safe — and emits one or
//! more output values.

use serde::{Deserialize, Serialize};

use sidr_mapreduce::{Combiner, Reducer};

/// The operator of a structural query.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Operator {
    /// Arithmetic mean of the unit (query example 1, §2.2).
    Mean,
    /// Median of the unit (Query 1, §4.1). Holistic: no combiner.
    Median,
    Min,
    Max,
    Sum,
    /// Number of values in the unit.
    Count,
    /// All values strictly greater than `threshold` (Query 2, §4.1:
    /// "results will contain a list of all values greater than the
    /// threshold"). May emit zero values.
    Filter {
        threshold: f64,
    },
    /// The unit's values in ascending order (query example 3, §2.2).
    SortValues,
    /// Population variance of the unit.
    Variance,
    /// Population standard deviation of the unit.
    StdDev,
    /// `max - min` of the unit — the "24-hour temperature variation"
    /// of query example 2 (§2.2) in aggregate form.
    Range,
    /// Number of values strictly exceeding `threshold` — the counting
    /// form of query example 2, and the histogramming workload of
    /// high-energy physics (§2.2).
    CountAbove {
        threshold: f64,
    },
    /// The `p`-th percentile (0 ≤ p ≤ 100) by nearest-rank — the
    /// periodogram/percentile analyses of §2.2's survey.
    Percentile {
        p: f64,
    },
    /// A fixed-bin histogram of the unit: emits `buckets` counts for
    /// `[lo, hi)`, out-of-range values clamped to the edge bins —
    /// "functionally equivalent to histogramming in high energy
    /// physics" (§2.2).
    Histogram {
        lo: f64,
        hi: f64,
        buckets: u32,
    },
}

impl Operator {
    /// Applies the operator to one complete unit.
    pub fn apply(&self, values: &[f64]) -> Vec<f64> {
        if values.is_empty() {
            return Vec::new();
        }
        match *self {
            Operator::Mean => vec![values.iter().sum::<f64>() / values.len() as f64],
            Operator::Median => vec![median(values)],
            Operator::Min => vec![values.iter().copied().fold(f64::INFINITY, f64::min)],
            Operator::Max => vec![values.iter().copied().fold(f64::NEG_INFINITY, f64::max)],
            Operator::Sum => vec![values.iter().sum()],
            Operator::Count => vec![values.len() as f64],
            Operator::Filter { threshold } => {
                values.iter().copied().filter(|&v| v > threshold).collect()
            }
            Operator::SortValues => {
                let mut v = values.to_vec();
                v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in datasets"));
                v
            }
            Operator::Variance => vec![variance(values)],
            Operator::StdDev => vec![variance(values).sqrt()],
            Operator::Range => {
                let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                vec![hi - lo]
            }
            Operator::CountAbove { threshold } => {
                vec![values.iter().filter(|&&v| v > threshold).count() as f64]
            }
            Operator::Percentile { p } => vec![percentile(values, p)],
            Operator::Histogram { lo, hi, buckets } => {
                let n = buckets.max(1) as usize;
                let mut counts = vec![0.0f64; n];
                let width = (hi - lo) / n as f64;
                for &v in values {
                    let bin = if width > 0.0 {
                        (((v - lo) / width).floor() as i64).clamp(0, n as i64 - 1) as usize
                    } else {
                        0
                    };
                    counts[bin] += 1.0;
                }
                counts
            }
        }
    }

    /// Whether the operator is distributive — computable from partial
    /// aggregates — and therefore combinable at the Map side. HOP-style
    /// systems are *limited* to these (§5); SIDR is not, but uses
    /// combiners for them when available.
    pub fn is_distributive(&self) -> bool {
        matches!(self, Operator::Min | Operator::Max | Operator::Sum)
    }

    /// Whether the operator emits exactly one value per unit (such
    /// output fills a dense array; list-valued output goes to
    /// coordinate/value pair files, §2.4.2 / §4.4).
    pub fn single_valued(&self) -> bool {
        !matches!(
            self,
            Operator::Filter { .. } | Operator::SortValues | Operator::Histogram { .. }
        )
    }

    /// A map-side combiner for distributive operators, `None`
    /// otherwise.
    pub fn combiner(&self) -> Option<OperatorCombiner> {
        self.is_distributive()
            .then_some(OperatorCombiner { op: *self })
    }
}

fn median(values: &[f64]) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in datasets"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

fn variance(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n
}

/// Nearest-rank percentile on a sorted copy; `p` is clamped to
/// `[0, 100]`.
fn percentile(values: &[f64], p: f64) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in datasets"));
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * v.len() as f64).ceil() as usize;
    v[rank.max(1) - 1]
}

/// The engine-facing Reduce function of a structural query: applies
/// the operator to each key's complete unit.
pub struct OperatorReducer {
    pub op: Operator,
}

impl Reducer for OperatorReducer {
    type Key = sidr_coords::Coord;
    type InValue = f64;
    type OutValue = f64;

    fn reduce(&self, _key: &sidr_coords::Coord, values: &[f64], emit: &mut dyn FnMut(f64)) {
        for v in self.op.apply(values) {
            emit(v);
        }
    }
}

/// Map-side combiner for distributive operators (min/max/sum fold
/// losslessly; the shuffle annotation still counts raw pairs,
/// §3.2.1).
pub struct OperatorCombiner {
    op: Operator,
}

impl Combiner for OperatorCombiner {
    type Key = sidr_coords::Coord;
    type Value = f64;

    fn combine(&self, _key: &sidr_coords::Coord, values: &mut Vec<f64>) {
        debug_assert!(self.op.is_distributive());
        let combined = self.op.apply(values);
        values.clear();
        values.extend(combined);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_of_known_values() {
        assert_eq!(Operator::Mean.apply(&[1.0, 2.0, 3.0, 4.0]), vec![2.5]);
        assert_eq!(Operator::Median.apply(&[5.0, 1.0, 3.0]), vec![3.0]);
        assert_eq!(Operator::Median.apply(&[4.0, 1.0, 3.0, 2.0]), vec![2.5]);
    }

    #[test]
    fn min_max_sum_count() {
        let vs = [3.0, -1.0, 7.5];
        assert_eq!(Operator::Min.apply(&vs), vec![-1.0]);
        assert_eq!(Operator::Max.apply(&vs), vec![7.5]);
        assert_eq!(Operator::Sum.apply(&vs), vec![9.5]);
        assert_eq!(Operator::Count.apply(&vs), vec![3.0]);
    }

    #[test]
    fn filter_keeps_only_exceeding() {
        let op = Operator::Filter { threshold: 2.0 };
        assert_eq!(op.apply(&[1.0, 2.0, 3.0, 4.0]), vec![3.0, 4.0]);
        assert_eq!(op.apply(&[1.0]), Vec::<f64>::new());
    }

    #[test]
    fn sort_values_orders() {
        assert_eq!(
            Operator::SortValues.apply(&[3.0, 1.0, 2.0]),
            vec![1.0, 2.0, 3.0]
        );
    }

    #[test]
    fn empty_unit_emits_nothing() {
        for op in [Operator::Mean, Operator::Median, Operator::Sum] {
            assert!(op.apply(&[]).is_empty());
        }
    }

    #[test]
    fn distributivity_classification() {
        assert!(Operator::Sum.is_distributive());
        assert!(Operator::Max.is_distributive());
        assert!(!Operator::Median.is_distributive());
        assert!(!Operator::Mean.is_distributive()); // mean of means is wrong
        assert!(Operator::Median.combiner().is_none());
        assert!(Operator::Sum.combiner().is_some());
    }

    #[test]
    fn single_valuedness() {
        assert!(Operator::Mean.single_valued());
        assert!(!Operator::Filter { threshold: 0.0 }.single_valued());
        assert!(!Operator::SortValues.single_valued());
    }

    #[test]
    fn variance_stddev_range() {
        let vs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(Operator::Variance.apply(&vs), vec![4.0]);
        assert_eq!(Operator::StdDev.apply(&vs), vec![2.0]);
        assert_eq!(Operator::Range.apply(&vs), vec![7.0]);
    }

    #[test]
    fn count_above_counts_strictly() {
        let op = Operator::CountAbove { threshold: 4.0 };
        assert_eq!(op.apply(&[2.0, 4.0, 5.0, 9.0]), vec![2.0]);
        assert_eq!(op.apply(&[1.0]), vec![0.0]);
    }

    #[test]
    fn percentile_nearest_rank() {
        let vs = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(Operator::Percentile { p: 30.0 }.apply(&vs), vec![20.0]);
        assert_eq!(Operator::Percentile { p: 100.0 }.apply(&vs), vec![50.0]);
        assert_eq!(Operator::Percentile { p: 0.0 }.apply(&vs), vec![15.0]);
        // p=50 nearest-rank equals the lower median.
        assert_eq!(Operator::Percentile { p: 50.0 }.apply(&vs), vec![35.0]);
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let op = Operator::Histogram {
            lo: 0.0,
            hi: 10.0,
            buckets: 5,
        };
        let counts = op.apply(&[-1.0, 0.0, 1.9, 2.0, 5.5, 9.99, 10.0, 42.0]);
        // bins: [0,2) [2,4) [4,6) [6,8) [8,10); out-of-range clamps.
        assert_eq!(counts, vec![3.0, 1.0, 1.0, 0.0, 3.0]);
        assert_eq!(
            counts.iter().sum::<f64>(),
            8.0,
            "every value lands somewhere"
        );
        assert!(!op.single_valued());
        assert!(op.apply(&[]).is_empty());
    }

    #[test]
    fn new_operators_are_single_valued_and_holistic() {
        for op in [
            Operator::Variance,
            Operator::StdDev,
            Operator::Range,
            Operator::CountAbove { threshold: 0.0 },
            Operator::Percentile { p: 75.0 },
        ] {
            assert!(op.single_valued(), "{op:?}");
            assert!(!op.is_distributive(), "{op:?}");
            assert!(op.apply(&[]).is_empty(), "{op:?}");
        }
    }

    #[test]
    fn combiner_is_lossless_for_distributive_ops() {
        // Combining partial groups then reducing equals reducing the
        // whole group.
        let all = [4.0, -2.0, 9.0, 3.5, 0.0, 7.0];
        for op in [Operator::Min, Operator::Max, Operator::Sum] {
            let c = op.combiner().unwrap();
            let k = sidr_coords::Coord::from([0]);
            let mut part1 = all[..3].to_vec();
            c.combine(&k, &mut part1);
            let mut part2 = all[3..].to_vec();
            c.combine(&k, &mut part2);
            let combined: Vec<f64> = part1.into_iter().chain(part2).collect();
            assert_eq!(op.apply(&combined), op.apply(&all), "{op:?}");
        }
    }
}
