//! The reduce→client wire path: encoding a committed keyblock into
//! its outbound frame, and ingesting fetched partition bytes into the
//! merge.
//!
//! Benchmark groups:
//! * `wire/keyblock_json` — the legacy path: serialize the keyblock
//!   as a JSON `Response::Keyblock` frame;
//! * `wire/keyblock_binary` — the negotiated path:
//!   [`binframe::encode_keyblock`] into one packed buffer;
//! * `wire/ingest_v2` — decode a SMOF v2 partition into owned records
//!   and merge;
//! * `wire/ingest_v3` — validate a [`Smof3View`] over the same bytes
//!   and merge straight out of them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

use sidr_coords::Coord;
use sidr_mapreduce::shuffle_file::{decode_map_output, encode_map_output, encode_map_output_v2};
use sidr_mapreduce::{MapOutputFile, MergeIter, Smof3View};
use sidr_serve::binframe;
use sidr_serve::{frame, Response};

fn keyblock(n: usize) -> Vec<(Coord, f64)> {
    (0..n)
        .map(|i| (Coord::from([(i / 53) as u64, (i % 53) as u64]), i as f64))
        .collect()
}

fn bench_keyblock_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    for n in [1_000usize, 50_000] {
        let records = keyblock(n);
        let resp = Response::Keyblock {
            job: 7,
            reducer: 3,
            at_ms: 1500,
            records: records.clone(),
        };
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::new("keyblock_json", n), |b| {
            let mut buf = Vec::new();
            b.iter(|| {
                buf.clear();
                frame::send(&mut buf, &resp).unwrap();
                buf.len()
            });
        });
        group.bench_function(BenchmarkId::new("keyblock_binary", n), |b| {
            let mut buf = Vec::new();
            b.iter(|| {
                buf.clear();
                let bin = binframe::encode_keyblock(7, 3, 1500, &records).unwrap();
                frame::write_frame(&mut buf, &bin).unwrap();
                buf.len()
            });
        });
    }
    group.finish();
}

fn partition(n: usize) -> MapOutputFile<Coord, f64> {
    MapOutputFile {
        raw_count: n as u64,
        records: keyblock(n),
    }
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    let n = 40_000usize;
    let file = partition(n);
    let v2 = encode_map_output_v2(&file).unwrap();
    let v3 = Arc::new(encode_map_output(&file).unwrap());
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function(BenchmarkId::new("ingest_v2", n), |b| {
        b.iter(|| {
            let decoded: MapOutputFile<Coord, f64> = decode_map_output(&v2).unwrap();
            let mut merge = MergeIter::with_files([Arc::new(decoded)]);
            let mut records = 0u64;
            while let Some((_, vs)) = merge.next_group() {
                records += vs.len() as u64;
            }
            records
        });
    });
    group.bench_function(BenchmarkId::new("ingest_v3", n), |b| {
        b.iter(|| {
            let view = Smof3View::<Coord, f64>::parse(Arc::clone(&v3))
                .unwrap()
                .unwrap();
            let mut merge: MergeIter<Coord, f64> = MergeIter::new();
            merge.push_frame(view);
            let mut records = 0u64;
            while let Some((_, vs)) = merge.next_group() {
                records += vs.len() as u64;
            }
            records
        });
    });
    group.finish();
}

criterion_group!(benches, bench_keyblock_encode, bench_ingest);
criterion_main!(benches);
