//! Schedule exploration strategies and the execution driver.

use crate::report::{FailedSchedule, Report, ScheduleRef};
use crate::sched::{self, CheckAbort, Choice, Decider, Sched, SplitMix64};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How to walk the schedule space.
#[derive(Clone, Debug)]
pub enum Strategy {
    /// Stateless DFS over the decision tree: covers *every* schedule of
    /// a small scenario, or reports `complete = false` when the budget
    /// runs out first.
    Exhaustive {
        /// Upper bound on executions.
        max_schedules: usize,
    },
    /// Seeded random walk: each execution derives its own seed from the
    /// base seed and iteration index; failures print that per-execution
    /// seed for exact replay.
    Random {
        /// Executions to run.
        schedules: usize,
        /// Base seed.
        seed: u64,
    },
    /// Re-run the single schedule a failure printed as `seed …`.
    ReplaySeed(u64),
    /// Re-run the single schedule a failure printed as `trace …`
    /// (hex-encoded decision string from an exhaustive run).
    ReplayTrace(String),
}

/// Configures and runs explorations of one scenario body.
pub struct Explorer {
    name: String,
    step_limit: u64,
    max_failures: usize,
}

impl Explorer {
    /// New explorer for the named scenario.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            step_limit: 200_000,
            max_failures: 4,
        }
    }

    /// Per-execution yield-point budget (exceeding it is a
    /// [`crate::Finding::StepLimit`]).
    pub fn step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Stop exploring once this many failing schedules are collected.
    pub fn max_failures(mut self, n: usize) -> Self {
        self.max_failures = n;
        self
    }

    /// Explore `body` under `strategy`. The body runs once per
    /// schedule on the calling thread (as vthread 0) and must be
    /// self-contained: create its state fresh, spawn via
    /// [`crate::sync::thread::scope`], and assert its own postconditions.
    pub fn run<F: Fn()>(&self, strategy: Strategy, body: F) -> Report {
        let mut report = Report {
            name: self.name.clone(),
            ..Report::default()
        };
        let mut distinct = HashSet::new();
        match strategy {
            Strategy::Random { schedules, seed } => {
                for i in 0..schedules {
                    let exec_seed = derive_seed(seed, i as u64);
                    let outcome = self.run_one(Decider::Random(SplitMix64::new(exec_seed)), &body);
                    record(
                        &mut report,
                        &mut distinct,
                        outcome,
                        ScheduleRef::Seed(exec_seed),
                    );
                    if report.failures.len() >= self.max_failures {
                        break;
                    }
                }
            }
            Strategy::ReplaySeed(exec_seed) => {
                let outcome = self.run_one(Decider::Random(SplitMix64::new(exec_seed)), &body);
                record(
                    &mut report,
                    &mut distinct,
                    outcome,
                    ScheduleRef::Seed(exec_seed),
                );
            }
            Strategy::ReplayTrace(ref hex) => {
                let script = decode_trace(hex);
                let outcome = self.run_one(Decider::Scripted { script, pos: 0 }, &body);
                let r = ScheduleRef::Trace(hex.clone());
                record(&mut report, &mut distinct, outcome, r);
            }
            Strategy::Exhaustive { max_schedules } => {
                let mut prefix: Vec<Choice> = Vec::new();
                loop {
                    if report.schedules >= max_schedules {
                        break;
                    }
                    let outcome = self.run_one(
                        Decider::Scripted {
                            script: prefix.clone(),
                            pos: 0,
                        },
                        &body,
                    );
                    let trace = outcome.trace.clone();
                    let r = ScheduleRef::Trace(encode_trace(&trace));
                    record(&mut report, &mut distinct, outcome, r);
                    if report.failures.len() >= self.max_failures {
                        break;
                    }
                    // Advance to the next unexplored branch: bump the
                    // deepest decision that still has an untaken
                    // alternative, drop everything below it.
                    let mut next = trace;
                    loop {
                        match next.pop() {
                            None => {
                                report.complete = true;
                                break;
                            }
                            Some(c) if (c.taken as usize) + 1 < c.options as usize => {
                                next.push(Choice {
                                    options: c.options,
                                    taken: c.taken + 1,
                                });
                                prefix = next;
                                break;
                            }
                            Some(_) => {}
                        }
                    }
                    if report.complete {
                        break;
                    }
                }
            }
        }
        report.distinct = distinct.len();
        report
    }

    fn run_one<F: Fn()>(&self, decider: Decider, body: &F) -> sched::Outcome {
        let sched = Sched::new(decider, self.step_limit);
        sched::set(Some(sched::Ctx {
            sched: sched.clone(),
            tid: 0,
        }));
        let result = catch_unwind(AssertUnwindSafe(body));
        sched::set(None);
        if let Err(payload) = result {
            if payload.downcast_ref::<CheckAbort>().is_none() {
                sched.record_panic(0, payload_message(&payload));
            }
        }
        sched.take_outcome()
    }
}

fn record(
    report: &mut Report,
    distinct: &mut HashSet<u64>,
    outcome: sched::Outcome,
    schedule: ScheduleRef,
) {
    report.schedules += 1;
    report.total_steps += outcome.steps;
    distinct.insert(hash_trace(&outcome.trace));
    if !outcome.findings.is_empty() {
        report.failures.push(FailedSchedule {
            schedule,
            findings: outcome.findings,
        });
    }
}

fn derive_seed(base: u64, i: u64) -> u64 {
    SplitMix64::new(base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next()
}

fn hash_trace(trace: &[Choice]) -> u64 {
    // FNV-1a over the (options, taken) byte pairs.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for c in trace {
        for b in [c.options, c.taken] {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
    }
    h
}

fn encode_trace(trace: &[Choice]) -> String {
    let mut s = String::with_capacity(trace.len() * 4);
    for c in trace {
        s.push_str(&format!("{:02x}{:02x}", c.options, c.taken));
    }
    s
}

fn decode_trace(hex: &str) -> Vec<Choice> {
    let bytes: Vec<u8> = hex
        .as_bytes()
        .chunks(2)
        .filter_map(|pair| {
            let s = std::str::from_utf8(pair).ok()?;
            u8::from_str_radix(s, 16).ok()
        })
        .collect();
    bytes
        .chunks(2)
        .filter(|p| p.len() == 2)
        .map(|p| Choice {
            options: p[0],
            taken: p[1],
        })
        .collect()
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Convenience: explore with defaults and panic (replayably) on any
/// finding.
pub fn check(name: &str, strategy: Strategy, body: impl Fn()) -> Report {
    let report = Explorer::new(name).run(strategy, body);
    report.assert_clean();
    report
}
