//! Extraction shapes: the deterministic `K → K′` key translation.
//!
//! The extraction shape "is a concrete representation of the units of
//! data that the operator … will be applied to. The extraction shape
//! is logically tiled, in a given order, over `K_T` with each instance
//! representing a unique `k′` key in `K′`" (§2.4.2). SIDR resolves the
//! three opaque areas of the MapReduce dataflow with it (§3):
//!
//! * **Area 2** — [`ExtractionShape::map_key`] translates an input key
//!   `k` to its intermediate key `k′` by component-wise division.
//! * **Area 3** — [`ExtractionShape::intermediate_space`] computes the
//!   exact extent of `K′ᵀ` from the input space and the shape, before
//!   any Map task runs.
//! * Dependency derivation — [`ExtractionShape::image_of_slab`] maps an
//!   input split's slab to the set of `K′` keys it can produce.

use serde::{Deserialize, Serialize};

use crate::coord::Coord;
use crate::error::CoordError;
use crate::shape::Shape;
use crate::slab::Slab;
use crate::tiling::{PartialPolicy, Tiling};
use crate::Result;

/// A query's extraction shape over a concrete input space.
///
/// Couples the shape (e.g. `{7, 5, 1}`: weekly averages, ½°-latitude
/// down-sampling) with the input space it tiles (e.g. `{365, 250,
/// 200}`), an optional stride for strided access, and the paper's
/// partial-instance policy (partials are discarded).
///
/// ```
/// use sidr_coords::{Coord, ExtractionShape, Shape};
///
/// // §3's running example: weekly, half-degree-latitude averages.
/// let es = ExtractionShape::new(
///     Shape::new(vec![365, 250, 200])?,
///     Shape::new(vec![7, 5, 1])?,
/// )?;
/// assert_eq!(es.intermediate_space()?, Shape::new(vec![52, 50, 200])?);
/// assert_eq!(
///     es.map_key(&Coord::from([157, 34, 82]))?,
///     Some(Coord::from([22, 6, 82])),
/// );
/// # Ok::<(), sidr_coords::CoordError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtractionShape {
    tiling: Tiling,
}

impl ExtractionShape {
    /// Disjoint extraction: instances tile the space edge to edge.
    pub fn new(input_space: Shape, shape: Shape) -> Result<Self> {
        Ok(ExtractionShape {
            tiling: Tiling::new(input_space, shape, PartialPolicy::Discard)?,
        })
    }

    /// Strided extraction: instance corners every `stride` elements
    /// (`stride[d] >= shape[d]`, §2.4.2).
    pub fn with_stride(input_space: Shape, shape: Shape, stride: Vec<u64>) -> Result<Self> {
        Ok(ExtractionShape {
            tiling: Tiling::with_stride(input_space, shape, stride, PartialPolicy::Discard)?,
        })
    }

    /// The input space `Kᵀ` this extraction is defined over.
    pub fn input_space(&self) -> &Shape {
        self.tiling.space()
    }

    /// The extraction shape itself.
    pub fn shape(&self) -> &Shape {
        self.tiling.tile()
    }

    /// Per-dimension stride.
    pub fn stride(&self) -> &[u64] {
        self.tiling.stride()
    }

    /// The underlying tiling (shared machinery with `partition+`).
    pub fn tiling(&self) -> &Tiling {
        &self.tiling
    }

    /// The exact intermediate keyspace `K′ᵀ` (§3 Area 3).
    ///
    /// E.g. a `{365, 250, 200}` input with a `{7, 5, 1}` extraction
    /// shape yields `{52, 50, 200}` — 52 weekly measurements at ½°
    /// latitude, 1/10° longitude. Errors with [`CoordError::ZeroDim`]
    /// when the shape is larger than the space in some dimension (the
    /// query produces no output).
    pub fn intermediate_space(&self) -> Result<Shape> {
        for (dim, &g) in self.tiling.grid().iter().enumerate() {
            if g == 0 {
                return Err(CoordError::ZeroDim { dim });
            }
        }
        Shape::new(self.tiling.grid().to_vec())
    }

    /// Translates an input key `k ∈ K` to its intermediate key
    /// `k′ ∈ K′` (§3 Area 2), or `None` when the key falls in a
    /// discarded partial instance or a stride gap.
    pub fn map_key(&self, k: &Coord) -> Result<Option<Coord>> {
        self.tiling.instance_of(k)
    }

    /// Row-major linear index of the instance containing `k` — the
    /// scalar form of [`ExtractionShape::map_key`], used as the sort
    /// key for intermediate data.
    pub fn map_key_linear(&self, k: &Coord) -> Result<Option<u64>> {
        self.tiling.instance_index_of(k)
    }

    /// The preimage in `K` of a single intermediate key: the slab of
    /// input keys that fold into `k′`.
    pub fn preimage_of_key(&self, k_prime: &Coord) -> Result<Slab> {
        let idx = self.tiling.linearize_grid(k_prime)?;
        self.tiling.instance_slab(idx)
    }

    /// The slab of intermediate keys an input slab can produce, or
    /// `None` when it produces none (entirely inside discarded
    /// partials / stride gaps). Superset-safe under strides (§3.2).
    pub fn image_of_slab(&self, input: &Slab) -> Result<Option<Slab>> {
        self.tiling.instances_touched_by(input)
    }

    /// The slab of input keys that contribute to a slab of
    /// intermediate keys — the preimage used to turn a keyblock into
    /// its input dependency footprint `I_ℓ` (§3.2).
    pub fn preimage_of_slab(&self, k_prime_slab: &Slab) -> Result<Slab> {
        self.tiling.grid_slab_to_space(k_prime_slab)
    }

    /// Number of input keys that fold into intermediate key `k_prime`
    /// (the size of its preimage — all extraction instances here are
    /// full because partials are discarded).
    pub fn fold_in_count(&self, k_prime: &Coord) -> Result<u64> {
        Ok(self.preimage_of_key(k_prime)?.count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(v: &[u64]) -> Shape {
        Shape::new(v.to_vec()).unwrap()
    }

    fn slab(corner: &[u64], sh: &[u64]) -> Slab {
        Slab::new(Coord::from(corner), shape(sh)).unwrap()
    }

    #[test]
    fn paper_intermediate_space() {
        // §3 Area 3: {365,250,200} with {7,5,1} → {52,50,200}.
        let es = ExtractionShape::new(shape(&[365, 250, 200]), shape(&[7, 5, 1])).unwrap();
        assert_eq!(es.intermediate_space().unwrap(), shape(&[52, 50, 200]));
    }

    #[test]
    fn paper_key_translation() {
        // §3 Area 2: {157,34,82} / {7,5,1} = {22,6,82}.
        let es = ExtractionShape::new(shape(&[365, 250, 200]), shape(&[7, 5, 1])).unwrap();
        assert_eq!(
            es.map_key(&Coord::from([157, 34, 82])).unwrap(),
            Some(Coord::from([22, 6, 82]))
        );
    }

    #[test]
    fn query1_windspeed_space() {
        // §4.1 Query 1: {7200,360,720,50} with {2,36,36,10} →
        // {3600,10,20,5}.
        let es =
            ExtractionShape::new(shape(&[7200, 360, 720, 50]), shape(&[2, 36, 36, 10])).unwrap();
        assert_eq!(es.intermediate_space().unwrap(), shape(&[3600, 10, 20, 5]));
    }

    #[test]
    fn upsampling_not_expressible_downsampling_is() {
        // Figure 6(b): a {2,2} extraction folds 4 input keys into 1.
        let es = ExtractionShape::new(shape(&[4, 4]), shape(&[2, 2])).unwrap();
        assert_eq!(es.fold_in_count(&Coord::from([0, 0])).unwrap(), 4);
        for k in slab(&[0, 0], &[2, 2]).iter_coords() {
            assert_eq!(es.map_key(&k).unwrap(), Some(Coord::from([0, 0])));
        }
    }

    #[test]
    fn discarded_tail_maps_to_none() {
        let es = ExtractionShape::new(shape(&[365, 250, 200]), shape(&[7, 5, 1])).unwrap();
        // Day 364 is in the discarded 53rd week.
        assert_eq!(es.map_key(&Coord::from([364, 0, 0])).unwrap(), None);
    }

    #[test]
    fn preimage_inverts_map() {
        let es = ExtractionShape::new(shape(&[12, 9]), shape(&[3, 3])).unwrap();
        for kp in es.intermediate_space().unwrap().iter_coords() {
            let pre = es.preimage_of_key(&kp).unwrap();
            assert_eq!(pre.count(), 9);
            for k in pre.iter_coords() {
                assert_eq!(es.map_key(&k).unwrap().as_ref(), Some(&kp));
            }
        }
    }

    #[test]
    fn image_of_slab_covers_all_produced_keys() {
        let es = ExtractionShape::new(shape(&[10, 10]), shape(&[3, 3])).unwrap();
        let split = slab(&[2, 4], &[5, 3]);
        let image = es.image_of_slab(&split).unwrap().unwrap();
        for k in split.iter_coords() {
            if let Some(kp) = es.map_key(&k).unwrap() {
                assert!(image.contains(&kp), "key {k} → {kp} outside image {image}");
            }
        }
    }

    #[test]
    fn image_of_slab_none_when_in_discarded_region() {
        // Space {10}, shape {4}: grid {2} covers [0,8); [8,10) discarded.
        let es = ExtractionShape::new(shape(&[10]), shape(&[4])).unwrap();
        assert!(es.image_of_slab(&slab(&[8], &[2])).unwrap().is_none());
    }

    #[test]
    fn preimage_of_slab_is_superset_of_keys() {
        let es = ExtractionShape::new(shape(&[20, 20]), shape(&[4, 5])).unwrap();
        let kblock = slab(&[1, 0], &[2, 4]); // in K'
        let pre = es.preimage_of_slab(&kblock).unwrap();
        for kp in kblock.iter_coords() {
            let key_pre = es.preimage_of_key(&kp).unwrap();
            assert!(pre.contains_slab(&key_pre));
        }
    }

    #[test]
    fn strided_extraction_image() {
        // Tile {2}, stride {4} over {16}: instances at 0,4,8,12.
        let es = ExtractionShape::with_stride(shape(&[16]), shape(&[2]), vec![4]).unwrap();
        assert_eq!(es.intermediate_space().unwrap(), shape(&[4]));
        assert_eq!(
            es.map_key(&Coord::from([5])).unwrap(),
            Some(Coord::from([1]))
        );
        assert_eq!(es.map_key(&Coord::from([6])).unwrap(), None);
        // A slab covering only a gap still yields a bounding image —
        // superset-safe, possibly non-empty.
        let img = es.image_of_slab(&slab(&[4], &[2])).unwrap().unwrap();
        assert!(img.contains(&Coord::from([1])));
    }

    #[test]
    fn oversized_shape_yields_zero_dim_error() {
        let es = ExtractionShape::new(shape(&[3, 10]), shape(&[5, 2])).unwrap();
        assert!(matches!(
            es.intermediate_space(),
            Err(CoordError::ZeroDim { dim: 0 })
        ));
    }
}
