//! Figure 9: Map and Reduce task completion over time for Query 1
//! (median, extraction `{2,36,36,10}` over `{7200,360,720,50}`) with
//! 22 Reduce tasks, under Hadoop (H), SciHadoop (SH) and SIDR (SS).
//!
//! Paper observations to reproduce:
//! * SIDR's first result arrives long before SciHadoop's; Hadoop's is
//!   far behind both (625 s vs 1 132 s vs 2 797 s in the paper).
//! * SIDR's total time is within a few percent of SciHadoop's (1 264
//!   vs 1 250 s) — its last reduce owns a contiguous 1/22 of the data.
//! * Hadoop's whole query runs ≈2.5× longer than the other two.

use sidr_core::{FrameworkMode, StructuralQuery};
use sidr_experiments::{compare, report_curves, Curve};
use sidr_simcluster::{build_sim_job, simulate, CostModel, SimClusterConfig, SimWorkload};

fn main() {
    let query = StructuralQuery::query1().expect("paper query is valid");
    let cluster = SimClusterConfig::default();
    let model = CostModel::default();

    let mut curves = Vec::new();
    let mut stats = Vec::new();
    for (mode, tag) in [
        (FrameworkMode::Hadoop, "H"),
        (FrameworkMode::SciHadoop, "SH"),
        (FrameworkMode::Sidr, "SS"),
    ] {
        let w = SimWorkload::new(query.clone(), mode, 22);
        let job = build_sim_job(&w).expect("paper workload plans");
        let trace = simulate(&job, &cluster, &model);
        println!(
            "{tag:>3}: {} maps, first result {:.0} s, complete {:.0} s, maps done at first result {:.1} %",
            job.maps.len(),
            trace.first_result_s(),
            trace.makespan_s(),
            100.0 * trace.maps_done_at_first_result()
        );
        curves.push(Curve::maps(format!("Map 22R ({tag})"), &trace));
        curves.push(Curve::reduces(format!("22 Reduces ({tag})"), &trace));
        stats.push((tag, trace));
    }

    report_curves(
        "fig09",
        "Figure 9: task completion over time, Query 1, 22 reducers",
        &curves,
    );

    let h = &stats[0].1;
    let sh = &stats[1].1;
    let ss = &stats[2].1;
    println!("\nShape checks vs paper:");
    compare(
        "SIDR first result well before SciHadoop's",
        "625 s vs 1132 s",
        &format!(
            "{:.0} s vs {:.0} s",
            ss.first_result_s(),
            sh.first_result_s()
        ),
        ss.first_result_s() < 0.75 * sh.first_result_s(),
    );
    compare(
        "Hadoop first result far behind both",
        "2797 s",
        &format!("{:.0} s", h.first_result_s()),
        h.first_result_s() > 1.8 * sh.first_result_s(),
    );
    compare(
        "SIDR total within ~5% of SciHadoop",
        "1264 s vs 1250 s",
        &format!("{:.0} s vs {:.0} s", ss.makespan_s(), sh.makespan_s()),
        (ss.makespan_s() / sh.makespan_s() - 1.0).abs() < 0.10,
    );
    compare(
        "Hadoop ~2.5x slower overall",
        "2.5x",
        &format!("{:.2}x", h.makespan_s() / ss.makespan_s()),
        h.makespan_s() / ss.makespan_s() > 1.8,
    );
    compare(
        "SIDR first result with small fraction of maps done",
        "6 % of query completed",
        &format!("{:.1} % of maps", 100.0 * ss.maps_done_at_first_result()),
        ss.maps_done_at_first_result() < 0.25,
    );
}
