//! Adversarial property tests for the framing layer: whatever bytes a
//! client sends — truncated frames, hostile length prefixes, garbage
//! payloads — the decoder returns a typed [`FrameError`] and never
//! panics or over-reads. Mirrors the `WireFormat` truncation tests in
//! `crates/mapreduce/src/wire.rs`, one protocol layer up.

use proptest::collection::vec;
use proptest::prelude::*;

use sidr_coords::Shape;
use sidr_core::spec::JobSpec;
use sidr_core::{Operator, SidrPlanner, StructuralQuery};
use sidr_mapreduce::SplitGenerator;
use sidr_serve::frame::{read_frame, recv, send, write_frame, FrameError, MAX_FRAME};
use sidr_serve::{Request, Response, SubmitOptions};

fn example_spec() -> JobSpec {
    let q = StructuralQuery::new(
        "v",
        Shape::new(vec![64, 10, 10]).unwrap(),
        Shape::new(vec![4, 5, 1]).unwrap(),
        Operator::Mean,
    )
    .unwrap();
    let splits = SplitGenerator::new(q.input_space().clone(), 8)
        .exact_count(8)
        .unwrap();
    let plan = SidrPlanner::new(&q, 4).build(&splits).unwrap();
    JobSpec::from_plan(&q, &splits, &plan).unwrap()
}

/// Encodes a request into its wire bytes.
fn encode(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    send(&mut buf, req).unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bytes never panic the decoder: every outcome is a
    /// clean EOF, a decoded value, or a typed error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..256)) {
        let mut r = &bytes[..];
        match recv::<Request>(&mut r) {
            Ok(_) | Err(FrameError::Truncated { .. })
            | Err(FrameError::Oversized { .. })
            | Err(FrameError::Malformed(_))
            | Err(FrameError::Io(_))
            | Err(FrameError::VersionMismatch { .. }) => {}
        }
    }

    /// A valid frame cut anywhere strictly inside is `Truncated`;
    /// cut at zero it is a clean EOF.
    #[test]
    fn every_truncation_is_reported(cut_seed in any::<u64>(), job in any::<u64>()) {
        let wire = encode(&Request::Cancel { job });
        let cut = (cut_seed as usize) % wire.len();
        let mut r = &wire[..cut];
        match read_frame(&mut r) {
            Ok(None) => prop_assert_eq!(cut, 0),
            Err(FrameError::Truncated { expected, got }) => {
                prop_assert!(got < expected);
            }
            other => prop_assert!(false, "cut {} gave {:?}", cut, other),
        }
    }

    /// Length prefixes beyond the cap are rejected before any payload
    /// is read — regardless of what follows.
    #[test]
    fn oversized_lengths_are_rejected(extra in 1u32..1000, tail in vec(any::<u8>(), 0..32)) {
        let len = MAX_FRAME + extra;
        let mut wire = len.to_le_bytes().to_vec();
        wire.extend_from_slice(&tail);
        let mut r = &wire[..];
        prop_assert_eq!(
            read_frame(&mut r),
            Err(FrameError::Oversized { len, max: MAX_FRAME })
        );
    }

    /// Well-framed garbage payloads decode to `Malformed`, not a
    /// panic and not a bogus request.
    #[test]
    fn garbage_payloads_are_malformed(payload in vec(any::<u8>(), 1..128)) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut r = &wire[..];
        match recv::<Request>(&mut r) {
            Err(FrameError::Malformed(_)) => {}
            Ok(Some(req)) => {
                // Vanishingly unlikely, but only acceptable if the
                // payload really was a valid request document.
                let reencoded = serde_json::to_string(&req).unwrap();
                prop_assert_eq!(reencoded.as_bytes(), &payload[..]);
            }
            other => prop_assert!(false, "garbage gave {:?}", other),
        }
    }

    /// Back-to-back frames decode independently: a corrupt second
    /// frame never damages the first.
    #[test]
    fn frames_are_independent(job in any::<u64>(), junk in vec(any::<u8>(), 1..64)) {
        let mut wire = encode(&Request::Cancel { job });
        write_frame(&mut wire, &junk).unwrap();
        let mut r = &wire[..];
        match recv::<Request>(&mut r).unwrap().unwrap() {
            Request::Cancel { job: j } => prop_assert_eq!(j, job),
            other => prop_assert!(false, "first frame decoded as {:?}", other),
        }
    }
}

#[test]
fn requests_round_trip_through_the_wire() {
    let spec = example_spec();
    let requests = vec![
        Request::Submit {
            spec: spec.clone(),
            input: "/data/windspeed.scinc".into(),
            options: SubmitOptions::default(),
        },
        Request::Cancel { job: 42 },
        Request::Stats,
        Request::Shutdown,
    ];
    for req in &requests {
        let wire = encode(req);
        let mut r = &wire[..];
        let back: Request = recv(&mut r).unwrap().unwrap();
        // Compare via re-serialization: the protocol types carry no
        // PartialEq, but their JSON is canonical.
        assert_eq!(
            serde_json::to_string(req).unwrap(),
            serde_json::to_string(&back).unwrap()
        );
    }
}

#[test]
fn submitted_spec_survives_the_frame_hop_intact() {
    let spec = example_spec();
    let wire = encode(&Request::Submit {
        spec: spec.clone(),
        input: "in.scinc".into(),
        options: SubmitOptions::default(),
    });
    let mut r = &wire[..];
    let Some(Request::Submit { spec: back, .. }) = recv(&mut r).unwrap() else {
        panic!("frame did not decode to a Submit");
    };
    // The framed spec is the same document `sidr plan --spec` writes.
    assert_eq!(back.to_json(), spec.to_json());
    back.verify().unwrap();
}

#[test]
fn responses_round_trip_through_the_wire() {
    let resp = Response::Keyblock {
        job: 7,
        reducer: 3,
        at_ms: 120,
        records: vec![(sidr_coords::Coord::new(vec![1, 2]), 3.5)],
    };
    let mut wire = Vec::new();
    send(&mut wire, &resp).unwrap();
    let mut r = &wire[..];
    let back: Response = recv(&mut r).unwrap().unwrap();
    assert_eq!(
        serde_json::to_string(&resp).unwrap(),
        serde_json::to_string(&back).unwrap()
    );
}

/// A `Read` that serves bytes one at a time (the slow-loris shape)
/// and records the largest buffer the decoder ever asked it to fill —
/// a direct view of how much memory the decoder committed up front.
struct SlowLoris {
    data: Vec<u8>,
    pos: usize,
    max_buf: usize,
}

impl SlowLoris {
    fn new(data: Vec<u8>) -> Self {
        SlowLoris {
            data,
            pos: 0,
            max_buf: 0,
        }
    }
}

impl std::io::Read for SlowLoris {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.max_buf = self.max_buf.max(buf.len());
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        buf[0] = self.data[self.pos];
        self.pos += 1;
        Ok(1)
    }
}

/// A client that writes a maximal length prefix and then trickles (or
/// stops) must not make the server allocate the claimed 32 MiB: reads
/// are chunk-bounded and the connection ends in `Truncated`.
#[test]
fn slow_loris_prefix_cannot_pin_the_frame_cap() {
    use sidr_serve::frame::{read_frame, READ_CHUNK};

    let mut wire = MAX_FRAME.to_le_bytes().to_vec();
    wire.extend_from_slice(&[0xAB; 100]); // 100 of 33 554 432 bytes, then EOF
    let mut r = SlowLoris::new(wire);
    match read_frame(&mut r) {
        Err(FrameError::Truncated { expected, got }) => {
            assert_eq!(expected, MAX_FRAME as usize);
            assert_eq!(got, 100);
        }
        other => panic!("expected truncation, got {other:?}"),
    }
    assert!(
        r.max_buf <= READ_CHUNK,
        "decoder asked for a {} byte read — allocation tracks the \
         hostile prefix, not the bytes received",
        r.max_buf
    );
}

/// Payloads larger than one read chunk still round-trip byte-exact
/// through the chunked reader, even delivered one byte at a time.
#[test]
fn multi_chunk_payloads_reassemble_exactly() {
    use sidr_serve::frame::{read_frame, READ_CHUNK};

    let payload: Vec<u8> = (0..READ_CHUNK * 2 + 17).map(|i| (i % 251) as u8).collect();
    let mut wire = Vec::new();
    write_frame(&mut wire, &payload).unwrap();
    let mut r = SlowLoris::new(wire);
    let got = read_frame(&mut r).unwrap().unwrap();
    assert_eq!(got, payload);
    assert!(r.max_buf <= READ_CHUNK);
}

/// An in-memory duplex for driving one side of the handshake: reads
/// come from a pre-scripted peer reply, writes are captured.
struct Scripted {
    reply: std::io::Cursor<Vec<u8>>,
    sent: Vec<u8>,
}

impl Scripted {
    fn replying(frames: Vec<u8>) -> Self {
        Scripted {
            reply: std::io::Cursor::new(frames),
            sent: Vec::new(),
        }
    }
}

impl std::io::Read for Scripted {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.reply.read(buf)
    }
}

impl std::io::Write for Scripted {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.sent.extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The version/role handshake over a real socket: a client dials a
/// coordinator, both sides learn the peer's role, and the connection
/// is immediately usable for framed traffic.
#[test]
fn handshake_round_trips_over_loopback() {
    use sidr_serve::{handshake_accept, handshake_dial, Hello, Role};

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        let hello: Hello = recv(&mut conn).unwrap().expect("dialer sends Hello first");
        let peer = handshake_accept(&mut conn, &hello, Role::Coordinator).unwrap();
        assert_eq!(peer, Role::Client);
        // The stream stays frame-aligned after the handshake.
        let req: Request = recv(&mut conn).unwrap().unwrap();
        let Request::Cancel { job } = req else {
            panic!("expected the post-handshake Cancel");
        };
        job
    });

    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    handshake_dial(&mut conn, Role::Client, Role::Coordinator).unwrap();
    send(&mut conn, &Request::Cancel { job: 99 }).unwrap();
    assert_eq!(server.join().unwrap(), 99);
}

/// A peer speaking a different protocol version is refused with the
/// typed `VersionMismatch`, not a deserialization error.
#[test]
fn handshake_rejects_version_skew() {
    use sidr_serve::{handshake_dial, Hello, Role, HELLO_MAGIC, PROTOCOL_VERSION};

    let future = Hello {
        magic: HELLO_MAGIC.to_string(),
        version: PROTOCOL_VERSION + 1,
        role: Role::Coordinator,
        accept_binary: false,
    };
    let mut reply = Vec::new();
    send(&mut reply, &future).unwrap();
    let mut conn = Scripted::replying(reply);
    match handshake_dial(&mut conn, Role::Client, Role::Coordinator) {
        Err(FrameError::VersionMismatch { detail }) => {
            assert!(detail.contains("protocol"), "got: {detail}");
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

/// Dialing the wrong kind of port (a worker's task port instead of
/// the coordinator) fails the handshake by role, same typed error.
#[test]
fn handshake_rejects_wrong_role() {
    use sidr_serve::{handshake_dial, Hello, Role};

    let mut reply = Vec::new();
    send(&mut reply, &Hello::new(Role::Worker)).unwrap();
    let mut conn = Scripted::replying(reply);
    match handshake_dial(&mut conn, Role::Client, Role::Coordinator) {
        Err(FrameError::VersionMismatch { detail }) => {
            assert!(detail.contains("worker"), "got: {detail}");
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

/// The listener side refuses a Hello with the wrong magic before
/// answering — nothing protocol-shaped is sent back to a stranger.
#[test]
fn accept_rejects_bad_magic_without_replying() {
    use sidr_serve::{handshake_accept, Hello, Role, PROTOCOL_VERSION};

    let stranger = Hello {
        magic: "http".to_string(),
        version: PROTOCOL_VERSION,
        role: Role::Client,
        accept_binary: false,
    };
    let mut sink = Vec::new();
    match handshake_accept(&mut sink, &stranger, Role::Coordinator) {
        Err(FrameError::VersionMismatch { .. }) => {}
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    assert!(sink.is_empty(), "no reply frame goes to a bad-magic peer");
}

/// A writer that accepts at most one byte per call — the
/// partial-write shape `write_all` must absorb.
struct TrickleWriter {
    written: Vec<u8>,
}

impl std::io::Write for TrickleWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        self.written.push(buf[0]);
        Ok(1)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A frame written through a transport that takes one byte per write
/// call still arrives byte-exact: the sender loops on partial writes
/// rather than truncating the frame.
#[test]
fn partial_writes_never_tear_a_frame() {
    let mut w = TrickleWriter {
        written: Vec::new(),
    };
    send(&mut w, &Request::Cancel { job: 7 }).unwrap();
    let mut r = &w.written[..];
    let back: Request = recv(&mut r).unwrap().unwrap();
    let Request::Cancel { job } = back else {
        panic!("reassembled frame decoded wrong");
    };
    assert_eq!(job, 7);
}
