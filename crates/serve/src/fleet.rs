//! The coordinator's side of the worker fleet: the coordinator ↔
//! worker wire protocol, per-worker liveness tracking (heartbeats),
//! locality-aware dispatch, and the [`RemoteJob`] task executor that
//! plugs the fleet into the engine's
//! [`sidr_mapreduce::executor::TaskExecutor`] seam.
//!
//! The split of responsibilities mirrors Hadoop 1.0: the coordinator
//! (JobTracker) keeps planning, admission, the slot pool and every job
//! state machine; workers (TaskTrackers) run map/reduce attempts and
//! serve shuffle fetches to *each other* — partition bytes never move
//! through the coordinator. All connections speak the length-prefixed
//! JSON frame protocol of [`crate::frame`], opened with the
//! version/role [`Hello`](crate::frame::Hello) handshake; partition
//! payloads ride as one raw frame of CRC-framed SMOF v2 bytes after
//! their JSON header.
//!
//! Worker death is a fault-layer event, not a job-killer: the
//! heartbeat monitor marks the worker dead (once per transition —
//! `sidr_fleet_workers_lost_total`), in-flight attempts on it are
//! re-dispatched to surviving workers
//! (`sidr_fleet_tasks_reassigned_total`), and partitions that died
//! with it surface as [`RemoteReduceError::SourcesLost`] so the engine
//! re-enqueues exactly the `I_ℓ`-scoped maps it held (§6).

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use sidr_coords::Coord;
use sidr_core::exec::ExecOptions;
use sidr_core::spec::JobSpec;
use sidr_dfs::{DfsConfig, FileId, NameNode, NodeId};
use sidr_mapreduce::executor::{ReduceSource, RemoteReduceError, TaskExecutor};
use sidr_mapreduce::{Counters, InputSplit, MapTaskId, MrError};
use sidr_obs::{global, Counter, Gauge, Histogram};

use crate::frame::{self, handshake_dial, FrameError, Role};

/// One request on a coordinator→worker (or worker→worker fetch)
/// connection.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum WorkerRequest {
    /// Liveness probe; answered with [`WorkerResponse::Pong`].
    Ping,
    /// Installs a job on the worker: the spec (splits, routing
    /// promises), the input path (shared filesystem, like an HDFS
    /// mount) and the task-local execution options.
    Prepare {
        job: u64,
        spec_json: String,
        input: String,
        opts: ExecOptions,
    },
    /// Runs one map attempt; the worker keeps the committed
    /// partitions until they are fetched (volatile) or the job
    /// finishes.
    RunMap { job: u64, task: usize, attempt: u32 },
    /// Runs one reduce attempt: fetch every source partition from its
    /// holder, release (consume) them, then merge/reduce and stream
    /// key groups back.
    RunReduce {
        job: u64,
        reducer: usize,
        attempt: u32,
        sources: Vec<SourceLoc>,
        expected_raw: Option<u64>,
    },
    /// Worker↔worker shuffle fetch: peek one partition. Answered with
    /// [`WorkerResponse::Partition`], followed by one *raw* frame of
    /// SMOF bytes when data is present.
    FetchPartition {
        job: u64,
        map: usize,
        reducer: usize,
        epoch: u32,
    },
    /// Consume (drop) fetched partitions after a successful copy
    /// phase — the volatile-intermediate contract, made explicit so a
    /// copy that dies halfway leaves earlier sources intact.
    Release {
        job: u64,
        reducer: usize,
        maps: Vec<(usize, u32)>,
    },
    /// Drops all state for a finished job.
    Finish { job: u64 },
}

/// Where one reduce source partition lives.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SourceLoc {
    pub map: usize,
    pub epoch: u32,
    /// Advertised address of the worker holding the partition.
    pub holder: String,
}

/// Worker replies. A `RunReduce` produces a *stream* on one
/// connection: `Fetched`, then zero or more `Group`s, then
/// `ReduceDone` — or `Failed` at any point before the first `Group`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum WorkerResponse {
    Pong(WorkerStat),
    Prepared {
        job: u64,
    },
    MapDone {
        job: u64,
        task: usize,
        attempt: u32,
        records_in: u64,
        records_out: u64,
        /// Reducers with a non-empty partition from this attempt.
        partitions: Vec<usize>,
    },
    /// The reduce's copy phase completed: every source fetched and
    /// released. From here on the attempt's inputs are consumed.
    Fetched {
        job: u64,
        reducer: usize,
    },
    /// One key group of reduce output, in key order.
    Group {
        records: Vec<(Coord, f64)>,
    },
    ReduceDone {
        emitted: u64,
        /// Wall time the copy phase spent fetching, for the
        /// coordinator's shuffle-fetch latency histogram.
        fetch_ms: u64,
    },
    /// Shuffle-fetch peek result; `present` ⇒ one raw SMOF frame
    /// follows. `Missing` means the holder no longer has (or never
    /// committed) that generation — the fetching worker reports it
    /// lost.
    Partition {
        status: PartitionStatus,
    },
    Released,
    Finished,
    /// The request failed. `lost_sources` non-empty means source
    /// partitions are gone (holder dead or missing) and *nothing was
    /// consumed*; `fatal` means the job must fail (e.g. annotation
    /// mismatch), retrying cannot help.
    Failed {
        detail: String,
        fatal: bool,
        lost_sources: Vec<usize>,
    },
}

/// Outcome of a shuffle-fetch peek.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionStatus {
    /// Data follows as one raw frame.
    Data,
    /// The map committed this epoch but produced nothing for this
    /// reducer.
    Empty,
    /// This generation is not here (never committed, already
    /// consumed, or lost with a restart).
    Missing,
}

/// Point-in-time view of one worker, as reported by its `Pong` and
/// the coordinator's liveness tracking. Serialized into
/// [`crate::proto::ServerStats`] for `sidr-submit stats`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerStat {
    #[serde(default)]
    pub addr: String,
    #[serde(default)]
    pub alive: bool,
    /// Milliseconds since the last successful heartbeat.
    #[serde(default)]
    pub heartbeat_age_ms: u64,
    /// Task attempts currently executing on the worker.
    #[serde(default)]
    pub tasks_in_flight: u64,
    /// Lifetime attempt counts.
    #[serde(default)]
    pub map_attempts: u64,
    #[serde(default)]
    pub reduce_attempts: u64,
    /// Partitions currently held for un-fetched map output.
    #[serde(default)]
    pub partitions_held: u64,
    /// Memory-pressure summary from the worker's tiered partition
    /// store (all zero on pre-tier workers — every field defaults, so
    /// the wire stays compatible in both directions).
    #[serde(default)]
    pub resident_bytes: u64,
    #[serde(default)]
    pub spilled_bytes: u64,
    /// Resident byte budget; 0 means unbounded.
    #[serde(default)]
    pub budget_bytes: u64,
    #[serde(default)]
    pub peak_resident_bytes: u64,
    /// Spill writes that failed (disk full): those partitions are
    /// pinned resident, so the budget is no longer enforceable.
    #[serde(default)]
    pub spill_failures: u64,
}

impl WorkerStat {
    /// Is this worker under memory pressure? True when a budget is
    /// set and the worker is either over it (spills failing or
    /// pinned), currently holding spilled partitions (at capacity —
    /// new fetches pay disk read-backs), or has failed spill writes.
    /// Unbounded workers (budget 0) are never pressured.
    pub fn pressured(&self) -> bool {
        self.budget_bytes > 0
            && (self.resident_bytes > self.budget_bytes
                || self.spilled_bytes > 0
                || self.spill_failures > 0)
    }
}

/// Fleet-wide metrics (process-global, one registration).
pub struct FleetMetrics {
    pub workers_lost: Arc<Counter>,
    pub tasks_reassigned: Arc<Counter>,
    /// Coordinator-observed latency of one remote dispatch
    /// (map or reduce), connection to final reply.
    pub dispatch_seconds: Arc<Histogram>,
    /// Worker-reported wall time of a reduce's shuffle-fetch copy
    /// phase.
    pub fetch_seconds: Arc<Histogram>,
    /// Memory-pressure advisories emitted (one per worker transition
    /// into pressure, `SIDR-I015`).
    pub pressure_advisories: Arc<Counter>,
}

const DISPATCH_BUCKETS: &[f64] = &[
    0.001, 0.002_5, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
];

/// The fleet's metric inventory, registered on first use.
pub fn fleet_metrics() -> &'static FleetMetrics {
    static METRICS: OnceLock<FleetMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        FleetMetrics {
            workers_lost: r.counter(
                "sidr_fleet_workers_lost_total",
                "Workers declared dead by the heartbeat monitor (per transition)",
                &[],
            ),
            tasks_reassigned: r.counter(
                "sidr_fleet_tasks_reassigned_total",
                "Task attempts re-dispatched after their worker died mid-flight",
                &[],
            ),
            dispatch_seconds: r.histogram(
                "sidr_fleet_dispatch_seconds",
                "Remote task dispatch latency (connect to final reply), seconds",
                &[],
                DISPATCH_BUCKETS,
            ),
            fetch_seconds: r.histogram(
                "sidr_fleet_fetch_seconds",
                "Reduce copy-phase shuffle-fetch wall time, seconds",
                &[],
                DISPATCH_BUCKETS,
            ),
            pressure_advisories: r.counter(
                "sidr_fleet_pressure_advisories_total",
                "Memory-pressure advisories emitted (SIDR-I015, per worker transition)",
                &[],
            ),
        }
    })
}

/// One tracked worker.
struct WorkerSlot {
    addr: String,
    alive: AtomicBool,
    last_heartbeat: Mutex<Instant>,
    /// Coordinator-side count of dispatches currently on the wire.
    dispatching: AtomicU64,
    /// Cached copy of the worker's last `Pong` self-report.
    last_stat: Mutex<WorkerStat>,
    /// Whether the last `Pong` reported memory pressure — dispatch
    /// deprioritizes pressured workers, and the transition into
    /// pressure emits one `SIDR-I015` advisory.
    pressured: AtomicBool,
    /// `sidr_fleet_worker_heartbeat_age_ms{worker=...}` gauge.
    heartbeat_gauge: Arc<Gauge>,
    /// `sidr_fleet_worker_resident_bytes{worker=...}` /
    /// `sidr_fleet_worker_spilled_bytes{worker=...}` gauges, fed from
    /// each heartbeat's pressure summary.
    resident_gauge: Arc<Gauge>,
    spilled_gauge: Arc<Gauge>,
}

/// Fleet configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Worker advertised addresses (`host:port`).
    pub workers: Vec<String>,
    /// Heartbeat probe interval.
    pub heartbeat_every: Duration,
    /// Probe connect/read timeout; a worker that cannot answer within
    /// it is declared dead.
    pub heartbeat_timeout: Duration,
}

impl FleetConfig {
    pub fn new(workers: Vec<String>) -> Self {
        FleetConfig {
            workers,
            heartbeat_every: Duration::from_millis(200),
            heartbeat_timeout: Duration::from_millis(500),
        }
    }

    /// Like [`FleetConfig::new`] with an explicit heartbeat cadence
    /// (the `sidr-serve` CLI flags land here). A zero interval or
    /// timeout falls back to the defaults rather than busy-spinning.
    pub fn with_heartbeat(workers: Vec<String>, every: Duration, timeout: Duration) -> Self {
        let mut cfg = FleetConfig::new(workers);
        if !every.is_zero() {
            cfg.heartbeat_every = every;
        }
        if !timeout.is_zero() {
            cfg.heartbeat_timeout = timeout;
        }
        cfg
    }
}

/// The coordinator's handle on its worker fleet.
pub struct Fleet {
    slots: Vec<Arc<WorkerSlot>>,
    /// Simulated HDFS namespace used for locality-aware map dispatch:
    /// one datanode per worker, inputs registered per job.
    namenode: NameNode,
    job_seq: AtomicU64,
    stop: Arc<AtomicBool>,
    monitor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Fleet {
    /// Builds the fleet and starts the heartbeat monitor. Workers that
    /// are down at construction are simply marked dead; they join the
    /// rotation at their first successful probe.
    pub fn connect(config: FleetConfig) -> Result<Self, MrError> {
        if config.workers.is_empty() {
            return Err(MrError::BadConfig("fleet needs at least one worker".into()));
        }
        let r = global();
        let slots: Vec<Arc<WorkerSlot>> = config
            .workers
            .iter()
            .map(|addr| {
                Arc::new(WorkerSlot {
                    addr: addr.clone(),
                    alive: AtomicBool::new(false),
                    last_heartbeat: Mutex::new(Instant::now()),
                    dispatching: AtomicU64::new(0),
                    last_stat: Mutex::new(WorkerStat::default()),
                    pressured: AtomicBool::new(false),
                    heartbeat_gauge: r.gauge(
                        "sidr_fleet_worker_heartbeat_age_ms",
                        "Milliseconds since this worker's last successful heartbeat",
                        &[("worker", addr.as_str())],
                    ),
                    resident_gauge: r.gauge(
                        "sidr_fleet_worker_resident_bytes",
                        "Resident partition bytes this worker reported on its last heartbeat",
                        &[("worker", addr.as_str())],
                    ),
                    spilled_gauge: r.gauge(
                        "sidr_fleet_worker_spilled_bytes",
                        "Spilled partition bytes this worker reported on its last heartbeat",
                        &[("worker", addr.as_str())],
                    ),
                })
            })
            .collect();
        let namenode = NameNode::new(DfsConfig {
            num_datanodes: slots.len(),
            // Small blocks so even tiny CI inputs spread across the
            // fleet instead of landing on one "datanode".
            block_size: 64 << 10,
            replication: 2.min(slots.len()),
            racks: 1,
            placement_seed: 0x51D8,
        })
        .map_err(|e| MrError::BadConfig(format!("fleet namenode: {e}")))?;
        let fleet = Fleet {
            slots,
            namenode,
            job_seq: AtomicU64::new(1),
            stop: Arc::new(AtomicBool::new(false)),
            monitor: Mutex::new(None),
        };
        // Synchronous first round so jobs submitted immediately after
        // startup see the real liveness picture.
        fleet.probe_all(config.heartbeat_timeout);
        let stop = Arc::clone(&fleet.stop);
        let slots = fleet.slots.clone();
        let every = config.heartbeat_every;
        let timeout = config.heartbeat_timeout;
        let handle = std::thread::Builder::new()
            .name("sidr-fleet-heartbeat".into())
            .spawn(move || {
                // Stagger the fleet instead of probing every worker in
                // one burst: each slot gets a deterministic phase
                // offset inside the period plus an address-derived
                // jitter, so heartbeats never synchronize — on a large
                // fleet a burst of simultaneous pings is itself a
                // load spike on the coordinator's thread and the
                // network.
                let n = slots.len().max(1) as u32;
                let quarter_ms = (every.as_millis() as u64 / 4).max(1);
                let mut due: Vec<Instant> = slots
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        let phase = every * (i as u32) / n;
                        let jitter = Duration::from_millis(addr_jitter(&s.addr) % quarter_ms);
                        Instant::now() + phase + jitter
                    })
                    .collect();
                let tick = (every / 8).max(Duration::from_millis(2));
                while !stop.load(Ordering::SeqCst) {
                    let now = Instant::now();
                    for (i, slot) in slots.iter().enumerate() {
                        if now >= due[i] {
                            probe(slot, timeout);
                            due[i] = now + every;
                        }
                    }
                    std::thread::sleep(tick);
                }
            })
            .expect("spawn heartbeat monitor");
        *fleet.monitor.lock().unwrap() = Some(handle);
        Ok(fleet)
    }

    fn probe_all(&self, timeout: Duration) {
        for slot in &self.slots {
            probe(slot, timeout);
        }
    }

    /// Live workers right now.
    pub fn live_workers(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.alive.load(Ordering::SeqCst))
            .count()
    }

    pub fn size(&self) -> usize {
        self.slots.len()
    }

    /// Per-worker stats for `ServerStats`.
    pub fn stats(&self) -> Vec<WorkerStat> {
        self.slots
            .iter()
            .map(|s| {
                let mut stat = s.last_stat.lock().unwrap().clone();
                stat.addr = s.addr.clone();
                stat.alive = s.alive.load(Ordering::SeqCst);
                stat.heartbeat_age_ms =
                    s.last_heartbeat.lock().unwrap().elapsed().as_millis() as u64;
                stat
            })
            .collect()
    }

    /// Prepares a job on every live worker and returns its remote
    /// executor. The input path is registered in the fleet's simulated
    /// namespace so map dispatch can rank workers by replica locality.
    pub fn prepare_job(
        &self,
        spec: &JobSpec,
        input: &str,
        opts: &ExecOptions,
    ) -> Result<RemoteJob<'_>, MrError> {
        let job = self.job_seq.fetch_add(1, Ordering::Relaxed);
        let input_len = std::fs::metadata(input).map(|m| m.len()).unwrap_or(1 << 20);
        // Job-unique registration path: the same input file may be
        // registered by many jobs, and the namenode rejects duplicate
        // paths.
        let file = self
            .namenode
            .register_file(&format!("job{job}:{input}"), input_len.max(1))
            .map_err(|e| MrError::BadConfig(format!("register input: {e}")))?;
        let req = WorkerRequest::Prepare {
            job,
            spec_json: spec.to_json(),
            input: input.to_string(),
            opts: opts.clone(),
        };
        let mut prepared = 0;
        for slot in &self.slots {
            if !slot.alive.load(Ordering::SeqCst) {
                continue;
            }
            match call(&slot.addr, &req, None) {
                Ok(WorkerResponse::Prepared { .. }) => prepared += 1,
                Ok(WorkerResponse::Failed { detail, .. }) => {
                    return Err(MrError::BadConfig(format!(
                        "worker {} rejected the job: {detail}",
                        slot.addr
                    )));
                }
                Ok(other) => {
                    return Err(MrError::BadConfig(format!(
                        "worker {}: unexpected reply to Prepare: {other:?}",
                        slot.addr
                    )));
                }
                // A worker dying during prepare is not fatal — it is
                // simply not part of this job.
                Err(_) => mark_dead(slot),
            }
        }
        if prepared == 0 {
            return Err(MrError::BadConfig("no live workers to run the job".into()));
        }
        Ok(RemoteJob {
            fleet: self,
            job,
            file,
            prepared: self
                .slots
                .iter()
                .map(|s| s.alive.load(Ordering::SeqCst))
                .collect::<Vec<_>>()
                .into(),
            placement: Mutex::new(HashMap::new()),
            in_flight: Mutex::new(HashMap::new()),
            splits: Mutex::new(Vec::new()),
        })
    }

    /// Stops the heartbeat monitor. Called on drop.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.monitor.lock().unwrap().take() {
            h.join().ok();
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn mark_dead(slot: &WorkerSlot) {
    if slot.alive.swap(false, Ordering::SeqCst) {
        fleet_metrics().workers_lost.inc();
    }
}

/// Deterministic per-address jitter seed (FNV-1a) — stable across
/// restarts so a fleet's heartbeat phases don't reshuffle, distinct
/// across addresses so they don't collide.
fn addr_jitter(addr: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in addr.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One liveness probe: dial, handshake, `Ping`, read `Pong`.
fn probe(slot: &WorkerSlot, timeout: Duration) {
    match call(&slot.addr, &WorkerRequest::Ping, Some(timeout)) {
        Ok(WorkerResponse::Pong(stat)) => {
            let pressured = stat.pressured();
            slot.resident_gauge.set(stat.resident_bytes as i64);
            slot.spilled_gauge.set(stat.spilled_bytes as i64);
            if pressured && !slot.pressured.swap(true, Ordering::SeqCst) {
                fleet_metrics().pressure_advisories.inc();
                eprintln!(
                    "[{}] worker {} under memory pressure: {} resident / {} budget bytes, \
                     {} spilled, {} spill failure(s) — degrading to the disk tier, \
                     deprioritizing for dispatch",
                    sidr_core::diag::codes::MEMORY_PRESSURE,
                    slot.addr,
                    stat.resident_bytes,
                    stat.budget_bytes,
                    stat.spilled_bytes,
                    stat.spill_failures,
                );
            } else if !pressured {
                slot.pressured.store(false, Ordering::SeqCst);
            }
            *slot.last_heartbeat.lock().unwrap() = Instant::now();
            *slot.last_stat.lock().unwrap() = stat;
            slot.heartbeat_gauge.set(0);
            // Rejoin is safe: a restarted worker holds no partitions,
            // so anything it "held" surfaces as Missing and recovers.
            slot.alive.store(true, Ordering::SeqCst);
        }
        Ok(_) | Err(_) => {
            mark_dead(slot);
            slot.heartbeat_gauge
                .set(slot.last_heartbeat.lock().unwrap().elapsed().as_millis() as i64);
        }
    }
}

/// A framed, handshaken connection to a worker — used by the
/// coordinator for dispatch and by workers for peer shuffle fetches
/// (which announce [`Role::Worker`] instead).
pub struct WorkerConn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl WorkerConn {
    /// Dials a worker as the coordinator.
    pub fn dial(addr: &str, timeout: Option<Duration>) -> Result<Self, FrameError> {
        Self::dial_as(addr, Role::Coordinator, timeout)
    }

    /// Dials a worker announcing an explicit role (worker↔worker
    /// shuffle fetches announce [`Role::Worker`]).
    pub fn dial_as(addr: &str, ours: Role, timeout: Option<Duration>) -> Result<Self, FrameError> {
        let stream = match timeout {
            Some(t) => {
                let sockaddr = std::net::ToSocketAddrs::to_socket_addrs(addr)
                    .map_err(|e| FrameError::Io(e.to_string()))?
                    .next()
                    .ok_or_else(|| FrameError::Io(format!("cannot resolve {addr}")))?;
                let s = TcpStream::connect_timeout(&sockaddr, t)
                    .map_err(|e| FrameError::Io(e.to_string()))?;
                s.set_read_timeout(Some(t)).ok();
                s.set_write_timeout(Some(t)).ok();
                s
            }
            None => TcpStream::connect(addr).map_err(|e| FrameError::Io(e.to_string()))?,
        };
        let mut conn = WorkerConn {
            reader: BufReader::new(
                stream
                    .try_clone()
                    .map_err(|e| FrameError::Io(e.to_string()))?,
            ),
            writer: BufWriter::new(stream),
        };
        let mut duplex = Duplex(&mut conn);
        handshake_dial(&mut duplex, ours, Role::Worker)?;
        Ok(conn)
    }

    pub fn send(&mut self, req: &WorkerRequest) -> Result<(), FrameError> {
        frame::send(&mut self.writer, req)
    }

    pub fn recv(&mut self) -> Result<WorkerResponse, FrameError> {
        match frame::recv::<WorkerResponse>(&mut self.reader)? {
            Some(r) => Ok(r),
            None => Err(FrameError::Io("worker closed the connection".into())),
        }
    }

    /// Reads one raw (non-JSON) frame: the SMOF payload following a
    /// [`WorkerResponse::Partition`] header.
    pub fn recv_raw(&mut self) -> Result<Vec<u8>, FrameError> {
        match frame::read_frame(&mut self.reader)? {
            Some(b) => Ok(b),
            None => Err(FrameError::Io("worker closed the connection".into())),
        }
    }
}

/// Adapter giving the handshake one Read+Write view of the split
/// buffered halves.
struct Duplex<'c>(&'c mut WorkerConn);

impl Read for Duplex<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.0.reader.read(buf)
    }
}

impl Write for Duplex<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.writer.write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.0.writer.flush()
    }
}

/// One request/one reply convenience call.
fn call(
    addr: &str,
    req: &WorkerRequest,
    timeout: Option<Duration>,
) -> Result<WorkerResponse, FrameError> {
    let mut conn = WorkerConn::dial(addr, timeout)?;
    conn.send(req)?;
    conn.recv()
}

/// One job's remote executor: implements the engine's
/// [`TaskExecutor`] seam by dispatching attempts to the fleet and
/// tracking which worker holds each committed map generation.
pub struct RemoteJob<'f> {
    fleet: &'f Fleet,
    job: u64,
    file: FileId,
    /// Which workers were prepared for this job (index-aligned with
    /// the fleet's slots); dispatch never targets the others.
    prepared: Box<[bool]>,
    /// `(map, epoch)` → fleet slot index of the holder.
    placement: Mutex<HashMap<(usize, u32), usize>>,
    /// map → fleet slot currently executing its *primary* attempt.
    /// Speculative dispatch reads this to place the twin on a
    /// different worker than the straggler.
    in_flight: Mutex<HashMap<usize, usize>>,
    /// Split byte ranges, captured at first dispatch for locality
    /// ranking.
    splits: Mutex<Vec<(u64, u64)>>,
}

impl RemoteJob<'_> {
    pub fn job_id(&self) -> u64 {
        self.job
    }

    /// Broadcasts `Finish`, dropping the job's state on every worker.
    pub fn finish(&self) {
        for (i, slot) in self.fleet.slots.iter().enumerate() {
            if self.prepared[i] && slot.alive.load(Ordering::SeqCst) {
                call(
                    &slot.addr,
                    &WorkerRequest::Finish { job: self.job },
                    Some(Duration::from_millis(500)),
                )
                .ok();
            }
        }
    }

    /// Workers eligible for this job's dispatch, ranked for `split`:
    /// replica-local workers first (by local byte count, the
    /// `nodes_for_range` ranking), then the rest, dead ones filtered.
    fn ranked_workers(&self, split: Option<&InputSplit>) -> Vec<usize> {
        let mut ranked: Vec<usize> = Vec::new();
        if let Some(split) = split {
            if let Ok(nodes) = self.fleet.namenode.nodes_for_range(
                self.file,
                split.byte_range.0,
                split.byte_range.1,
            ) {
                ranked.extend(nodes.into_iter().map(|(NodeId(i), _)| i));
            }
        }
        for i in 0..self.fleet.slots.len() {
            if !ranked.contains(&i) {
                ranked.push(i);
            }
        }
        ranked.retain(|&i| self.prepared[i] && self.fleet.slots[i].alive.load(Ordering::SeqCst));
        // Backpressure: workers reporting memory pressure sink to the
        // back of the candidate list (stable sort — locality order is
        // preserved within each group). They stay legal targets: a
        // pressured worker is slower, not wrong, and may be the only
        // one left.
        ranked.sort_by_key(|&i| self.fleet.slots[i].pressured.load(Ordering::SeqCst));
        ranked
    }
}

impl RemoteJob<'_> {
    /// Shared body of map dispatch. A speculative twin demotes the
    /// worker currently running the primary attempt to the *back* of
    /// the locality-ranked candidate list: racing on the machine that
    /// is already slow defeats the point, but it stays a legal last
    /// resort when it is the only live worker.
    fn dispatch_map(
        &self,
        task: MapTaskId,
        attempt: u32,
        split: &InputSplit,
        counters: &Counters,
        speculative: bool,
    ) -> sidr_mapreduce::Result<()> {
        {
            let mut splits = self.splits.lock().unwrap();
            if splits.len() <= task {
                splits.resize(task + 1, (0, 0));
            }
            splits[task] = split.byte_range;
        }
        let mut candidates = self.ranked_workers(Some(split));
        if speculative {
            if let Some(&busy) = self.in_flight.lock().unwrap().get(&task) {
                if let Some(pos) = candidates.iter().position(|&i| i == busy) {
                    let demoted = candidates.remove(pos);
                    candidates.push(demoted);
                }
            }
        }
        if candidates.is_empty() {
            return Err(MrError::Source("no live workers for map dispatch".into()));
        }
        let mut first = true;
        for idx in candidates {
            let slot = &self.fleet.slots[idx];
            if !first {
                fleet_metrics().tasks_reassigned.inc();
            }
            first = false;
            let started = Instant::now();
            slot.dispatching.fetch_add(1, Ordering::Relaxed);
            if !speculative {
                self.in_flight.lock().unwrap().insert(task, idx);
            }
            let result = call(
                &slot.addr,
                &WorkerRequest::RunMap {
                    job: self.job,
                    task,
                    attempt,
                },
                None,
            );
            slot.dispatching.fetch_sub(1, Ordering::Relaxed);
            if !speculative {
                let mut in_flight = self.in_flight.lock().unwrap();
                if in_flight.get(&task) == Some(&idx) {
                    in_flight.remove(&task);
                }
            }
            match result {
                Ok(WorkerResponse::MapDone {
                    records_in,
                    records_out,
                    ..
                }) => {
                    fleet_metrics()
                        .dispatch_seconds
                        .observe_duration(started.elapsed());
                    Counters::add(&counters.map_records_in, records_in);
                    Counters::add(&counters.map_records_out, records_out);
                    self.placement.lock().unwrap().insert((task, attempt), idx);
                    return Ok(());
                }
                Ok(WorkerResponse::Failed { detail, fatal, .. }) => {
                    // The worker is alive and the attempt itself
                    // failed (injected fault, bad split): charge the
                    // retry budget like a local failure.
                    if fatal {
                        return Err(MrError::TaskFailed {
                            task: format!("map {task}"),
                            cause: detail,
                        });
                    }
                    return Err(MrError::Source(detail));
                }
                Ok(other) => {
                    return Err(MrError::Source(format!(
                        "unexpected reply to RunMap: {other:?}"
                    )));
                }
                // Connection-level death: the worker died mid-attempt.
                // Nothing committed; try the next candidate with the
                // same attempt id.
                Err(_) => mark_dead(slot),
            }
        }
        Err(MrError::Source(format!(
            "map {task}: every candidate worker died during dispatch"
        )))
    }
}

impl TaskExecutor<Coord, f64> for RemoteJob<'_> {
    fn execute_map(
        &self,
        task: MapTaskId,
        attempt: u32,
        split: &InputSplit,
        counters: &Counters,
    ) -> sidr_mapreduce::Result<()> {
        self.dispatch_map(task, attempt, split, counters, false)
    }

    fn execute_map_speculative(
        &self,
        task: MapTaskId,
        attempt: u32,
        split: &InputSplit,
        counters: &Counters,
    ) -> sidr_mapreduce::Result<()> {
        self.dispatch_map(task, attempt, split, counters, true)
    }

    fn execute_reduce(
        &self,
        reducer: usize,
        attempt: u32,
        sources: &[ReduceSource],
        expected_raw: Option<u64>,
        emit: &mut dyn FnMut(Vec<(Coord, f64)>) -> sidr_mapreduce::Result<()>,
    ) -> Result<u64, RemoteReduceError> {
        // Resolve each source's holder. A generation with no live
        // holder is already lost — report it without burning a
        // dispatch.
        let (locs, lost) = {
            let placement = self.placement.lock().unwrap();
            let mut locs = Vec::with_capacity(sources.len());
            let mut lost = Vec::new();
            for s in sources {
                match placement.get(&(s.map, s.epoch)) {
                    Some(&idx) if self.fleet.slots[idx].alive.load(Ordering::SeqCst) => {
                        locs.push(SourceLoc {
                            map: s.map,
                            epoch: s.epoch,
                            holder: self.fleet.slots[idx].addr.clone(),
                        });
                    }
                    _ => lost.push(s.map),
                }
            }
            (locs, lost)
        };
        if !lost.is_empty() {
            return Err(RemoteReduceError::SourcesLost(lost));
        }

        // Prefer the worker already holding the most source
        // partitions (shuffle-local dispatch), then the rest.
        let mut holder_count: HashMap<usize, usize> = HashMap::new();
        {
            let placement = self.placement.lock().unwrap();
            for s in sources {
                if let Some(&idx) = placement.get(&(s.map, s.epoch)) {
                    *holder_count.entry(idx).or_default() += 1;
                }
            }
        }
        let mut candidates = self.ranked_workers(None);
        // Pressure outranks shuffle locality: fetching over the wire
        // from an unpressured worker beats making an over-budget one
        // merge (and page its own partitions back from disk).
        candidates.sort_by_key(|i| {
            (
                self.fleet.slots[*i].pressured.load(Ordering::SeqCst),
                std::cmp::Reverse(holder_count.get(i).copied().unwrap_or(0)),
            )
        });
        if candidates.is_empty() {
            return Err(RemoteReduceError::AttemptFailed(
                "no live workers for reduce dispatch".into(),
            ));
        }

        let mut first = true;
        for idx in candidates {
            let slot = &self.fleet.slots[idx];
            if !first {
                fleet_metrics().tasks_reassigned.inc();
            }
            first = false;
            let started = Instant::now();
            slot.dispatching.fetch_add(1, Ordering::Relaxed);
            let outcome = run_reduce_on(
                &slot.addr,
                &WorkerRequest::RunReduce {
                    job: self.job,
                    reducer,
                    attempt,
                    sources: locs.clone(),
                    expected_raw,
                },
                emit,
            );
            slot.dispatching.fetch_sub(1, Ordering::Relaxed);
            match outcome {
                ReduceOutcome::Done { emitted, fetch_ms } => {
                    let m = fleet_metrics();
                    m.dispatch_seconds.observe_duration(started.elapsed());
                    m.fetch_seconds
                        .observe(Duration::from_millis(fetch_ms).as_secs_f64());
                    return Ok(emitted);
                }
                ReduceOutcome::SourcesLost(maps) => {
                    return Err(RemoteReduceError::SourcesLost(maps));
                }
                ReduceOutcome::AttemptFailed(detail) => {
                    return Err(RemoteReduceError::AttemptFailed(detail));
                }
                ReduceOutcome::Fatal(e) => return Err(RemoteReduceError::Fatal(e)),
                // The executing worker died before consuming anything:
                // its fetches were peeks. Same attempt, next worker.
                ReduceOutcome::DiedPreCopy => mark_dead(slot),
                // Died after the copy (inputs consumed) but before any
                // group reached us: charge the budget, recover I_ℓ.
                ReduceOutcome::DiedPostCopy => {
                    mark_dead(slot);
                    return Err(RemoteReduceError::AttemptFailed(format!(
                        "worker {} died after consuming reduce {reducer}'s inputs",
                        slot.addr
                    )));
                }
            }
        }
        Err(RemoteReduceError::AttemptFailed(
            "every candidate worker died during reduce dispatch".into(),
        ))
    }
}

enum ReduceOutcome {
    Done { emitted: u64, fetch_ms: u64 },
    SourcesLost(Vec<MapTaskId>),
    AttemptFailed(String),
    Fatal(MrError),
    DiedPreCopy,
    DiedPostCopy,
}

/// Drives one streamed `RunReduce` call: `Fetched` → `Group`* →
/// `ReduceDone`, classifying every failure mode by where the stream
/// broke.
fn run_reduce_on(
    addr: &str,
    req: &WorkerRequest,
    emit: &mut dyn FnMut(Vec<(Coord, f64)>) -> sidr_mapreduce::Result<()>,
) -> ReduceOutcome {
    let mut conn = match WorkerConn::dial(addr, None) {
        Ok(c) => c,
        Err(_) => return ReduceOutcome::DiedPreCopy,
    };
    if conn.send(req).is_err() {
        return ReduceOutcome::DiedPreCopy;
    }
    let mut copied = false;
    let mut streamed = false;
    loop {
        match conn.recv() {
            Ok(WorkerResponse::Fetched { .. }) => copied = true,
            Ok(WorkerResponse::Group { records }) => {
                streamed = true;
                if let Err(e) = emit(records) {
                    // Output-side failure is the coordinator's own.
                    return ReduceOutcome::Fatal(e);
                }
            }
            Ok(WorkerResponse::ReduceDone { emitted, fetch_ms }) => {
                return ReduceOutcome::Done { emitted, fetch_ms };
            }
            Ok(WorkerResponse::Failed {
                detail,
                fatal,
                lost_sources,
            }) => {
                if fatal {
                    return ReduceOutcome::Fatal(MrError::TaskFailed {
                        task: "remote reduce".into(),
                        cause: detail,
                    });
                }
                if !lost_sources.is_empty() {
                    return ReduceOutcome::SourcesLost(lost_sources);
                }
                return ReduceOutcome::AttemptFailed(detail);
            }
            Ok(other) => {
                return ReduceOutcome::AttemptFailed(format!(
                    "unexpected frame in reduce stream: {other:?}"
                ));
            }
            Err(_) => {
                // Connection broke. Where it broke decides recovery:
                // groups already streamed cannot be retried atomically.
                if streamed {
                    return ReduceOutcome::Fatal(MrError::TaskFailed {
                        task: "remote reduce".into(),
                        cause: format!("worker {addr} died mid-stream"),
                    });
                }
                if copied {
                    return ReduceOutcome::DiedPostCopy;
                }
                return ReduceOutcome::DiedPreCopy;
            }
        }
    }
}
