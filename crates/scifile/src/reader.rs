//! RecordReader: iterate the key/value pairs of an input split.
//!
//! "Each split is assigned to one Map task that employs a file-format
//! specific library, called a RecordReader, to read the assigned `Iᵢ`
//! and output key/value pairs" (§2.3). In SciHadoop — and therefore
//! here — the split is a [`Slab`] in logical coordinates, so the keys
//! produced are exactly the coordinates of the slab: `Iᵢ ≡ K_Tᵢ`
//! (§2.4.1), the equivalence SIDR's Area-1 resolution rests on.

use sidr_coords::{Coord, Shape, Slab};

use crate::file::ScincFile;
use crate::value::Element;
use crate::Result;

/// Streams `(Coord, E)` records of one slab of one variable, in
/// row-major order, reading the file in bounded chunks.
pub struct SlabRecordReader<'f, E: Element> {
    file: &'f ScincFile,
    variable: String,
    slab: Slab,
    /// Outer-row chunks: the slab is processed one leading-dimension
    /// row at a time so memory stays bounded by one row.
    chunks: Vec<Slab>,
    next_chunk: usize,
    current: Vec<E>,
    current_coords: Option<sidr_coords::slab::SlabIter>,
    pos_in_chunk: usize,
    produced: u64,
}

impl<'f, E: Element> SlabRecordReader<'f, E> {
    /// Opens a reader over `slab` of `variable`.
    pub fn new(file: &'f ScincFile, variable: &str, slab: Slab) -> Result<Self> {
        // Chunk along the leading dimension to bound memory.
        let rows = slab.shape()[0];
        let chunks = slab.split_along_longest(rows.min(64));
        // split_along_longest may pick a non-leading dim; that is fine
        // — chunks are disjoint, cover the slab, and are iterated in
        // order. For row-major *global* order we only need the chunk
        // list sorted by corner, which split_along_longest guarantees
        // when splitting the longest dimension. Record order within a
        // Map task does not affect MapReduce correctness (§2.3), so a
        // permuted chunk order would still be correct; we sort anyway
        // so tests can rely on deterministic output.
        Ok(SlabRecordReader {
            file,
            variable: variable.to_string(),
            slab,
            chunks,
            next_chunk: 0,
            current: Vec::new(),
            current_coords: None,
            pos_in_chunk: 0,
            produced: 0,
        })
    }

    /// The split this reader serves.
    pub fn slab(&self) -> &Slab {
        &self.slab
    }

    /// Records produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Total records this reader will produce (`|K_Tᵢ|`).
    pub fn total(&self) -> u64 {
        self.slab.count()
    }

    fn load_next_chunk(&mut self) -> Result<bool> {
        if self.next_chunk >= self.chunks.len() {
            return Ok(false);
        }
        let chunk = self.chunks[self.next_chunk].clone();
        self.next_chunk += 1;
        self.current = self.file.read_slab::<E>(&self.variable, &chunk)?;
        self.current_coords = Some(chunk.iter_coords());
        self.pos_in_chunk = 0;
        Ok(true)
    }

    /// Reads the next record, or `None` at end of split.
    pub fn next_record(&mut self) -> Result<Option<(Coord, E)>> {
        loop {
            if let Some(iter) = &mut self.current_coords {
                if let Some(coord) = iter.next() {
                    let value = self.current[self.pos_in_chunk];
                    self.pos_in_chunk += 1;
                    self.produced += 1;
                    return Ok(Some((coord, value)));
                }
                self.current_coords = None;
            }
            if !self.load_next_chunk()? {
                return Ok(None);
            }
        }
    }

    /// Drains the remaining records into a vector (test convenience).
    pub fn collect_all(mut self) -> Result<Vec<(Coord, E)>> {
        let mut out = Vec::with_capacity(self.total() as usize);
        while let Some(rec) = self.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }
}

/// Convenience: reads every record of a slab at once.
pub fn read_records<E: Element>(
    file: &ScincFile,
    variable: &str,
    slab: &Slab,
) -> Result<Vec<(Coord, E)>> {
    SlabRecordReader::new(file, variable, slab.clone())?.collect_all()
}

/// Builds a rank-matched unit shape (helper for point reads).
pub fn unit_shape(rank: usize) -> Shape {
    Shape::new(vec![1; rank]).expect("rank >= 1 enforced by callers")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::{DataType, Dimension, Metadata, Variable};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sidr-reader-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn make_file(path: &std::path::Path) -> ScincFile {
        let md = Metadata::new(
            vec![Dimension::new("t", 6), Dimension::new("x", 4)],
            vec![Variable::new(
                "v",
                DataType::I64,
                vec!["t".into(), "x".into()],
            )],
        )
        .unwrap();
        let f = ScincFile::create(path, md).unwrap();
        let whole = Slab::whole(&Shape::new(vec![6, 4]).unwrap());
        let data: Vec<i64> = (0..24).collect();
        f.write_slab("v", &whole, &data).unwrap();
        f
    }

    #[test]
    fn reads_all_records_in_row_major_order() {
        let path = temp_path("order");
        let f = make_file(&path);
        let slab = Slab::new(Coord::from([1, 1]), Shape::new(vec![3, 2]).unwrap()).unwrap();
        let recs = read_records::<i64>(&f, "v", &slab).unwrap();
        assert_eq!(recs.len(), 6);
        // Value at {t,x} is t*4+x.
        let expect: Vec<(Coord, i64)> = slab
            .iter_coords()
            .map(|c| {
                let v = (c[0] * 4 + c[1]) as i64;
                (c, v)
            })
            .collect();
        assert_eq!(recs, expect);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn produced_and_total_track_progress() {
        let path = temp_path("progress");
        let f = make_file(&path);
        let slab = Slab::whole(&Shape::new(vec![6, 4]).unwrap());
        let mut r = SlabRecordReader::<i64>::new(&f, "v", slab).unwrap();
        assert_eq!(r.total(), 24);
        let mut n = 0;
        while r.next_record().unwrap().is_some() {
            n += 1;
            assert_eq!(r.produced(), n);
        }
        assert_eq!(n, 24);
        std::fs::remove_file(&path).unwrap();
    }
}
