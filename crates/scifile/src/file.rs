//! Coordinate-addressed SciNC files: create, open, slab read/write.

use std::fs::{File, OpenOptions};
use std::io::Read;
use std::os::unix::fs::FileExt;
use std::path::Path;

use sidr_coords::{Coord, Shape, Slab};

use crate::error::ScifileError;
use crate::format;
use crate::metadata::Metadata;
use crate::value::Element;
use crate::Result;

/// An open SciNC file.
///
/// Reads and writes are addressed by [`Slab`] (corner + shape), the
/// coordinate-based contract of scientific access libraries (§2.1):
/// the library translates coordinates into file accesses, so callers
/// never see byte offsets. Data is stored dense and row-major; slab
/// I/O is decomposed into maximal contiguous runs.
pub struct ScincFile {
    file: File,
    metadata: Metadata,
    data_start: u64,
}

impl ScincFile {
    /// Creates a new file with the given metadata. Variable data is
    /// initially a hole (sparse file); readers see zeroes until
    /// written.
    pub fn create(path: impl AsRef<Path>, metadata: Metadata) -> Result<Self> {
        let header = format::encode_header(&metadata);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all_at(&header, 0)?;
        let data_start = header.len() as u64;
        let scinc = ScincFile {
            file,
            metadata,
            data_start,
        };
        // Reserve the full extent so partial writes and sentinel
        // benchmarks see a file of the final size.
        let total = scinc.total_len()?;
        scinc.file.set_len(total)?;
        Ok(scinc)
    }

    /// Opens an existing file, decoding its metadata.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut fixed = [0u8; 16];
        file.read_exact(&mut fixed)?;
        let block_len = u64::from_le_bytes(fixed[8..16].try_into().expect("slice len 8"));
        // The metadata block is names and counts; anything beyond a few
        // MiB is a corrupt length field, not a real header.
        const MAX_HEADER: u64 = 64 << 20;
        if block_len > MAX_HEADER {
            return Err(ScifileError::CorruptHeader(format!(
                "metadata block claims {block_len} bytes (limit {MAX_HEADER})"
            )));
        }
        let header_len = format::align8(16 + block_len);
        let mut header = vec![0u8; header_len as usize];
        file.read_exact_at(&mut header, 0)?;
        let (metadata, data_start) = format::decode_header(&header)?;
        Ok(ScincFile {
            file,
            metadata,
            data_start,
        })
    }

    /// The file's structural metadata.
    pub fn metadata(&self) -> &Metadata {
        &self.metadata
    }

    /// Total file length implied by the metadata.
    pub fn total_len(&self) -> Result<u64> {
        let mut end = self.data_start;
        for v in self.metadata.variables() {
            end = format::align8(end) + self.metadata.variable_byte_len(&v.name)?;
        }
        Ok(end)
    }

    /// Byte offset of a variable's dense array.
    pub fn variable_offset(&self, name: &str) -> Result<u64> {
        let mut offset = self.data_start;
        for v in self.metadata.variables() {
            offset = format::align8(offset);
            if v.name == name {
                return Ok(offset);
            }
            offset += self.metadata.variable_byte_len(&v.name)?;
        }
        Err(ScifileError::NoSuchVariable(name.to_string()))
    }

    fn check_type<E: Element>(&self, variable: &str) -> Result<()> {
        let var = self.metadata.variable(variable)?;
        if var.dtype != E::DATA_TYPE {
            return Err(ScifileError::TypeMismatch {
                variable: variable.to_string(),
                expected: E::DATA_TYPE,
                actual: var.dtype,
            });
        }
        Ok(())
    }

    /// Decomposes a slab of `vshape` into maximal contiguous runs,
    /// calling `f(file_element_offset, slab_element_offset, run_len)`
    /// once per run, in row-major slab order.
    fn for_each_run(
        vshape: &Shape,
        slab: &Slab,
        mut f: impl FnMut(u64, u64, u64) -> Result<()>,
    ) -> Result<()> {
        let rank = vshape.rank();
        if slab.rank() != rank {
            return Err(ScifileError::Coord(sidr_coords::CoordError::RankMismatch {
                expected: rank,
                actual: slab.rank(),
            }));
        }
        // Find the outermost dimension `j` such that the slab spans
        // the full extent of every dimension after `j`: dims j..rank
        // then form one contiguous run per choice of dims 0..j.
        let mut j = rank - 1;
        while j > 0 && slab.corner()[j] == 0 && slab.shape()[j] == vshape[j] {
            j -= 1;
        }
        let run_len: u64 = (j..rank).map(|d| slab.shape()[d]).product();

        if j == 0 {
            let start = vshape.linearize(slab.corner())?;
            return f(start, 0, run_len);
        }

        // Iterate the outer dims 0..j of the slab in row-major order.
        let outer = Shape::new(slab.shape().extents()[..j].to_vec())?;
        let mut slab_off = 0u64;
        for outer_rel in outer.iter_coords() {
            let mut abs = slab.corner().components().to_vec();
            for (d, &c) in outer_rel.components().iter().enumerate() {
                abs[d] += c;
            }
            let start = vshape.linearize(&Coord::new(abs))?;
            f(start, slab_off, run_len)?;
            slab_off += run_len;
        }
        Ok(())
    }

    /// Reads a hyperslab of `variable` into a `Vec` in row-major slab
    /// order.
    pub fn read_slab<E: Element>(&self, variable: &str, slab: &Slab) -> Result<Vec<E>> {
        self.check_type::<E>(variable)?;
        let vshape = self.metadata.variable_shape(variable)?;
        if !Slab::whole(&vshape).contains_slab(slab) {
            return Err(ScifileError::Coord(sidr_coords::CoordError::OutOfBounds {
                dim: 0,
                coordinate: slab.end()[0],
                extent: vshape[0],
            }));
        }
        let var_off = self.variable_offset(variable)?;
        let esize = E::SIZE as u64;
        let mut out: Vec<E> = Vec::with_capacity(slab.count() as usize);
        let mut buf: Vec<u8> = Vec::new();
        Self::for_each_run(&vshape, slab, |file_el, _slab_el, run| {
            buf.resize((run * esize) as usize, 0);
            self.file
                .read_exact_at(&mut buf, var_off + file_el * esize)?;
            out.extend(buf.chunks_exact(E::SIZE).map(E::read_le));
            Ok(())
        })?;
        Ok(out)
    }

    /// Writes a hyperslab of `variable`; `data` is row-major slab
    /// order and must contain exactly `slab.count()` elements.
    pub fn write_slab<E: Element>(&self, variable: &str, slab: &Slab, data: &[E]) -> Result<()> {
        self.check_type::<E>(variable)?;
        if data.len() as u64 != slab.count() {
            return Err(ScifileError::LengthMismatch {
                expected: slab.count(),
                actual: data.len() as u64,
            });
        }
        let vshape = self.metadata.variable_shape(variable)?;
        if !Slab::whole(&vshape).contains_slab(slab) {
            return Err(ScifileError::Coord(sidr_coords::CoordError::OutOfBounds {
                dim: 0,
                coordinate: slab.end()[0],
                extent: vshape[0],
            }));
        }
        let var_off = self.variable_offset(variable)?;
        let esize = E::SIZE as u64;
        let mut buf: Vec<u8> = Vec::new();
        Self::for_each_run(&vshape, slab, |file_el, slab_el, run| {
            buf.clear();
            buf.reserve((run * esize) as usize);
            for e in &data[slab_el as usize..(slab_el + run) as usize] {
                e.write_le(&mut buf);
            }
            self.file.write_all_at(&buf, var_off + file_el * esize)?;
            Ok(())
        })?;
        Ok(())
    }

    /// Reads a single element.
    pub fn read_point<E: Element>(&self, variable: &str, coord: &Coord) -> Result<E> {
        let slab = Slab::new(coord.clone(), Shape::new(vec![1; coord.rank()])?)?;
        Ok(self.read_slab::<E>(variable, &slab)?[0])
    }

    /// Fills an entire variable with a constant (used by the sentinel
    /// sparse-output strategy of §4.4 and by dataset generators).
    pub fn fill<E: Element>(&self, variable: &str, value: E) -> Result<()> {
        self.check_type::<E>(variable)?;
        let count = self.metadata.variable_shape(variable)?.count();
        let var_off = self.variable_offset(variable)?;
        let esize = E::SIZE as u64;
        // 1 MiB chunks keep memory flat for paper-scale variables.
        let chunk_elems = (1 << 20) / esize;
        let mut buf = Vec::with_capacity((chunk_elems * esize) as usize);
        for _ in 0..chunk_elems.min(count) {
            value.write_le(&mut buf);
        }
        let mut written = 0u64;
        while written < count {
            let n = chunk_elems.min(count - written);
            self.file
                .write_all_at(&buf[..(n * esize) as usize], var_off + written * esize)?;
            written += n;
        }
        Ok(())
    }

    /// Flushes file contents and metadata to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.file.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::{DataType, Dimension, Variable};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sidr-scifile-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn small_md() -> Metadata {
        Metadata::new(
            vec![
                Dimension::new("t", 4),
                Dimension::new("y", 3),
                Dimension::new("x", 5),
            ],
            vec![
                Variable::new("a", DataType::F64, vec!["t".into(), "y".into(), "x".into()]),
                Variable::new("b", DataType::I32, vec!["y".into(), "x".into()]),
            ],
        )
        .unwrap()
    }

    fn slab(corner: &[u64], shape: &[u64]) -> Slab {
        Slab::new(Coord::from(corner), Shape::new(shape.to_vec()).unwrap()).unwrap()
    }

    #[test]
    fn create_open_roundtrip() {
        let path = temp_path("roundtrip");
        {
            let f = ScincFile::create(&path, small_md()).unwrap();
            f.sync().unwrap();
        }
        let f = ScincFile::open(&path).unwrap();
        assert_eq!(f.metadata(), &small_md());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn whole_variable_write_read() {
        let path = temp_path("whole");
        let f = ScincFile::create(&path, small_md()).unwrap();
        let whole = slab(&[0, 0, 0], &[4, 3, 5]);
        let data: Vec<f64> = (0..60).map(|i| i as f64 * 0.5).collect();
        f.write_slab("a", &whole, &data).unwrap();
        assert_eq!(f.read_slab::<f64>("a", &whole).unwrap(), data);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn interior_slab_read_matches_points() {
        let path = temp_path("interior");
        let f = ScincFile::create(&path, small_md()).unwrap();
        let whole = slab(&[0, 0, 0], &[4, 3, 5]);
        let data: Vec<f64> = (0..60).map(|i| (i * i) as f64).collect();
        f.write_slab("a", &whole, &data).unwrap();
        let inner = slab(&[1, 1, 2], &[2, 2, 3]);
        let got = f.read_slab::<f64>("a", &inner).unwrap();
        let expect: Vec<f64> = inner
            .iter_coords()
            .map(|c| f.read_point::<f64>("a", &c).unwrap())
            .collect();
        assert_eq!(got, expect);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn second_variable_does_not_alias_first() {
        let path = temp_path("alias");
        let f = ScincFile::create(&path, small_md()).unwrap();
        let wa = slab(&[0, 0, 0], &[4, 3, 5]);
        let wb = slab(&[0, 0], &[3, 5]);
        f.write_slab("a", &wa, &vec![1.5f64; 60]).unwrap();
        f.write_slab("b", &wb, &[7i32; 15]).unwrap();
        assert!(f
            .read_slab::<f64>("a", &wa)
            .unwrap()
            .iter()
            .all(|&v| v == 1.5));
        assert!(f
            .read_slab::<i32>("b", &wb)
            .unwrap()
            .iter()
            .all(|&v| v == 7));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn type_mismatch_rejected() {
        let path = temp_path("types");
        let f = ScincFile::create(&path, small_md()).unwrap();
        let s = slab(&[0, 0], &[1, 1]);
        assert!(matches!(
            f.read_slab::<f64>("b", &s),
            Err(ScifileError::TypeMismatch { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_bounds_slab_rejected() {
        let path = temp_path("oob");
        let f = ScincFile::create(&path, small_md()).unwrap();
        let s = slab(&[3, 0, 0], &[2, 3, 5]);
        assert!(f.read_slab::<f64>("a", &s).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn length_mismatch_rejected() {
        let path = temp_path("len");
        let f = ScincFile::create(&path, small_md()).unwrap();
        let s = slab(&[0, 0, 0], &[1, 1, 2]);
        assert!(matches!(
            f.write_slab("a", &s, &[1.0f64]),
            Err(ScifileError::LengthMismatch {
                expected: 2,
                actual: 1
            })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fill_sets_every_element() {
        let path = temp_path("fill");
        let f = ScincFile::create(&path, small_md()).unwrap();
        f.fill("b", -1i32).unwrap();
        let wb = slab(&[0, 0], &[3, 5]);
        assert!(f
            .read_slab::<i32>("b", &wb)
            .unwrap()
            .iter()
            .all(|&v| v == -1));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unwritten_data_reads_zero() {
        let path = temp_path("zero");
        let f = ScincFile::create(&path, small_md()).unwrap();
        let wb = slab(&[0, 0], &[3, 5]);
        assert!(f
            .read_slab::<i32>("b", &wb)
            .unwrap()
            .iter()
            .all(|&v| v == 0));
        std::fs::remove_file(&path).unwrap();
    }
}
