//! §4.5: time to partition intermediate key/value pairs — Hadoop's
//! hash-modulo default vs `partition+` (paper: 200 ms vs 223 ms for
//! 6.48M pairs; the claim is that the overhead is negligible).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use sidr_bench::{bench_query, intermediate_keys};
use sidr_core::PartitionPlus;
use sidr_mapreduce::{CoordHashPartitioner, Partitioner};

const REDUCERS: usize = 22;

fn bench_partition(c: &mut Criterion) {
    let query = bench_query();
    // Criterion repeats the measurement; 648k keys per iteration keeps
    // wall time sane while preserving the paper's per-pair metric.
    let keys = intermediate_keys(&query, 648_000);
    let hash = CoordHashPartitioner;
    let plus = PartitionPlus::for_query(&query, REDUCERS).expect("partition+ builds");

    let mut group = c.benchmark_group("partition");
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function(BenchmarkId::new("default_hash_modulo", keys.len()), |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for k in &keys {
                acc = acc.wrapping_add(hash.partition(k, REDUCERS));
            }
            black_box(acc)
        })
    });
    group.bench_function(BenchmarkId::new("partition_plus", keys.len()), |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for k in &keys {
                acc = acc.wrapping_add(Partitioner::partition(&plus, k, REDUCERS));
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
