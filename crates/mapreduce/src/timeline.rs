//! Task timelines: the raw material of the paper's Figures 9–13
//! (task completion over time).

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    MapStart,
    MapEnd,
    /// Reduce task occupied a slot and began its copy phase.
    ReduceStart,
    /// All of the reduce task's fetch sources had completed and been
    /// fetched — its barrier (global or dependency-based) was met.
    ReduceBarrierMet,
    /// First key group's output left the streaming merge and reached
    /// the output collector — the reduce pipeline is producing while
    /// later groups are still merging.
    ReduceFirstGroup,
    /// The streaming merge consumed its last key group.
    ReduceMergeDone,
    /// Reduce output committed (a correct partial result is now
    /// available, §3.4).
    ReduceEnd,
    /// Injected reduce failure (recovery experiments).
    ReduceFailed,
}

/// One timeline event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskEvent {
    pub kind: TaskKind,
    /// Map task id or reducer id, per kind.
    pub task: usize,
    /// Time since job start.
    pub at: Duration,
}

/// Thread-safe event recorder.
pub struct Timeline {
    start: Instant,
    events: Mutex<Vec<TaskEvent>>,
}

impl Default for Timeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Timeline {
    pub fn new() -> Self {
        Timeline {
            start: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Records an event now.
    pub fn record(&self, kind: TaskKind, task: usize) {
        let at = self.start.elapsed();
        self.events.lock().push(TaskEvent { kind, task, at });
    }

    /// All events, sorted by time.
    pub fn events(&self) -> Vec<TaskEvent> {
        let mut evs = self.events.lock().clone();
        evs.sort_by_key(|e| e.at);
        evs
    }

    /// Completion times of all events of `kind`, sorted.
    pub fn completions(&self, kind: TaskKind) -> Vec<Duration> {
        let mut times: Vec<Duration> = self
            .events
            .lock()
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.at)
            .collect();
        times.sort();
        times
    }

    /// Time of the first committed reduce output — the paper's
    /// "time to first result".
    pub fn first_result(&self) -> Option<Duration> {
        self.completions(TaskKind::ReduceEnd).first().copied()
    }

    /// Time of the last committed reduce output — total query time.
    pub fn job_end(&self) -> Option<Duration> {
        self.completions(TaskKind::ReduceEnd).last().copied()
    }

    /// Fraction of Map tasks complete at the moment the first reduce
    /// result committed (the paper's "initial results with only 6 % of
    /// the query completed" metric).
    pub fn maps_done_at_first_result(&self) -> Option<f64> {
        let first = self.first_result()?;
        let map_ends = self.completions(TaskKind::MapEnd);
        if map_ends.is_empty() {
            return None;
        }
        let done = map_ends.iter().filter(|&&t| t <= first).count();
        Some(done as f64 / map_ends.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_sorts_events() {
        let tl = Timeline::new();
        tl.record(TaskKind::MapStart, 0);
        tl.record(TaskKind::MapEnd, 0);
        tl.record(TaskKind::ReduceEnd, 0);
        let evs = tl.events();
        assert_eq!(evs.len(), 3);
        assert!(evs.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn first_result_and_fraction() {
        let tl = Timeline::new();
        tl.record(TaskKind::MapEnd, 0);
        tl.record(TaskKind::ReduceEnd, 0);
        tl.record(TaskKind::MapEnd, 1);
        assert!(tl.first_result().is_some());
        let frac = tl.maps_done_at_first_result().unwrap();
        assert!((frac - 0.5).abs() < 1e-9, "frac {frac}");
    }

    #[test]
    fn empty_timeline_has_no_result() {
        let tl = Timeline::new();
        assert_eq!(tl.first_result(), None);
        assert_eq!(tl.maps_done_at_first_result(), None);
    }
}
