//! §3.2.1's store-vs-recompute decision as a bench: deriving the full
//! dependency map at submission vs recomputing one keyblock's `I_ℓ`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sidr_bench::bench_query;
use sidr_core::deps::Dependencies;
use sidr_core::PartitionPlus;
use sidr_mapreduce::SplitGenerator;

fn bench_deps(c: &mut Criterion) {
    let query = bench_query();
    let splits = SplitGenerator::new(query.input_space().clone(), 4)
        .aligned(36 * 72 * 50 * 4 * 4, 2)
        .expect("splits generate");

    let mut group = c.benchmark_group("dependencies");
    for reducers in [22usize, 176] {
        let pp = PartitionPlus::for_query(&query, reducers).expect("partition+ builds");
        group.bench_function(BenchmarkId::new("derive_all", reducers), |b| {
            b.iter(|| black_box(Dependencies::derive(&query, &pp, &splits).expect("derives")))
        });
        group.bench_function(BenchmarkId::new("recompute_one_keyblock", reducers), |b| {
            let target = reducers / 2;
            b.iter(|| {
                let mut mine = Vec::new();
                for (m, split) in splits.iter().enumerate() {
                    let blocks = Dependencies::keyblocks_of_split(&query, &pp, &split.slab)
                        .expect("valid geometry");
                    if blocks.contains(&target) {
                        mine.push(m);
                    }
                }
                black_box(mine)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_deps);
criterion_main!(benches);
